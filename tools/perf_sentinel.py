#!/usr/bin/env python3
"""Performance-regression sentinel for the campaign fleet.

Three independent checks, any combination per invocation; the process
exits non-zero if any enabled check fails:

  Throughput diff   --baseline BENCH_throughput.json --fresh FRESH.json
      Matches runs by config_digest and compares ticks_per_sec with a
      relative tolerance band (--tolerance, default 0.30 = fresh may be
      up to 30% slower before it counts as a regression; wall-clock
      noise on shared CI hosts is real). stats_digest differences are a
      hard failure at any tolerance: determinism broke, not perf.

  Metrics snapshot  --metrics SCRAPE.prom
      Reads one Prometheus text-exposition scrape of stacknoc_serve and
      enforces fleet health bands:
        --max-queue-wait-p95-us N   p95 of stacknoc_queue_wait_us,
                                    computed from the cumulative log2
                                    buckets (upper bound of the p95
                                    bucket), must be <= N
        --min-cache-hit-rate R      hits / (hits + misses) >= R
                                    (skipped when there were no
                                    submissions)
        --max-metric NAME=V         the named series (bare name or full
                                    name{labels} key) must be <= V;
                                    repeatable. A missing series fails
                                    the check — the band exists to
                                    prove the fleet stayed healthy.
        --min-metric NAME=V         same, but the series must be >= V;
                                    repeatable. Used after a chaos run
                                    to prove injected failures actually
                                    happened (e.g. job_retries_total)
                                    while the failure budget held
                                    (e.g. jobs_failed_total).

  Format validation --check-format SCRAPE.prom [--min-series N]
      Validates text exposition format v0.0.4: every series line parses,
      every family has HELP and TYPE before its first series, histogram
      families carry le="+Inf" and consistent _count, and at least
      --min-series distinct series exist.

Exit codes: 0 all enabled checks pass, 1 regression/validation failure,
2 usage or unreadable input.
"""

import argparse
import json
import re
import sys

SERIES_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+\-]+|NaN|'
    r'[+-]Inf)$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(msg):
    print(f"perf_sentinel: FAIL: {msg}")
    return False


def parse_exposition(path):
    """Parse a text-exposition file.

    Returns (families, series, errors): families maps family name ->
    {"help": bool, "type": str}; series maps full series key
    (name + sorted label body) -> float value.
    """
    families = {}
    series = {}
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"perf_sentinel: cannot read {path}: {e}")
        sys.exit(2)

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                errors.append(f"line {lineno}: malformed HELP")
                continue
            families.setdefault(parts[2], {"help": False,
                                           "type": None})["help"] = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 4)
            if len(parts) < 4:
                errors.append(f"line {lineno}: malformed TYPE")
                continue
            fam = families.setdefault(parts[2],
                                      {"help": False, "type": None})
            fam["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SERIES_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable series: {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            series[name + labels] = float(value)
        except ValueError:
            errors.append(f"line {lineno}: bad value {value!r}")
    return families, series, errors


def family_of(series_name):
    """Strip histogram suffixes back to the declared family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if series_name.endswith(suffix):
            return series_name[: -len(suffix)]
    return series_name


def labels_of(key):
    brace = key.find("{")
    if brace < 0:
        return {}
    return dict(LABEL_RE.findall(key[brace + 1:-1]))


def name_of(key):
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


def check_format(path, min_series):
    families, series, errors = parse_exposition(path)
    ok = True
    for e in errors:
        ok = fail(f"{path}: {e}")

    for key in series:
        fam = family_of(name_of(key))
        if fam not in families:
            ok = fail(f"{path}: series {key!r} has no TYPE line "
                      f"(family {fam!r})")
        elif not families[fam]["help"]:
            ok = fail(f"{path}: family {fam!r} has TYPE but no HELP")

    # Histogram invariants, per labelled series: an +Inf bucket exists,
    # equals _count, and cumulative counts never decrease.
    for fam, meta in families.items():
        if meta["type"] != "histogram":
            continue
        groups = {}
        for key, value in series.items():
            if name_of(key) != fam + "_bucket":
                continue
            labels = labels_of(key)
            le = labels.pop("le", None)
            ident = tuple(sorted(labels.items()))
            groups.setdefault(ident, []).append((le, value))
        for ident, buckets in groups.items():
            les = dict(buckets)
            if "+Inf" not in les:
                ok = fail(f"{path}: histogram {fam}{dict(ident)} "
                          f"missing le=\"+Inf\"")
                continue
            finite = sorted(
                (float(le), v) for le, v in buckets if le != "+Inf")
            cum = [v for _, v in finite] + [les["+Inf"]]
            if any(b < a for a, b in zip(cum, cum[1:])):
                ok = fail(f"{path}: histogram {fam}{dict(ident)} "
                          f"buckets not cumulative")
            body = ("{" + ",".join(f'{k}="{v}"' for k, v in ident) +
                    "}") if ident else ""
            count = series.get(fam + "_count" + body)
            if count is None or count != les["+Inf"]:
                ok = fail(f"{path}: histogram {fam}{dict(ident)} "
                          f"_count != +Inf bucket")

    if len(series) < min_series:
        ok = fail(f"{path}: {len(series)} series < required "
                  f"{min_series}")
    if ok:
        print(f"perf_sentinel: format ok: {len(series)} series, "
              f"{len(families)} families")
    return ok


def histogram_p95(series, fam, label_filter=None):
    """p95 from cumulative log2 buckets: the upper bound of the bucket
    where the cumulative count first reaches 95% of the total."""
    buckets = []
    total = None
    for key, value in series.items():
        if name_of(key) == fam + "_bucket":
            labels = labels_of(key)
            le = labels.pop("le")
            if label_filter is not None and labels != label_filter:
                continue
            buckets.append((float("inf") if le == "+Inf" else float(le),
                            value))
        elif name_of(key) == fam + "_count":
            total = value
    if not buckets or not total:
        return None
    buckets.sort()
    want = 0.95 * total
    for le, cum in buckets:
        if cum >= want:
            return le
    return buckets[-1][0]


def parse_metric_bound(spec):
    """Split a NAME=VALUE band spec; exits 2 on malformed input."""
    name, eq, value = spec.rpartition("=")
    if not name or not eq:
        print(f"perf_sentinel: bad metric bound {spec!r} "
              f"(want NAME=VALUE)")
        sys.exit(2)
    try:
        return name, float(value)
    except ValueError:
        print(f"perf_sentinel: bad metric bound value in {spec!r}")
        sys.exit(2)


def series_value(series, name):
    """Look up a series by full key or by bare family name.

    A bare name with exactly one labelled variant resolves to it, so
    bands don't need to spell out label bodies that may change.
    """
    if name in series:
        return series[name]
    matches = [v for k, v in series.items() if name_of(k) == name]
    return matches[0] if len(matches) == 1 else None


def check_metric_bounds(path, series, max_bounds, min_bounds):
    ok = True
    for spec in max_bounds:
        name, bound = parse_metric_bound(spec)
        value = series_value(series, name)
        if value is None:
            ok = fail(f"{path}: --max-metric {name}: series not found")
        elif value > bound:
            ok = fail(f"{path}: {name} = {value:g} > {bound:g}")
        else:
            print(f"perf_sentinel: {name} = {value:g} <= {bound:g}")
    for spec in min_bounds:
        name, bound = parse_metric_bound(spec)
        value = series_value(series, name)
        if value is None:
            ok = fail(f"{path}: --min-metric {name}: series not found")
        elif value < bound:
            ok = fail(f"{path}: {name} = {value:g} < {bound:g}")
        else:
            print(f"perf_sentinel: {name} = {value:g} >= {bound:g}")
    return ok


def check_metrics(path, max_qwait_p95, min_hit_rate, max_bounds=(),
                  min_bounds=()):
    _, series, _ = parse_exposition(path)
    ok = check_metric_bounds(path, series, max_bounds, min_bounds)
    if max_qwait_p95 is not None:
        p95 = histogram_p95(series, "stacknoc_queue_wait_us", {})
        if p95 is None:
            ok = fail(f"{path}: no stacknoc_queue_wait_us samples to "
                      f"check against --max-queue-wait-p95-us")
        elif p95 > max_qwait_p95:
            ok = fail(f"{path}: queue-wait p95 {p95:.0f}us > "
                      f"{max_qwait_p95:.0f}us")
        else:
            print(f"perf_sentinel: queue-wait p95 {p95:.0f}us <= "
                  f"{max_qwait_p95:.0f}us")
    if min_hit_rate is not None:
        hits = series.get("stacknoc_cache_hits_total", 0.0)
        misses = series.get("stacknoc_cache_misses_total", 0.0)
        if hits + misses == 0:
            print("perf_sentinel: no submissions; hit-rate check "
                  "skipped")
        else:
            rate = hits / (hits + misses)
            if rate < min_hit_rate:
                ok = fail(f"{path}: cache hit rate {rate:.3f} < "
                          f"{min_hit_rate:.3f}")
            else:
                print(f"perf_sentinel: cache hit rate {rate:.3f} >= "
                      f"{min_hit_rate:.3f}")
    return ok


def load_bench(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_sentinel: cannot read {path}: {e}")
        sys.exit(2)
    runs = {}
    for run in doc.get("runs", []):
        digest = run.get("config_digest")
        if digest and run.get("ok"):
            runs[digest] = run
    return doc, runs


def check_throughput(baseline_path, fresh_path, tolerance):
    base_doc, base = load_bench(baseline_path)
    fresh_doc, fresh = load_bench(fresh_path)
    ok = True
    if base_doc.get("schema_version") != fresh_doc.get("schema_version"):
        ok = fail(f"schema_version mismatch: baseline "
                  f"{base_doc.get('schema_version')} vs fresh "
                  f"{fresh_doc.get('schema_version')}")
    matched = 0
    for digest, b in base.items():
        f = fresh.get(digest)
        if f is None:
            continue
        matched += 1
        if b.get("stats_digest") != f.get("stats_digest"):
            ok = fail(f"{digest}: stats_digest changed "
                      f"({b.get('stats_digest')} -> "
                      f"{f.get('stats_digest')}): determinism broke")
        bt, ft = b.get("ticks_per_sec"), f.get("ticks_per_sec")
        if not bt or not ft:
            continue
        floor = bt * (1.0 - tolerance)
        if ft < floor:
            ok = fail(f"{digest} ({b.get('scenario')}/{b.get('mix')}):"
                      f" ticks/sec {ft:.0f} < {floor:.0f} "
                      f"(baseline {bt:.0f}, tolerance {tolerance:.0%})")
        else:
            print(f"perf_sentinel: {digest}: ticks/sec {ft:.0f} ok "
                  f"(baseline {bt:.0f})")
    if matched == 0:
        ok = fail("no runs matched by config_digest between baseline "
                  "and fresh")
    else:
        print(f"perf_sentinel: matched {matched} run(s) by "
              f"config_digest")
    return ok


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", help="committed BENCH_throughput.json")
    ap.add_argument("--fresh", help="freshly recorded bench json")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="relative ticks/sec slowdown allowed "
                         "(default 0.30)")
    ap.add_argument("--metrics", help="Prometheus scrape to health-check")
    ap.add_argument("--max-queue-wait-p95-us", type=float, default=None)
    ap.add_argument("--min-cache-hit-rate", type=float, default=None)
    ap.add_argument("--max-metric", action="append", default=[],
                    metavar="NAME=V",
                    help="named series must be <= V (repeatable)")
    ap.add_argument("--min-metric", action="append", default=[],
                    metavar="NAME=V",
                    help="named series must be >= V (repeatable)")
    ap.add_argument("--check-format",
                    help="Prometheus scrape to validate")
    ap.add_argument("--min-series", type=int, default=12,
                    help="series floor for --check-format (default 12)")
    args = ap.parse_args()

    if bool(args.baseline) != bool(args.fresh):
        ap.error("--baseline and --fresh go together")
    if not (args.baseline or args.metrics or args.check_format):
        ap.error("nothing to do: pass --baseline/--fresh, --metrics "
                 "or --check-format")

    ok = True
    if args.check_format:
        ok = check_format(args.check_format, args.min_series) and ok
    if args.metrics:
        ok = check_metrics(args.metrics, args.max_queue_wait_p95_us,
                           args.min_cache_hit_rate, args.max_metric,
                           args.min_metric) and ok
    if args.baseline:
        ok = check_throughput(args.baseline, args.fresh,
                              args.tolerance) and ok
    if ok:
        print("perf_sentinel: all checks passed")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
