/**
 * @file
 * stacknoc_client — command-line client for stacknoc_serve.
 *
 *     stacknoc_client --socket PATH run [job flags...]
 *     stacknoc_client --socket PATH status [--watch SEC]
 *     stacknoc_client --socket PATH shutdown
 *
 * "run" submits one job and prints every server event for it (one JSON
 * object per line) until the result or an error arrives. Exit code: 0
 * on result, 1 on an error event or connection failure, 2 on usage.
 *
 * "status --watch SEC" polls the server every SEC seconds (fractional
 * ok) and prints a one-line human summary per poll until interrupted
 * or the server goes away.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "server/client.hh"
#include "server/protocol.hh"
#include "telemetry/json.hh"

using stacknoc::server::Connection;
using stacknoc::server::JobRequest;
using stacknoc::telemetry::JsonValue;
using stacknoc::telemetry::JsonWriter;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH run [job flags]\n"
        "       %s --socket PATH status [--watch SEC]\n"
        "       %s --socket PATH shutdown\n"
        "\n"
        "job flags (defaults in brackets):\n"
        "  --scenario NAME     scenario [MRAM-4TSB-WB]\n"
        "  --regions N         TSB region override [scenario default]\n"
        "  --apps A,B,...      app mix, round-robin over cores [tpcc]\n"
        "  --seed N            workload seed [1]\n"
        "  --warmup N          warm-up cycles [3000]\n"
        "  --cycles N          measured cycles [20000]\n"
        "  --mesh WxH          mesh dimensions [8x8]\n"
        "  --threads N         engine threads [1]\n"
        "  --no-elide          disable idle elision\n"
        "  --interval N        stream interval events every N cycles [off]\n"
        "  --fault-spec SPEC   fault campaign spec [clean]\n"
        "  --real-tags         use the real L2 tag model\n"
        "\n"
        "status flags:\n"
        "  --watch SEC         poll every SEC seconds (fractional ok)\n"
        "                      and print a one-line summary per poll\n"
        "\n"
        "connection flags (any subcommand):\n"
        "  --connect-retries N    re-attempt a refused/missing socket\n"
        "                         up to N times [0]\n"
        "  --connect-backoff-ms N base retry backoff, doubled per\n"
        "                         retry [100]\n",
        argv0, argv0, argv0);
}

bool
parseMesh(const std::string &s, int &w, int &h)
{
    const std::size_t x = s.find('x');
    if (x == std::string::npos)
        return false;
    w = std::atoi(s.substr(0, x).c_str());
    h = std::atoi(s.substr(x + 1).c_str());
    return w >= 1 && h >= 1;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    std::istringstream is(s);
    while (std::getline(is, cur, ','))
        if (!cur.empty())
            out.push_back(cur);
    return out;
}

double
statusNum(const JsonValue &doc, const char *key)
{
    const JsonValue *m = doc.find(key);
    return m != nullptr && m->isNumber() ? m->asDouble() : 0.0;
}

/** One human line per poll for `status --watch`. */
std::string
statusSummary(const JsonValue &doc)
{
    const JsonValue *v = doc.find("version");
    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "up %.1fs v%s | workers %d busy %d | queued %d | "
        "completed %d failed %d | cache %d entries, %d hits | "
        "respawns %d",
        statusNum(doc, "uptime_sec"),
        v != nullptr && v->isString() ? v->asString().c_str() : "?",
        static_cast<int>(statusNum(doc, "workers")),
        static_cast<int>(statusNum(doc, "busy")),
        static_cast<int>(statusNum(doc, "queued")),
        static_cast<int>(statusNum(doc, "completed")),
        static_cast<int>(statusNum(doc, "jobs_failed")),
        static_cast<int>(statusNum(doc, "cache_entries")),
        static_cast<int>(statusNum(doc, "cache_hits")),
        static_cast<int>(statusNum(doc, "worker_respawns")));
    return buf;
}

/**
 * Poll status once over a fresh connection. @return 0 on success, 1 on
 * failure (summary printed / error reported either way).
 */
int
pollStatusOnce(const char *argv0, const std::string &socketPath,
               int retries, int backoffMs)
{
    Connection conn;
    std::string err;
    if (!conn.connectWithRetry(socketPath, retries, backoffMs, err) ||
        !conn.sendLine("{\"cmd\":\"status\"}", err)) {
        std::fprintf(stderr, "%s: %s\n", argv0, err.c_str());
        return 1;
    }
    std::string line;
    while (conn.readLine(line, err)) {
        if (line.empty())
            continue;
        const auto doc = JsonValue::parse(line);
        if (!doc || !doc->isObject())
            continue;
        const JsonValue *ev = doc->find("event");
        const std::string kind =
            ev != nullptr && ev->isString() ? ev->asString() : "";
        if (kind == "error")
            return 1;
        if (kind == "status") {
            std::printf("%s\n", statusSummary(*doc).c_str());
            std::fflush(stdout);
            return 0;
        }
    }
    std::fprintf(stderr, "%s: %s\n", argv0,
                 err.empty() ? "server closed the connection"
                             : err.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string subcommand;
    double watchSec = -1.0;
    int connectRetries = 0;
    int connectBackoffMs = 100;
    JobRequest req;

    int i = 1;
    const auto need = [&](const char *what) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: %s requires a value\n", argv[0],
                         what);
            std::exit(2);
        }
        return argv[++i];
    };
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            socketPath = need("--socket");
        } else if (arg == "--scenario") {
            req.scenario = need("--scenario");
        } else if (arg == "--regions") {
            req.regions = std::atoi(need("--regions"));
        } else if (arg == "--apps") {
            req.apps = splitCsv(need("--apps"));
        } else if (arg == "--seed") {
            req.seed = std::strtoull(need("--seed"), nullptr, 10);
        } else if (arg == "--warmup") {
            req.warmup = std::strtoull(need("--warmup"), nullptr, 10);
        } else if (arg == "--cycles") {
            req.cycles = std::strtoull(need("--cycles"), nullptr, 10);
        } else if (arg == "--mesh") {
            if (!parseMesh(need("--mesh"), req.meshWidth,
                           req.meshHeight)) {
                std::fprintf(stderr, "%s: bad --mesh (want WxH)\n",
                             argv[0]);
                return 2;
            }
        } else if (arg == "--threads") {
            req.threads = std::atoi(need("--threads"));
        } else if (arg == "--no-elide") {
            req.elide = false;
        } else if (arg == "--interval") {
            req.interval = std::strtoull(need("--interval"), nullptr, 10);
        } else if (arg == "--fault-spec") {
            req.faultSpec = need("--fault-spec");
        } else if (arg == "--real-tags") {
            req.realTags = true;
        } else if (arg == "--connect-retries") {
            connectRetries = std::atoi(need("--connect-retries"));
        } else if (arg == "--connect-backoff-ms") {
            connectBackoffMs = std::atoi(need("--connect-backoff-ms"));
        } else if (arg == "--watch") {
            watchSec = std::atof(need("--watch"));
            if (watchSec <= 0) {
                std::fprintf(stderr, "%s: --watch wants seconds > 0\n",
                             argv[0]);
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && subcommand.empty()) {
            subcommand = arg;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (socketPath.empty() ||
        (subcommand != "run" && subcommand != "status" &&
         subcommand != "shutdown")) {
        usage(argv[0]);
        return 2;
    }
    if (watchSec > 0 && subcommand != "status") {
        std::fprintf(stderr, "%s: --watch only applies to status\n",
                     argv[0]);
        return 2;
    }

    if (watchSec > 0) {
        // Live summary loop: one line per poll, fresh connection each
        // time so a restarted server picks back up. Ends (exit 1) when
        // the server goes away.
        for (;;) {
            if (const int rc =
                    pollStatusOnce(argv[0], socketPath, connectRetries,
                                   connectBackoffMs);
                rc != 0)
                return rc;
            std::this_thread::sleep_for(
                std::chrono::duration<double>(watchSec));
        }
    }

    Connection conn;
    std::string err;
    if (!conn.connectWithRetry(socketPath, connectRetries,
                               connectBackoffMs, err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 1;
    }

    std::string cmdLine;
    {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.kv("cmd", subcommand);
        if (subcommand == "run")
            stacknoc::server::writeJobRequestMembers(w, req);
        w.endObject();
        cmdLine = os.str();
    }
    if (!conn.sendLine(cmdLine, err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 1;
    }

    // Print events until the terminal one for this command.
    std::string line;
    while (conn.readLine(line, err)) {
        if (line.empty())
            continue;
        std::printf("%s\n", line.c_str());
        std::fflush(stdout);
        std::string perr;
        const auto doc = JsonValue::parse(line, &perr);
        if (!doc || !doc->isObject())
            continue;
        const JsonValue *ev = doc->find("event");
        const std::string kind =
            ev != nullptr && ev->isString() ? ev->asString() : "";
        if (kind == "error")
            return 1;
        if (subcommand == "run" && kind == "result")
            return 0;
        if (subcommand == "status" && kind == "status")
            return 0;
        if (subcommand == "shutdown" && kind == "bye")
            return 0;
    }
    if (!err.empty()) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 1;
    }
    std::fprintf(stderr, "%s: server closed the connection\n", argv[0]);
    return 1;
}
