/**
 * @file
 * stacknoc_sweep — campaign runner for throughput baselines.
 *
 * Fans a scenario grid (scheme x regions x app mix x seed) across
 * parallel stacknoc_run child processes, harvests each child's JSON
 * stats, and writes one merged benchmark artifact (fig6-style IPC and
 * latency per design point plus wall-clock sims/sec). It also measures
 * the sharded engine's speedup on one fig6 scenario (1 thread vs
 * --speedup-threads) and records it alongside the grid, seeding the
 * perf trajectory tracked in BENCH_throughput.json.
 *
 * Every run record carries a config_digest — the campaign-server cache
 * key for that design point — which makes campaigns resumable:
 * --resume reloads a partial artifact and re-runs only the grid points
 * it is missing. With --server SOCKET the sweep submits jobs to a
 * running stacknoc_serve instead of spawning child processes, so
 * repeated sweeps hit the server's result cache and sweep points
 * sharing a warm configuration reuse warm checkpoints.
 *
 *   stacknoc_sweep --out BENCH_throughput.json
 *   stacknoc_sweep --schemes MRAM-4TSB,MRAM-4TSB-WB --seeds 3 --jobs 8
 *   stacknoc_sweep --server /tmp/stacknoc.sock --resume
 */

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/cli.hh"
#include "common/logging.hh"
#include "server/client.hh"
#include "server/protocol.hh"
#include "telemetry/json.hh"

using namespace stacknoc;

namespace {

struct SweepJob
{
    std::string scenario;
    int regions = 4;
    std::string mix;       //!< comma list passed to --apps
    std::uint64_t seed = 1;
    int threads = 1;
    std::string tag;       //!< "grid" or "speedup"
};

struct SweepResult
{
    SweepJob job;
    bool ok = false;
    /** Child's specific exit code (128+signal if killed); 0 when ok. */
    int exitCode = 0;
    std::string configDigest; //!< campaign cache key for this point
    std::string statsDigest;  //!< child's full-stats digest ("0x...")
    double meanIpc = 0.0;
    double instrThroughput = 0.0;
    double avgNetLatency = 0.0;
    double p95NetLatency = 0.0;
    double wallSeconds = 0.0;
    double ticksPerSec = 0.0;
    double activeFraction = 0.0; //!< child's perf.active_fraction
    double totalEnergyUJ = 0.0; //!< child's metrics.energy_uj.total
    double peakTempC = 0.0;     //!< child's thermal.peak_c (0 if off)
    /** Engine-phase wall-time breakdown (child's profile.phases). */
    std::vector<std::pair<std::string, double>> phases;
};

struct SweepOptions
{
    std::vector<std::string> schemes{"MRAM-64TSB", "MRAM-4TSB",
                                     "MRAM-4TSB-WB"};
    std::vector<int> regions{4};
    std::vector<std::string> mixes{"tpcc", "tpcc,lbm,mcf,libquantum"};
    int seeds = 1;
    Cycle cycles = 20000;
    Cycle warmup = 3000;
    int jobs = 0; //!< 0 = hardware concurrency
    int threads = 1;
    std::string runner;
    std::string out = "BENCH_throughput.json";
    std::string speedupScenario = "MRAM-4TSB-WB";
    int speedupThreads = 4;
    bool speedup = true;
    bool profile = true;
    bool thermal = true;
    bool resume = false;
    std::string server; //!< stacknoc_serve socket; empty = children
    int connectRetries = 0;    //!< --server connect re-attempts
    int connectBackoffMs = 100; //!< base backoff, doubled per retry
};

std::vector<std::string>
splitList(const std::string &list, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    for (std::string item; std::getline(ss, item, sep);)
        if (!item.empty())
            out.push_back(item);
    return out;
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr, R"(usage: stacknoc_sweep [options]
  --schemes A,B,..   scenario names (default MRAM-64TSB,MRAM-4TSB,MRAM-4TSB-WB)
  --regions N,..     region counts (default 4)
  --mixes M1:M2:..   app mixes, ':'-separated, each a comma list
                     (default tpcc:tpcc,lbm,mcf,libquantum)
  --seeds N          seeds 1..N per design point (default 1)
  --cycles N         measured cycles per run (default 20000)
  --warmup N         warm-up cycles per run (default 3000)
  --jobs N           parallel child processes (default: hw threads)
  --threads N        engine threads inside each child (default 1)
  --runner PATH      stacknoc_run binary (default: next to this binary)
  --out FILE         merged artifact (default BENCH_throughput.json)
  --speedup-scenario NAME  fig6 scenario for the 1-vs-N thread speedup
                     measurement (default MRAM-4TSB-WB)
  --speedup-threads N  parallel-engine thread count to measure (default 4)
  --no-speedup       skip the speedup measurement
  --no-profile       don't fold the engine-phase profile into run records
  --no-thermal       don't run children with --thermal (run records then
                     carry zero total_energy_uj / peak_temp_c)
  --resume           reload an existing --out artifact and skip grid
                     points whose config_digest is already present with
                     ok:true (interrupted campaigns pick up where they
                     stopped)
  --server SOCKET    submit jobs to a running stacknoc_serve on this
                     Unix socket instead of spawning child processes
                     (run records then carry no thermal/profile data)
  --connect-retries N    with --server: re-attempt a refused/missing
                     socket up to N times (default 0)
  --connect-backoff-ms N base connect retry backoff, doubled per retry
                     (default 100)
)");
    std::exit(2);
}

const std::vector<std::string> kKnownOptions = {
    "--schemes", "--regions", "--mixes", "--seeds", "--cycles",
    "--warmup", "--jobs", "--threads", "--runner", "--out",
    "--speedup-scenario", "--speedup-threads", "--no-speedup",
    "--no-profile", "--no-thermal", "--resume", "--server",
    "--connect-retries", "--connect-backoff-ms",
};

/** The campaign-server request equivalent to one sweep job. */
server::JobRequest
toRequest(const SweepOptions &opt, const SweepJob &job)
{
    server::JobRequest req;
    req.scenario = job.scenario;
    req.regions = job.regions;
    req.apps = splitList(job.mix, ',');
    req.seed = job.seed;
    req.warmup = opt.warmup;
    req.cycles = opt.cycles;
    req.threads = job.threads;
    return req;
}

/**
 * fork/exec @p args (argv[0] is the binary), stdout/stderr to
 * /dev/null. @return the child's specific exit code, 128+signal if it
 * was killed, or -1 if the spawn itself failed.
 */
int
runChild(const std::vector<std::string> &args)
{
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        return -1;
    if (pid == 0) {
        const int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0) {
            ::dup2(devnull, STDOUT_FILENO);
            ::dup2(devnull, STDERR_FILENO);
            ::close(devnull);
        }
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0)
        return -1;
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return -1;
}

/** Run one child via fork/exec, parse its --json-stats output. */
SweepResult
runJob(const SweepOptions &opt, const SweepJob &job, int idx)
{
    SweepResult res;
    res.job = job;
    res.configDigest =
        server::hexKey(server::cacheKeyDigest(toRequest(opt, job)));

    const std::string json_path =
        (std::filesystem::temp_directory_path() /
         detail::format("stacknoc_sweep_%d_%d.json",
                        static_cast<int>(::getpid()), idx))
            .string();

    std::vector<std::string> args{
        opt.runner,
        "--scenario", job.scenario,
        "--regions", detail::format("%d", job.regions),
        "--apps", job.mix,
        "--seed",
        detail::format("%llu", static_cast<unsigned long long>(job.seed)),
        "--cycles",
        detail::format("%llu",
                       static_cast<unsigned long long>(opt.cycles)),
        "--warmup",
        detail::format("%llu",
                       static_cast<unsigned long long>(opt.warmup)),
        "--threads", detail::format("%d", job.threads),
        "--digest",
        "--json-stats", json_path,
    };
    if (opt.profile)
        args.push_back("--profile");
    if (opt.thermal)
        args.push_back("--thermal"); // implies --power

    const int rc = runChild(args);
    res.exitCode = rc;
    if (rc != 0) {
        warn("sweep: child failed (exit=%d): %s %s r%d %s seed=%llu",
             rc, opt.runner.c_str(), job.scenario.c_str(), job.regions,
             job.mix.c_str(),
             static_cast<unsigned long long>(job.seed));
        return res;
    }

    std::ifstream in(json_path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::filesystem::remove(json_path);

    std::string err;
    const auto doc = telemetry::JsonValue::parse(buf.str(), &err);
    if (!doc) {
        warn("sweep: bad child json (%s) for %s seed=%llu", err.c_str(),
             job.scenario.c_str(),
             static_cast<unsigned long long>(job.seed));
        return res;
    }

    const auto *metrics = doc->find("metrics");
    const auto *perf = doc->find("perf");
    if (!metrics || !perf) {
        warn("sweep: child json missing metrics/perf for %s",
             job.scenario.c_str());
        return res;
    }
    auto num = [](const telemetry::JsonValue *obj, const char *key) {
        const auto *v = obj->find(key);
        return v && v->isNumber() ? v->asDouble() : 0.0;
    };
    res.meanIpc = num(metrics, "mean_ipc");
    res.instrThroughput = num(metrics, "instruction_throughput");
    res.avgNetLatency = num(metrics, "avg_network_latency");
    res.p95NetLatency = num(metrics, "p95_network_latency");
    res.wallSeconds = num(perf, "wall_seconds");
    res.ticksPerSec = num(perf, "ticks_per_sec");
    res.activeFraction = num(perf, "active_fraction");
    if (const auto *energy = metrics->find("energy_uj");
        energy && energy->isObject())
        res.totalEnergyUJ = num(energy, "total");
    if (const auto *thermal = doc->find("thermal");
        thermal && thermal->isObject())
        res.peakTempC = num(thermal, "peak_c");
    if (const auto *profile = doc->find("profile");
        profile && profile->isObject()) {
        if (const auto *phases = profile->find("phases");
            phases && phases->isObject()) {
            for (const auto &[name, v] : phases->members())
                if (v.isNumber())
                    res.phases.emplace_back(name, v.asDouble());
        }
    }
    if (const auto *run = doc->find("run"); run && run->isObject())
        if (const auto *d = run->find("stats_digest");
            d && d->isString())
            res.statsDigest = d->asString();
    res.ok = true;
    return res;
}

/**
 * Run all @p jobs through a stacknoc_serve campaign server: submit
 * every request up-front (the server parallelises across its worker
 * pool and serves repeats from its result cache), then harvest events.
 * @return false if the connection fails before every job completes.
 */
bool
runJobsViaServer(const SweepOptions &opt,
                 const std::vector<SweepJob> &jobs,
                 std::vector<SweepResult> &results)
{
    server::Connection conn;
    std::string err;
    if (!conn.connectWithRetry(opt.server, opt.connectRetries,
                               opt.connectBackoffMs, err)) {
        warn("sweep: %s", err.c_str());
        return false;
    }

    // accepted events arrive in submission order, which maps the
    // server-assigned job ids onto our indices.
    std::deque<std::size_t> awaitingAccept;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        results[i].job = jobs[i];
        const server::JobRequest req = toRequest(opt, jobs[i]);
        results[i].configDigest =
            server::hexKey(server::cacheKeyDigest(req));
        std::ostringstream os;
        telemetry::JsonWriter w(os);
        w.beginObject();
        w.kv("cmd", "run");
        server::writeJobRequestMembers(w, req);
        w.endObject();
        if (!conn.sendLine(os.str(), err)) {
            warn("sweep: %s", err.c_str());
            return false;
        }
        awaitingAccept.push_back(i);
    }

    std::map<std::uint64_t, std::size_t> byId;
    std::size_t outstanding = jobs.size();
    std::string line;
    while (outstanding > 0 && conn.readLine(line, err)) {
        std::string perr;
        const auto doc = telemetry::JsonValue::parse(line, &perr);
        if (!doc || !doc->isObject())
            continue;
        const auto *ev = doc->find("event");
        const std::string kind =
            ev && ev->isString() ? ev->asString() : "";
        std::uint64_t id = 0;
        if (const auto *m = doc->find("id"); m && m->isNumber())
            id = static_cast<std::uint64_t>(m->asDouble());

        if (kind == "accepted") {
            if (!awaitingAccept.empty()) {
                byId[id] = awaitingAccept.front();
                awaitingAccept.pop_front();
            }
            continue;
        }
        const auto owner = byId.find(id);
        if (owner == byId.end())
            continue;
        SweepResult &res = results[owner->second];
        if (kind == "error") {
            const auto *reason = doc->find("reason");
            warn("sweep: server error on %s: %s",
                 res.job.scenario.c_str(),
                 reason && reason->isString()
                     ? reason->asString().c_str()
                     : "?");
            res.exitCode = 1;
            --outstanding;
            continue;
        }
        if (kind != "result")
            continue;
        const auto *data = doc->find("data");
        if (data && data->isObject()) {
            const auto num = [&](const char *key) {
                const auto *v = data->find(key);
                return v && v->isNumber() ? v->asDouble() : 0.0;
            };
            res.meanIpc = num("mean_ipc");
            res.instrThroughput = num("instruction_throughput");
            res.avgNetLatency = num("avg_network_latency");
            res.p95NetLatency = num("p95_network_latency");
            res.wallSeconds = num("wall_seconds");
            res.ticksPerSec = num("ticks_per_sec");
            res.activeFraction = num("active_fraction");
            res.totalEnergyUJ = num("total_energy_uj");
            if (const auto *d = data->find("stats_digest");
                d && d->isString())
                res.statsDigest = d->asString();
            res.ok = true;
        } else {
            res.exitCode = 1;
        }
        --outstanding;
    }
    if (outstanding > 0) {
        warn("sweep: server connection lost with %zu job(s) pending%s%s",
             outstanding, err.empty() ? "" : ": ", err.c_str());
        return false;
    }
    return true;
}

/**
 * Load ok:true grid records from a previous artifact, keyed by
 * config_digest, so --resume can skip and re-emit them verbatim.
 */
std::map<std::string, std::string>
loadResume(const std::string &path)
{
    std::map<std::string, std::string> records;
    std::ifstream in(path);
    if (!in)
        return records;
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    const auto doc = telemetry::JsonValue::parse(buf.str(), &err);
    if (!doc || !doc->isObject()) {
        warn("sweep: cannot resume from '%s': %s", path.c_str(),
             err.empty() ? "not a JSON object" : err.c_str());
        return records;
    }
    const auto *runs = doc->find("runs");
    if (!runs || !runs->isArray())
        return records;
    for (const telemetry::JsonValue &r : runs->elements()) {
        if (!r.isObject())
            continue;
        const auto *ok = r.find("ok");
        const auto *digest = r.find("config_digest");
        if (ok && ok->type() == telemetry::JsonValue::Type::Bool &&
            ok->asBool() && digest && digest->isString())
            records[digest->asString()] =
                server::jsonValueToString(r);
    }
    return records;
}

void
writeRun(telemetry::JsonWriter &w, const SweepResult &r)
{
    w.beginObject();
    w.kv("scenario", r.job.scenario);
    w.kv("regions", r.job.regions);
    w.kv("mix", r.job.mix);
    w.kv("seed", static_cast<std::uint64_t>(r.job.seed));
    w.kv("threads", r.job.threads);
    w.kv("ok", r.ok);
    w.kv("exit_code", r.exitCode);
    w.kv("config_digest", r.configDigest);
    w.kv("stats_digest", r.statsDigest);
    w.kv("mean_ipc", r.meanIpc);
    w.kv("instruction_throughput", r.instrThroughput);
    w.kv("avg_network_latency", r.avgNetLatency);
    w.kv("p95_network_latency", r.p95NetLatency);
    w.kv("wall_seconds", r.wallSeconds);
    w.kv("ticks_per_sec", r.ticksPerSec);
    w.kv("active_fraction", r.activeFraction);
    w.kv("total_energy_uj", r.totalEnergyUJ);
    w.kv("peak_temp_c", r.peakTempC);
    w.key("profile_phases");
    if (r.phases.empty()) {
        w.null();
    } else {
        w.beginObject();
        for (const auto &[name, seconds] : r.phases)
            w.kv(name, seconds);
        w.endObject();
    }
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    SweepOptions opt;

    auto need = [&](int i) {
        if (i + 1 >= argc)
            usage();
        return std::string(argv[i + 1]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--schemes") {
            opt.schemes = splitList(need(i), ','); ++i;
        } else if (arg == "--regions") {
            opt.regions.clear();
            for (const auto &r : splitList(need(i), ','))
                opt.regions.push_back(std::stoi(r));
            ++i;
        } else if (arg == "--mixes") {
            opt.mixes = splitList(need(i), ':'); ++i;
        } else if (arg == "--seeds") {
            opt.seeds = std::atoi(need(i).c_str());
            fatal_if(opt.seeds < 1, "--seeds must be >= 1");
            ++i;
        } else if (arg == "--cycles") {
            opt.cycles = std::strtoull(need(i).c_str(), nullptr, 10); ++i;
        } else if (arg == "--warmup") {
            opt.warmup = std::strtoull(need(i).c_str(), nullptr, 10); ++i;
        } else if (arg == "--jobs") {
            opt.jobs = std::atoi(need(i).c_str()); ++i;
        } else if (arg == "--threads") {
            opt.threads = std::atoi(need(i).c_str());
            fatal_if(opt.threads < 1, "--threads must be >= 1");
            ++i;
        } else if (arg == "--runner") {
            opt.runner = need(i); ++i;
        } else if (arg == "--out") {
            opt.out = need(i); ++i;
        } else if (arg == "--speedup-scenario") {
            opt.speedupScenario = need(i); ++i;
        } else if (arg == "--speedup-threads") {
            opt.speedupThreads = std::atoi(need(i).c_str());
            fatal_if(opt.speedupThreads < 2,
                     "--speedup-threads must be >= 2");
            ++i;
        } else if (arg == "--no-speedup") {
            opt.speedup = false;
        } else if (arg == "--no-profile") {
            opt.profile = false;
        } else if (arg == "--no-thermal") {
            opt.thermal = false;
        } else if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--server") {
            opt.server = need(i); ++i;
        } else if (arg == "--connect-retries") {
            opt.connectRetries = std::atoi(need(i).c_str()); ++i;
        } else if (arg == "--connect-backoff-ms") {
            opt.connectBackoffMs = std::atoi(need(i).c_str()); ++i;
        } else {
            cli::reportUnknownOption("stacknoc_sweep", arg,
                                     kKnownOptions);
            usage();
        }
    }

    if (opt.runner.empty()) {
        // Default: the stacknoc_run built next to this binary.
        opt.runner = (std::filesystem::path(argv[0]).parent_path() /
                      "stacknoc_run")
                         .string();
    }
    fatal_if(opt.server.empty() &&
                 !std::filesystem::exists(opt.runner),
             "runner '%s' not found (use --runner)", opt.runner.c_str());
    if (opt.jobs <= 0) {
        opt.jobs = static_cast<int>(std::thread::hardware_concurrency());
        if (opt.jobs <= 0)
            opt.jobs = 4;
    }

    // Build the job list: the full grid, then the speedup pair.
    std::vector<SweepJob> jobs;
    for (const auto &scheme : opt.schemes)
        for (const int regions : opt.regions)
            for (const auto &mix : opt.mixes)
                for (int s = 1; s <= opt.seeds; ++s) {
                    SweepJob j;
                    j.scenario = scheme;
                    j.regions = regions;
                    j.mix = mix;
                    j.seed = static_cast<std::uint64_t>(s);
                    j.threads = opt.threads;
                    j.tag = "grid";
                    jobs.push_back(j);
                }
    if (opt.speedup) {
        for (const int t : {1, opt.speedupThreads}) {
            SweepJob j;
            j.scenario = opt.speedupScenario;
            j.regions = opt.regions.front();
            j.mix = opt.mixes.front();
            j.seed = 1;
            j.threads = t;
            j.tag = "speedup";
            jobs.push_back(j);
        }
    }

    // --resume: skip grid points an earlier (interrupted) campaign
    // already completed; their records are re-emitted verbatim.
    std::vector<std::string> resumedRecords;
    if (opt.resume) {
        const auto prior = loadResume(opt.out);
        if (!prior.empty()) {
            std::vector<SweepJob> pending;
            for (const auto &j : jobs) {
                if (j.tag == "grid") {
                    const std::string digest = server::hexKey(
                        server::cacheKeyDigest(toRequest(opt, j)));
                    if (const auto it = prior.find(digest);
                        it != prior.end()) {
                        resumedRecords.push_back(it->second);
                        continue;
                    }
                }
                pending.push_back(j);
            }
            std::fprintf(stderr,
                         "sweep: resume skips %zu completed grid "
                         "point(s) from %s\n",
                         resumedRecords.size(), opt.out.c_str());
            jobs = std::move(pending);
        }
    }

    std::vector<SweepResult> results(jobs.size());
    if (!opt.server.empty()) {
        std::fprintf(stderr, "sweep: %zu job(s) via server %s\n",
                     jobs.size(), opt.server.c_str());
        if (!runJobsViaServer(opt, jobs, results))
            return 1;
        for (std::size_t i = 0; i < results.size(); ++i)
            std::fprintf(stderr, "  [%zu/%zu] %s r%d %s seed=%llu "
                         "t%d %s\n",
                         i + 1, results.size(),
                         jobs[i].scenario.c_str(), jobs[i].regions,
                         jobs[i].mix.c_str(),
                         static_cast<unsigned long long>(jobs[i].seed),
                         jobs[i].threads,
                         results[i].ok ? "ok" : "FAILED");
    } else {
        std::fprintf(stderr,
                     "sweep: %zu job(s) across %d process(es)\n",
                     jobs.size(), opt.jobs);
        std::mutex m;
        std::size_t next = 0;
        auto worker = [&] {
            for (;;) {
                std::size_t idx;
                {
                    std::lock_guard<std::mutex> lk(m);
                    if (next >= jobs.size())
                        return;
                    idx = next++;
                }
                results[idx] =
                    runJob(opt, jobs[idx], static_cast<int>(idx));
                std::lock_guard<std::mutex> lk(m);
                std::fprintf(stderr, "  [%zu/%zu] %s r%d %s seed=%llu "
                             "t%d %s\n",
                             idx + 1, jobs.size(),
                             jobs[idx].scenario.c_str(),
                             jobs[idx].regions,
                             jobs[idx].mix.c_str(),
                             static_cast<unsigned long long>(
                                 jobs[idx].seed),
                             jobs[idx].threads,
                             results[idx].ok ? "ok" : "FAILED");
            }
        };
        std::vector<std::thread> pool;
        for (int t = 0; t < opt.jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    int failed = 0;
    int firstExit = 0;
    for (const auto &r : results) {
        if (r.ok)
            continue;
        ++failed;
        if (firstExit == 0)
            firstExit = r.exitCode > 0 ? r.exitCode : 1;
    }

    // Merge into the benchmark artifact.
    std::ofstream out(opt.out);
    fatal_if(!out, "cannot open '%s'", opt.out.c_str());
    telemetry::JsonWriter w(out);
    w.beginObject();
    w.kv("bench", "throughput");
    w.kv("tool", "stacknoc_sweep");
    // Version 5: run records gain exit_code, config_digest (the
    // campaign-server cache key, also the --resume identity) and
    // stats_digest. Version 4 added active_fraction; version 3 added
    // total_energy_uj and peak_temp_c; version 2 added profile_phases.
    // Readers should ignore unknown fields but may key behavior off
    // this stamp; older readers keep working, the new fields only add.
    w.kv("schema_version", 5);
    w.key("grid");
    w.beginObject();
    w.kv("cycles", static_cast<std::uint64_t>(opt.cycles));
    w.kv("warmup", static_cast<std::uint64_t>(opt.warmup));
    w.kv("seeds", opt.seeds);
    w.kv("threads", opt.threads);
    // Interprets the speedup number: a 4-thread engine on a 1-core host
    // cannot beat sequential no matter how good the sharding is.
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    w.kv("hardware_threads", hw);
    if (opt.speedup && hw < opt.speedupThreads) {
        w.kv("limitation",
             detail::format(
                 "recorded on a %d-hardware-thread host: the %d-thread "
                 "speedup measurement is oversubscribed and expected "
                 "to be <= 1x; re-record on a multi-core host for a "
                 "meaningful parallel-engine number",
                 hw, opt.speedupThreads));
    }
    w.endObject();
    w.key("runs");
    w.beginArray();
    for (const auto &rec : resumedRecords) {
        std::string err;
        if (const auto v = telemetry::JsonValue::parse(rec, &err))
            server::writeJsonValue(w, *v);
    }
    for (const auto &r : results)
        if (r.job.tag == "grid")
            writeRun(w, r);
    w.endArray();

    w.key("speedup");
    const SweepResult *base = nullptr, *par = nullptr;
    for (const auto &r : results) {
        if (r.job.tag != "speedup")
            continue;
        (r.job.threads == 1 ? base : par) = &r;
    }
    if (base && par && base->ok && par->ok) {
        w.beginObject();
        w.kv("scenario", base->job.scenario);
        w.kv("mix", base->job.mix);
        w.kv("cycles", static_cast<std::uint64_t>(opt.cycles));
        w.kv("base_threads", 1);
        w.kv("base_ticks_per_sec", base->ticksPerSec);
        w.kv("par_threads", par->job.threads);
        w.kv("par_ticks_per_sec", par->ticksPerSec);
        const double speedup = base->ticksPerSec > 0.0
                                   ? par->ticksPerSec / base->ticksPerSec
                                   : 0.0;
        w.kv("speedup", speedup);
        w.endObject();
        std::fprintf(stderr,
                     "sweep: speedup %dT vs 1T on %s = %.2fx "
                     "(%.0f vs %.0f ticks/s)\n",
                     par->job.threads, base->job.scenario.c_str(),
                     speedup, par->ticksPerSec, base->ticksPerSec);
    } else {
        w.null();
    }
    w.endObject();
    out << "\n";

    std::printf("sweep: %zu job(s) (%zu resumed), %d failed, "
                "artifact %s\n",
                results.size() + resumedRecords.size(),
                resumedRecords.size(), failed, opt.out.c_str());
    // A failed campaign exits with the first child's specific code so
    // callers can tell a simulation abort from a bad checkpoint (2),
    // a missing binary (127) or a crash (128+signal).
    return failed == 0 ? 0 : firstExit;
}
