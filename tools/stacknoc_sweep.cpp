/**
 * @file
 * stacknoc_sweep — campaign runner for throughput baselines.
 *
 * Fans a scenario grid (scheme x regions x app mix x seed) across
 * parallel stacknoc_run child processes, harvests each child's JSON
 * stats, and writes one merged benchmark artifact (fig6-style IPC and
 * latency per design point plus wall-clock sims/sec). It also measures
 * the sharded engine's speedup on one fig6 scenario (1 thread vs
 * --speedup-threads) and records it alongside the grid, seeding the
 * perf trajectory tracked in BENCH_throughput.json.
 *
 *   stacknoc_sweep --out BENCH_throughput.json
 *   stacknoc_sweep --schemes MRAM-4TSB,MRAM-4TSB-WB --seeds 3 --jobs 8
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/cli.hh"
#include "common/logging.hh"
#include "telemetry/json.hh"

using namespace stacknoc;

namespace {

struct SweepJob
{
    std::string scenario;
    int regions = 4;
    std::string mix;       //!< comma list passed to --apps
    std::uint64_t seed = 1;
    int threads = 1;
    std::string tag;       //!< "grid" or "speedup"
};

struct SweepResult
{
    SweepJob job;
    bool ok = false;
    double meanIpc = 0.0;
    double instrThroughput = 0.0;
    double avgNetLatency = 0.0;
    double p95NetLatency = 0.0;
    double wallSeconds = 0.0;
    double ticksPerSec = 0.0;
    double activeFraction = 0.0; //!< child's perf.active_fraction
    double totalEnergyUJ = 0.0; //!< child's metrics.energy_uj.total
    double peakTempC = 0.0;     //!< child's thermal.peak_c (0 if off)
    /** Engine-phase wall-time breakdown (child's profile.phases). */
    std::vector<std::pair<std::string, double>> phases;
};

struct SweepOptions
{
    std::vector<std::string> schemes{"MRAM-64TSB", "MRAM-4TSB",
                                     "MRAM-4TSB-WB"};
    std::vector<int> regions{4};
    std::vector<std::string> mixes{"tpcc", "tpcc,lbm,mcf,libquantum"};
    int seeds = 1;
    Cycle cycles = 20000;
    Cycle warmup = 3000;
    int jobs = 0; //!< 0 = hardware concurrency
    int threads = 1;
    std::string runner;
    std::string out = "BENCH_throughput.json";
    std::string speedupScenario = "MRAM-4TSB-WB";
    int speedupThreads = 4;
    bool speedup = true;
    bool profile = true;
    bool thermal = true;
};

std::vector<std::string>
splitList(const std::string &list, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    for (std::string item; std::getline(ss, item, sep);)
        if (!item.empty())
            out.push_back(item);
    return out;
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr, R"(usage: stacknoc_sweep [options]
  --schemes A,B,..   scenario names (default MRAM-64TSB,MRAM-4TSB,MRAM-4TSB-WB)
  --regions N,..     region counts (default 4)
  --mixes M1:M2:..   app mixes, ':'-separated, each a comma list
                     (default tpcc:tpcc,lbm,mcf,libquantum)
  --seeds N          seeds 1..N per design point (default 1)
  --cycles N         measured cycles per run (default 20000)
  --warmup N         warm-up cycles per run (default 3000)
  --jobs N           parallel child processes (default: hw threads)
  --threads N        engine threads inside each child (default 1)
  --runner PATH      stacknoc_run binary (default: next to this binary)
  --out FILE         merged artifact (default BENCH_throughput.json)
  --speedup-scenario NAME  fig6 scenario for the 1-vs-N thread speedup
                     measurement (default MRAM-4TSB-WB)
  --speedup-threads N  parallel-engine thread count to measure (default 4)
  --no-speedup       skip the speedup measurement
  --no-profile       don't fold the engine-phase profile into run records
  --no-thermal       don't run children with --thermal (run records then
                     carry zero total_energy_uj / peak_temp_c)
)");
    std::exit(2);
}

const std::vector<std::string> kKnownOptions = {
    "--schemes", "--regions", "--mixes", "--seeds", "--cycles",
    "--warmup", "--jobs", "--threads", "--runner", "--out",
    "--speedup-scenario", "--speedup-threads", "--no-speedup",
    "--no-profile", "--no-thermal",
};

/** Run one child, parse its --json-stats output. */
SweepResult
runJob(const SweepOptions &opt, const SweepJob &job, int idx)
{
    SweepResult res;
    res.job = job;

    const std::string json_path =
        (std::filesystem::temp_directory_path() /
         detail::format("stacknoc_sweep_%d_%d.json",
                        static_cast<int>(::getpid()), idx))
            .string();

    std::string cmd = opt.runner;
    cmd += " --scenario " + job.scenario;
    cmd += detail::format(" --regions %d", job.regions);
    cmd += " --apps " + job.mix;
    cmd += detail::format(" --seed %llu",
                          static_cast<unsigned long long>(job.seed));
    cmd += detail::format(" --cycles %llu",
                          static_cast<unsigned long long>(opt.cycles));
    cmd += detail::format(" --warmup %llu",
                          static_cast<unsigned long long>(opt.warmup));
    cmd += detail::format(" --threads %d", job.threads);
    if (opt.profile)
        cmd += " --profile";
    if (opt.thermal)
        cmd += " --thermal"; // implies --power
    cmd += " --json-stats " + json_path;
    cmd += " > /dev/null 2>&1";

    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
        warn("sweep: child failed (rc=%d): %s", rc, cmd.c_str());
        return res;
    }

    std::ifstream in(json_path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::filesystem::remove(json_path);

    std::string err;
    const auto doc = telemetry::JsonValue::parse(buf.str(), &err);
    if (!doc) {
        warn("sweep: bad child json (%s): %s", err.c_str(), cmd.c_str());
        return res;
    }

    const auto *metrics = doc->find("metrics");
    const auto *perf = doc->find("perf");
    if (!metrics || !perf) {
        warn("sweep: child json missing metrics/perf: %s", cmd.c_str());
        return res;
    }
    auto num = [](const telemetry::JsonValue *obj, const char *key) {
        const auto *v = obj->find(key);
        return v && v->isNumber() ? v->asDouble() : 0.0;
    };
    res.meanIpc = num(metrics, "mean_ipc");
    res.instrThroughput = num(metrics, "instruction_throughput");
    res.avgNetLatency = num(metrics, "avg_network_latency");
    res.p95NetLatency = num(metrics, "p95_network_latency");
    res.wallSeconds = num(perf, "wall_seconds");
    res.ticksPerSec = num(perf, "ticks_per_sec");
    res.activeFraction = num(perf, "active_fraction");
    if (const auto *energy = metrics->find("energy_uj");
        energy && energy->isObject())
        res.totalEnergyUJ = num(energy, "total");
    if (const auto *thermal = doc->find("thermal");
        thermal && thermal->isObject())
        res.peakTempC = num(thermal, "peak_c");
    if (const auto *profile = doc->find("profile");
        profile && profile->isObject()) {
        if (const auto *phases = profile->find("phases");
            phases && phases->isObject()) {
            for (const auto &[name, v] : phases->members())
                if (v.isNumber())
                    res.phases.emplace_back(name, v.asDouble());
        }
    }
    res.ok = true;
    return res;
}

void
writeRun(telemetry::JsonWriter &w, const SweepResult &r)
{
    w.beginObject();
    w.kv("scenario", r.job.scenario);
    w.kv("regions", r.job.regions);
    w.kv("mix", r.job.mix);
    w.kv("seed", static_cast<std::uint64_t>(r.job.seed));
    w.kv("threads", r.job.threads);
    w.kv("ok", r.ok);
    w.kv("mean_ipc", r.meanIpc);
    w.kv("instruction_throughput", r.instrThroughput);
    w.kv("avg_network_latency", r.avgNetLatency);
    w.kv("p95_network_latency", r.p95NetLatency);
    w.kv("wall_seconds", r.wallSeconds);
    w.kv("ticks_per_sec", r.ticksPerSec);
    w.kv("active_fraction", r.activeFraction);
    w.kv("total_energy_uj", r.totalEnergyUJ);
    w.kv("peak_temp_c", r.peakTempC);
    w.key("profile_phases");
    if (r.phases.empty()) {
        w.null();
    } else {
        w.beginObject();
        for (const auto &[name, seconds] : r.phases)
            w.kv(name, seconds);
        w.endObject();
    }
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    SweepOptions opt;

    auto need = [&](int i) {
        if (i + 1 >= argc)
            usage();
        return std::string(argv[i + 1]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--schemes") {
            opt.schemes = splitList(need(i), ','); ++i;
        } else if (arg == "--regions") {
            opt.regions.clear();
            for (const auto &r : splitList(need(i), ','))
                opt.regions.push_back(std::stoi(r));
            ++i;
        } else if (arg == "--mixes") {
            opt.mixes = splitList(need(i), ':'); ++i;
        } else if (arg == "--seeds") {
            opt.seeds = std::atoi(need(i).c_str());
            fatal_if(opt.seeds < 1, "--seeds must be >= 1");
            ++i;
        } else if (arg == "--cycles") {
            opt.cycles = std::strtoull(need(i).c_str(), nullptr, 10); ++i;
        } else if (arg == "--warmup") {
            opt.warmup = std::strtoull(need(i).c_str(), nullptr, 10); ++i;
        } else if (arg == "--jobs") {
            opt.jobs = std::atoi(need(i).c_str()); ++i;
        } else if (arg == "--threads") {
            opt.threads = std::atoi(need(i).c_str());
            fatal_if(opt.threads < 1, "--threads must be >= 1");
            ++i;
        } else if (arg == "--runner") {
            opt.runner = need(i); ++i;
        } else if (arg == "--out") {
            opt.out = need(i); ++i;
        } else if (arg == "--speedup-scenario") {
            opt.speedupScenario = need(i); ++i;
        } else if (arg == "--speedup-threads") {
            opt.speedupThreads = std::atoi(need(i).c_str());
            fatal_if(opt.speedupThreads < 2,
                     "--speedup-threads must be >= 2");
            ++i;
        } else if (arg == "--no-speedup") {
            opt.speedup = false;
        } else if (arg == "--no-profile") {
            opt.profile = false;
        } else if (arg == "--no-thermal") {
            opt.thermal = false;
        } else {
            cli::reportUnknownOption("stacknoc_sweep", arg,
                                     kKnownOptions);
            usage();
        }
    }

    if (opt.runner.empty()) {
        // Default: the stacknoc_run built next to this binary.
        opt.runner = (std::filesystem::path(argv[0]).parent_path() /
                      "stacknoc_run")
                         .string();
    }
    fatal_if(!std::filesystem::exists(opt.runner),
             "runner '%s' not found (use --runner)", opt.runner.c_str());
    if (opt.jobs <= 0) {
        opt.jobs = static_cast<int>(std::thread::hardware_concurrency());
        if (opt.jobs <= 0)
            opt.jobs = 4;
    }

    // Build the job list: the full grid, then the speedup pair.
    std::vector<SweepJob> jobs;
    for (const auto &scheme : opt.schemes)
        for (const int regions : opt.regions)
            for (const auto &mix : opt.mixes)
                for (int s = 1; s <= opt.seeds; ++s) {
                    SweepJob j;
                    j.scenario = scheme;
                    j.regions = regions;
                    j.mix = mix;
                    j.seed = static_cast<std::uint64_t>(s);
                    j.threads = opt.threads;
                    j.tag = "grid";
                    jobs.push_back(j);
                }
    if (opt.speedup) {
        for (const int t : {1, opt.speedupThreads}) {
            SweepJob j;
            j.scenario = opt.speedupScenario;
            j.regions = opt.regions.front();
            j.mix = opt.mixes.front();
            j.seed = 1;
            j.threads = t;
            j.tag = "speedup";
            jobs.push_back(j);
        }
    }

    std::fprintf(stderr, "sweep: %zu job(s) across %d process(es)\n",
                 jobs.size(), opt.jobs);

    std::vector<SweepResult> results(jobs.size());
    std::mutex m;
    std::size_t next = 0;
    auto worker = [&] {
        for (;;) {
            std::size_t idx;
            {
                std::lock_guard<std::mutex> lk(m);
                if (next >= jobs.size())
                    return;
                idx = next++;
            }
            results[idx] =
                runJob(opt, jobs[idx], static_cast<int>(idx));
            std::lock_guard<std::mutex> lk(m);
            std::fprintf(stderr, "  [%zu/%zu] %s r%d %s seed=%llu "
                         "t%d %s\n",
                         idx + 1, jobs.size(),
                         jobs[idx].scenario.c_str(), jobs[idx].regions,
                         jobs[idx].mix.c_str(),
                         static_cast<unsigned long long>(jobs[idx].seed),
                         jobs[idx].threads,
                         results[idx].ok ? "ok" : "FAILED");
        }
    };
    std::vector<std::thread> pool;
    for (int t = 0; t < opt.jobs; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    int failed = 0;
    for (const auto &r : results)
        failed += r.ok ? 0 : 1;

    // Merge into the benchmark artifact.
    std::ofstream out(opt.out);
    fatal_if(!out, "cannot open '%s'", opt.out.c_str());
    telemetry::JsonWriter w(out);
    w.beginObject();
    w.kv("bench", "throughput");
    w.kv("tool", "stacknoc_sweep");
    // Version 4: run records gain active_fraction (idle-elision
    // occupancy from the child's perf section). Version 3 added
    // total_energy_uj and peak_temp_c; version 2 added profile_phases.
    // Readers should ignore unknown fields but may key behavior off
    // this stamp; older readers keep working, the new fields only add.
    w.kv("schema_version", 4);
    w.key("grid");
    w.beginObject();
    w.kv("cycles", static_cast<std::uint64_t>(opt.cycles));
    w.kv("warmup", static_cast<std::uint64_t>(opt.warmup));
    w.kv("seeds", opt.seeds);
    w.kv("threads", opt.threads);
    // Interprets the speedup number: a 4-thread engine on a 1-core host
    // cannot beat sequential no matter how good the sharding is.
    w.kv("hardware_threads",
         static_cast<int>(std::thread::hardware_concurrency()));
    w.endObject();
    w.key("runs");
    w.beginArray();
    for (const auto &r : results)
        if (r.job.tag == "grid")
            writeRun(w, r);
    w.endArray();

    w.key("speedup");
    const SweepResult *base = nullptr, *par = nullptr;
    for (const auto &r : results) {
        if (r.job.tag != "speedup")
            continue;
        (r.job.threads == 1 ? base : par) = &r;
    }
    if (base && par && base->ok && par->ok) {
        w.beginObject();
        w.kv("scenario", base->job.scenario);
        w.kv("mix", base->job.mix);
        w.kv("cycles", static_cast<std::uint64_t>(opt.cycles));
        w.kv("base_threads", 1);
        w.kv("base_ticks_per_sec", base->ticksPerSec);
        w.kv("par_threads", par->job.threads);
        w.kv("par_ticks_per_sec", par->ticksPerSec);
        const double speedup = base->ticksPerSec > 0.0
                                   ? par->ticksPerSec / base->ticksPerSec
                                   : 0.0;
        w.kv("speedup", speedup);
        w.endObject();
        std::fprintf(stderr,
                     "sweep: speedup %dT vs 1T on %s = %.2fx "
                     "(%.0f vs %.0f ticks/s)\n",
                     par->job.threads, base->job.scenario.c_str(),
                     speedup, par->ticksPerSec, base->ticksPerSec);
    } else {
        w.null();
    }
    w.endObject();
    out << "\n";

    std::printf("sweep: %zu job(s), %d failed, artifact %s\n",
                results.size(), failed, opt.out.c_str());
    return failed == 0 ? 0 : 1;
}
