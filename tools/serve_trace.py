#!/usr/bin/env python3
"""Convert a stacknoc_serve --log-json event log into a Chrome trace.

    serve_trace.py ev.ndjson > trace.json      # load in ui.perfetto.dev

Follows the repo's chrome-trace pid conventions (src/telemetry/
chrome_trace.cc): pid 1 is simulated time, pid 2 is engine wall time;
this exporter adds pid 3, "campaign fleet", on the event log's
monotonic wall timeline (`mono_us` maps directly to trace microseconds).

Rows (tids) under pid 3:
    tid 0            the server: queue-wait slices, one per job
    tid 100 + N      worker N: one slice per job, with nested phase
                     slices (restore / warm / measure / publish)
                     reconstructed from the reported durations

Instant events mark failures, cache-served jobs, worker deaths/spawns,
checkpoint evictions and log rotation.
"""

import json
import sys

FLEET_PID = 3
SERVER_TID = 0
WORKER_TID_BASE = 100


def meta(name, value, tid=None):
    e = {"ph": "M", "pid": FLEET_PID, "name": name,
         "args": {"name": value}}
    if tid is not None:
        e["tid"] = tid
    return e


def slice_x(name, ts, dur, tid, args=None):
    e = {"ph": "X", "pid": FLEET_PID, "tid": tid, "name": name,
         "ts": ts, "dur": max(dur, 1), "cat": "fleet"}
    if args:
        e["args"] = args
    return e


def instant(name, ts, tid, args=None):
    e = {"ph": "i", "pid": FLEET_PID, "tid": tid, "name": name,
         "ts": ts, "s": "t", "cat": "fleet"}
    if args:
        e["args"] = args
    return e


def main():
    if len(sys.argv) != 2 or sys.argv[1] in ("-h", "--help"):
        print(__doc__, file=sys.stderr)
        return 2

    events = []
    schema_warned = False
    try:
        log = open(sys.argv[1], encoding="utf-8")
    except OSError as e:
        print(f"serve_trace: {e}", file=sys.stderr)
        return 2
    with log:
        for lineno, line in enumerate(log, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except ValueError as e:
                print(f"serve_trace: line {lineno}: {e}",
                      file=sys.stderr)
                continue
            if ev.get("v") != 1 and not schema_warned:
                print(f"serve_trace: line {lineno}: schema v"
                      f"{ev.get('v')} (this tool reads v1); "
                      "proceeding anyway", file=sys.stderr)
                schema_warned = True
            events.append(ev)

    out = [meta("process_name", "campaign fleet"),
           meta("thread_name", "server", SERVER_TID)]
    workers_seen = set()
    submitted = {}   # id -> job_submitted event
    dispatched = {}  # id -> job_dispatched event

    def worker_tid(n):
        tid = WORKER_TID_BASE + n
        if n not in workers_seen:
            workers_seen.add(n)
            out.append(meta("thread_name", f"worker {n}", tid))
        return tid

    for ev in events:
        kind = ev.get("event")
        ts = ev.get("mono_us", 0)
        jid = ev.get("id")

        if kind == "job_submitted":
            submitted[jid] = ev
        elif kind == "job_dispatched":
            dispatched[jid] = ev
            sub = submitted.get(jid)
            if sub is not None:
                out.append(slice_x(f"queue job {jid}",
                                   sub["mono_us"],
                                   ts - sub["mono_us"], SERVER_TID,
                                   {"key": ev.get("key")}))
        elif kind == "job_completed":
            disp = dispatched.pop(jid, None)
            tid = worker_tid(disp["worker"]) if disp else SERVER_TID
            start = disp["mono_us"] if disp else ts
            args = {k: ev[k] for k in
                    ("key", "warm", "stats_digest", "cycle",
                     "queue_wait_us") if k in ev}
            out.append(slice_x(f"job {jid}", start, ts - start, tid,
                               args))
            # Nested phase slices, stacked in execution order from
            # dispatch; durations are worker-reported.
            phase_ts = start
            for phase in ("restore", "warm", "measure", "publish"):
                dur = ev.get(f"{phase}_us", 0)
                if dur > 0:
                    out.append(slice_x(phase, phase_ts, dur, tid))
                    phase_ts += dur
        elif kind == "job_failed":
            disp = dispatched.pop(jid, None)
            tid = worker_tid(disp["worker"]) if disp \
                else (worker_tid(ev["worker"]) if "worker" in ev
                      else SERVER_TID)
            if disp is not None:
                out.append(slice_x(f"job {jid} (failed)",
                                   disp["mono_us"],
                                   ts - disp["mono_us"], tid))
            out.append(instant(f"job {jid} failed", ts, tid,
                               {"reason": ev.get("reason")}))
        elif kind == "job_served_cached":
            out.append(instant(f"job {jid} cache hit", ts, SERVER_TID,
                               {"key": ev.get("key")}))
        elif kind == "worker_spawned":
            out.append(instant("worker spawned", ts,
                               worker_tid(ev["worker"]),
                               {"pid": ev.get("pid")}))
        elif kind == "worker_died":
            out.append(instant("worker died", ts,
                               worker_tid(ev["worker"]),
                               {"pid": ev.get("pid"),
                                "job": ev.get("job")}))
        elif kind == "ckpt_evicted":
            out.append(instant("ckpt evicted", ts, SERVER_TID,
                               {"file": ev.get("file"),
                                "bytes": ev.get("bytes")}))
        elif kind in ("server_start", "server_stop", "log_rotated"):
            out.append(instant(kind, ts, SERVER_TID))

    json.dump({"traceEvents": out}, sys.stdout)
    print(f"serve_trace: {len(events)} log events -> {len(out)} trace "
          f"events", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
