/**
 * @file
 * stacknoc_run — command-line driver for the simulator.
 *
 * Runs any design point against any workload without writing C++:
 *
 *   stacknoc_run --scenario MRAM-4TSB-WB --app tpcc --cycles 50000
 *   stacknoc_run --scenario MRAM-4TSB-WB --regions 8 --placement stagger
 *   stacknoc_run --scenario BUFF-20 --apps tpcc,lbm,mcf,libquantum
 *   stacknoc_run --scenario MRAM-4TSB-WB --delay-mode hold --stats
 *
 * --apps takes a comma list replicated round-robin across the 64 cores.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "fault/fault_spec.hh"
#include "snapshot/checkpoint.hh"
#include "snapshot/state_io.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/trace.hh"
#include "system/cmp_system.hh"
#include "system/stats_export.hh"
#include "workload/app_profiles.hh"

using namespace stacknoc;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr, R"(usage: stacknoc_run [options]
  --scenario NAME   SRAM-64TSB | MRAM-64TSB | MRAM-4TSB | MRAM-4TSB-SS |
                    MRAM-4TSB-RCA | MRAM-4TSB-WB | BUFF-20 | +1VC |
                    MRAM-RP | MRAM-4TSB-WB+RP      (default MRAM-4TSB-WB)
  --app NAME        one Table 3 application for all cores (default tpcc)
  --apps A,B,...    comma list, replicated round-robin across cores
  --cycles N        measured cycles (default 20000)
  --warmup N        warm-up cycles (default 3000)
  --seed N          experiment seed (default 1)
  --mesh WxH        mesh size (default 8x8)
  --regions N       cache regions: 4, 8 or 16
  --placement P     corner | stagger
  --hops H          parent distance (1..3)
  --delay-mode M    priority | hold
  --real-tags       use real L2 tag arrays instead of annotations
  --stats           dump every statistics group after the run
  --json-stats FILE write run metrics + all stats groups as JSON
  --trace FILE      stream packet-lifecycle events to a CSV file
  --trace-sample N  trace packets whose id is divisible by N (default 1)
  --interval N      snapshot all stats groups every N cycles
  --profile         cycle-accounting profile: engine-phase/shard/kind
                    wall-time breakdown on stdout and in --json-stats
  --chrome-trace FILE  write packet lifecycles + engine-phase spans as
                    trace-event JSON (ui.perfetto.dev); implies --profile
  --heatmap PREFIX  write per-interval spatial grids (flits, occupancy,
                    TSB depth, parent holds) to PREFIX.<metric>.json
  --heatmap-period N  heatmap sampling period in cycles (default 1024)
  --power           streaming energy telemetry: per-interval per-cell
                    power grids + "power" JSON section (reconciles with
                    the end-of-run energy); with --heatmap PREFIX also
                    writes PREFIX.power.json
  --thermal         RC thermal grid over the stack fed by the power
                    frames (implies --power): "thermal" JSON section,
                    hot-bank ranking; with --heatmap PREFIX also writes
                    PREFIX.temperature.json
  --thermal-period N  power/thermal sampling period in cycles
                    (default 1024)
  --progress        live cycle/rate/IPC/ETA line on stderr
  --validate        run the runtime invariant checkers (abort on failure)
  --validate-period N  checker sweep period in cycles (default 1)
  --threads N       execution-engine threads (default 1; results are
                    bit-identical for any N, see docs/ENGINE.md)
  --no-elide        tick every component every cycle instead of skipping
                    quiescent ones (results are bit-identical either
                    way; escape hatch / perf baseline)
  --fault-spec SPEC fault-injection campaign, e.g.
                    stt_write_ber=1e-3,tsb_flit_ber=1e-6 (implies the
                    watchdog; see docs/RESILIENCE.md for the grammar)
  --watchdog N      deadlock watchdog: fail fast when no packet ejects
                    for N cycles with traffic in flight (0 disables)
  --timeout-sec S   wall-clock guard: stop the run after S seconds,
                    flush partial stats, exit 124
  --save-checkpoint FILE  serialise the full warm state to FILE right
                    after the warm-up boundary, then run as usual
  --restore FILE    skip warm-up: restore the warm state from FILE and
                    run the measured cycles (stats are bit-identical to
                    the uninterrupted run at any --threads/--no-elide;
                    a corrupt or incompatible FILE exits 2 with a
                    one-line reason; incompatible with --validate)
  --digest          print "stats_digest 0x..." after the run (FNV-1a
                    over every stats group; bit-identity comparator)
  --list-apps       print the Table 3 application names and exit

All observability flags are strict observers: simulation results are
bit-identical with any combination on or off, at any --threads.
)");
    std::exit(2);
}

const std::vector<std::string> kKnownOptions = {
    "--scenario", "--app", "--apps", "--cycles", "--warmup", "--seed",
    "--mesh", "--regions", "--placement", "--hops", "--delay-mode",
    "--real-tags", "--stats", "--json-stats", "--trace", "--trace-sample",
    "--interval", "--profile", "--chrome-trace", "--heatmap",
    "--heatmap-period", "--power", "--thermal", "--thermal-period",
    "--progress", "--validate", "--validate-period",
    "--threads", "--no-elide", "--fault-spec", "--watchdog",
    "--timeout-sec", "--save-checkpoint", "--restore", "--digest",
    "--list-apps",
};

system::Scenario
scenarioByName(const std::string &name)
{
    system::Scenario s;
    fatal_if(!system::scenarios::byName(name, s),
             "unknown scenario '%s' (known: %s)", name.c_str(),
             system::scenarios::knownNames());
    return s;
}

std::vector<std::string>
splitApps(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string item =
            list.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    system::SystemConfig cfg;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    Cycle cycles = 20000;
    Cycle warmup = 3000;
    bool dump_stats = false;
    std::string json_path;
    std::string trace_path;
    std::string chrome_path;
    std::string heatmap_prefix;
    Cycle heatmap_period = 1024;
    std::uint64_t trace_sample = 1;
    std::vector<std::string> app_list{"tpcc"};
    long long watchdog_opt = -1; // -1 unset, 0 off, >0 stallCycles
    double timeout_sec = 0.0;
    std::string save_ckpt_path;
    std::string restore_path;
    bool print_digest = false;

    auto need = [&](int i) {
        if (i + 1 >= argc)
            usage();
        return std::string(argv[i + 1]);
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scenario") {
            cfg.scenario = scenarioByName(need(i)); ++i;
        } else if (arg == "--app") {
            app_list = {need(i)}; ++i;
        } else if (arg == "--apps") {
            app_list = splitApps(need(i)); ++i;
        } else if (arg == "--cycles") {
            cycles = std::strtoull(need(i).c_str(), nullptr, 10); ++i;
        } else if (arg == "--warmup") {
            warmup = std::strtoull(need(i).c_str(), nullptr, 10); ++i;
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(need(i).c_str(), nullptr, 10); ++i;
        } else if (arg == "--mesh") {
            int w = 0, h = 0;
            fatal_if(std::sscanf(need(i).c_str(), "%dx%d", &w, &h) != 2,
                     "--mesh expects WxH");
            cfg.meshWidth = w;
            cfg.meshHeight = h;
            ++i;
        } else if (arg == "--regions") {
            cfg.scenario.tsbRegions =
                static_cast<int>(std::strtol(need(i).c_str(), nullptr,
                                             10));
            ++i;
        } else if (arg == "--placement") {
            const std::string p = need(i);
            fatal_if(p != "corner" && p != "stagger",
                     "--placement: corner|stagger");
            cfg.scenario.placement = p == "corner"
                                         ? sttnoc::TsbPlacement::Corner
                                         : sttnoc::TsbPlacement::Stagger;
            ++i;
        } else if (arg == "--hops") {
            cfg.scenario.parentHops =
                static_cast<int>(std::strtol(need(i).c_str(), nullptr,
                                             10));
            ++i;
        } else if (arg == "--delay-mode") {
            const std::string m = need(i);
            fatal_if(m != "priority" && m != "hold",
                     "--delay-mode: priority|hold");
            cfg.scenario.delayMode = m == "priority"
                                         ? sttnoc::DelayMode::Priority
                                         : sttnoc::DelayMode::Hold;
            ++i;
        } else if (arg == "--real-tags") {
            cfg.realTags = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--json-stats") {
            json_path = need(i); ++i;
        } else if (arg == "--trace") {
            trace_path = need(i); ++i;
        } else if (arg == "--trace-sample") {
            trace_sample = std::strtoull(need(i).c_str(), nullptr, 10);
            fatal_if(trace_sample == 0, "--trace-sample must be >= 1");
            ++i;
        } else if (arg == "--interval") {
            cfg.intervalPeriod =
                std::strtoull(need(i).c_str(), nullptr, 10);
            ++i;
        } else if (arg == "--profile") {
            cfg.profile = true;
        } else if (arg == "--chrome-trace") {
            chrome_path = need(i); ++i;
            cfg.profile = true;
            // Retain phase spans for the trace's engine tracks.
            cfg.profileSpanCapacity = std::size_t{1} << 20;
        } else if (arg == "--heatmap") {
            heatmap_prefix = need(i); ++i;
        } else if (arg == "--heatmap-period") {
            heatmap_period = std::strtoull(need(i).c_str(), nullptr, 10);
            fatal_if(heatmap_period == 0,
                     "--heatmap-period must be >= 1");
            ++i;
        } else if (arg == "--power") {
            cfg.power = true;
        } else if (arg == "--thermal") {
            cfg.thermal = true;
            cfg.power = true;
        } else if (arg == "--thermal-period") {
            cfg.powerPeriod =
                std::strtoull(need(i).c_str(), nullptr, 10);
            fatal_if(cfg.powerPeriod == 0,
                     "--thermal-period must be >= 1");
            ++i;
        } else if (arg == "--progress") {
            cfg.progress = true;
        } else if (arg == "--validate") {
            cfg.validate = true;
        } else if (arg == "--validate-period") {
            cfg.validation.period =
                std::strtoull(need(i).c_str(), nullptr, 10);
            fatal_if(cfg.validation.period == 0,
                     "--validate-period must be >= 1");
            cfg.validate = true;
            ++i;
        } else if (arg == "--threads") {
            cfg.threads =
                static_cast<int>(std::strtol(need(i).c_str(), nullptr,
                                             10));
            fatal_if(cfg.threads < 1, "--threads must be >= 1");
            ++i;
        } else if (arg == "--no-elide") {
            cfg.elide = false;
        } else if (arg == "--fault-spec") {
            std::string err;
            if (!fault::parseFaultSpec(need(i), cfg.faults, err)) {
                std::fprintf(stderr, "stacknoc_run: bad --fault-spec: "
                                     "%s\n%s",
                             err.c_str(), fault::faultSpecGrammar());
                return 2;
            }
            cfg.faultsEnabled = true;
            ++i;
        } else if (arg == "--watchdog") {
            watchdog_opt = std::strtoll(need(i).c_str(), nullptr, 10);
            fatal_if(watchdog_opt < 0, "--watchdog must be >= 0");
            ++i;
        } else if (arg == "--timeout-sec") {
            timeout_sec = std::strtod(need(i).c_str(), nullptr);
            fatal_if(timeout_sec <= 0.0, "--timeout-sec must be > 0");
            ++i;
        } else if (arg == "--save-checkpoint") {
            save_ckpt_path = need(i); ++i;
        } else if (arg == "--restore") {
            restore_path = need(i); ++i;
        } else if (arg == "--digest") {
            print_digest = true;
        } else if (arg == "--list-apps") {
            for (const auto &a : workload::appTable())
                std::printf("%-16s %s\n", a.name.c_str(),
                            workload::suiteName(a.suite));
            return 0;
        } else {
            cli::reportUnknownOption("stacknoc_run", arg, kKnownOptions);
            usage();
        }
    }

    // Expand the app list round-robin over all cores.
    const int cores = cfg.meshWidth * cfg.meshHeight;
    if (app_list.size() == 1) {
        cfg.apps = app_list;
    } else {
        cfg.apps.clear();
        for (int c = 0; c < cores; ++c)
            cfg.apps.push_back(
                app_list[static_cast<std::size_t>(c) % app_list.size()]);
    }

    if (!heatmap_prefix.empty())
        cfg.heatmapPeriod = heatmap_period;
    if (cfg.progress)
        cfg.progressTotalCycles = warmup + cycles;

    // An all-zero spec injects nothing; drop the injector entirely so
    // the artifacts are bit-identical to a run without --fault-spec.
    if (cfg.faultsEnabled && !cfg.faults.any())
        cfg.faultsEnabled = false;

    // A fault campaign always runs under the liveness guard unless the
    // user explicitly disabled it with --watchdog 0.
    cfg.watchdogEnabled = watchdog_opt > 0 ||
                          (watchdog_opt == -1 && cfg.faultsEnabled);
    if (watchdog_opt > 0)
        cfg.watchdog.stallCycles = static_cast<Cycle>(watchdog_opt);

    // Checkpoints exclude the validation hub's census state, so neither
    // end of the snapshot path may run with the checkers on.
    if (cfg.validate &&
        (!restore_path.empty() || !save_ckpt_path.empty())) {
        std::fprintf(stderr,
                     "stacknoc_run: --validate is incompatible with "
                     "--restore/--save-checkpoint (checker state is not "
                     "checkpointed)\n");
        return 2;
    }
    if (!restore_path.empty() && !save_ckpt_path.empty()) {
        std::fprintf(stderr,
                     "stacknoc_run: --restore and --save-checkpoint are "
                     "mutually exclusive (checkpoints are taken at the "
                     "warm-up boundary, which a restored run skips)\n");
        return 2;
    }

    std::unique_ptr<telemetry::CsvTraceSink> trace_sink;
    std::unique_ptr<telemetry::MemoryTraceSink> chrome_sink;
    std::unique_ptr<telemetry::TeeTraceSink> tee_sink;
    std::unique_ptr<telemetry::PacketTracer> tracer;
    if (!trace_path.empty() || !chrome_path.empty()) {
        telemetry::TraceSink *sink = nullptr;
        if (!trace_path.empty()) {
            trace_sink =
                std::make_unique<telemetry::CsvTraceSink>(trace_path);
            fatal_if(!trace_sink->ok(), "cannot open trace file '%s'",
                     trace_path.c_str());
            sink = trace_sink.get();
        }
        if (!chrome_path.empty()) {
            chrome_sink = std::make_unique<telemetry::MemoryTraceSink>();
            if (sink != nullptr) {
                tee_sink = std::make_unique<telemetry::TeeTraceSink>(
                    *trace_sink, *chrome_sink);
                sink = tee_sink.get();
            } else {
                sink = chrome_sink.get();
            }
        }
        tracer = std::make_unique<telemetry::PacketTracer>(4096,
                                                           trace_sample);
        tracer->setSink(sink);
        telemetry::setTracer(tracer.get());
    }

    system::CmpSystem sys(cfg);

    const std::uint64_t warm_digest =
        snapshot::warmConfigDigest(cfg, warmup);
    bool restored = false;
    Cycle restored_cycle = 0;
    if (!restore_path.empty()) {
        std::ifstream in(restore_path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr,
                         "stacknoc_run: cannot open checkpoint '%s'\n",
                         restore_path.c_str());
            return 2;
        }
        const std::string err = snapshot::restoreCheckpoint(
            sys, in, warm_digest, &restored_cycle);
        if (!err.empty()) {
            std::fprintf(stderr, "stacknoc_run: %s\n", err.c_str());
            return 2;
        }
        restored = true;
    }
    auto write_checkpoint = [&]() {
        if (save_ckpt_path.empty())
            return;
        std::ofstream out(save_ckpt_path, std::ios::binary);
        fatal_if(!out, "cannot open checkpoint file '%s'",
                 save_ckpt_path.c_str());
        snapshot::saveCheckpoint(sys, out, warm_digest);
        fatal_if(!out, "error writing checkpoint file '%s'",
                 save_ckpt_path.c_str());
    };

    bool timed_out = false;
    if (timeout_sec > 0.0) {
        // Chunked execution so the wall-clock guard can interrupt a run
        // between chunks (the engine itself has no preemption point).
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(timeout_sec));
        const Cycle chunk = 4096;
        auto run_chunked = [&](Cycle total) {
            Cycle left = total;
            while (left > 0 &&
                   std::chrono::steady_clock::now() < deadline) {
                const Cycle step = std::min<Cycle>(chunk, left);
                sys.run(step);
                left -= step;
            }
            return left;
        };
        Cycle left = 0;
        if (restored) {
            left = run_chunked(cycles);
        } else {
            sys.warmupBegin();
            left = run_chunked(warmup);
            if (left == 0) {
                sys.warmupEnd();
                write_checkpoint();
                left = run_chunked(cycles);
            }
        }
        timed_out = left > 0;
        if (timed_out) {
            std::fprintf(stderr,
                         "TIMEOUT: wall-clock budget of %.1f s exhausted "
                         "at cycle %llu (%llu cycle(s) short); flushing "
                         "partial stats\n",
                         timeout_sec,
                         static_cast<unsigned long long>(
                             sys.simulator().now()),
                         static_cast<unsigned long long>(left));
        }
    } else if (restored) {
        sys.run(cycles);
    } else {
        sys.warmupBegin();
        sys.run(warmup);
        sys.warmupEnd();
        write_checkpoint();
        sys.run(cycles);
    }

    if (auto *progress = sys.progress())
        progress->finish(sys.simulator().now());

    // Close the streaming power/thermal window so totals reconcile
    // with the end-of-run computeEnergy over exactly these cycles.
    sys.finalizeTelemetry();

    if (tracer) {
        tracer->flush();
        if (trace_sink)
            trace_sink->flush();
        telemetry::setTracer(nullptr);
    }

    const auto m = sys.metrics();

    std::printf("scenario=%s cores=%d cycles=%llu seed=%llu\n",
                cfg.scenario.name.c_str(), cores,
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(cfg.seed));
    if (restored)
        std::printf("restored_from_cycle=%llu\n",
                    static_cast<unsigned long long>(restored_cycle));
    std::printf("mean_ipc=%.4f min_ipc=%.4f instr_throughput=%.2f\n",
                m.meanIpc(), m.minIpc(), m.instructionThroughput());
    std::printf("net_latency=%.2f bank_queue_latency=%.2f "
                "uncore_latency=%.2f\n",
                m.avgNetworkLatency, m.avgBankQueueLatency,
                m.avgUncoreLatency);
    std::printf("energy_uj=%.3f (cache dyn %.3f, cache leak %.3f, "
                "net dyn %.3f, net leak %.3f)\n",
                m.energy.totalUJ(), m.energy.cacheDynamicUJ,
                m.energy.cacheLeakageUJ, m.energy.netDynamicUJ,
                m.energy.netLeakageUJ);
    if (const auto *thermal = sys.thermal()) {
        std::printf("thermal peak_c=%.2f ambient_c=%.2f hottest_bank=%d\n",
                    thermal->peakC(),
                    thermal->grid().params().ambientC,
                    thermal->hotBanks(1).empty()
                        ? -1
                        : static_cast<int>(
                              thermal->hotBanks(1).front().bank));
    }
    std::printf("engine=%s threads=%d elide=%d active_fraction=%.3f "
                "wall_s=%.3f ticks_per_sec=%.0f\n",
                sys.engineName(), sys.engineThreads(),
                sys.engineElides() ? 1 : 0, sys.engineActiveFraction(),
                sys.wallSeconds(), sys.ticksPerSecond());
    if (const auto *prof = sys.profiler())
        prof->writeTable(std::cout, sys.wallSeconds());
    const std::uint64_t stats_digest =
        print_digest ? snapshot::statsDigest(sys) : 0;
    if (print_digest)
        std::printf("stats_digest 0x%016llx\n",
                    static_cast<unsigned long long>(stats_digest));
    if (dump_stats)
        sys.dumpStats(std::cout);

    if (!chrome_path.empty()) {
        std::ofstream out(chrome_path);
        fatal_if(!out, "cannot open chrome trace file '%s'",
                 chrome_path.c_str());
        telemetry::writeChromeTrace(out, chrome_sink->records(),
                                    sys.profiler(), sys.power(),
                                    sys.thermal());
    }
    if (!heatmap_prefix.empty()) {
        fatal_if(!sys.heatmap()->writeFiles(heatmap_prefix),
                 "cannot write heatmap files '%s.*.json'",
                 heatmap_prefix.c_str());
        if (sys.power() != nullptr) {
            fatal_if(!sys.power()->writeFile(heatmap_prefix +
                                             ".power.json"),
                     "cannot write power grid file '%s.power.json'",
                     heatmap_prefix.c_str());
        }
        if (sys.thermal() != nullptr) {
            fatal_if(!sys.thermal()->writeFile(
                         heatmap_prefix + ".temperature.json",
                         sys.power()->period()),
                     "cannot write temperature grid file "
                     "'%s.temperature.json'",
                     heatmap_prefix.c_str());
        }
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        fatal_if(!out, "cannot open json file '%s'", json_path.c_str());
        system::RunInfo info;
        info.scenario = cfg.scenario.name;
        for (const auto &a : app_list) {
            if (!info.app.empty())
                info.app += ",";
            info.app += a;
        }
        info.seed = cfg.seed;
        info.warmupCycles = warmup;
        info.measuredCycles = cycles;
        info.timedOut = timed_out;
        info.restored = restored;
        info.restoredFromCycle = restored_cycle;
        info.hasStatsDigest = print_digest;
        info.statsDigest = stats_digest;
        system::writeJsonStats(out, sys, info);
    }
    return timed_out ? 124 : 0;
}
