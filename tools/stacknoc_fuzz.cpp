/**
 * @file
 * stacknoc_fuzz — randomized scenario fuzzing under the runtime
 * invariant checkers.
 *
 * Each run draws a random design point (regions, scheme, delay mode,
 * parent hops, technology, write buffer and depth, read priority, TSB
 * placement, admission caps, workload, duration, seed) from a master
 * seed, builds the system with every checker enabled, and simulates.
 * Any invariant violation fails the run; the fuzzer then bisects the
 * duration down to the shortest failing prefix and writes a replayable
 * key=value reproducer file.
 *
 *   stacknoc_fuzz                         # 50 runs from seed 1
 *   stacknoc_fuzz --runs 200 --seed 7
 *   stacknoc_fuzz --replay fuzz-fail-3.txt   # re-run a reproducer
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "noc/packet.hh"
#include "system/cmp_system.hh"

using namespace stacknoc;

namespace {

/** Engine threads for every fuzz run (--threads). */
int g_threads = 1;

/** Everything needed to rebuild one fuzz run exactly. */
struct FuzzCase
{
    int mesh = 4;
    int regions = 4;      //!< 0 = unrestricted vertical links
    std::string scheme = "ss"; //!< none | ss | rca | wb
    std::string delayMode = "priority"; //!< priority | hold
    int hops = 2;
    std::string tech = "sttram"; //!< sttram | sram
    std::string placement = "corner"; //!< corner | stagger
    bool writeBuffer = false;
    int writeBufferEntries = 20;
    bool readPriority = false;
    int requestCap = 8;
    int writeCap = 32;
    std::string apps = "tpcc";
    std::uint64_t seed = 1;
    Cycle warmup = 0;
    Cycle cycles = 4000;
};

FuzzCase
drawCase(std::mt19937_64 &rng)
{
    auto pick = [&](auto... vals) {
        using T = std::common_type_t<decltype(vals)...>;
        const T arr[] = {vals...};
        return arr[rng() % (sizeof...(vals))];
    };

    FuzzCase fc;
    fc.mesh = 4;
    fc.regions = pick(0, 4, 8, 16);
    fc.scheme = fc.regions == 0
                    ? "none"
                    : std::string(pick("none", "ss", "rca", "wb"));
    fc.delayMode = pick("priority", "hold");
    fc.hops = pick(1, 2, 3);
    fc.tech = pick("sttram", "sttram", "sram"); // bias toward STT-RAM
    fc.placement = pick("corner", "stagger");
    fc.writeBuffer = pick(0, 0, 1) != 0;
    fc.writeBufferEntries = pick(4, 20);
    fc.readPriority = pick(0, 0, 1) != 0;
    fc.requestCap = pick(4, 8);
    fc.writeCap = pick(16, 32);
    fc.apps = pick("tpcc", "sjbb", "lbm", "mcf", "libquantum",
                   "tpcc,lbm,mcf,libquantum", "sap,sjbb,tpcc,milc");
    fc.seed = rng();
    fc.warmup = pick(Cycle{0}, Cycle{500});
    fc.cycles = 2000 + rng() % 6000;
    return fc;
}

system::SystemConfig
toConfig(const FuzzCase &fc)
{
    system::SystemConfig cfg;
    cfg.meshWidth = fc.mesh;
    cfg.meshHeight = fc.mesh;

    system::Scenario sc;
    sc.name = "fuzz";
    sc.tech = fc.tech == "sram" ? mem::CacheTech::Sram
                                : mem::CacheTech::SttRam;
    sc.tsbRegions = fc.regions;
    sc.placement = fc.placement == "stagger"
                       ? sttnoc::TsbPlacement::Stagger
                       : sttnoc::TsbPlacement::Corner;
    if (fc.scheme == "none")
        sc.scheme.reset();
    else if (fc.scheme == "ss")
        sc.scheme = sttnoc::EstimatorKind::Simple;
    else if (fc.scheme == "rca")
        sc.scheme = sttnoc::EstimatorKind::Rca;
    else if (fc.scheme == "wb")
        sc.scheme = sttnoc::EstimatorKind::Window;
    else
        fatal("unknown scheme '%s'", fc.scheme.c_str());
    sc.parentHops = fc.hops;
    sc.delayMode = fc.delayMode == "hold" ? sttnoc::DelayMode::Hold
                                          : sttnoc::DelayMode::Priority;
    sc.writeBuffer = fc.writeBuffer;
    sc.writeBufferEntries = fc.writeBufferEntries;
    sc.readPriority = fc.readPriority;
    cfg.scenario = sc;

    cfg.bankRequestCap = fc.requestCap;
    cfg.bankWriteCap = fc.writeCap;
    cfg.seed = fc.seed;

    std::vector<std::string> apps;
    std::stringstream ss(fc.apps);
    for (std::string item; std::getline(ss, item, ',');)
        apps.push_back(item);
    if (apps.size() > 1) {
        cfg.apps.clear();
        const int cores = cfg.meshWidth * cfg.meshHeight;
        for (int c = 0; c < cores; ++c)
            cfg.apps.push_back(
                apps[static_cast<std::size_t>(c) % apps.size()]);
    } else {
        cfg.apps = apps;
    }

    cfg.validate = true;
    cfg.validation.failFast = false; // collect, then minimize
    cfg.threads = g_threads;
    return cfg;
}

/** @return violations seen when running @p fc for @p cycles cycles. */
std::size_t
runCase(const FuzzCase &fc, Cycle cycles)
{
    // Fresh id streams per run, so bisection replays the exact packets
    // of the original failure and consecutive runs can't overflow a
    // stream.
    noc::resetPacketIds();
    system::SystemConfig cfg = toConfig(fc);
    system::CmpSystem sys(cfg);
    if (fc.warmup > 0)
        sys.warmup(fc.warmup);
    sys.run(cycles);
    return sys.validation()->violations().size();
}

void
writeCase(const FuzzCase &fc, const std::string &path)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write reproducer '%s'", path.c_str());
    out << "mesh=" << fc.mesh << "\n"
        << "regions=" << fc.regions << "\n"
        << "scheme=" << fc.scheme << "\n"
        << "delay_mode=" << fc.delayMode << "\n"
        << "hops=" << fc.hops << "\n"
        << "tech=" << fc.tech << "\n"
        << "placement=" << fc.placement << "\n"
        << "write_buffer=" << (fc.writeBuffer ? 1 : 0) << "\n"
        << "write_buffer_entries=" << fc.writeBufferEntries << "\n"
        << "read_priority=" << (fc.readPriority ? 1 : 0) << "\n"
        << "request_cap=" << fc.requestCap << "\n"
        << "write_cap=" << fc.writeCap << "\n"
        << "apps=" << fc.apps << "\n"
        << "seed=" << fc.seed << "\n"
        << "warmup=" << fc.warmup << "\n"
        << "cycles=" << fc.cycles << "\n";
}

FuzzCase
readCase(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot read reproducer '%s'", path.c_str());
    FuzzCase fc;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t eq = line.find('=');
        fatal_if(eq == std::string::npos, "bad reproducer line '%s'",
                 line.c_str());
        const std::string key = line.substr(0, eq);
        const std::string val = line.substr(eq + 1);
        if (key == "mesh") fc.mesh = std::stoi(val);
        else if (key == "regions") fc.regions = std::stoi(val);
        else if (key == "scheme") fc.scheme = val;
        else if (key == "delay_mode") fc.delayMode = val;
        else if (key == "hops") fc.hops = std::stoi(val);
        else if (key == "tech") fc.tech = val;
        else if (key == "placement") fc.placement = val;
        else if (key == "write_buffer") fc.writeBuffer = val != "0";
        else if (key == "write_buffer_entries")
            fc.writeBufferEntries = std::stoi(val);
        else if (key == "read_priority") fc.readPriority = val != "0";
        else if (key == "request_cap") fc.requestCap = std::stoi(val);
        else if (key == "write_cap") fc.writeCap = std::stoi(val);
        else if (key == "apps") fc.apps = val;
        else if (key == "seed") fc.seed = std::stoull(val);
        else if (key == "warmup") fc.warmup = std::stoull(val);
        else if (key == "cycles") fc.cycles = std::stoull(val);
        else fatal("unknown reproducer key '%s'", key.c_str());
    }
    return fc;
}

std::string
describeCase(const FuzzCase &fc)
{
    return detail::format(
        "mesh=%dx%d regions=%d scheme=%s delay=%s hops=%d tech=%s "
        "place=%s buf=%d/%d rp=%d caps=%d/%d apps=%s seed=%llu "
        "warmup=%llu cycles=%llu",
        fc.mesh, fc.mesh, fc.regions, fc.scheme.c_str(),
        fc.delayMode.c_str(), fc.hops, fc.tech.c_str(),
        fc.placement.c_str(), fc.writeBuffer ? 1 : 0,
        fc.writeBufferEntries, fc.readPriority ? 1 : 0, fc.requestCap,
        fc.writeCap, fc.apps.c_str(),
        static_cast<unsigned long long>(fc.seed),
        static_cast<unsigned long long>(fc.warmup),
        static_cast<unsigned long long>(fc.cycles));
}

/**
 * Shrink a failing case to the shortest duration that still fails, by
 * bisecting on the cycle count (the checkers fire deterministically,
 * so a failure at N cycles implies the same violation at every
 * duration >= its detection cycle).
 */
FuzzCase
minimizeCase(FuzzCase fc)
{
    Cycle lo = 1;
    Cycle hi = fc.cycles;
    while (lo < hi) {
        const Cycle mid = lo + (hi - lo) / 2;
        std::fprintf(stderr, "  bisect: %llu cycles... ",
                     static_cast<unsigned long long>(mid));
        const std::size_t n = runCase(fc, mid);
        std::fprintf(stderr, "%zu violation(s)\n", n);
        if (n > 0)
            hi = mid;
        else
            lo = mid + 1;
    }
    fc.cycles = lo;
    return fc;
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr, R"(usage: stacknoc_fuzz [options]
  --runs N        randomized runs (default 50)
  --seed N        master seed (default 1)
  --out PREFIX    reproducer file prefix (default fuzz-fail)
  --replay FILE   re-run one reproducer with fail-fast diagnostics
  --threads N     execution-engine threads per run (default 1)
)");
    std::exit(2);
}

const std::vector<std::string> kKnownOptions = {
    "--runs", "--seed", "--out", "--replay", "--threads",
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    int runs = 50;
    std::uint64_t master_seed = 1;
    std::string out_prefix = "fuzz-fail";
    std::string replay_path;

    auto need = [&](int i) {
        if (i + 1 >= argc)
            usage();
        return std::string(argv[i + 1]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--runs") {
            runs = std::atoi(need(i).c_str()); ++i;
        } else if (arg == "--seed") {
            master_seed = std::strtoull(need(i).c_str(), nullptr, 10);
            ++i;
        } else if (arg == "--out") {
            out_prefix = need(i); ++i;
        } else if (arg == "--replay") {
            replay_path = need(i); ++i;
        } else if (arg == "--threads") {
            g_threads = std::atoi(need(i).c_str());
            fatal_if(g_threads < 1, "--threads must be >= 1");
            ++i;
        } else {
            cli::reportUnknownOption("stacknoc_fuzz", arg, kKnownOptions);
            usage();
        }
    }

    if (!replay_path.empty()) {
        const FuzzCase fc = readCase(replay_path);
        std::fprintf(stderr, "replaying: %s\n",
                     describeCase(fc).c_str());
        // Fail fast: the hub dumps cycle-stamped diagnostics and
        // aborts at the first violating sweep.
        noc::resetPacketIds();
        system::SystemConfig cfg = toConfig(fc);
        cfg.validation.failFast = true;
        system::CmpSystem sys(cfg);
        if (fc.warmup > 0)
            sys.warmup(fc.warmup);
        sys.run(fc.cycles);
        std::printf("replay clean: no violations in %llu cycles\n",
                    static_cast<unsigned long long>(fc.cycles));
        return 0;
    }

    std::mt19937_64 rng(master_seed);
    int failures = 0;
    for (int r = 0; r < runs; ++r) {
        const FuzzCase fc = drawCase(rng);
        std::fprintf(stderr, "[%3d/%d] %s\n", r + 1, runs,
                     describeCase(fc).c_str());
        const std::size_t n = runCase(fc, fc.cycles);
        if (n == 0)
            continue;
        ++failures;
        std::fprintf(stderr, "  FAILED: %zu violation(s); minimizing\n",
                     n);
        const FuzzCase min = minimizeCase(fc);
        const std::string path =
            detail::format("%s-%d.txt", out_prefix.c_str(), r);
        writeCase(min, path);
        std::fprintf(stderr,
                     "  reproducer written to %s (%llu cycles); replay "
                     "with --replay %s\n",
                     path.c_str(),
                     static_cast<unsigned long long>(min.cycles),
                     path.c_str());
    }

    std::printf("fuzz: %d/%d run(s) clean (master seed %llu)\n",
                runs - failures, runs,
                static_cast<unsigned long long>(master_seed));
    return failures == 0 ? 0 : 1;
}
