/**
 * @file
 * stacknoc_fuzz — randomized scenario fuzzing under the runtime
 * invariant checkers.
 *
 * Each run draws a random design point (regions, scheme, delay mode,
 * parent hops, technology, write buffer and depth, read priority, TSB
 * placement, admission caps, workload, duration, seed) from a master
 * seed, builds the system with every checker enabled, and simulates.
 * Any invariant violation fails the run; the fuzzer then bisects the
 * duration down to the shortest failing prefix and writes a replayable
 * key=value reproducer file.
 *
 *   stacknoc_fuzz                         # 50 runs from seed 1
 *   stacknoc_fuzz --runs 200 --seed 7
 *   stacknoc_fuzz --replay fuzz-fail-3.txt   # re-run a reproducer
 *   stacknoc_fuzz --faults --jobs 8       # fault campaign, 8 processes
 *
 * With --jobs N the case list is drawn up front (so it is identical
 * for any N) and dealt to N worker processes, each re-invoking this
 * binary on one case file; reproducer names are keyed by case index,
 * so the artifacts are deterministic too.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/cli.hh"
#include "common/logging.hh"
#include "fault/fault_spec.hh"
#include "noc/packet.hh"
#include "system/cmp_system.hh"

using namespace stacknoc;

namespace {

/** Engine threads for every fuzz run (--threads). */
int g_threads = 1;

/** Everything needed to rebuild one fuzz run exactly. */
struct FuzzCase
{
    int mesh = 4;
    int regions = 4;      //!< 0 = unrestricted vertical links
    std::string scheme = "ss"; //!< none | ss | rca | wb
    std::string delayMode = "priority"; //!< priority | hold
    int hops = 2;
    std::string tech = "sttram"; //!< sttram | sram
    std::string placement = "corner"; //!< corner | stagger
    bool writeBuffer = false;
    int writeBufferEntries = 20;
    bool readPriority = false;
    int requestCap = 8;
    int writeCap = 32;
    std::string apps = "tpcc";
    std::uint64_t seed = 1;
    Cycle warmup = 0;
    Cycle cycles = 4000;
    bool elide = true;     //!< idle-elision engine mode (--no-elide off)
    std::string faultSpec; //!< empty = no fault injection
};

/** Bounded fault campaign: write BER and link/TSB BER compositions
 *  high enough to exercise every recovery path in a ~4000-cycle run.
 *  Never router_stuck — a wedged router is a watchdog test, not a
 *  recovery one. */
std::string
drawFaultSpec(std::mt19937_64 &rng)
{
    static const char *const write_part[] = {
        "",
        "stt_write_ber=1e-3",
        "stt_write_ber=1e-2",
        "stt_write_ber=5e-2,stt_write_retries=2",
    };
    static const char *const link_part[] = {
        "",
        "link_flit_ber=2e-4",
        "tsb_flit_ber=2e-4",
        "link_flit_ber=5e-4,tsb_flit_ber=1e-4,flit_retries=2",
    };
    // Always two draws, so the master stream stays aligned whatever
    // the composition.
    const std::string w = write_part[rng() % 4];
    const std::string l = link_part[rng() % 4];
    std::string spec = w;
    if (!l.empty())
        spec += (spec.empty() ? "" : ",") + l;
    if (spec.empty())
        spec = "stt_write_ber=1e-3"; // a campaign always injects
    return spec;
}

FuzzCase
drawCase(std::mt19937_64 &rng, bool with_faults)
{
    auto pick = [&](auto... vals) {
        using T = std::common_type_t<decltype(vals)...>;
        const T arr[] = {vals...};
        return arr[rng() % (sizeof...(vals))];
    };

    FuzzCase fc;
    fc.mesh = 4;
    fc.regions = pick(0, 4, 8, 16);
    fc.scheme = fc.regions == 0
                    ? "none"
                    : std::string(pick("none", "ss", "rca", "wb"));
    fc.delayMode = pick("priority", "hold");
    fc.hops = pick(1, 2, 3);
    fc.tech = pick("sttram", "sttram", "sram"); // bias toward STT-RAM
    fc.placement = pick("corner", "stagger");
    fc.writeBuffer = pick(0, 0, 1) != 0;
    fc.writeBufferEntries = pick(4, 20);
    fc.readPriority = pick(0, 0, 1) != 0;
    fc.requestCap = pick(4, 8);
    fc.writeCap = pick(16, 32);
    fc.apps = pick("tpcc", "sjbb", "lbm", "mcf", "libquantum",
                   "tpcc,lbm,mcf,libquantum", "sap,sjbb,tpcc,milc");
    fc.seed = rng();
    fc.warmup = pick(Cycle{0}, Cycle{500});
    fc.cycles = 2000 + rng() % 6000;
    // Bias toward the elision engine (the shipping default) while still
    // fuzzing the full-walk path; the mode is pinned in reproducers.
    fc.elide = pick(1, 1, 1, 0) != 0;
    if (with_faults)
        fc.faultSpec = drawFaultSpec(rng);
    return fc;
}

system::SystemConfig
toConfig(const FuzzCase &fc)
{
    system::SystemConfig cfg;
    cfg.meshWidth = fc.mesh;
    cfg.meshHeight = fc.mesh;

    system::Scenario sc;
    sc.name = "fuzz";
    sc.tech = fc.tech == "sram" ? mem::CacheTech::Sram
                                : mem::CacheTech::SttRam;
    sc.tsbRegions = fc.regions;
    sc.placement = fc.placement == "stagger"
                       ? sttnoc::TsbPlacement::Stagger
                       : sttnoc::TsbPlacement::Corner;
    if (fc.scheme == "none")
        sc.scheme.reset();
    else if (fc.scheme == "ss")
        sc.scheme = sttnoc::EstimatorKind::Simple;
    else if (fc.scheme == "rca")
        sc.scheme = sttnoc::EstimatorKind::Rca;
    else if (fc.scheme == "wb")
        sc.scheme = sttnoc::EstimatorKind::Window;
    else
        fatal("unknown scheme '%s'", fc.scheme.c_str());
    sc.parentHops = fc.hops;
    sc.delayMode = fc.delayMode == "hold" ? sttnoc::DelayMode::Hold
                                          : sttnoc::DelayMode::Priority;
    sc.writeBuffer = fc.writeBuffer;
    sc.writeBufferEntries = fc.writeBufferEntries;
    sc.readPriority = fc.readPriority;
    cfg.scenario = sc;

    cfg.bankRequestCap = fc.requestCap;
    cfg.bankWriteCap = fc.writeCap;
    cfg.seed = fc.seed;

    std::vector<std::string> apps;
    std::stringstream ss(fc.apps);
    for (std::string item; std::getline(ss, item, ',');)
        apps.push_back(item);
    if (apps.size() > 1) {
        cfg.apps.clear();
        const int cores = cfg.meshWidth * cfg.meshHeight;
        for (int c = 0; c < cores; ++c)
            cfg.apps.push_back(
                apps[static_cast<std::size_t>(c) % apps.size()]);
    } else {
        cfg.apps = apps;
    }

    if (!fc.faultSpec.empty()) {
        std::string err;
        fatal_if(!fault::parseFaultSpec(fc.faultSpec, cfg.faults, err),
                 "bad fault_spec '%s': %s", fc.faultSpec.c_str(),
                 err.c_str());
        cfg.faultsEnabled = cfg.faults.any();
        // Recovery must never hang: any fuzz deadlock is a finding.
        cfg.watchdogEnabled = cfg.faultsEnabled;
    }

    cfg.validate = true;
    cfg.validation.failFast = false; // collect, then minimize
    cfg.threads = g_threads;
    cfg.elide = fc.elide;
    return cfg;
}

/** @return violations seen when running @p fc for @p cycles cycles. */
std::size_t
runCase(const FuzzCase &fc, Cycle cycles)
{
    // Fresh id streams per run, so bisection replays the exact packets
    // of the original failure and consecutive runs can't overflow a
    // stream.
    noc::resetPacketIds();
    system::SystemConfig cfg = toConfig(fc);
    system::CmpSystem sys(cfg);
    if (fc.warmup > 0)
        sys.warmup(fc.warmup);
    sys.run(cycles);
    return sys.validation()->violations().size();
}

void
writeCase(const FuzzCase &fc, const std::string &path)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write reproducer '%s'", path.c_str());
    out << "mesh=" << fc.mesh << "\n"
        << "regions=" << fc.regions << "\n"
        << "scheme=" << fc.scheme << "\n"
        << "delay_mode=" << fc.delayMode << "\n"
        << "hops=" << fc.hops << "\n"
        << "tech=" << fc.tech << "\n"
        << "placement=" << fc.placement << "\n"
        << "write_buffer=" << (fc.writeBuffer ? 1 : 0) << "\n"
        << "write_buffer_entries=" << fc.writeBufferEntries << "\n"
        << "read_priority=" << (fc.readPriority ? 1 : 0) << "\n"
        << "request_cap=" << fc.requestCap << "\n"
        << "write_cap=" << fc.writeCap << "\n"
        << "apps=" << fc.apps << "\n"
        << "seed=" << fc.seed << "\n"
        << "warmup=" << fc.warmup << "\n"
        << "cycles=" << fc.cycles << "\n"
        << "elide=" << (fc.elide ? 1 : 0) << "\n";
    if (!fc.faultSpec.empty())
        out << "fault_spec=" << fc.faultSpec << "\n";
}

FuzzCase
readCase(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot read reproducer '%s'", path.c_str());
    FuzzCase fc;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t eq = line.find('=');
        fatal_if(eq == std::string::npos, "bad reproducer line '%s'",
                 line.c_str());
        const std::string key = line.substr(0, eq);
        const std::string val = line.substr(eq + 1);
        if (key == "mesh") fc.mesh = std::stoi(val);
        else if (key == "regions") fc.regions = std::stoi(val);
        else if (key == "scheme") fc.scheme = val;
        else if (key == "delay_mode") fc.delayMode = val;
        else if (key == "hops") fc.hops = std::stoi(val);
        else if (key == "tech") fc.tech = val;
        else if (key == "placement") fc.placement = val;
        else if (key == "write_buffer") fc.writeBuffer = val != "0";
        else if (key == "write_buffer_entries")
            fc.writeBufferEntries = std::stoi(val);
        else if (key == "read_priority") fc.readPriority = val != "0";
        else if (key == "request_cap") fc.requestCap = std::stoi(val);
        else if (key == "write_cap") fc.writeCap = std::stoi(val);
        else if (key == "apps") fc.apps = val;
        else if (key == "seed") fc.seed = std::stoull(val);
        else if (key == "warmup") fc.warmup = std::stoull(val);
        else if (key == "cycles") fc.cycles = std::stoull(val);
        else if (key == "elide") fc.elide = val != "0";
        else if (key == "fault_spec") fc.faultSpec = val;
        else fatal("unknown reproducer key '%s'", key.c_str());
    }
    return fc;
}

std::string
describeCase(const FuzzCase &fc)
{
    std::string desc = detail::format(
        "mesh=%dx%d regions=%d scheme=%s delay=%s hops=%d tech=%s "
        "place=%s buf=%d/%d rp=%d caps=%d/%d apps=%s seed=%llu "
        "warmup=%llu cycles=%llu elide=%d",
        fc.mesh, fc.mesh, fc.regions, fc.scheme.c_str(),
        fc.delayMode.c_str(), fc.hops, fc.tech.c_str(),
        fc.placement.c_str(), fc.writeBuffer ? 1 : 0,
        fc.writeBufferEntries, fc.readPriority ? 1 : 0, fc.requestCap,
        fc.writeCap, fc.apps.c_str(),
        static_cast<unsigned long long>(fc.seed),
        static_cast<unsigned long long>(fc.warmup),
        static_cast<unsigned long long>(fc.cycles), fc.elide ? 1 : 0);
    if (!fc.faultSpec.empty())
        desc += " faults=" + fc.faultSpec;
    return desc;
}

/**
 * Shrink a failing case to the shortest duration that still fails, by
 * bisecting on the cycle count (the checkers fire deterministically,
 * so a failure at N cycles implies the same violation at every
 * duration >= its detection cycle).
 */
FuzzCase
minimizeCase(FuzzCase fc)
{
    Cycle lo = 1;
    Cycle hi = fc.cycles;
    while (lo < hi) {
        const Cycle mid = lo + (hi - lo) / 2;
        std::fprintf(stderr, "  bisect: %llu cycles... ",
                     static_cast<unsigned long long>(mid));
        const std::size_t n = runCase(fc, mid);
        std::fprintf(stderr, "%zu violation(s)\n", n);
        if (n > 0)
            hi = mid;
        else
            lo = mid + 1;
    }
    fc.cycles = lo;
    return fc;
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr, R"(usage: stacknoc_fuzz [options]
  --runs N        randomized runs (default 50)
  --seed N        master seed (default 1)
  --out PREFIX    reproducer file prefix (default fuzz-fail)
  --replay FILE   re-run one reproducer with fail-fast diagnostics
  --threads N     execution-engine threads per run (default 1)
  --jobs N        worker processes (default 1; 0 = hardware threads);
                  the case list and reproducer names are identical
                  for any N
  --faults        fault-campaign mode: every case also draws a bounded
                  --fault-spec (see docs/RESILIENCE.md)

Each case randomly draws the engine's idle-elision mode (biased toward
on, the shipping default); the drawn mode is pinned in reproducers via
the elide= key so replays execute the exact engine path.
)");
    std::exit(2);
}

const std::vector<std::string> kKnownOptions = {
    "--runs", "--seed", "--out", "--replay", "--threads", "--jobs",
    "--faults", "--one", "--repro",
};

/**
 * Run one case in this process: simulate, and on violations minimize
 * and write a reproducer to @p repro_path. @return violation count of
 * the full-length run.
 */
std::size_t
fuzzOne(const FuzzCase &fc, const std::string &repro_path)
{
    const std::size_t n = runCase(fc, fc.cycles);
    if (n == 0)
        return 0;
    std::fprintf(stderr, "  FAILED: %zu violation(s); minimizing\n", n);
    const FuzzCase min = minimizeCase(fc);
    writeCase(min, repro_path);
    std::fprintf(stderr,
                 "  reproducer written to %s (%llu cycles); replay "
                 "with --replay %s\n",
                 repro_path.c_str(),
                 static_cast<unsigned long long>(min.cycles),
                 repro_path.c_str());
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    int runs = 50;
    std::uint64_t master_seed = 1;
    std::string out_prefix = "fuzz-fail";
    std::string replay_path;
    int jobs = 1;
    bool with_faults = false;
    std::string one_path;     //!< internal: child worker case file
    std::string repro_prefix; //!< internal: child reproducer prefix

    auto need = [&](int i) {
        if (i + 1 >= argc)
            usage();
        return std::string(argv[i + 1]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--runs") {
            runs = std::atoi(need(i).c_str()); ++i;
        } else if (arg == "--seed") {
            master_seed = std::strtoull(need(i).c_str(), nullptr, 10);
            ++i;
        } else if (arg == "--out") {
            out_prefix = need(i); ++i;
        } else if (arg == "--replay") {
            replay_path = need(i); ++i;
        } else if (arg == "--threads") {
            g_threads = std::atoi(need(i).c_str());
            fatal_if(g_threads < 1, "--threads must be >= 1");
            ++i;
        } else if (arg == "--jobs") {
            jobs = std::atoi(need(i).c_str());
            fatal_if(jobs < 0, "--jobs must be >= 0");
            ++i;
        } else if (arg == "--faults") {
            with_faults = true;
        } else if (arg == "--one") {
            one_path = need(i); ++i;
        } else if (arg == "--repro") {
            repro_prefix = need(i); ++i;
        } else {
            cli::reportUnknownOption("stacknoc_fuzz", arg, kKnownOptions);
            usage();
        }
    }

    // Internal worker mode (spawned by --jobs): run one case file,
    // minimize on failure, exit 1 so the parent can count it.
    if (!one_path.empty()) {
        const FuzzCase fc = readCase(one_path);
        std::fprintf(stderr, "[worker] %s\n", describeCase(fc).c_str());
        const std::string repro = (repro_prefix.empty()
                                       ? one_path + ".repro"
                                       : repro_prefix) + ".txt";
        return fuzzOne(fc, repro) == 0 ? 0 : 1;
    }

    if (!replay_path.empty()) {
        const FuzzCase fc = readCase(replay_path);
        std::fprintf(stderr, "replaying: %s\n",
                     describeCase(fc).c_str());
        // Fail fast: the hub dumps cycle-stamped diagnostics and
        // aborts at the first violating sweep.
        noc::resetPacketIds();
        system::SystemConfig cfg = toConfig(fc);
        cfg.validation.failFast = true;
        system::CmpSystem sys(cfg);
        if (fc.warmup > 0)
            sys.warmup(fc.warmup);
        sys.run(fc.cycles);
        std::printf("replay clean: no violations in %llu cycles\n",
                    static_cast<unsigned long long>(fc.cycles));
        return 0;
    }

    // The whole case list is drawn up front from the master seed, so
    // it is identical whatever --jobs is; reproducer names are keyed
    // by case index for the same reason.
    std::mt19937_64 rng(master_seed);
    std::vector<FuzzCase> cases;
    cases.reserve(static_cast<std::size_t>(runs));
    for (int r = 0; r < runs; ++r)
        cases.push_back(drawCase(rng, with_faults));

    int failures = 0;
    if (jobs == 1) {
        // Historical in-process path (also the debuggable one).
        for (int r = 0; r < runs; ++r) {
            const FuzzCase &fc = cases[static_cast<std::size_t>(r)];
            std::fprintf(stderr, "[%3d/%d] %s\n", r + 1, runs,
                         describeCase(fc).c_str());
            if (fuzzOne(fc, detail::format("%s-%d.txt",
                                           out_prefix.c_str(), r)) > 0)
                ++failures;
        }
    } else {
        if (jobs <= 0) {
            jobs = static_cast<int>(std::thread::hardware_concurrency());
            if (jobs <= 0)
                jobs = 4;
        }
        std::fprintf(stderr, "fuzz: %d case(s) across %d process(es)\n",
                     runs, jobs);

        const auto tmp = std::filesystem::temp_directory_path();
        std::vector<std::string> case_paths(cases.size());
        for (std::size_t r = 0; r < cases.size(); ++r) {
            case_paths[r] =
                (tmp / detail::format("stacknoc_fuzz_%d_%zu.txt",
                                      static_cast<int>(::getpid()), r))
                    .string();
            writeCase(cases[r], case_paths[r]);
        }

        const std::string self = argv[0];
        std::vector<int> rcs(cases.size(), 0);
        std::mutex m;
        std::size_t next = 0;
        auto worker = [&] {
            for (;;) {
                std::size_t idx;
                {
                    std::lock_guard<std::mutex> lk(m);
                    if (next >= cases.size())
                        return;
                    idx = next++;
                }
                std::string cmd = self + " --one " + case_paths[idx] +
                    detail::format(" --repro %s-%zu --threads %d",
                                   out_prefix.c_str(), idx, g_threads) +
                    " > /dev/null 2>&1";
                rcs[idx] = std::system(cmd.c_str());
                std::lock_guard<std::mutex> lk(m);
                std::fprintf(
                    stderr, "  [%zu/%zu] %s %s\n", idx + 1, cases.size(),
                    describeCase(cases[idx]).c_str(),
                    rcs[idx] == 0
                        ? "ok"
                        : detail::format("FAILED (reproducer %s-%zu.txt)",
                                         out_prefix.c_str(), idx)
                              .c_str());
            }
        };
        std::vector<std::thread> pool;
        for (int t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();

        for (std::size_t r = 0; r < cases.size(); ++r) {
            if (rcs[r] != 0)
                ++failures;
            std::filesystem::remove(case_paths[r]);
        }
    }

    std::printf("fuzz: %d/%d run(s) clean (master seed %llu)\n",
                runs - failures, runs,
                static_cast<unsigned long long>(master_seed));
    return failures == 0 ? 0 : 1;
}
