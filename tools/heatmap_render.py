#!/usr/bin/env python3
"""Render a stacknoc heatmap JSON file as ASCII grids.

    heatmap_render.py run.flits.json                 # all frames, both layers
    heatmap_render.py run.tsb.json --layer 1         # cache layer only
    heatmap_render.py run.holds.json --frame -1      # last frame
    heatmap_render.py run.flits.json --sum           # totals across frames
    heatmap_render.py run.power.json --frame -1      # watts per cell
    heatmap_render.py run.temperature.json --frame -1  # Celsius

Cells are shaded with a 10-step ramp scaled to the maximum value of
the selected data, with the raw row maxima printed alongside, so
congested rows and the TSB columns stand out in a terminal.

Float-valued grids (metrics "power" and "temperature") print row
maxima in compact scientific-ish form; temperature grids additionally
anchor the ramp at the grid minimum rather than zero, since every cell
sits near ambient and a zero-anchored ramp would render the whole
stack as uniform saturation.
"""

import argparse
import json
import sys

RAMP = " .:-=+*#%@"

# Metrics whose cells are doubles, not event counts.
FLOAT_METRICS = ("power", "temperature")

# Metrics whose interesting range starts at the grid minimum.
BASELINE_METRICS = ("temperature",)


def shade(value, floor, peak):
    span = peak - floor
    if span <= 0:
        return RAMP[0]
    idx = int((value - floor) / span * (len(RAMP) - 1) + 0.5)
    return RAMP[max(0, min(idx, len(RAMP) - 1))]


def fmt(value):
    return f"{value:.4g}" if isinstance(value, float) else str(value)


def render_grid(grid, width, height, out, baseline=False):
    peak = max(grid) if grid else 0
    floor = min(grid) if (grid and baseline) else 0
    for y in range(height):
        row = grid[y * width:(y + 1) * width]
        cells = " ".join(shade(v, floor, peak) for v in row)
        out.write(f"    {cells}   | max {fmt(max(row))}\n")


def main():
    ap = argparse.ArgumentParser(
        description="Render stacknoc heatmap JSON as ASCII.")
    ap.add_argument("file", help="PREFIX.<metric>.json from --heatmap")
    ap.add_argument("--layer", type=int, default=None,
                    help="render only this layer (default: all)")
    ap.add_argument("--frame", type=int, default=None,
                    help="render only this frame index (negative OK)")
    ap.add_argument("--sum", action="store_true",
                    help="sum all frames into one grid per layer")
    args = ap.parse_args()

    try:
        with open(args.file) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"heatmap_render: {args.file}: {e}")

    width, height = doc["width"], doc["height"]
    layers = doc["layers"]
    frames = doc["frames"]
    if not frames:
        sys.exit("heatmap_render: no frames recorded")

    layer_names = {0: "core layer", 1: "cache layer"}
    wanted_layers = ([args.layer] if args.layer is not None
                     else list(range(layers)))
    for layer in wanted_layers:
        if not 0 <= layer < layers:
            sys.exit(f"heatmap_render: layer {layer} out of range")

    if args.sum:
        summed = [
            [sum(vals) for vals in zip(*(f["grids"][la] for f in frames))]
            for la in range(layers)
        ]
        if doc["metric"] in BASELINE_METRICS:
            # A sum of temperatures is meaningless; average instead.
            summed = [[v / len(frames) for v in grid] for grid in summed]
        frames = [{"start": frames[0]["start"], "end": frames[-1]["end"],
                   "grids": summed}]
    elif args.frame is not None:
        try:
            frames = [frames[args.frame]]
        except IndexError:
            sys.exit(f"heatmap_render: frame {args.frame} out of range "
                     f"(0..{len(frames) - 1})")

    out = sys.stdout
    out.write(f"{doc['metric']}: {width}x{height}x{layers}, "
              f"period {doc['period']}, {len(frames)} frame(s)\n")
    baseline = doc["metric"] in BASELINE_METRICS
    for frame in frames:
        out.write(f"  cycles {frame['start']}..{frame['end']}\n")
        for layer in wanted_layers:
            out.write(f"   layer {layer} "
                      f"({layer_names.get(layer, '?')}):\n")
            render_grid(frame["grids"][layer], width, height, out,
                        baseline=baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
