/**
 * @file
 * stacknoc_serve — the simulation campaign server.
 *
 * Listens on a Unix-domain socket for NDJSON commands (see
 * docs/SERVER.md and src/server/protocol.hh), runs jobs on a pool of
 * worker processes with warm-checkpoint reuse, and caches results by
 * full-config digest.
 *
 * Also hosts the worker entry point: `stacknoc_serve --worker` turns
 * this process into a job worker reading stdin / writing stdout; the
 * server spawns its pool that way, so there is exactly one binary.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "server/server.hh"
#include "server/worker.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--workers N] [--ckpt-dir D]\n"
        "          [--ckpt-cap-bytes N] [--http PORT] [--log-json FILE]\n"
        "          [--log-rotate-bytes N] [--store-dir D] [--max-queue N]\n"
        "          [--job-retries N] [--job-backoff-ms N]\n"
        "          [--job-deadline-sec N] [--chaos SPEC] [--chaos-seed N]\n"
        "\n"
        "  --socket PATH        Unix socket to listen on (required)\n"
        "  --workers N          worker-process pool size (default 1)\n"
        "  --ckpt-dir D         warm-checkpoint directory shared by\n"
        "                       workers (default: none, no warm reuse)\n"
        "  --ckpt-cap-bytes N   LRU byte cap on the checkpoint dir\n"
        "                       (default 0 = unbounded)\n"
        "  --http PORT          also serve GET /metrics, GET /status and\n"
        "                       POST /run over TCP; PORT 0 picks an\n"
        "                       ephemeral port (printed on stderr)\n"
        "  --log-json FILE      job-lifecycle NDJSON event log\n"
        "  --log-rotate-bytes N log rotation cap (default 16 MiB)\n"
        "  --store-dir D        durable result store: results persist\n"
        "                       here and reload on restart\n"
        "  --max-queue N        shed submissions beyond N queued jobs\n"
        "                       (default 0 = unbounded)\n"
        "  --job-retries N      re-dispatches after a worker death or\n"
        "                       deadline kill (default 2)\n"
        "  --job-backoff-ms N   base retry backoff, doubled per retry\n"
        "                       (default 200)\n"
        "  --job-deadline-sec N kill and retry a worker past this\n"
        "                       per-attempt deadline (default 0 = off)\n"
        "  --chaos SPEC         failure injection: %s\n"
        "  --chaos-seed N       chaos draw seed (default 1)\n"
        "  --worker             internal: run as a pool worker\n",
        argv0, stacknoc::server::chaosGrammar());
}

std::string
selfExe(const char *argv0)
{
    // /proc/self/exe survives PATH lookups and cwd changes; argv[0] is
    // the fallback on filesystems where /proc is absent.
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string ckptDir;
    std::string logJsonPath;
    std::string storeDir;
    std::string chaosSpec;
    unsigned long long ckptCapBytes = 0;
    unsigned long long logRotateBytes = 0;
    unsigned long long chaosSeed = 1;
    int workers = 1;
    int httpPort = -1;
    int maxQueue = 0;
    int jobRetries = 2;
    int jobBackoffMs = 200;
    int jobDeadlineSec = 0;
    bool workerMode = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s requires a value\n",
                             argv[0], what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            socketPath = need("--socket");
        } else if (arg == "--workers") {
            workers = std::atoi(need("--workers"));
        } else if (arg == "--ckpt-dir") {
            ckptDir = need("--ckpt-dir");
        } else if (arg == "--ckpt-cap-bytes") {
            ckptCapBytes = std::strtoull(need("--ckpt-cap-bytes"),
                                         nullptr, 10);
        } else if (arg == "--http") {
            httpPort = std::atoi(need("--http"));
        } else if (arg == "--log-json") {
            logJsonPath = need("--log-json");
        } else if (arg == "--log-rotate-bytes") {
            logRotateBytes = std::strtoull(need("--log-rotate-bytes"),
                                           nullptr, 10);
        } else if (arg == "--store-dir") {
            storeDir = need("--store-dir");
        } else if (arg == "--max-queue") {
            maxQueue = std::atoi(need("--max-queue"));
        } else if (arg == "--job-retries") {
            jobRetries = std::atoi(need("--job-retries"));
        } else if (arg == "--job-backoff-ms") {
            jobBackoffMs = std::atoi(need("--job-backoff-ms"));
        } else if (arg == "--job-deadline-sec") {
            jobDeadlineSec = std::atoi(need("--job-deadline-sec"));
        } else if (arg == "--chaos") {
            chaosSpec = need("--chaos");
        } else if (arg == "--chaos-seed") {
            chaosSeed =
                std::strtoull(need("--chaos-seed"), nullptr, 10);
        } else if (arg == "--worker") {
            workerMode = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    stacknoc::server::ChaosSpec chaos;
    chaos.seed = chaosSeed;
    if (!chaosSpec.empty()) {
        const std::string cerr =
            stacknoc::server::parseChaosSpec(chaosSpec, chaos);
        if (!cerr.empty()) {
            std::fprintf(stderr, "%s: bad --chaos spec: %s\n  grammar: %s\n",
                         argv[0], cerr.c_str(),
                         stacknoc::server::chaosGrammar());
            return 2;
        }
    }

    if (workerMode)
        return stacknoc::server::runWorkerLoop(std::cin, std::cout,
                                               ckptDir, chaos);

    if (socketPath.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (workers < 1) {
        std::fprintf(stderr, "%s: --workers must be >= 1\n", argv[0]);
        return 2;
    }
    if (httpPort > 65535) {
        std::fprintf(stderr, "%s: --http port out of range\n", argv[0]);
        return 2;
    }
    if (jobRetries < 0 || jobBackoffMs < 0 || jobDeadlineSec < 0 ||
        maxQueue < 0) {
        std::fprintf(stderr,
                     "%s: --job-retries/--job-backoff-ms/"
                     "--job-deadline-sec/--max-queue must be >= 0\n",
                     argv[0]);
        return 2;
    }

    stacknoc::server::CampaignServer::Options opt;
    opt.socketPath = socketPath;
    opt.workers = workers;
    opt.ckptDir = ckptDir;
    opt.ckptCapBytes = ckptCapBytes;
    opt.workerExe = selfExe(argv[0]);
    opt.httpPort = httpPort;
    opt.logJsonPath = logJsonPath;
    opt.logRotateBytes = logRotateBytes;
    opt.storeDir = storeDir;
    opt.maxQueue = maxQueue;
    opt.jobRetries = jobRetries;
    opt.jobBackoffMs = jobBackoffMs;
    opt.jobDeadlineSec = jobDeadlineSec;
    opt.chaos = chaos;

    stacknoc::server::CampaignServer server(std::move(opt));
    std::string err;
    if (!server.start(err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 1;
    }
    std::fprintf(stderr, "stacknoc_serve: listening on %s (%d worker%s)\n",
                 socketPath.c_str(), workers, workers == 1 ? "" : "s");
    // Tests parse this line to discover an ephemeral --http 0 port.
    if (server.httpPort() >= 0)
        std::fprintf(stderr, "stacknoc_serve: http on port %d\n",
                     server.httpPort());
    return server.run();
}
