#!/usr/bin/env python3
"""Compare two stacknoc --json-stats files.

Walks both documents and reports every leaf value that differs, with
relative deltas for numbers:

    stats_diff.py base.json new.json
    stats_diff.py --threshold 0.05 base.json new.json   # hide tiny drift
    stats_diff.py --section groups.net base.json new.json

The top-level "perf" and "profile" sections hold wall-clock
measurements that differ between any two runs by construction, so they
are excluded by default — which makes a plain invocation a determinism
check. Pass --include-perf to compare them too.

Exit status: 0 when identical (under the threshold), 1 when any
difference was reported, 2 on usage/parse errors. Also works on JSONL
files produced by STTNOC_JSON (compares line N against line N).
"""

import argparse
import json
import sys


def flatten(value, prefix=""):
    """Yield (dotted-path, leaf) pairs for a parsed JSON document."""
    if isinstance(value, dict):
        for k in sorted(value):
            yield from flatten(value[k], f"{prefix}.{k}" if prefix else k)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            yield from flatten(v, f"{prefix}[{i}]")
    else:
        yield prefix, value


def load_documents(path):
    """Load a JSON file, or each line of a JSONL file."""
    with open(path) as f:
        text = f.read()
    lines = [ln for ln in text.splitlines() if ln.strip()]
    try:
        if len(lines) > 1:
            return [json.loads(ln) for ln in lines]
        return [json.loads(text)]
    except json.JSONDecodeError as e:
        sys.exit(f"stats_diff: {path}: {e}")


# Top-level sections that hold non-deterministic wall-clock data.
WALL_CLOCK_SECTIONS = ("perf", "profile")

# Observer sections that are null unless their flag was passed. When
# one document has the section and the other doesn't, that is a flag
# difference, not a determinism violation, so the section is skipped
# (with a note on stderr). When present in BOTH documents the sections
# are fully deterministic — simulated-time quantities only — and are
# compared by default like everything else.
OPTIONAL_SECTIONS = ("power", "thermal", "intervals", "probe", "faults")


def one_sided_sections(a, b):
    """Optional sections present (non-null) in only one document."""
    if not isinstance(a, dict) or not isinstance(b, dict):
        return []
    return [s for s in OPTIONAL_SECTIONS
            if (a.get(s) is None) != (b.get(s) is None)]


def diff_documents(a, b, threshold, section, include_perf=False):
    """Print differing leaves; return the number reported."""
    skipped = one_sided_sections(a, b)
    for s in skipped:
        print(f"note: section '{s}' present in only one document; "
              f"skipped (flag difference, not a determinism failure)",
              file=sys.stderr)
    fa = dict(flatten(a))
    fb = dict(flatten(b))
    reported = 0
    for path in sorted(fa.keys() | fb.keys()):
        if section and not path.startswith(section):
            continue
        if not include_perf and any(
                path == s or path.startswith(s + ".")
                for s in WALL_CLOCK_SECTIONS):
            continue
        if any(path == s or path.startswith(s + ".")
               for s in skipped):
            continue
        va, vb = fa.get(path), fb.get(path)
        if va == vb:
            continue
        if va is None or vb is None:
            print(f"{path}: {'missing' if va is None else va!r} -> "
                  f"{'missing' if vb is None else vb!r}")
            reported += 1
            continue
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            base = max(abs(va), abs(vb))
            rel = abs(va - vb) / base if base else 0.0
            if rel < threshold:
                continue
            print(f"{path}: {va:g} -> {vb:g} ({rel:+.2%})")
        else:
            print(f"{path}: {va!r} -> {vb!r}")
        reported += 1
    return reported


def main():
    ap = argparse.ArgumentParser(
        description="Diff two stacknoc JSON stats files.")
    ap.add_argument("base")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=0.0,
                    help="hide numeric diffs below this relative delta")
    ap.add_argument("--section", default="",
                    help="only compare paths under this dotted prefix")
    ap.add_argument("--include-perf", action="store_true",
                    help="also compare the wall-clock 'perf' and "
                         "'profile' sections (excluded by default)")
    args = ap.parse_args()

    docs_a = load_documents(args.base)
    docs_b = load_documents(args.new)
    if len(docs_a) != len(docs_b):
        print(f"stats_diff: document count differs: "
              f"{len(docs_a)} vs {len(docs_b)}")
        return 1

    reported = 0
    for i, (a, b) in enumerate(zip(docs_a, docs_b)):
        if len(docs_a) > 1:
            print(f"--- document {i} ---")
        reported += diff_documents(a, b, args.threshold, args.section,
                                   args.include_perf)
    if reported == 0:
        print("identical")
    return 1 if reported else 0


if __name__ == "__main__":
    sys.exit(main())
