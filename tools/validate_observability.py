#!/usr/bin/env python3
"""Validate stacknoc observability artifacts.

Checks any combination of:

  --chrome-trace FILE    valid trace-event JSON: a traceEvents array
                         whose non-metadata events carry numeric,
                         monotonically non-decreasing timestamps.
  --json-stats FILE      the 'profile' section is present and its
                         per-phase seconds sum to total_seconds; when
                         a chrome trace is also given, the trace's
                         main-track engine-phase span durations must
                         sum to the profile total within --tolerance.
  --heatmap-prefix PFX   PFX.{flits,occupancy,tsb,holds}.json exist
                         and every frame grid is exactly
                         width*height long, one grid per layer.

Additionally, when --json-stats is given, profile.total_seconds must
match perf.wall_seconds within --tolerance (the phase measurements
tile the engine loop, so their sum tracks measured wall time).

Exit status: 0 when every requested check passes, 1 otherwise.
"""

import argparse
import json
import sys

HEATMAP_METRICS = ("flits", "occupancy", "tsb", "holds")

_failures = []


def check(ok, message):
    if ok:
        return True
    _failures.append(message)
    print(f"FAIL: {message}")
    return False


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        check(False, f"{path}: {e}")
        return None


def validate_chrome_trace(path):
    doc = load_json(path)
    if doc is None:
        return None
    if not check(isinstance(doc, dict) and
                 isinstance(doc.get("traceEvents"), list),
                 f"{path}: missing traceEvents array"):
        return None
    events = doc["traceEvents"]
    check(len(events) > 0, f"{path}: traceEvents is empty")

    last_ts = None
    phase_sum_us = 0.0
    names = set()
    for i, ev in enumerate(events):
        if not check(isinstance(ev, dict) and "ph" in ev and "pid" in ev,
                     f"{path}: event {i} lacks ph/pid"):
            return None
        if ev["ph"] == "M":
            continue
        ts = ev.get("ts")
        if not check(isinstance(ts, (int, float)),
                     f"{path}: event {i} has non-numeric ts"):
            return None
        if last_ts is not None:
            check(ts >= last_ts,
                  f"{path}: event {i} ts {ts} < previous {last_ts}")
        last_ts = ts
        if ev["ph"] == "X" and ev["pid"] == 2 and ev.get("tid") == 0:
            phase_sum_us += float(ev.get("dur", 0.0))
            names.add(ev.get("name"))
    return {"main_phase_seconds": phase_sum_us / 1e6,
            "phase_names": names}


def validate_profile(path, trace_summary, tolerance):
    doc = load_json(path)
    if doc is None:
        return
    prof = doc.get("profile")
    if not check(isinstance(prof, dict),
                 f"{path}: no 'profile' section (run with --profile)"):
        return
    phases = prof.get("phases", {})
    total = prof.get("total_seconds", 0.0)
    check(total > 0.0, f"{path}: profile.total_seconds is zero")
    phase_sum = sum(phases.values())
    check(abs(phase_sum - total) <= 1e-9 + 1e-6 * total,
          f"{path}: phase seconds sum {phase_sum} != "
          f"total_seconds {total}")

    wall = doc.get("perf", {}).get("wall_seconds", 0.0)
    if wall > 0.0:
        rel = abs(total - wall) / wall
        check(rel <= tolerance,
              f"{path}: profile total {total:.4f}s vs wall "
              f"{wall:.4f}s differs by {rel:.1%} (> {tolerance:.0%})")

    if trace_summary is not None:
        span_sum = trace_summary["main_phase_seconds"]
        check(span_sum > 0.0,
              "chrome trace has no main-track engine-phase spans")
        if total > 0.0:
            rel = abs(span_sum - total) / total
            check(rel <= tolerance,
                  f"chrome trace main-track span sum {span_sum:.4f}s "
                  f"vs profile total {total:.4f}s differs by "
                  f"{rel:.1%} (> {tolerance:.0%})")


def validate_heatmaps(prefix):
    for metric in HEATMAP_METRICS:
        path = f"{prefix}.{metric}.json"
        doc = load_json(path)
        if doc is None:
            continue
        ok = check(doc.get("metric") == metric,
                   f"{path}: metric field != {metric}")
        width = doc.get("width", 0)
        height = doc.get("height", 0)
        layers = doc.get("layers", 0)
        ok &= check(width > 0 and height > 0 and layers > 0,
                    f"{path}: bad dimensions {width}x{height}x{layers}")
        frames = doc.get("frames")
        ok &= check(isinstance(frames, list) and frames,
                    f"{path}: no frames recorded")
        if not ok:
            continue
        prev_end = -1
        for i, frame in enumerate(frames):
            check(frame["start"] <= frame["end"],
                  f"{path}: frame {i} start > end")
            check(frame["start"] > prev_end,
                  f"{path}: frame {i} overlaps the previous frame")
            prev_end = frame["end"]
            grids = frame.get("grids", [])
            check(len(grids) == layers,
                  f"{path}: frame {i} has {len(grids)} grids, "
                  f"expected {layers}")
            for layer, grid in enumerate(grids):
                check(len(grid) == width * height,
                      f"{path}: frame {i} layer {layer} grid has "
                      f"{len(grid)} cells, expected {width * height}")


def main():
    ap = argparse.ArgumentParser(
        description="Validate stacknoc observability artifacts.")
    ap.add_argument("--chrome-trace")
    ap.add_argument("--json-stats")
    ap.add_argument("--heatmap-prefix")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="relative wall-time agreement bound")
    args = ap.parse_args()
    if not (args.chrome_trace or args.json_stats or args.heatmap_prefix):
        ap.error("nothing to validate")

    trace_summary = None
    if args.chrome_trace:
        trace_summary = validate_chrome_trace(args.chrome_trace)
    if args.json_stats:
        validate_profile(args.json_stats, trace_summary, args.tolerance)
    if args.heatmap_prefix:
        validate_heatmaps(args.heatmap_prefix)

    if _failures:
        print(f"{len(_failures)} check(s) failed")
        return 1
    print("all observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
