#!/usr/bin/env python3
"""Validate stacknoc observability artifacts.

Checks any combination of:

  --chrome-trace FILE    valid trace-event JSON: a traceEvents array
                         whose non-metadata events carry numeric,
                         monotonically non-decreasing timestamps.
  --json-stats FILE      the 'profile' section is present and its
                         per-phase seconds sum to total_seconds; when
                         a chrome trace is also given, the trace's
                         main-track engine-phase span durations must
                         sum to the profile total within --tolerance.
  --heatmap-prefix PFX   PFX.{flits,occupancy,tsb,holds}.json exist
                         and every frame grid is exactly
                         width*height long, one grid per layer.
  --power-prefix PFX     PFX.power.json and PFX.temperature.json exist
                         and pass the same grid-shape checks (values
                         are doubles: watts / Celsius).
  --expect-power         the --json-stats document must carry 'power'
                         and 'thermal' sections; the power section's
                         streaming total must reconcile with the
                         end-of-run computeEnergy scalar to 1e-6
                         relative, and the thermal peak must sit at or
                         above ambient.

Additionally, when --json-stats is given, profile.total_seconds must
match perf.wall_seconds within --tolerance (the phase measurements
tile the engine loop, so their sum tracks measured wall time).

Exit status: 0 when every requested check passes, 1 otherwise.
"""

import argparse
import json
import sys

HEATMAP_METRICS = ("flits", "occupancy", "tsb", "holds")

_failures = []


def check(ok, message):
    if ok:
        return True
    _failures.append(message)
    print(f"FAIL: {message}")
    return False


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        check(False, f"{path}: {e}")
        return None


def validate_chrome_trace(path):
    doc = load_json(path)
    if doc is None:
        return None
    if not check(isinstance(doc, dict) and
                 isinstance(doc.get("traceEvents"), list),
                 f"{path}: missing traceEvents array"):
        return None
    events = doc["traceEvents"]
    check(len(events) > 0, f"{path}: traceEvents is empty")

    last_ts = None
    phase_sum_us = 0.0
    names = set()
    for i, ev in enumerate(events):
        if not check(isinstance(ev, dict) and "ph" in ev and "pid" in ev,
                     f"{path}: event {i} lacks ph/pid"):
            return None
        if ev["ph"] == "M":
            continue
        ts = ev.get("ts")
        if not check(isinstance(ts, (int, float)),
                     f"{path}: event {i} has non-numeric ts"):
            return None
        if last_ts is not None:
            check(ts >= last_ts,
                  f"{path}: event {i} ts {ts} < previous {last_ts}")
        last_ts = ts
        if ev["ph"] == "X" and ev["pid"] == 2 and ev.get("tid") == 0:
            phase_sum_us += float(ev.get("dur", 0.0))
            names.add(ev.get("name"))
    return {"main_phase_seconds": phase_sum_us / 1e6,
            "phase_names": names}


def validate_profile(path, trace_summary, tolerance):
    doc = load_json(path)
    if doc is None:
        return
    prof = doc.get("profile")
    if not check(isinstance(prof, dict),
                 f"{path}: no 'profile' section (run with --profile)"):
        return
    phases = prof.get("phases", {})
    total = prof.get("total_seconds", 0.0)
    check(total > 0.0, f"{path}: profile.total_seconds is zero")
    phase_sum = sum(phases.values())
    check(abs(phase_sum - total) <= 1e-9 + 1e-6 * total,
          f"{path}: phase seconds sum {phase_sum} != "
          f"total_seconds {total}")

    wall = doc.get("perf", {}).get("wall_seconds", 0.0)
    if wall > 0.0:
        rel = abs(total - wall) / wall
        check(rel <= tolerance,
              f"{path}: profile total {total:.4f}s vs wall "
              f"{wall:.4f}s differs by {rel:.1%} (> {tolerance:.0%})")

    if trace_summary is not None:
        span_sum = trace_summary["main_phase_seconds"]
        check(span_sum > 0.0,
              "chrome trace has no main-track engine-phase spans")
        if total > 0.0:
            rel = abs(span_sum - total) / total
            check(rel <= tolerance,
                  f"chrome trace main-track span sum {span_sum:.4f}s "
                  f"vs profile total {total:.4f}s differs by "
                  f"{rel:.1%} (> {tolerance:.0%})")


def validate_grid_file(path, metric):
    """Shape-check one heatmap-schema grid file (counts or doubles)."""
    doc = load_json(path)
    if doc is None:
        return
    ok = check(doc.get("metric") == metric,
               f"{path}: metric field != {metric}")
    width = doc.get("width", 0)
    height = doc.get("height", 0)
    layers = doc.get("layers", 0)
    ok &= check(width > 0 and height > 0 and layers > 0,
                f"{path}: bad dimensions {width}x{height}x{layers}")
    frames = doc.get("frames")
    ok &= check(isinstance(frames, list) and frames,
                f"{path}: no frames recorded")
    if not ok:
        return
    prev_end = -1
    for i, frame in enumerate(frames):
        check(frame["start"] <= frame["end"],
              f"{path}: frame {i} start > end")
        check(frame["start"] > prev_end,
              f"{path}: frame {i} overlaps the previous frame")
        prev_end = frame["end"]
        grids = frame.get("grids", [])
        check(len(grids) == layers,
              f"{path}: frame {i} has {len(grids)} grids, "
              f"expected {layers}")
        for layer, grid in enumerate(grids):
            check(len(grid) == width * height,
                  f"{path}: frame {i} layer {layer} grid has "
                  f"{len(grid)} cells, expected {width * height}")
            check(all(isinstance(v, (int, float)) and v >= 0
                      for v in grid),
                  f"{path}: frame {i} layer {layer} has a negative "
                  f"or non-numeric cell")


def validate_heatmaps(prefix):
    for metric in HEATMAP_METRICS:
        validate_grid_file(f"{prefix}.{metric}.json", metric)


def validate_power_grids(prefix):
    validate_grid_file(f"{prefix}.power.json", "power")
    validate_grid_file(f"{prefix}.temperature.json", "temperature")


def validate_power_sections(path):
    """The 'power' and 'thermal' stats sections of a --power --thermal
    run: totals reconcile with computeEnergy, the per-interval series
    sums back to the streaming totals, and temperatures are sane."""
    doc = load_json(path)
    if doc is None:
        return
    power = doc.get("power")
    if not check(isinstance(power, dict),
                 f"{path}: no 'power' section (run with --power)"):
        return
    totals = power.get("totals_uj", {})
    check(totals.get("total", 0.0) > 0.0,
          f"{path}: power.totals_uj.total is zero")
    cat_sum = sum(v for k, v in totals.items() if k != "total")
    check(abs(cat_sum - totals.get("total", 0.0)) <=
          1e-9 + 1e-9 * abs(cat_sum),
          f"{path}: power category sum {cat_sum} != total "
          f"{totals.get('total')}")

    rec = power.get("reconciliation", {})
    check(rec.get("rel_error", 1.0) <= 1e-6,
          f"{path}: streaming energy does not reconcile with "
          f"computeEnergy (rel_error {rec.get('rel_error')})")

    series = power.get("series", [])
    frames = power.get("frames", [])
    check(len(series) == len(frames) and series,
          f"{path}: power series/frames length mismatch "
          f"({len(series)} vs {len(frames)})")
    series_sum = sum(row.get("total_uj", 0.0) for row in series)
    total = totals.get("total", 0.0)
    check(abs(series_sum - total) <= 1e-9 + 1e-9 * abs(total),
          f"{path}: power series sum {series_sum} != streaming "
          f"total {total}")

    thermal = doc.get("thermal")
    if not check(isinstance(thermal, dict),
                 f"{path}: no 'thermal' section (run with --thermal)"):
        return
    ambient = thermal.get("ambient_c", 0.0)
    peak = thermal.get("peak_c", -1.0)
    check(peak >= ambient,
          f"{path}: thermal peak_c {peak} below ambient {ambient}")
    check(thermal.get("substeps", 0) > 0,
          f"{path}: thermal solver took no substeps")
    t_series = thermal.get("series", [])
    check(len(t_series) == len(series),
          f"{path}: thermal series has {len(t_series)} rows, power "
          f"has {len(series)}")
    for i, row in enumerate(t_series):
        for layer, (hi, mean) in enumerate(zip(row.get("max_c", []),
                                               row.get("mean_c", []))):
            check(ambient <= mean <= hi,
                  f"{path}: thermal series row {i} layer {layer} "
                  f"violates ambient <= mean <= max")
    ranked = thermal.get("hot_banks", [])
    check(bool(ranked), f"{path}: hot_banks is empty")
    temps = [hb.get("temp_c", 0.0) for hb in ranked]
    check(temps == sorted(temps, reverse=True),
          f"{path}: hot_banks not sorted hottest-first")


def main():
    ap = argparse.ArgumentParser(
        description="Validate stacknoc observability artifacts.")
    ap.add_argument("--chrome-trace")
    ap.add_argument("--json-stats")
    ap.add_argument("--heatmap-prefix")
    ap.add_argument("--power-prefix")
    ap.add_argument("--expect-power", action="store_true",
                    help="require power/thermal sections in the "
                         "--json-stats document")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="relative wall-time agreement bound")
    args = ap.parse_args()
    if not (args.chrome_trace or args.json_stats or args.heatmap_prefix
            or args.power_prefix):
        ap.error("nothing to validate")
    if args.expect_power and not args.json_stats:
        ap.error("--expect-power requires --json-stats")

    trace_summary = None
    if args.chrome_trace:
        trace_summary = validate_chrome_trace(args.chrome_trace)
    if args.json_stats:
        validate_profile(args.json_stats, trace_summary, args.tolerance)
    if args.expect_power:
        validate_power_sections(args.json_stats)
    if args.heatmap_prefix:
        validate_heatmaps(args.heatmap_prefix)
    if args.power_prefix:
        validate_power_grids(args.power_prefix)

    if _failures:
        print(f"{len(_failures)} check(s) failed")
        return 1
    print("all observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
