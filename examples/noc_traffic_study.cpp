/**
 * @file
 * NoC-only example: the network substrate is usable stand-alone, below
 * the CMP system layer. This study injects uniform-random synthetic
 * traffic into the two-layer mesh at increasing rates and plots the
 * latency-throughput curve for plain Z-X-Y routing versus the region-
 * restricted TSB routing — the classic interconnect-paper experiment,
 * built from the public noc:: API plus a custom traffic driver.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "noc/network.hh"
#include "noc/routing.hh"
#include "sim/simulator.hh"
#include "sttnoc/region_map.hh"
#include "sttnoc/region_routing.hh"

using namespace stacknoc;

namespace {

/** Sinks everything; the NI records the latency statistics. */
class Sink : public noc::NetworkClient
{
  public:
    void deliver(noc::PacketPtr, Cycle) override {}
};

double
measure(bool restricted, double injection_rate)
{
    Simulator sim;
    const MeshShape shape(8, 8, 2);
    noc::ArbitrationPolicy policy;

    sttnoc::RegionMap regions(shape, sttnoc::RegionConfig{});
    std::unique_ptr<noc::RoutingFunction> routing;
    if (restricted)
        routing = std::make_unique<sttnoc::RegionRouting>(regions);
    else
        routing = std::make_unique<noc::ZxyRouting>(shape);

    noc::Network net(sim, shape, noc::NocParams{}, std::move(routing),
                     policy);
    if (restricted) {
        for (int r = 0; r < regions.numRegions(); ++r)
            net.topology().widenDownLink(regions.tsbCoreNode(r), 2);
    }

    std::vector<Sink> sinks(static_cast<std::size_t>(shape.totalNodes()));
    for (NodeId n = 0; n < shape.totalNodes(); ++n)
        net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);

    // Cores send 1-flit requests to random banks; banks answer nothing
    // (open-loop injection, the standard methodology).
    Rng rng(42);
    for (Cycle t = 0; t < 12000; ++t) {
        for (NodeId core = 0; core < 64; ++core) {
            if (!rng.chance(injection_rate))
                continue;
            const NodeId bank = static_cast<NodeId>(64 + rng.below(64));
            auto pkt = noc::makePacket(noc::PacketClass::ReadReq, core,
                                       bank);
            pkt->destBank = regions.bankOfNode(bank);
            net.ni(core).send(std::move(pkt), t);
        }
        sim.step();
    }
    const auto *lat =
        net.stats().findAverage("packet_network_latency");
    return lat ? lat->mean() : 0.0;
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Uniform-random core->bank traffic, 8x8x2 mesh\n");
    std::printf("%12s %14s %16s\n", "inj rate", "ZXY (64 TSV)",
                "region (4 TSB)");
    std::printf("---------------------------------------------\n");
    for (const double rate : {0.005, 0.01, 0.02, 0.04, 0.08, 0.12}) {
        std::printf("%12.3f %14.1f %16.1f\n", rate,
                    measure(false, rate), measure(true, rate));
    }
    std::printf("\nLatency in cycles. The restricted configuration "
                "saturates earlier: the price of the serialisation "
                "points that make bank-busy prediction possible.\n");
    return 0;
}
