/**
 * @file
 * Quickstart: build the paper's 64-core / 64-bank stacked CMP with the
 * STT-RAM-aware WB scheme, run a workload, and print the headline
 * numbers. Start here.
 */

#include <cstdio>

#include "system/cmp_system.hh"

int
main()
{
    using namespace stacknoc;
    setVerbose(false);

    // 1. Pick a design point. scenarios:: provides every configuration
    //    evaluated in the paper; this is the proposed scheme.
    system::SystemConfig cfg;
    cfg.scenario = system::scenarios::sttram4TsbWb();

    // 2. Pick a workload: one name runs 64 copies/threads of that
    //    Table 3 application; 64 names give a per-core mix.
    cfg.apps = {"tpcc"};

    // 3. Build and run: warm up, then measure.
    system::CmpSystem sys(cfg);
    sys.warmup(3000);
    sys.run(20000);

    // 4. Read the results.
    const system::Metrics m = sys.metrics();
    std::printf("scenario             %s\n", cfg.scenario.name.c_str());
    std::printf("cores x banks        %d x %d\n", sys.numCores(),
                sys.numBanks());
    std::printf("mean IPC             %.3f\n", m.meanIpc());
    std::printf("instr throughput     %.2f\n", m.instructionThroughput());
    std::printf("packet network lat   %.1f cycles\n", m.avgNetworkLatency);
    std::printf("bank queue lat       %.1f cycles\n",
                m.avgBankQueueLatency);
    std::printf("uncore energy        %.1f uJ\n", m.energy.totalUJ());

    // Bonus: compare against the SRAM baseline in three lines.
    cfg.scenario = system::scenarios::sram64Tsb();
    system::CmpSystem baseline(cfg);
    baseline.warmup(3000);
    baseline.run(20000);
    const double speedup =
        m.meanIpc() / baseline.metrics().meanIpc();
    std::printf("\nIPC vs SRAM-64TSB    %.2fx\n", speedup);
    std::printf("energy vs SRAM-64TSB %.2fx\n",
                m.energy.totalUJ() /
                    baseline.metrics().energy.totalUJ());
    return 0;
}
