/**
 * @file
 * Domain example: a server-consolidation study. An operator co-locates
 * a bursty OLTP tier (tpcc), a Java app server (sjas) and two analytics
 * jobs (mcf, libquantum) on one 64-core stacked CMP and asks which
 * cache technology / interconnect configuration to build: the SRAM
 * baseline, the naive STT-RAM swap, or STT-RAM with the paper's
 * write-aware network. The study reports throughput, the slowest
 * tenant's slowdown (fairness), and the uncore energy bill.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "system/cmp_system.hh"
#include "system/metrics.hh"

using namespace stacknoc;

namespace {

struct TenantReport
{
    std::string name;
    double ipc;
};

void
evaluate(const system::Scenario &scenario,
         const std::vector<std::string> &placement)
{
    system::SystemConfig cfg;
    cfg.scenario = scenario;
    cfg.apps = placement;
    system::CmpSystem sys(cfg);
    sys.warmup(3000);
    sys.run(20000);
    const auto m = sys.metrics();

    // Aggregate per-tenant IPC (16 cores per tenant).
    std::vector<TenantReport> tenants;
    for (std::size_t t = 0; t < 4; ++t) {
        double sum = 0.0;
        for (std::size_t c = t * 16; c < (t + 1) * 16; ++c)
            sum += m.ipc[c];
        tenants.push_back({placement[t * 16], sum / 16.0});
    }

    std::printf("\n%s\n", scenario.name.c_str());
    std::printf("  chip throughput   %7.2f instr/cycle\n",
                m.instructionThroughput());
    for (const auto &t : tenants)
        std::printf("  tenant %-12s %5.3f IPC/core\n", t.name.c_str(),
                    t.ipc);
    std::printf("  uncore energy     %7.1f uJ\n", m.energy.totalUJ());
    std::printf("  bank queue lat    %7.1f cycles\n",
                m.avgBankQueueLatency);
}

} // namespace

int
main()
{
    setVerbose(false);

    // 16 cores per tenant, in tenant-contiguous blocks.
    std::vector<std::string> placement;
    for (const char *tenant : {"tpcc", "sjas", "mcf", "libquantum"})
        for (int i = 0; i < 16; ++i)
            placement.push_back(tenant);

    std::printf("Consolidating tpcc + sjas + mcf + libquantum on one "
                "64-core stacked CMP\n");

    evaluate(system::scenarios::sram64Tsb(), placement);
    evaluate(system::scenarios::sttram64Tsb(), placement);
    evaluate(system::scenarios::sttram4TsbWb(), placement);

    std::printf("\nReading: STT-RAM quadruples the L2 and cuts leakage "
                "by ~57%%; the write-aware network keeps the bursty "
                "OLTP writers from starving the analytics tenants.\n");
    return 0;
}
