/**
 * @file
 * Example: run one application on one design scenario and print a full
 * diagnostic report — per-core IPC, latency breakdown, bank utilisation,
 * coherence traffic, energy, and the STT-RAM-aware policy counters.
 *
 * Usage: scenario_report [scenario] [app] [cycles]
 *   scenario: SRAM-64TSB | MRAM-64TSB | MRAM-4TSB | MRAM-4TSB-SS |
 *             MRAM-4TSB-RCA | MRAM-4TSB-WB | BUFF-20 | +1VC |
 *             MRAM-RP | MRAM-4TSB-WB+RP
 *   app:      any Table 3 application name (default tpcc)
 *   cycles:   measured cycles (default 20000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "system/cmp_system.hh"
#include "workload/app_profiles.hh"

using namespace stacknoc;

namespace {

system::Scenario
scenarioByName(const std::string &name)
{
    using namespace system::scenarios;
    if (name == "SRAM-64TSB")
        return sram64Tsb();
    if (name == "MRAM-64TSB")
        return sttram64Tsb();
    if (name == "MRAM-4TSB")
        return sttram4Tsb();
    if (name == "MRAM-4TSB-SS")
        return sttram4TsbSS();
    if (name == "MRAM-4TSB-RCA")
        return sttram4TsbRca();
    if (name == "MRAM-4TSB-WB")
        return sttram4TsbWb();
    if (name == "BUFF-20")
        return sttramBuff20();
    if (name == "+1VC")
        return sttram4TsbWbPlus1Vc();
    if (name == "MRAM-RP")
        return sttramReadPriority();
    if (name == "MRAM-4TSB-WB+RP")
        return sttram4TsbWbReadPriority();
    fatal("unknown scenario '%s'", name.c_str());
}

double
counterOf(const stats::Group &g, const char *name)
{
    const auto *c = g.findCounter(name);
    return c ? static_cast<double>(c->value()) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::string scenario_name = argc > 1 ? argv[1] : "MRAM-4TSB-WB";
    const std::string app = argc > 2 ? argv[2] : "tpcc";
    const Cycle cycles = argc > 3
        ? static_cast<Cycle>(std::strtoull(argv[3], nullptr, 10))
        : 20000;

    system::SystemConfig cfg;
    cfg.scenario = scenarioByName(scenario_name);
    cfg.apps = {app};

    std::printf("scenario=%s app=%s (64 copies/threads), %llu cycles\n",
                cfg.scenario.name.c_str(), app.c_str(),
                static_cast<unsigned long long>(cycles));

    system::CmpSystem sys(cfg);
    sys.warmup(3000);
    sys.run(cycles);
    const auto m = sys.metrics();

    std::printf("\n-- performance --\n");
    std::printf("mean IPC            %8.3f\n", m.meanIpc());
    std::printf("slowest-core IPC    %8.3f\n", m.minIpc());
    std::printf("instr throughput    %8.2f\n", m.instructionThroughput());

    std::printf("\n-- latency (cycles) --\n");
    std::printf("packet network lat  %8.2f\n", m.avgNetworkLatency);
    std::printf("bank queue lat      %8.2f\n", m.avgBankQueueLatency);
    std::printf("L1 miss round trip  %8.2f\n", m.avgUncoreLatency);

    const auto &cache = sys.cacheStats();
    const double instrs = counterOf(sys.coreStats(),
                                    "instructions_committed");
    std::printf("\n-- L2 traffic (per kilo-instruction) --\n");
    std::printf("GetS  (reads)       %8.2f\n",
                1000.0 * counterOf(cache, "l2_gets") / instrs);
    std::printf("GetM  (write-fetch) %8.2f\n",
                1000.0 * counterOf(cache, "l2_getm") / instrs);
    std::printf("PutM  (writebacks)  %8.2f\n",
                1000.0 * counterOf(cache, "l2_putm") / instrs);
    std::printf("L2 miss ratio       %8.3f\n",
                counterOf(cache, "l2_misses") /
                    std::max(1.0, counterOf(cache, "l2_gets") +
                                      counterOf(cache, "l2_getm")));

    std::printf("\n-- banks --\n");
    const double bank_cycles =
        static_cast<double>(m.cycles) * sys.numBanks();
    std::printf("bank busy fraction  %8.3f\n",
                counterOf(cache, "bank_busy_cycles") / bank_cycles);
    std::printf("bank reads          %8.0f\n",
                counterOf(cache, "bank_reads"));
    std::printf("bank writes         %8.0f\n",
                counterOf(cache, "bank_writes"));

    std::printf("\n-- coherence --\n");
    std::printf("invalidations       %8.0f\n",
                counterOf(cache, "l2_invs_sent"));
    std::printf("recalls             %8.0f\n",
                counterOf(cache, "l2_recalls_sent"));
    std::printf("upgrades            %8.0f\n",
                counterOf(cache, "l1_upgrades"));

    if (sys.policy()) {
        const auto &p = sys.policy()->stats();
        std::printf("\n-- STT-RAM-aware policy --\n");
        std::printf("busy marks          %8.0f\n",
                    counterOf(p, "busy_marks"));
        std::printf("holds started       %8.0f\n",
                    counterOf(p, "holds_started"));
        std::printf("hold-cap releases   %8.0f\n",
                    counterOf(p, "hold_cap_releases"));
        if (const auto *d = p.findAverage("busy_duration"))
            std::printf("mean busy window    %8.2f\n", d->mean());
    }

    std::printf("\n-- uncore energy --\n");
    std::printf("cache dynamic (uJ)  %8.3f\n", m.energy.cacheDynamicUJ);
    std::printf("cache leakage (uJ)  %8.3f\n", m.energy.cacheLeakageUJ);
    std::printf("net dynamic (uJ)    %8.3f\n", m.energy.netDynamicUJ);
    std::printf("net leakage (uJ)    %8.3f\n", m.energy.netLeakageUJ);
    std::printf("total (uJ)          %8.3f\n", m.energy.totalUJ());
    return 0;
}
