file(REMOVE_RECURSE
  "CMakeFiles/fig14_write_buffer.dir/fig14_write_buffer.cc.o"
  "CMakeFiles/fig14_write_buffer.dir/fig14_write_buffer.cc.o.d"
  "fig14_write_buffer"
  "fig14_write_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_write_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
