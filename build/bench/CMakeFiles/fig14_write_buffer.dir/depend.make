# Empty dependencies file for fig14_write_buffer.
# This may be replaced when dependencies are built.
