file(REMOVE_RECURSE
  "CMakeFiles/fig13_hops.dir/fig13_hops.cc.o"
  "CMakeFiles/fig13_hops.dir/fig13_hops.cc.o.d"
  "fig13_hops"
  "fig13_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
