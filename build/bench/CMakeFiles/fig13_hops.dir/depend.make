# Empty dependencies file for fig13_hops.
# This may be replaced when dependencies are built.
