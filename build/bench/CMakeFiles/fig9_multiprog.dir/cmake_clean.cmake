file(REMOVE_RECURSE
  "CMakeFiles/fig9_multiprog.dir/fig9_multiprog.cc.o"
  "CMakeFiles/fig9_multiprog.dir/fig9_multiprog.cc.o.d"
  "fig9_multiprog"
  "fig9_multiprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
