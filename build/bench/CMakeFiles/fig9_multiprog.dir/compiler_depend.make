# Empty compiler generated dependencies file for fig9_multiprog.
# This may be replaced when dependencies are built.
