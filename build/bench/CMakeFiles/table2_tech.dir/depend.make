# Empty dependencies file for table2_tech.
# This may be replaced when dependencies are built.
