file(REMOVE_RECURSE
  "CMakeFiles/table2_tech.dir/table2_tech.cc.o"
  "CMakeFiles/table2_tech.dir/table2_tech.cc.o.d"
  "table2_tech"
  "table2_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
