# Empty compiler generated dependencies file for stacknoc_bench_util.
# This may be replaced when dependencies are built.
