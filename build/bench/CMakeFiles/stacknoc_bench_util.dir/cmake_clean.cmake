file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/stacknoc_bench_util.dir/bench_util.cc.o.d"
  "libstacknoc_bench_util.a"
  "libstacknoc_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
