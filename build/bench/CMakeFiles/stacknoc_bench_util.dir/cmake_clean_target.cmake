file(REMOVE_RECURSE
  "libstacknoc_bench_util.a"
)
