file(REMOVE_RECURSE
  "CMakeFiles/ext_read_priority.dir/ext_read_priority.cc.o"
  "CMakeFiles/ext_read_priority.dir/ext_read_priority.cc.o.d"
  "ext_read_priority"
  "ext_read_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_read_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
