# Empty dependencies file for ext_read_priority.
# This may be replaced when dependencies are built.
