# Empty compiler generated dependencies file for ablation_scheme.
# This may be replaced when dependencies are built.
