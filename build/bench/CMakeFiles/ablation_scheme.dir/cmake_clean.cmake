file(REMOVE_RECURSE
  "CMakeFiles/ablation_scheme.dir/ablation_scheme.cc.o"
  "CMakeFiles/ablation_scheme.dir/ablation_scheme.cc.o.d"
  "ablation_scheme"
  "ablation_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
