file(REMOVE_RECURSE
  "CMakeFiles/fig3_access_gaps.dir/fig3_access_gaps.cc.o"
  "CMakeFiles/fig3_access_gaps.dir/fig3_access_gaps.cc.o.d"
  "fig3_access_gaps"
  "fig3_access_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_access_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
