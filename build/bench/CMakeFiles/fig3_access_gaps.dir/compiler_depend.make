# Empty compiler generated dependencies file for fig3_access_gaps.
# This may be replaced when dependencies are built.
