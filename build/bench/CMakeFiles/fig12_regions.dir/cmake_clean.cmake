file(REMOVE_RECURSE
  "CMakeFiles/fig12_regions.dir/fig12_regions.cc.o"
  "CMakeFiles/fig12_regions.dir/fig12_regions.cc.o.d"
  "fig12_regions"
  "fig12_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
