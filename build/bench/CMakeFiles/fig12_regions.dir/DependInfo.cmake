
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_regions.cc" "bench/CMakeFiles/fig12_regions.dir/fig12_regions.cc.o" "gcc" "bench/CMakeFiles/fig12_regions.dir/fig12_regions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/stacknoc_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/stacknoc_system.dir/DependInfo.cmake"
  "/root/repo/build/src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/stacknoc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/stacknoc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/stacknoc_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/stacknoc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/stacknoc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/stacknoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stacknoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stacknoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
