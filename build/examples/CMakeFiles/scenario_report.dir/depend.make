# Empty dependencies file for scenario_report.
# This may be replaced when dependencies are built.
