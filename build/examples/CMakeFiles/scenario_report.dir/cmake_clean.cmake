file(REMOVE_RECURSE
  "CMakeFiles/scenario_report.dir/scenario_report.cpp.o"
  "CMakeFiles/scenario_report.dir/scenario_report.cpp.o.d"
  "scenario_report"
  "scenario_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
