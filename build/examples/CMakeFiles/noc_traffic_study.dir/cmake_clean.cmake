file(REMOVE_RECURSE
  "CMakeFiles/noc_traffic_study.dir/noc_traffic_study.cpp.o"
  "CMakeFiles/noc_traffic_study.dir/noc_traffic_study.cpp.o.d"
  "noc_traffic_study"
  "noc_traffic_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_traffic_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
