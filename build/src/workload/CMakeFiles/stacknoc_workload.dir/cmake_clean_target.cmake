file(REMOVE_RECURSE
  "libstacknoc_workload.a"
)
