# Empty compiler generated dependencies file for stacknoc_workload.
# This may be replaced when dependencies are built.
