file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_workload.dir/app_profiles.cc.o"
  "CMakeFiles/stacknoc_workload.dir/app_profiles.cc.o.d"
  "CMakeFiles/stacknoc_workload.dir/mixes.cc.o"
  "CMakeFiles/stacknoc_workload.dir/mixes.cc.o.d"
  "CMakeFiles/stacknoc_workload.dir/synthetic_stream.cc.o"
  "CMakeFiles/stacknoc_workload.dir/synthetic_stream.cc.o.d"
  "CMakeFiles/stacknoc_workload.dir/trace_file.cc.o"
  "CMakeFiles/stacknoc_workload.dir/trace_file.cc.o.d"
  "libstacknoc_workload.a"
  "libstacknoc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
