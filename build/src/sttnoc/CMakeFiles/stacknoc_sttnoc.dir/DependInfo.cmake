
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sttnoc/bank_aware_policy.cc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/bank_aware_policy.cc.o" "gcc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/bank_aware_policy.cc.o.d"
  "/root/repo/src/sttnoc/estimator.cc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/estimator.cc.o" "gcc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/estimator.cc.o.d"
  "/root/repo/src/sttnoc/parent_map.cc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/parent_map.cc.o" "gcc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/parent_map.cc.o.d"
  "/root/repo/src/sttnoc/rca_fabric.cc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/rca_fabric.cc.o" "gcc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/rca_fabric.cc.o.d"
  "/root/repo/src/sttnoc/region_map.cc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/region_map.cc.o" "gcc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/region_map.cc.o.d"
  "/root/repo/src/sttnoc/region_routing.cc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/region_routing.cc.o" "gcc" "src/sttnoc/CMakeFiles/stacknoc_sttnoc.dir/region_routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/stacknoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stacknoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stacknoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
