file(REMOVE_RECURSE
  "libstacknoc_sttnoc.a"
)
