# Empty compiler generated dependencies file for stacknoc_sttnoc.
# This may be replaced when dependencies are built.
