file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_sttnoc.dir/bank_aware_policy.cc.o"
  "CMakeFiles/stacknoc_sttnoc.dir/bank_aware_policy.cc.o.d"
  "CMakeFiles/stacknoc_sttnoc.dir/estimator.cc.o"
  "CMakeFiles/stacknoc_sttnoc.dir/estimator.cc.o.d"
  "CMakeFiles/stacknoc_sttnoc.dir/parent_map.cc.o"
  "CMakeFiles/stacknoc_sttnoc.dir/parent_map.cc.o.d"
  "CMakeFiles/stacknoc_sttnoc.dir/rca_fabric.cc.o"
  "CMakeFiles/stacknoc_sttnoc.dir/rca_fabric.cc.o.d"
  "CMakeFiles/stacknoc_sttnoc.dir/region_map.cc.o"
  "CMakeFiles/stacknoc_sttnoc.dir/region_map.cc.o.d"
  "CMakeFiles/stacknoc_sttnoc.dir/region_routing.cc.o"
  "CMakeFiles/stacknoc_sttnoc.dir/region_routing.cc.o.d"
  "libstacknoc_sttnoc.a"
  "libstacknoc_sttnoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_sttnoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
