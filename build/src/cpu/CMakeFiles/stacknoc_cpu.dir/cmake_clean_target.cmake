file(REMOVE_RECURSE
  "libstacknoc_cpu.a"
)
