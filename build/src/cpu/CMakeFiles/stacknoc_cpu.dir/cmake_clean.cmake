file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_cpu.dir/core.cc.o"
  "CMakeFiles/stacknoc_cpu.dir/core.cc.o.d"
  "libstacknoc_cpu.a"
  "libstacknoc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
