# Empty dependencies file for stacknoc_cpu.
# This may be replaced when dependencies are built.
