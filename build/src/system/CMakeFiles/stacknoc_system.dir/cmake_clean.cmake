file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_system.dir/cmp_system.cc.o"
  "CMakeFiles/stacknoc_system.dir/cmp_system.cc.o.d"
  "CMakeFiles/stacknoc_system.dir/energy.cc.o"
  "CMakeFiles/stacknoc_system.dir/energy.cc.o.d"
  "CMakeFiles/stacknoc_system.dir/metrics.cc.o"
  "CMakeFiles/stacknoc_system.dir/metrics.cc.o.d"
  "CMakeFiles/stacknoc_system.dir/probes.cc.o"
  "CMakeFiles/stacknoc_system.dir/probes.cc.o.d"
  "CMakeFiles/stacknoc_system.dir/scenario.cc.o"
  "CMakeFiles/stacknoc_system.dir/scenario.cc.o.d"
  "libstacknoc_system.a"
  "libstacknoc_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
