file(REMOVE_RECURSE
  "libstacknoc_system.a"
)
