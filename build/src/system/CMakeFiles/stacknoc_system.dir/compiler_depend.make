# Empty compiler generated dependencies file for stacknoc_system.
# This may be replaced when dependencies are built.
