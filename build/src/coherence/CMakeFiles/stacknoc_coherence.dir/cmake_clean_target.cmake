file(REMOVE_RECURSE
  "libstacknoc_coherence.a"
)
