# Empty compiler generated dependencies file for stacknoc_coherence.
# This may be replaced when dependencies are built.
