file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_coherence.dir/l1_cache.cc.o"
  "CMakeFiles/stacknoc_coherence.dir/l1_cache.cc.o.d"
  "CMakeFiles/stacknoc_coherence.dir/l2_bank.cc.o"
  "CMakeFiles/stacknoc_coherence.dir/l2_bank.cc.o.d"
  "libstacknoc_coherence.a"
  "libstacknoc_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
