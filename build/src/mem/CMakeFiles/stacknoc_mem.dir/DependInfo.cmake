
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bank_controller.cc" "src/mem/CMakeFiles/stacknoc_mem.dir/bank_controller.cc.o" "gcc" "src/mem/CMakeFiles/stacknoc_mem.dir/bank_controller.cc.o.d"
  "/root/repo/src/mem/bank_model.cc" "src/mem/CMakeFiles/stacknoc_mem.dir/bank_model.cc.o" "gcc" "src/mem/CMakeFiles/stacknoc_mem.dir/bank_model.cc.o.d"
  "/root/repo/src/mem/memory_controller.cc" "src/mem/CMakeFiles/stacknoc_mem.dir/memory_controller.cc.o" "gcc" "src/mem/CMakeFiles/stacknoc_mem.dir/memory_controller.cc.o.d"
  "/root/repo/src/mem/tech.cc" "src/mem/CMakeFiles/stacknoc_mem.dir/tech.cc.o" "gcc" "src/mem/CMakeFiles/stacknoc_mem.dir/tech.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/stacknoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stacknoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stacknoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
