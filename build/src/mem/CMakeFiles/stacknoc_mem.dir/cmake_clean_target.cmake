file(REMOVE_RECURSE
  "libstacknoc_mem.a"
)
