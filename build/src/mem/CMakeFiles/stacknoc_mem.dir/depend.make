# Empty dependencies file for stacknoc_mem.
# This may be replaced when dependencies are built.
