file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_mem.dir/bank_controller.cc.o"
  "CMakeFiles/stacknoc_mem.dir/bank_controller.cc.o.d"
  "CMakeFiles/stacknoc_mem.dir/bank_model.cc.o"
  "CMakeFiles/stacknoc_mem.dir/bank_model.cc.o.d"
  "CMakeFiles/stacknoc_mem.dir/memory_controller.cc.o"
  "CMakeFiles/stacknoc_mem.dir/memory_controller.cc.o.d"
  "CMakeFiles/stacknoc_mem.dir/tech.cc.o"
  "CMakeFiles/stacknoc_mem.dir/tech.cc.o.d"
  "libstacknoc_mem.a"
  "libstacknoc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
