# Empty compiler generated dependencies file for stacknoc_cache.
# This may be replaced when dependencies are built.
