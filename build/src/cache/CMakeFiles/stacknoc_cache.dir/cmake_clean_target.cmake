file(REMOVE_RECURSE
  "libstacknoc_cache.a"
)
