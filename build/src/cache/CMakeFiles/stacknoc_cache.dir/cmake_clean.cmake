file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_cache.dir/tag_array.cc.o"
  "CMakeFiles/stacknoc_cache.dir/tag_array.cc.o.d"
  "libstacknoc_cache.a"
  "libstacknoc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
