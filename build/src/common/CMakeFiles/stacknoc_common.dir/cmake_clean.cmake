file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_common.dir/logging.cc.o"
  "CMakeFiles/stacknoc_common.dir/logging.cc.o.d"
  "CMakeFiles/stacknoc_common.dir/rng.cc.o"
  "CMakeFiles/stacknoc_common.dir/rng.cc.o.d"
  "libstacknoc_common.a"
  "libstacknoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
