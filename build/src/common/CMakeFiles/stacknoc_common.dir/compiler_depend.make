# Empty compiler generated dependencies file for stacknoc_common.
# This may be replaced when dependencies are built.
