file(REMOVE_RECURSE
  "libstacknoc_common.a"
)
