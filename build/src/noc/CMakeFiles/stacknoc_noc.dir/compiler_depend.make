# Empty compiler generated dependencies file for stacknoc_noc.
# This may be replaced when dependencies are built.
