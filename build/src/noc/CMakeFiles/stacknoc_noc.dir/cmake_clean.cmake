file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_noc.dir/network.cc.o"
  "CMakeFiles/stacknoc_noc.dir/network.cc.o.d"
  "CMakeFiles/stacknoc_noc.dir/network_interface.cc.o"
  "CMakeFiles/stacknoc_noc.dir/network_interface.cc.o.d"
  "CMakeFiles/stacknoc_noc.dir/packet.cc.o"
  "CMakeFiles/stacknoc_noc.dir/packet.cc.o.d"
  "CMakeFiles/stacknoc_noc.dir/router.cc.o"
  "CMakeFiles/stacknoc_noc.dir/router.cc.o.d"
  "CMakeFiles/stacknoc_noc.dir/routing.cc.o"
  "CMakeFiles/stacknoc_noc.dir/routing.cc.o.d"
  "CMakeFiles/stacknoc_noc.dir/topology.cc.o"
  "CMakeFiles/stacknoc_noc.dir/topology.cc.o.d"
  "libstacknoc_noc.a"
  "libstacknoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
