file(REMOVE_RECURSE
  "libstacknoc_noc.a"
)
