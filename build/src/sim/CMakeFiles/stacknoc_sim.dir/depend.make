# Empty dependencies file for stacknoc_sim.
# This may be replaced when dependencies are built.
