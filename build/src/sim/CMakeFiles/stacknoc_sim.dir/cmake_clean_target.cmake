file(REMOVE_RECURSE
  "libstacknoc_sim.a"
)
