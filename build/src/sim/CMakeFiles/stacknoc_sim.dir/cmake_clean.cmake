file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_sim.dir/simulator.cc.o"
  "CMakeFiles/stacknoc_sim.dir/simulator.cc.o.d"
  "CMakeFiles/stacknoc_sim.dir/stats.cc.o"
  "CMakeFiles/stacknoc_sim.dir/stats.cc.o.d"
  "libstacknoc_sim.a"
  "libstacknoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
