# Empty dependencies file for test_noc_basic.
# This may be replaced when dependencies are built.
