file(REMOVE_RECURSE
  "CMakeFiles/test_noc_basic.dir/test_noc_basic.cc.o"
  "CMakeFiles/test_noc_basic.dir/test_noc_basic.cc.o.d"
  "test_noc_basic"
  "test_noc_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
