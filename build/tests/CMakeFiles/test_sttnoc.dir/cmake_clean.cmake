file(REMOVE_RECURSE
  "CMakeFiles/test_sttnoc.dir/test_sttnoc.cc.o"
  "CMakeFiles/test_sttnoc.dir/test_sttnoc.cc.o.d"
  "test_sttnoc"
  "test_sttnoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sttnoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
