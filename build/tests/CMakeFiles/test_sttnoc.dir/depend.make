# Empty dependencies file for test_sttnoc.
# This may be replaced when dependencies are built.
