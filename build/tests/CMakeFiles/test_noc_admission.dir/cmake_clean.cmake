file(REMOVE_RECURSE
  "CMakeFiles/test_noc_admission.dir/test_noc_admission.cc.o"
  "CMakeFiles/test_noc_admission.dir/test_noc_admission.cc.o.d"
  "test_noc_admission"
  "test_noc_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
