# Empty dependencies file for test_noc_admission.
# This may be replaced when dependencies are built.
