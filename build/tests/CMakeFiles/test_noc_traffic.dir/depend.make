# Empty dependencies file for test_noc_traffic.
# This may be replaced when dependencies are built.
