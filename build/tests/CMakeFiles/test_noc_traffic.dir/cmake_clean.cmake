file(REMOVE_RECURSE
  "CMakeFiles/test_noc_traffic.dir/test_noc_traffic.cc.o"
  "CMakeFiles/test_noc_traffic.dir/test_noc_traffic.cc.o.d"
  "test_noc_traffic"
  "test_noc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
