# Empty dependencies file for test_protocol_torture.
# This may be replaced when dependencies are built.
