file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_torture.dir/test_protocol_torture.cc.o"
  "CMakeFiles/test_protocol_torture.dir/test_protocol_torture.cc.o.d"
  "test_protocol_torture"
  "test_protocol_torture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_torture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
