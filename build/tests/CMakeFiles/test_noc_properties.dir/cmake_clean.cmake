file(REMOVE_RECURSE
  "CMakeFiles/test_noc_properties.dir/test_noc_properties.cc.o"
  "CMakeFiles/test_noc_properties.dir/test_noc_properties.cc.o.d"
  "test_noc_properties"
  "test_noc_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
