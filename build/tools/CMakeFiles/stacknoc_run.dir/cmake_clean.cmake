file(REMOVE_RECURSE
  "CMakeFiles/stacknoc_run.dir/stacknoc_run.cpp.o"
  "CMakeFiles/stacknoc_run.dir/stacknoc_run.cpp.o.d"
  "stacknoc_run"
  "stacknoc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacknoc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
