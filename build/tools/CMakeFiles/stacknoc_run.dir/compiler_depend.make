# Empty compiler generated dependencies file for stacknoc_run.
# This may be replaced when dependencies are built.
