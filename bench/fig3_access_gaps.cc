/**
 * @file
 * Figure 3: distribution (in cycles) of accesses to an STT-RAM bank
 * following a write access to the same bank, binned exactly like the
 * paper ([0,16) [16,33) [33,66) [66,99) [99,132) [132,165) 165+), plus
 * the inset "#Req" — average request packets buffered in a cache-layer
 * router destined exactly two hops away.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "workload/app_profiles.hh"

using namespace stacknoc;

namespace {

void
runApp(const std::string &label, const std::vector<std::string> &apps,
       const bench::BenchEnv &e)
{
    // Figure 3 characterises the baseline with the region TSBs in place
    // (the setting whose two-hop windows the proposal exploits) but no
    // re-ordering.
    const auto r =
        bench::runOne(system::scenarios::sttram4Tsb(), apps, e);
    bench::printLabel(label);
    for (const double frac : r.gapFractions)
        std::printf(" %7.1f%%", 100.0 * frac);
    std::printf("  | %5.2f", r.reqAtHops[2]);
    // Fraction of accesses that land while the 33-cycle write is still
    // in service — the paper's "17% (up to 27%) can be delayed".
    if (r.gapFractions.size() >= 2) {
        std::printf("  | %5.1f%%",
                    100.0 * (r.gapFractions[0] + r.gapFractions[1]));
    }
    bench::endRow();
}

} // namespace

int
main()
{
    setVerbose(false);
    const bench::BenchEnv e = bench::env();
    bench::banner(
        "Figure 3: access gaps after a bank write + 2-hop router "
        "occupancy", e);
    std::printf("%-16s %8s %8s %8s %8s %8s %8s %8s  | %5s  | %6s\n", "app",
                "[0,16)", "[16,33)", "[33,66)", "[66,99)", "[99,132)",
                "[132,165)", "165+", "#Req", "<=33");
    bench::printRule(110);

    const std::vector<std::string> named{
        "ferret", "facesim", "streamcluster", "x264", "libquantum",
        "lbm", "sphinx", "hmmer", "sap", "sjas", "tpcc", "sjbb"};
    for (const auto &app : bench::capApps(named, e))
        runApp(app, {app}, e);

    // Suite averages: run a representative multi-programmed panel per
    // suite by assigning one suite app per core round-robin.
    for (const auto suite : {workload::Suite::Parsec,
                             workload::Suite::Spec,
                             workload::Suite::Server}) {
        auto suite_apps = workload::appsOfSuite(suite);
        std::vector<std::string> per_core;
        for (int c = 0; c < 64; ++c)
            per_core.push_back(suite_apps[static_cast<std::size_t>(c) %
                                          suite_apps.size()]);
        runApp(workload::suiteName(suite), per_core, e);
    }
    std::printf("\n#Req: mean request packets in an occupied cache-layer "
                "router destined exactly 2 hops away.\n<=33: accesses "
                "arriving within the 33-cycle write service (the "
                "paper reports 17%% average, up to 27%%).\n");
    return 0;
}
