/**
 * @file
 * Table 2: SRAM and STT-RAM bank parameters at 32 nm, as encoded in the
 * technology model — printed in the paper's row format so the encoding
 * is auditable against the original.
 */

#include <cstdio>

#include "bench_util.hh"
#include "mem/tech.hh"

using namespace stacknoc;

int
main()
{
    const auto e = bench::env();
    bench::banner("Table 2: SRAM and STT-RAM comparison at 32nm", e);
    std::printf("%-14s %9s %9s %9s %11s %9s %9s %9s %9s\n", "bank",
                "area(mm2)", "rdE(nJ)", "wrE(nJ)", "leak(mW)", "rd(ns)",
                "wr(ns)", "rd(cyc)", "wr(cyc)");
    bench::printRule(96);
    for (const auto tech :
         {mem::CacheTech::Sram, mem::CacheTech::SttRam}) {
        const auto &t = mem::bankTech(tech);
        std::printf("%-14s %8.2f %9.3f %9.3f %11.1f %9.3f %9.2f %9llu "
                    "%9llu\n",
                    t.name, t.areaMm2, t.readEnergyNJ, t.writeEnergyNJ,
                    t.leakagePowerMW, t.readLatencyNs, t.writeLatencyNs,
                    static_cast<unsigned long long>(t.readCycles),
                    static_cast<unsigned long long>(t.writeCycles));
    }
    std::printf("\nwrite/read latency ratio (STT-RAM): %llux -- the "
                "\"11x router hop latency\" of Section 3.2\n",
                static_cast<unsigned long long>(
                    mem::bankTech(mem::CacheTech::SttRam).writeCycles /
                    3));
    return 0;
}
