/**
 * @file
 * Extension experiment (paper Section 5): the network-level WB scheme
 * can complement bank-level read priority / read preemption. Compares
 * plain STT-RAM, read priority alone, the WB scheme alone, and the
 * combination, on mean IPC and uncore latency.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace stacknoc;

int
main()
{
    setVerbose(false);
    const bench::BenchEnv e = bench::env();
    bench::banner("Extension: WB scheme x bank read priority", e);

    const std::vector<system::Scenario> scenarios{
        system::scenarios::sttram64Tsb(),
        system::scenarios::sttramReadPriority(),
        system::scenarios::sttram4TsbWb(),
        system::scenarios::sttram4TsbWbReadPriority(),
    };
    const std::vector<std::string> apps =
        bench::capApps({"tpcc", "sjas", "streamcluster", "lbm", "hmmer"},
                       e);

    std::printf("%-16s %-10s", "app", "metric");
    for (const auto &sc : scenarios)
        bench::printHeader(sc.name);
    bench::endRow();
    bench::printRule(26 + 10 * 4);

    for (const auto &app : apps) {
        std::vector<bench::RunResult> rs;
        for (const auto &sc : scenarios)
            rs.push_back(bench::runOne(sc, {app}, e));
        std::printf("%-16s %-10s", app.c_str(), "IPC");
        for (const auto &r : rs)
            bench::printCell(r.meanIpc, 3);
        bench::endRow();
        std::printf("%-16s %-10s", "", "uncore lat");
        for (const auto &r : rs)
            bench::printCell(r.uncoreLatency, 1);
        bench::endRow();
    }
    std::printf("\nRead priority reorders the bank's own queue; the WB "
                "scheme reorders the network feeding it. The paper "
                "conjectures (Section 5) that the two compose.\n");
    return 0;
}
