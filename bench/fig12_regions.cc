/**
 * @file
 * Figure 12: sensitivity of the WB scheme to the number of cache
 * regions (4/8/16) and TSB placement (corner vs staggered). IPC is
 * averaged over a representative application set and normalised to the
 * 4-region corner configuration, matching the paper's presentation.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace stacknoc;

int
main()
{
    setVerbose(false);
    const bench::BenchEnv e = bench::env();
    bench::banner("Figure 12: regions x TSB placement sensitivity", e);

    const std::vector<std::string> apps = bench::capApps(
        {"tpcc", "sap", "streamcluster", "ferret", "lbm", "hmmer",
         "libquantum", "x264"}, e);

    std::printf("%-10s %-10s %10s %12s\n", "regions", "placement",
                "mean IPC", "normalised");
    bench::printRule(46);

    double base = 0.0;
    for (const int regions : {4, 8, 16}) {
        for (const auto placement : {sttnoc::TsbPlacement::Corner,
                                     sttnoc::TsbPlacement::Stagger}) {
            auto sc = system::scenarios::sttram4TsbWb();
            sc.tsbRegions = regions;
            sc.placement = placement;
            double sum = 0.0;
            for (const auto &app : apps)
                sum += bench::runOne(sc, {app}, e).meanIpc;
            const double mean = sum / static_cast<double>(apps.size());
            if (base == 0.0)
                base = mean;
            std::printf("%-10d %-10s %10.3f %12.3f\n", regions,
                        placement == sttnoc::TsbPlacement::Corner
                            ? "corner" : "stagger",
                        mean, mean / base);
        }
    }
    std::printf("\nPaper: staggering gains ~3%%; 8 regions staggered is "
                "best (+5%% over 4-corner); 16 regions degrades (-10%%) "
                "because parents shrink to 1 hop.\n");
    return 0;
}
