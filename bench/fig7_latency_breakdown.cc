/**
 * @file
 * Figure 7: packet latency broken into network latency and queuing
 * latency at the banks, across the six design scenarios. SRAM-64TSB is
 * printed in absolute cycles (the paper shows exact percentages for
 * it); every other scenario is normalised to SRAM-64TSB.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace stacknoc;

int
main()
{
    setVerbose(false);
    const bench::BenchEnv e = bench::env();
    bench::banner("Figure 7: network vs bank-queuing latency", e);

    const std::vector<std::string> apps{"sap", "sjbb", "streamcluster",
                                        "lbm", "hmmer"};
    const auto scenarios = system::scenarios::figureSix();

    std::printf("%-16s %-10s", "app", "metric");
    for (const auto &sc : scenarios)
        bench::printHeader(sc.name);
    bench::endRow();
    bench::printRule(26 + 10 * 6);

    for (const auto &app : bench::capApps(apps, e)) {
        std::vector<double> nets, queues;
        for (const auto &sc : scenarios) {
            const auto r = bench::runOne(sc, {app}, e);
            nets.push_back(r.netLatency);
            queues.push_back(r.queueLatency);
        }
        // Percentage split of the uncore packet latency, like the
        // paper's stacked "Percent" bars.
        std::printf("%-16s %-10s", app.c_str(), "net lat%");
        for (std::size_t s = 0; s < nets.size(); ++s) {
            const double total = nets[s] + queues[s];
            bench::printCell(total > 0 ? 100.0 * nets[s] / total : 0.0,
                             1);
        }
        bench::endRow();
        std::printf("%-16s %-10s", "", "queue lat%");
        for (std::size_t s = 0; s < queues.size(); ++s) {
            const double total = nets[s] + queues[s];
            bench::printCell(total > 0 ? 100.0 * queues[s] / total : 0.0,
                             1);
        }
        bench::endRow();
        std::printf("%-16s %-10s", "", "total(cyc)");
        for (std::size_t s = 0; s < nets.size(); ++s)
            bench::printCell(nets[s] + queues[s], 1);
        bench::endRow();
    }
    std::printf("\nnet/queue rows: share of the uncore packet latency "
                "(network vs bank queuing); total row: absolute "
                "cycles.\n");
    return 0;
}
