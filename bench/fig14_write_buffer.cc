/**
 * @file
 * Figure 14 / Section 4.4: the network-level WB scheme versus the Sun
 * et al. per-bank 20-entry SRAM write buffer with read preemption
 * (BUFF-20), plus the "+1 VC" network-resource variant. Reports the
 * uncore latency (L1-miss round trip through the network, bank and
 * back) normalised to plain STT-RAM with no write buffering.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "workload/app_profiles.hh"

using namespace stacknoc;

int
main()
{
    setVerbose(false);
    const bench::BenchEnv e = bench::env();
    bench::banner("Figure 14: WB scheme vs BUFF-20 write buffering "
                  "(normalised uncore latency; lower is better)", e);

    const std::vector<system::Scenario> scenarios{
        system::scenarios::sttram64Tsb(),   // STT-RAM, no buffering
        system::scenarios::sttramBuff20(),  // BUFF-20
        system::scenarios::sttram4TsbWb(),  // the WB scheme
        system::scenarios::sttram4TsbWbPlus1Vc(),
    };

    std::printf("%-16s", "workload");
    for (const auto &sc : scenarios)
        bench::printHeader(sc.name);
    bench::endRow();
    bench::printRule(16 + 10 * 4);

    auto run_row = [&](const std::string &label,
                       const std::vector<std::string> &apps) {
        bench::printLabel(label);
        double base = 0.0;
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            const auto r = bench::runOne(scenarios[s], apps, e);
            if (s == 0)
                base = r.uncoreLatency;
            bench::printCell(base > 0 ? r.uncoreLatency / base : 0.0);
        }
        bench::endRow();
    };

    // AVG-42: one app per core, round-robin over the full Table 3 set.
    std::vector<std::string> all;
    for (const auto &a : workload::appTable())
        all.push_back(a.name);
    std::vector<std::string> avg42;
    for (int c = 0; c < 64; ++c)
        avg42.push_back(all[static_cast<std::size_t>(c) % all.size()]);
    run_row("AVG-42", avg42);

    for (const char *app : {"tpcc", "sjas", "streamcluster", "lbm"})
        run_row(app, {app});

    std::printf("\nPaper: BUFF-20 cuts uncore latency ~12.5%% on "
                "average; the WB scheme ~18.5%% (6%% better on bursty "
                "apps); +1 VC adds another ~1.6%% at 97%% less area "
                "than the write buffers.\n");
    return 0;
}
