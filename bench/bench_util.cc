#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "server/client.hh"
#include "server/protocol.hh"
#include "snapshot/checkpoint.hh"
#include "system/stats_export.hh"

namespace stacknoc::bench {

namespace {

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

} // namespace

BenchEnv
env()
{
    BenchEnv e;
    e.warmup = envU64("STTNOC_WARMUP", 3000);
    e.measure = envU64("STTNOC_CYCLES", 20000);
    e.case3Mixes = static_cast<int>(envU64("STTNOC_MIXES", 4));
    e.seed = envU64("STTNOC_SEED", 1);
    e.appCap = static_cast<int>(envU64("STTNOC_APPS", 0));
    if (const char *p = std::getenv("STTNOC_JSON"); p && *p)
        e.jsonPath = p;
    if (const char *p = std::getenv("STTNOC_SERVER"); p && *p)
        e.serverSocket = p;
    return e;
}

std::vector<std::string>
capApps(std::vector<std::string> apps, const BenchEnv &e)
{
    if (e.appCap > 0 && static_cast<int>(apps.size()) > e.appCap)
        apps.resize(static_cast<std::size_t>(e.appCap));
    return apps;
}

namespace {

/**
 * Submit one run to the campaign server (STTNOC_SERVER). Fills only
 * the headline RunResult fields from the result payload. @return false
 * when the caller should simulate in-process instead: connection or
 * protocol failure, or a scenario the wire protocol cannot express.
 */
bool
runOneViaServer(const system::Scenario &scenario,
                const std::vector<std::string> &apps, const BenchEnv &e,
                RunResult &r)
{
    server::JobRequest req;
    req.scenario = scenario.name;
    req.apps = apps;
    req.seed = e.seed;
    req.warmup = e.warmup;
    req.cycles = e.measure;

    // The server resolves scenarios by name; a harness that customised
    // scenario fields beyond the named design point cannot go over the
    // wire. Compare canonical warm specs to detect that exactly.
    system::SystemConfig want;
    if (!server::buildConfig(req, want).empty())
        return false;
    system::SystemConfig have = want;
    have.scenario = scenario;
    if (snapshot::canonicalWarmSpec(have, e.warmup) !=
        snapshot::canonicalWarmSpec(want, e.warmup))
        return false;

    server::Connection conn;
    std::string err;
    if (!conn.connectTo(e.serverSocket, err)) {
        std::fprintf(stderr, "bench: %s\n", err.c_str());
        return false;
    }
    std::string cmd;
    {
        std::ostringstream os;
        telemetry::JsonWriter w(os);
        w.beginObject();
        w.kv("cmd", "run");
        server::writeJobRequestMembers(w, req);
        w.endObject();
        cmd = os.str();
    }
    if (!conn.sendLine(cmd, err))
        return false;

    std::string line;
    while (conn.readLine(line, err)) {
        std::string perr;
        const auto doc = telemetry::JsonValue::parse(line, &perr);
        if (!doc || !doc->isObject())
            continue;
        const auto *ev = doc->find("event");
        const std::string kind =
            ev != nullptr && ev->isString() ? ev->asString() : "";
        if (kind == "error") {
            const auto *reason = doc->find("reason");
            std::fprintf(stderr, "bench: server error: %s\n",
                         reason != nullptr && reason->isString()
                             ? reason->asString().c_str()
                             : "?");
            return false;
        }
        if (kind != "result")
            continue;
        const auto *data = doc->find("data");
        if (data == nullptr || !data->isObject())
            return false;
        const auto num = [&](const char *key) {
            const auto *v = data->find(key);
            return v != nullptr && v->isNumber() ? v->asDouble() : 0.0;
        };
        r = RunResult{};
        r.minIpc = num("min_ipc");
        r.meanIpc = num("mean_ipc");
        r.instructionThroughput = num("instruction_throughput");
        r.netLatency = num("avg_network_latency");
        r.queueLatency = num("avg_bank_queue_latency");
        r.uncoreLatency = num("avg_uncore_latency");
        r.energyUJ = num("total_energy_uj");
        return true;
    }
    return false;
}

} // namespace

RunResult
runOne(const system::Scenario &scenario,
       const std::vector<std::string> &apps, const BenchEnv &e,
       const std::function<void(system::SystemConfig &)> &mutate)
{
    // A mutate hook changes the config in ways a server request cannot
    // carry, so those runs always simulate in-process.
    if (!e.serverSocket.empty() && !mutate) {
        RunResult r;
        if (runOneViaServer(scenario, apps, e, r))
            return r;
        std::fprintf(stderr,
                     "bench: falling back to in-process run for %s\n",
                     scenario.name.c_str());
    }

    system::SystemConfig cfg;
    cfg.scenario = scenario;
    cfg.apps = apps;
    cfg.seed = e.seed;
    // Energy numbers (Figure 8) come from the streaming EnergyProbe
    // accumulation path; it reconciles with the end-of-run
    // computeEnergy to below 1e-6 relative (test_power_thermal pins
    // the two paths together).
    cfg.power = true;
    if (mutate)
        mutate(cfg);

    system::CmpSystem sys(cfg);
    sys.warmup(e.warmup);
    sys.run(e.measure);
    sys.finalizeTelemetry();

    RunResult r;
    r.metrics = sys.metrics();
    r.minIpc = r.metrics.minIpc();
    r.meanIpc = r.metrics.meanIpc();
    r.instructionThroughput = r.metrics.instructionThroughput();
    r.netLatency = r.metrics.avgNetworkLatency;
    r.queueLatency = r.metrics.avgBankQueueLatency;
    r.uncoreLatency = r.metrics.avgUncoreLatency;
    r.energyUJ = sys.power() != nullptr
                     ? sys.power()->totalUJ()
                     : r.metrics.energy.totalUJ();

    if (const auto *gap =
            sys.cacheStats().findDistribution("gap_after_write")) {
        for (std::size_t b = 0; b < gap->numBins(); ++b)
            r.gapFractions.push_back(gap->binFraction(b));
    }
    if (sys.probe()) {
        for (int h = 1; h <= 3; ++h)
            r.reqAtHops[h] = sys.probe()->avgRequestsAtHops(h);
    }

    const double instrs = static_cast<double>(
        sys.coreStats().counter("instructions_committed").value());
    if (instrs > 0) {
        auto pki = [&](const char *counter_name) {
            return 1000.0 *
                   static_cast<double>(
                       sys.cacheStats().counter(counter_name).value()) /
                   instrs;
        };
        // Load misses plus no-allocate store writes: every one becomes
        // an L2 access, matching the paper's Table 3 accounting.
        r.l1mpki = pki("l1_misses") + pki("l1_store_writes");
        r.l2rpki = pki("l2_gets");
        r.l2wpki = pki("l2_stores");
        r.wbpki = pki("l2_putm");
        const double accesses = static_cast<double>(
            sys.cacheStats().counter("l2_gets").value() +
            sys.cacheStats().counter("l2_getm").value() +
            sys.cacheStats().counter("l2_stores").value());
        if (accesses > 0) {
            r.l2MissRatio =
                static_cast<double>(
                    sys.cacheStats().counter("l2_misses").value()) /
                accesses;
        }
    }

    // One compact JSON line per run, appended so a whole harness
    // invocation accumulates a JSONL log (see STTNOC_JSON).
    if (!e.jsonPath.empty()) {
        std::ofstream out(e.jsonPath, std::ios::app);
        if (out) {
            system::RunInfo info;
            info.scenario = scenario.name;
            for (const auto &a : apps) {
                if (!info.app.empty())
                    info.app += ",";
                info.app += a;
            }
            info.seed = e.seed;
            info.warmupCycles = e.warmup;
            info.measuredCycles = e.measure;
            system::writeJsonStats(out, sys, info);
        }
    }
    return r;
}

double
AloneIpcCache::aloneIpc(const system::Scenario &scenario,
                        const std::string &app)
{
    const auto key = std::make_pair(scenario.name, app);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    const RunResult r = runOne(scenario, {app}, env_);
    cache_[key] = r.meanIpc;
    return r.meanIpc;
}

void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

void
printLabel(const std::string &label)
{
    std::printf("%-16s", label.c_str());
}

void
printCell(double value, int precision)
{
    std::printf(" %9.*f", precision, value);
}

void
printHeader(const std::string &name)
{
    std::printf(" %9s", name.size() > 9
                            ? name.substr(name.size() - 9).c_str()
                            : name.c_str());
}

void
endRow()
{
    std::putchar('\n');
}

void
banner(const std::string &title, const BenchEnv &e)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("warmup=%llu cycles, measure=%llu cycles, seed=%llu\n",
                static_cast<unsigned long long>(e.warmup),
                static_cast<unsigned long long>(e.measure),
                static_cast<unsigned long long>(e.seed));
}

} // namespace stacknoc::bench
