/**
 * @file
 * Figure 6: system throughput of the six design scenarios, normalised
 * to SRAM-64TSB — IPC (slowest thread) for the server and PARSEC
 * multi-threaded panels, instruction throughput for the SPEC-2006
 * multi-programmed panel.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "workload/app_profiles.hh"

using namespace stacknoc;
using bench::BenchEnv;

namespace {

struct Panel
{
    const char *title;
    bool useThroughput; //!< instruction throughput vs slowest-thread IPC
    std::vector<std::string> apps;
};

double
metricOf(const bench::RunResult &r, bool use_throughput)
{
    return use_throughput ? r.instructionThroughput : r.minIpc;
}

void
runPanel(const Panel &panel, const BenchEnv &e)
{
    const auto scenarios = system::scenarios::figureSix();
    std::printf("\n-- %s (normalised to %s; %s) --\n", panel.title,
                scenarios[0].name.c_str(),
                panel.useThroughput ? "instruction throughput"
                                    : "slowest-thread IPC");
    bench::printLabel("app");
    for (const auto &sc : scenarios)
        bench::printHeader(sc.name);
    bench::endRow();
    bench::printRule(16 + 10 * 6);

    std::vector<double> sums(scenarios.size(), 0.0);
    const auto apps = bench::capApps(panel.apps, e);
    for (const auto &app : apps) {
        bench::printLabel(app);
        double base = 0.0;
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            const auto r = bench::runOne(scenarios[s], {app}, e);
            const double v = metricOf(r, panel.useThroughput);
            if (s == 0)
                base = v;
            const double norm = base > 0 ? v / base : 0.0;
            sums[s] += norm;
            bench::printCell(norm);
        }
        bench::endRow();
    }
    bench::printLabel("Avg.");
    for (std::size_t s = 0; s < scenarios.size(); ++s)
        bench::printCell(sums[s] / static_cast<double>(apps.size()));
    bench::endRow();
}

} // namespace

int
main()
{
    setVerbose(false);
    const BenchEnv e = bench::env();
    bench::banner("Figure 6: throughput of the six design scenarios", e);

    const Panel panels[] = {
        {"SERVER", false, {"sap", "sjbb", "tpcc", "sjas"}},
        {"PARSEC", false,
         {"ferret", "facesim", "vips", "canneal", "dedup",
          "streamcluster", "blackscholes", "bodytrack", "fluidanimate",
          "freqmine", "raytrace", "swaptions", "x264"}},
        {"SPEC2006 (64 copies, multiprogrammed)", true,
         {"soplex", "cactus", "lbm", "hmmer", "gobmk", "milc",
          "libquantum", "gemsfdtd", "mcf", "xalancbmk", "leslie",
          "omnetpp", "povray"}},
    };
    for (const auto &panel : panels)
        runPanel(panel, e);
    return 0;
}
