/**
 * @file
 * Figure 9: weighted speedup (WS, Eq. 2) and instruction throughput
 * (IT, Eq. 1) of the multi-programmed case studies — Case-1 (all write
 * intensive), Case-2 (bursty-write + read intensive), Case-3 (aggregate
 * over randomly drawn mixes; the paper uses 32, STTNOC_MIXES controls
 * how many run here). Values normalised to SRAM-64TSB.
 */

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "workload/mixes.hh"

using namespace stacknoc;

namespace {

struct CaseResult
{
    double ws = 0.0;
    double it = 0.0;
};

CaseResult
runMix(const system::Scenario &sc, const workload::Mix &mix,
       const bench::BenchEnv &e, bench::AloneIpcCache &alone)
{
    const auto r = bench::runOne(sc, mix, e);
    std::vector<double> alone_ipc;
    for (const auto &app : mix)
        alone_ipc.push_back(alone.aloneIpc(sc, app));
    CaseResult out;
    out.ws = system::weightedSpeedup(r.metrics.ipc, alone_ipc);
    out.it = r.instructionThroughput;
    return out;
}

} // namespace

int
main()
{
    setVerbose(false);
    const bench::BenchEnv e = bench::env();
    bench::banner("Figure 9: multiprogrammed case studies (WS and IT, "
                  "normalised to SRAM-64TSB)", e);

    const auto scenarios = system::scenarios::figureSix();
    bench::AloneIpcCache alone(e);

    struct Case
    {
        const char *name;
        std::vector<workload::Mix> mixes;
    };
    std::vector<Case> cases;
    cases.push_back({"Case-1 (write intensive)", {workload::mixCase1()}});
    cases.push_back({"Case-2 (bursty+read mix)", {workload::mixCase2()}});
    auto case3 = workload::mixesCase3(e.seed);
    if (static_cast<int>(case3.size()) > e.case3Mixes)
        case3.resize(static_cast<std::size_t>(e.case3Mixes));
    cases.push_back({"Case-3 (aggregate mixes)", std::move(case3)});

    for (const auto &c : cases) {
        std::printf("\n-- %s (%zu mix%s) --\n", c.name, c.mixes.size(),
                    c.mixes.size() == 1 ? "" : "es");
        std::printf("%-10s", "metric");
        for (const auto &sc : scenarios)
            bench::printHeader(sc.name);
        bench::endRow();
        bench::printRule(10 + 10 * 6);

        std::vector<double> ws(scenarios.size(), 0.0);
        std::vector<double> it(scenarios.size(), 0.0);
        for (const auto &mix : c.mixes) {
            for (std::size_t s = 0; s < scenarios.size(); ++s) {
                const auto res = runMix(scenarios[s], mix, e, alone);
                ws[s] += res.ws;
                it[s] += res.it;
            }
        }
        std::printf("%-10s", "WS");
        for (std::size_t s = 0; s < scenarios.size(); ++s)
            bench::printCell(ws[0] > 0 ? ws[s] / ws[0] : 0.0);
        bench::endRow();
        std::printf("%-10s", "IT");
        for (std::size_t s = 0; s < scenarios.size(); ++s)
            bench::printCell(it[0] > 0 ? it[s] / it[0] : 0.0);
        bench::endRow();
    }
    return 0;
}
