/**
 * @file
 * Ablation study of design choices called out in DESIGN.md:
 *  (1) delay mode — arbitration priority (our default) versus the
 *      literal blocking hold of the paper's description;
 *  (2) the bank write-admission bound, which controls how much of a
 *      write burst queues at the bank versus in the network.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace stacknoc;

int
main()
{
    setVerbose(false);
    const bench::BenchEnv e = bench::env();
    bench::banner("Ablation: delay mode and bank write admission", e);

    const std::vector<std::string> apps =
        bench::capApps({"tpcc", "sjbb", "lbm"}, e);

    std::printf("\n-- (1) delay mode (WB estimator), mean IPC --\n");
    std::printf("%-16s %10s %10s %10s\n", "app", "none", "priority",
                "hold");
    bench::printRule(50);
    for (const auto &app : apps) {
        const double none =
            bench::runOne(system::scenarios::sttram4Tsb(), {app}, e)
                .meanIpc;
        auto prio = system::scenarios::sttram4TsbWb();
        prio.delayMode = sttnoc::DelayMode::Priority;
        auto hold = system::scenarios::sttram4TsbWb();
        hold.delayMode = sttnoc::DelayMode::Hold;
        std::printf("%-16s %10.3f %10.3f %10.3f\n", app.c_str(), none,
                    bench::runOne(prio, {app}, e).meanIpc,
                    bench::runOne(hold, {app}, e).meanIpc);
    }
    std::printf("Blocking holds dam the region's write artery "
                "(wormhole HoL); priority captures the re-ordering "
                "without the pathology.\n");

    std::printf("\n-- (2) bank write-admission bound, mean IPC "
                "(MRAM-4TSB-WB) --\n");
    std::printf("%-16s %10s %10s %10s\n", "app", "cap=2", "cap=6",
                "cap=32");
    bench::printRule(50);
    for (const auto &app : apps) {
        std::printf("%-16s", app.c_str());
        for (const int cap : {2, 6, 32}) {
            const auto r = bench::runOne(
                system::scenarios::sttram4TsbWb(), {app}, e,
                [cap](system::SystemConfig &cfg) {
                    cfg.bankWriteCap = cap;
                });
            bench::printCell(r.meanIpc, 3);
        }
        bench::endRow();
    }
    std::printf("Small caps push write bursts into the network (deeper "
                "congestion trees); large caps buffer them at the "
                "bank.\n");
    return 0;
}
