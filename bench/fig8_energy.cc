/**
 * @file
 * Figure 8: uncore (cache + interconnect) energy of the design
 * scenarios, normalised to SRAM-64TSB. The paper's key result is the
 * ~54% average reduction from STT-RAM's low leakage.
 *
 * Energy is taken from the streaming EnergyProbe accumulation
 * (telemetry/power.hh) rather than the end-of-run scalar; the two
 * paths reconcile to below 1e-6 relative error, a bound enforced by
 * tests/test_power_thermal.cc so they can never drift apart.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace stacknoc;

namespace {

void
runPanel(const char *title, const std::vector<std::string> &apps,
         const bench::BenchEnv &e, double *sum, int *count)
{
    const auto scenarios = system::scenarios::figureSix();
    std::printf("\n-- %s --\n", title);
    bench::printLabel("app");
    for (const auto &sc : scenarios)
        bench::printHeader(sc.name);
    bench::endRow();
    bench::printRule(16 + 10 * 6);
    for (const auto &app : apps) {
        bench::printLabel(app);
        double base = 0.0;
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            const auto r = bench::runOne(scenarios[s], {app}, e);
            if (s == 0)
                base = r.energyUJ;
            const double norm = base > 0 ? r.energyUJ / base : 0.0;
            bench::printCell(norm);
            if (s == scenarios.size() - 1) {
                *sum += norm;
                ++*count;
            }
        }
        bench::endRow();
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    const bench::BenchEnv e = bench::env();
    bench::banner("Figure 8: uncore energy normalised to SRAM-64TSB", e);

    double wb_sum = 0.0;
    int wb_count = 0;
    runPanel("SERVER", bench::capApps({"sap", "sjbb", "tpcc", "sjas"}, e),
             e, &wb_sum, &wb_count);
    runPanel("PARSEC",
             bench::capApps({"ferret", "facesim", "vips", "canneal",
                             "dedup", "streamcluster", "blackscholes",
                             "bodytrack", "fluidanimate", "freqmine",
                             "raytrace", "swaptions", "x264"}, e),
             e, &wb_sum, &wb_count);
    runPanel("SPEC2006",
             bench::capApps({"soplex", "cactus", "lbm", "hmmer", "gobmk",
                             "milc", "libquantum", "gemsfdtd", "mcf",
                             "xalancbmk", "leslie", "omnetpp", "povray"},
                            e),
             e, &wb_sum, &wb_count);

    if (wb_count > 0) {
        std::printf("\nMRAM-4TSB-WB mean energy vs SRAM-64TSB: %.1f%% "
                    "(paper: ~46%%, i.e. 54%% saving)\n",
                    100.0 * wb_sum / wb_count);
    }
    return 0;
}
