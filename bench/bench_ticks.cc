/**
 * @file
 * Idle-elision throughput micro-benchmark and CI perf smoke: runs the
 * same tpcc system twice — elision on and off (--no-elide semantics) —
 * and reports ticks/sec for both plus the active-set occupancy. With
 * --check, exits nonzero when the elision build is slower than the
 * full walk beyond a tolerance, so a regression that makes the skip
 * machinery cost more than the skipped ticks fails CI.
 *
 * Usage: bench_ticks [--cycles N] [--warmup N] [--scenario NAME]
 *                    [--threads N] [--check] [--tolerance F]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "noc/packet.hh"
#include "system/cmp_system.hh"

using namespace stacknoc;

namespace {

struct Result
{
    double ticksPerSec = 0.0;
    double activeFraction = 1.0;
    double wallSeconds = 0.0;
};

Result
measure(const std::string &scenario, Cycle warmup, Cycle cycles,
        int threads, bool elide)
{
    noc::resetPacketIds();
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = scenario == "MRAM-64TSB"
                       ? system::scenarios::sttram64Tsb()
                       : scenario == "MRAM-4TSB"
                             ? system::scenarios::sttram4Tsb()
                             : system::scenarios::sttram4TsbWb();
    cfg.apps = {"tpcc"};
    cfg.seed = 1;
    cfg.threads = threads;
    cfg.elide = elide;
    system::CmpSystem sys(cfg);
    sys.warmup(warmup);
    sys.run(cycles);
    Result r;
    r.ticksPerSec = sys.ticksPerSecond();
    r.activeFraction = sys.engineActiveFraction();
    r.wallSeconds = sys.wallSeconds();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Cycle cycles = 20000, warmup = 2000;
    std::string scenario = "MRAM-4TSB-WB";
    int threads = 1;
    bool check = false;
    double tolerance = 0.05;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need = [&](int at) {
            fatal_if(at + 1 >= argc, "%s needs a value", argv[at]);
            return argv[at + 1];
        };
        if (arg == "--cycles") {
            cycles = std::strtoull(need(i), nullptr, 10);
            ++i;
        } else if (arg == "--warmup") {
            warmup = std::strtoull(need(i), nullptr, 10);
            ++i;
        } else if (arg == "--scenario") {
            scenario = need(i);
            ++i;
        } else if (arg == "--threads") {
            threads = std::atoi(need(i));
            fatal_if(threads < 1, "--threads must be >= 1");
            ++i;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--tolerance") {
            tolerance = std::strtod(need(i), nullptr);
            ++i;
        } else {
            std::fprintf(stderr, "bench_ticks: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    // Full walk first so caches are equally warm for the elision leg.
    const Result off =
        measure(scenario, warmup, cycles, threads, false);
    const Result on = measure(scenario, warmup, cycles, threads, true);

    const double speedup =
        off.ticksPerSec > 0.0 ? on.ticksPerSec / off.ticksPerSec : 0.0;
    std::printf("bench_ticks scenario=%s threads=%d cycles=%llu\n",
                scenario.c_str(), threads,
                static_cast<unsigned long long>(cycles));
    std::printf("  no-elide: %.0f ticks/s (wall %.3fs)\n",
                off.ticksPerSec, off.wallSeconds);
    std::printf("  elide:    %.0f ticks/s (wall %.3fs, "
                "active_fraction %.3f)\n",
                on.ticksPerSec, on.wallSeconds, on.activeFraction);
    std::printf("  speedup:  %.2fx\n", speedup);

    if (check && speedup < 1.0 - tolerance) {
        std::fprintf(stderr,
                     "bench_ticks: FAIL — elision build is %.1f%% "
                     "slower than --no-elide (tolerance %.1f%%)\n",
                     (1.0 - speedup) * 100.0, tolerance * 100.0);
        return 1;
    }
    return 0;
}
