/**
 * @file
 * Table 3: measured characterisation of all 42 synthetic applications
 * running alone on the baseline STT-RAM CMP, next to the paper's
 * targets. Validates that the workload generator reproduces the rates
 * the evaluation depends on.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/app_profiles.hh"

using namespace stacknoc;

int
main()
{
    setVerbose(false);
    bench::BenchEnv e = bench::env();
    // Characterisation converges quickly; use a shorter default window.
    if (e.measure > 10000)
        e.measure = 10000;
    bench::banner(
        "Table 3: application characterisation (measured vs paper)", e);

    std::printf("%-14s %6s | %8s %8s | %8s %8s | %8s %8s | %8s %8s\n",
                "app", "bursty", "l1mpki", "(paper)", "l2rpki", "(paper)",
                "l2wpki", "(paper)", "l2miss%", "(paper)");
    bench::printRule(110);

    const auto scenario = system::scenarios::sttram64Tsb();
    auto apps = std::vector<std::string>{};
    for (const auto &a : workload::appTable())
        apps.push_back(a.name);
    apps = bench::capApps(apps, e);

    for (const auto &name : apps) {
        const auto &p = workload::findApp(name);
        const auto r = bench::runOne(scenario, {name}, e);
        const double paper_miss_ratio =
            p.l1mpki > 0 ? 100.0 * std::min(1.0, p.l2mpki / p.l1mpki)
                         : 0.0;
        std::printf("%-14s %6s | %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f"
                    " | %8.1f %8.1f\n",
                    name.c_str(), p.bursty ? "High" : "Low",
                    r.l1mpki, p.l1mpki, r.l2rpki, p.l2rpki,
                    r.l2wpki, p.l2wpki, 100.0 * r.l2MissRatio,
                    paper_miss_ratio);
    }
    std::printf("\nl1mpki(meas) counts load misses + store writes; "
                "l2wpki = StoreWrite rate, l2rpki = GetS rate.\n");
    return 0;
}
