/**
 * @file
 * Figure 10: maximum slowdown (Eq. 3, smaller is better) of each
 * application in the Case-2 mix, for MRAM-64TSB vs MRAM-4TSB-WB —
 * the paper's fairness result: the WB scheme stops bursty writers from
 * starving the read-intensive co-runners.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "workload/mixes.hh"

using namespace stacknoc;

int
main()
{
    setVerbose(false);
    const bench::BenchEnv e = bench::env();
    bench::banner("Figure 10: max slowdown per app in Case-2", e);

    const auto mix = workload::mixCase2();
    const auto apps = workload::case2Apps();
    const std::vector<system::Scenario> scenarios{
        system::scenarios::sttram64Tsb(),
        system::scenarios::sttram4TsbWb()};

    bench::AloneIpcCache alone(e);

    std::printf("%-16s", "app");
    for (const auto &sc : scenarios)
        bench::printHeader(sc.name);
    bench::endRow();
    bench::printRule(16 + 10 * 2);

    std::vector<std::vector<double>> slowdowns(apps.size());
    for (const auto &sc : scenarios) {
        const auto r = bench::runOne(sc, mix, e);
        for (std::size_t a = 0; a < apps.size(); ++a) {
            // Cores running app a: indices a*16 .. a*16+15 (16 copies).
            double worst = 0.0;
            const double alone_ipc = alone.aloneIpc(sc, apps[a]);
            for (int c = static_cast<int>(a) * 16;
                 c < (static_cast<int>(a) + 1) * 16; ++c) {
                const double shared =
                    r.metrics.ipc[static_cast<std::size_t>(c)];
                if (shared > 0)
                    worst = std::max(worst, alone_ipc / shared);
            }
            slowdowns[a].push_back(worst);
        }
    }
    for (std::size_t a = 0; a < apps.size(); ++a) {
        bench::printLabel(apps[a]);
        for (const double v : slowdowns[a])
            bench::printCell(v);
        bench::endRow();
    }
    std::printf("\nSmaller is better; the paper reports the WB scheme "
                "cutting the read apps' max slowdown by ~14%%.\n");
    return 0;
}
