/**
 * @file
 * google-benchmark micro-benchmarks of the substrate components:
 * router pipeline throughput, tag array operations, the synthetic
 * stream generator, the congestion estimators, and whole-system
 * simulation speed.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "cache/tag_array.hh"
#include "common/rng.hh"
#include "noc/network.hh"
#include "noc/routing.hh"
#include "sim/simulator.hh"
#include "sttnoc/estimator.hh"
#include "system/cmp_system.hh"
#include "workload/synthetic_stream.hh"

using namespace stacknoc;

namespace {

void
BM_RouterIdleTick(benchmark::State &state)
{
    Simulator sim;
    const MeshShape shape(8, 8, 2);
    noc::ArbitrationPolicy policy;
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<noc::ZxyRouting>(shape), policy);
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_RouterIdleTick);

void
BM_NetworkLoadedTick(benchmark::State &state)
{
    Simulator sim;
    const MeshShape shape(8, 8, 2);
    noc::ArbitrationPolicy policy;
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<noc::ZxyRouting>(shape), policy);
    Rng rng(1);
    Cycle t = 0;
    for (auto _ : state) {
        for (NodeId n = 0; n < 128; ++n) {
            if (rng.chance(0.05)) {
                net.ni(n).send(
                    noc::makePacket(noc::PacketClass::DataResp, n,
                                    static_cast<NodeId>(rng.below(128))),
                    t);
            }
        }
        sim.step();
        ++t;
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_NetworkLoadedTick);

void
BM_TagArrayFindHit(benchmark::State &state)
{
    cache::TagArray tags(64, 4);
    for (BlockAddr a = 0; a < 256; ++a)
        tags.allocate(a, nullptr);
    BlockAddr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tags.find(a));
        a = (a + 1) % 256;
    }
}
BENCHMARK(BM_TagArrayFindHit);

void
BM_TagArrayAllocateEvict(benchmark::State &state)
{
    cache::TagArray tags(64, 4);
    BlockAddr a = 0;
    for (auto _ : state) {
        cache::TagEntry evicted;
        benchmark::DoNotOptimize(tags.allocate(a++, &evicted));
    }
}
BENCHMARK(BM_TagArrayAllocateEvict);

void
BM_SyntheticStreamNext(benchmark::State &state)
{
    workload::StreamParams params;
    workload::SyntheticStream stream(workload::findApp("tpcc"), 0, 1,
                                     params);
    for (auto _ : state)
        benchmark::DoNotOptimize(stream.next());
}
BENCHMARK(BM_SyntheticStreamNext);

void
BM_WindowEstimatorForward(benchmark::State &state)
{
    const MeshShape shape(8, 8, 2);
    sttnoc::RegionMap rm(shape, sttnoc::RegionConfig{});
    sttnoc::ParentMap pm(rm, 2);
    sttnoc::SttAwareParams params;
    sttnoc::WindowEstimator est(rm, pm, params);
    auto pkt = noc::makePacket(noc::PacketClass::StoreWrite, 7, 75);
    pkt->destBank = rm.bankOfNode(75);
    Cycle t = 0;
    for (auto _ : state) {
        est.onForward(pkt->destBank, *pkt, 91, t++);
        benchmark::DoNotOptimize(est.estimate(pkt->destBank, t));
    }
}
BENCHMARK(BM_WindowEstimatorForward);

void
BM_FullSystemCycle(benchmark::State &state)
{
    setVerbose(false);
    system::SystemConfig cfg;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    cfg.apps = {"tpcc"};
    system::CmpSystem sys(cfg);
    sys.run(2000); // warm
    for (auto _ : state)
        sys.run(1);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullSystemCycle);

} // namespace

BENCHMARK_MAIN();
