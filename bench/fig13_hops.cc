/**
 * @file
 * Figure 13: sensitivity to the parent-child distance H.
 * (a) average number of re-orderable request packets in a cache-layer
 *     router at 1, 2 and 3 hops from their destination bank;
 * (b) mean IPC of the WB scheme with H = 1, 2, 3, normalised to the
 *     SRAM-64TSB baseline (the paper's "IPC improvement" axis).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace stacknoc;

int
main()
{
    setVerbose(false);
    const bench::BenchEnv e = bench::env();
    bench::banner("Figure 13: parent-child hop distance sensitivity", e);

    const std::vector<std::string> named = bench::capApps(
        {"ferret", "facesim", "streamcluster", "x264", "lbm", "hmmer",
         "libquantum", "sphinx", "sap", "sjas", "tpcc", "sjbb"}, e);

    // (a) Occupancy by distance, from the restricted baseline.
    std::printf("\n-- (a) requests per occupied router at H hops --\n");
    std::printf("%-16s %8s %8s %8s\n", "app", "1 hop", "2 hop", "3 hop");
    bench::printRule(44);
    double sums[4] = {0, 0, 0, 0};
    for (const auto &app : named) {
        const auto r =
            bench::runOne(system::scenarios::sttram4Tsb(), {app}, e);
        std::printf("%-16s %8.2f %8.2f %8.2f\n", app.c_str(),
                    r.reqAtHops[1], r.reqAtHops[2], r.reqAtHops[3]);
        for (int h = 1; h <= 3; ++h)
            sums[h] += r.reqAtHops[h];
    }
    std::printf("%-16s %8.2f %8.2f %8.2f\n", "Avg.",
                sums[1] / static_cast<double>(named.size()),
                sums[2] / static_cast<double>(named.size()),
                sums[3] / static_cast<double>(named.size()));

    // (b) IPC vs H for the WB scheme.
    std::printf("\n-- (b) WB-scheme IPC vs H (normalised to "
                "SRAM-64TSB) --\n");
    const std::vector<std::string> perf_apps = bench::capApps(
        {"tpcc", "sap", "streamcluster", "lbm", "hmmer", "x264"}, e);
    double base_sum = 0.0;
    for (const auto &app : perf_apps) {
        base_sum += bench::runOne(system::scenarios::sram64Tsb(), {app},
                                  e).meanIpc;
    }
    std::printf("%-8s %12s\n", "H", "norm. IPC");
    bench::printRule(22);
    for (const int hops : {1, 2, 3}) {
        auto sc = system::scenarios::sttram4TsbWb();
        sc.parentHops = hops;
        double sum = 0.0;
        for (const auto &app : perf_apps)
            sum += bench::runOne(sc, {app}, e).meanIpc;
        std::printf("%-8d %12.3f\n", hops, sum / base_sum);
    }
    std::printf("\nPaper: H=1 offers too few packets to re-order, H=3 "
                "estimates congestion poorly; H=2 is the sweet spot.\n");
    return 0;
}
