/**
 * @file
 * Shared plumbing for the paper-reproduction benchmark harnesses: run
 * length control through environment variables, single-experiment
 * execution, and fixed-width table printing.
 *
 * Environment knobs:
 *   STTNOC_WARMUP  warm-up cycles per run  (default 3000)
 *   STTNOC_CYCLES  measured cycles per run (default 20000)
 *   STTNOC_MIXES   Case-3 mixes to run     (default 4, paper uses 32)
 *   STTNOC_SEED    experiment seed         (default 1)
 *   STTNOC_APPS    cap on apps per panel   (default 0 = all)
 *   STTNOC_JSON    append one JSON line per run to this file
 *   STTNOC_SERVER  submit runs to the stacknoc_serve campaign server
 *                  on this Unix socket instead of simulating in-process
 *                  (headline metrics only; falls back to in-process for
 *                  runs the wire protocol cannot express)
 */

#ifndef STACKNOC_BENCH_BENCH_UTIL_HH
#define STACKNOC_BENCH_BENCH_UTIL_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "system/cmp_system.hh"

namespace stacknoc::bench {

/** Run-length and repetition knobs. */
struct BenchEnv
{
    Cycle warmup = 3000;
    Cycle measure = 20000;
    int case3Mixes = 4;
    std::uint64_t seed = 1;
    int appCap = 0; //!< 0 = no cap
    std::string jsonPath; //!< empty = no JSON-lines output
    /** Campaign-server socket; empty = simulate in-process. Server
     *  runs fill only the headline RunResult fields (IPC, throughput,
     *  latencies, energy) — distributions and probes stay zero. */
    std::string serverSocket;
};

/** @return knobs parsed from the environment. */
BenchEnv env();

/** Everything a figure needs from one simulation run. */
struct RunResult
{
    system::Metrics metrics;
    double minIpc = 0;
    double meanIpc = 0;
    double instructionThroughput = 0;
    double netLatency = 0;   //!< mean packet network latency
    double queueLatency = 0; //!< mean bank queuing latency
    double uncoreLatency = 0; //!< mean L1-miss round trip
    double energyUJ = 0;
    /** Figure-3 gap-after-write distribution (fractions per bin). */
    std::vector<double> gapFractions;
    /** Figure-3/13 probe: avg requests at H hops, H = 1..3. */
    double reqAtHops[4] = {0, 0, 0, 0};
    /** Measured characterisation (per kilo-instruction). */
    double l1mpki = 0, l2rpki = 0, l2wpki = 0, wbpki = 0;
    double l2MissRatio = 0;
};

/**
 * Build, warm up, and measure one system.
 *
 * @param scenario design point.
 * @param apps one entry (replicated) or one per core.
 * @param e run lengths and seed.
 * @param mutate optional hook to adjust the SystemConfig before build.
 */
RunResult runOne(const system::Scenario &scenario,
                 const std::vector<std::string> &apps, const BenchEnv &e,
                 const std::function<void(system::SystemConfig &)>
                     &mutate = nullptr);

/**
 * Memoising runner for "alone" IPC baselines: 64 copies of @p app under
 * @p scenario. Cached per (scenario name, app).
 */
class AloneIpcCache
{
  public:
    explicit AloneIpcCache(const BenchEnv &e) : env_(e) {}

    double aloneIpc(const system::Scenario &scenario,
                    const std::string &app);

  private:
    BenchEnv env_;
    std::map<std::pair<std::string, std::string>, double> cache_;
};

/** Truncate @p apps to the STTNOC_APPS cap (0 = keep all). */
std::vector<std::string> capApps(std::vector<std::string> apps,
                                 const BenchEnv &e);

// --- table printing -------------------------------------------------

/** Print a rule like "----". */
void printRule(int width);

/** Print the left-hand label cell. */
void printLabel(const std::string &label);

/** Print one numeric cell with @p precision decimals. */
void printCell(double value, int precision = 2);

/** Print a header cell. */
void printHeader(const std::string &name);

/** End the row. */
void endRow();

/** Print the standard harness banner for a figure/table. */
void banner(const std::string &title, const BenchEnv &e);

} // namespace stacknoc::bench

#endif // STACKNOC_BENCH_BENCH_UTIL_HH
