/**
 * @file
 * Run results and the paper's evaluation metrics: IPC, instruction
 * throughput (Eq. 1), weighted speedup (Eq. 2), maximum slowdown (Eq. 3).
 */

#ifndef STACKNOC_SYSTEM_METRICS_HH
#define STACKNOC_SYSTEM_METRICS_HH

#include <vector>

#include "common/types.hh"
#include "system/energy.hh"

namespace stacknoc::system {

/** Results of one measured window. */
struct Metrics
{
    Cycle cycles = 0;
    std::vector<double> ipc;      //!< per core

    double avgNetworkLatency = 0; //!< NI inject -> eject, cycles
    double avgBankQueueLatency = 0; //!< arrival -> bank service start
    double avgUncoreLatency = 0;  //!< L1 miss round trip, cycles

    /** Network-latency tail (from the per-packet histogram). */
    double p50NetworkLatency = 0;
    double p95NetworkLatency = 0;
    double p99NetworkLatency = 0;

    EnergyBreakdown energy;

    /** Eq. (1): sum of per-core IPC. */
    double instructionThroughput() const;

    /** Slowest-core IPC — the paper reports multi-threaded results for
     *  the slowest thread. */
    double minIpc() const;

    /** Mean per-core IPC. */
    double meanIpc() const;
};

/** Eq. (2): sum_i IPCshared_i / IPCalone_i. */
double weightedSpeedup(const std::vector<double> &shared_ipc,
                       const std::vector<double> &alone_ipc);

/** Eq. (3): max_i IPCalone_i / IPCshared_i. */
double maxSlowdown(const std::vector<double> &shared_ipc,
                   const std::vector<double> &alone_ipc);

} // namespace stacknoc::system

#endif // STACKNOC_SYSTEM_METRICS_HH
