/**
 * @file
 * The assembled 3D CMP: cores + private L1s on the top layer, STT-RAM or
 * SRAM L2 banks + directory on the stacked layer, four memory
 * controllers, and the 3D NoC with (optionally) the STT-RAM-aware
 * arbitration scheme. This is the main entry point of the library.
 */

#ifndef STACKNOC_SYSTEM_CMP_SYSTEM_HH
#define STACKNOC_SYSTEM_CMP_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/geometry.hh"
#include "engine/engine.hh"
#include "fault/fault_injector.hh"
#include "fault/watchdog.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "telemetry/interval.hh"
#include "telemetry/power.hh"
#include "telemetry/probe.hh"
#include "telemetry/thermal.hh"
#include "telemetry/trace.hh"
#include "noc/network.hh"
#include "sttnoc/bank_aware_policy.hh"
#include "sttnoc/rca_fabric.hh"
#include "coherence/l1_cache.hh"
#include "coherence/l2_bank.hh"
#include "mem/memory_controller.hh"
#include "cpu/core.hh"
#include "workload/synthetic_stream.hh"
#include "system/heatmap.hh"
#include "system/metrics.hh"
#include "system/probes.hh"
#include "system/progress.hh"
#include "system/scenario.hh"
#include "telemetry/profile.hh"
#include "validate/checker.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::system {

/** Full-system configuration. */
struct SystemConfig
{
    int meshWidth = 8;
    int meshHeight = 8;

    Scenario scenario{};

    /**
     * Application per core: one entry replicates across all cores
     * (multi-threaded / 64-copy runs); meshWidth*meshHeight entries give
     * a multi-programmed mix.
     */
    std::vector<std::string> apps{"tpcc"};

    std::uint64_t seed = 1;

    workload::StreamParams stream{};
    coherence::L1Config l1{};
    mem::DramParams dram{};

    /** Use real L2 tag arrays instead of trace-annotated hit/miss. */
    bool realTags = false;

    /** Annotated mode: dirty-victim probability on L2 fills. */
    double victimDirtyProb = 0.3;

    /** Per-bank admission bounds (see coherence::L2Config). */
    int bankRequestCap = 8;
    int bankWriteCap = 32;

    /** Probe sampling period (0 disables the occupancy probe). */
    Cycle probePeriod = 64;

    /** Interval time-series period (0 disables the sampler). */
    Cycle intervalPeriod = 0;

    /** Cap on retained interval snapshots. */
    std::size_t intervalMaxSnapshots = std::size_t{1} << 16;

    /** Enable the engine cycle-accounting profiler (observer-only). */
    bool profile = false;

    /** Retained profiler spans per thread (0 = totals only); sized up
     *  by the Chrome-trace exporter path. */
    std::size_t profileSpanCapacity = 0;

    /** Spatial heatmap sampling period (0 disables the collector). */
    Cycle heatmapPeriod = 0;

    /** Cap on retained heatmap frames. */
    std::size_t heatmapMaxFrames = std::size_t{1} << 14;

    /** Streaming per-interval energy telemetry (observer-only). */
    bool power = false;

    /** Thermal RC grid fed by the power frames (implies power). */
    bool thermal = false;

    /** Power/thermal sampling period in cycles. */
    Cycle powerPeriod = 1024;

    /** Cap on retained power/thermal frames (totals keep streaming). */
    std::size_t powerMaxFrames = std::size_t{1} << 14;

    /** Thermal solver constants (see telemetry/thermal.hh). */
    telemetry::ThermalParams thermalParams{};

    /** Emit live progress lines on stderr. */
    bool progress = false;

    /** Cycles between progress reports. */
    Cycle progressPeriod = Cycle{1} << 15;

    /** Planned total run length (for progress %/ETA; 0 hides both). */
    Cycle progressTotalCycles = 0;

    /**
     * Execution-engine threads: 1 runs the historical sequential loop,
     * N >= 2 the sharded parallel engine (bit-identical results; see
     * docs/ENGINE.md).
     */
    int threads = 1;

    /**
     * Idle elision: skip components whose quiescent() predicate holds
     * until a channel push or direct call wakes them (bit-identical to
     * ticking everything; see docs/ENGINE.md). False is the escape
     * hatch (`--no-elide`) that restores the full per-cycle walk.
     */
    bool elide = true;

    /** Enable the runtime invariant checkers (strict observers). */
    bool validate = false;

    /** Checker configuration (period, fail-fast, thresholds). */
    validate::ValidationConfig validation{};

    /** Fault-injection campaign (active when faultsEnabled). */
    fault::FaultSpec faults{};
    bool faultsEnabled = false;

    /** Liveness watchdog (active when watchdogEnabled). */
    fault::WatchdogConfig watchdog{};
    bool watchdogEnabled = false;
};

/** The system. Construct, warmup(), run(), then read metrics(). */
class CmpSystem
{
  public:
    explicit CmpSystem(const SystemConfig &config);
    ~CmpSystem();

    CmpSystem(const CmpSystem &) = delete;
    CmpSystem &operator=(const CmpSystem &) = delete;

    /** Advance the system by @p cycles. */
    void run(Cycle cycles);

    /**
     * Advance @p cycles, then zero every statistic and committed-
     * instruction count so metrics() reflects only the steady state.
     */
    void warmup(Cycle cycles);

    /**
     * Split warmup for wall-clock-guarded drivers: warmupBegin(), any
     * number of run() chunks, then warmupEnd() to perform the resets.
     * warmup(c) is exactly warmupBegin(); run(c); warmupEnd().
     */
    void warmupBegin();
    void warmupEnd();

    /** Results accumulated since construction or the last warmup(). */
    Metrics metrics() const;

    int numCores() const { return shape_.nodesPerLayer(); }
    int numBanks() const { return shape_.nodesPerLayer(); }
    const MeshShape &shape() const { return shape_; }
    const SystemConfig &config() const { return config_; }

    Simulator &simulator() { return sim_; }
    const Simulator &simulator() const { return sim_; }
    noc::Network &network() { return *net_; }
    const noc::Network &network() const { return *net_; }
    cpu::Core &core(int i) { return *cores_.at(std::size_t(i)); }
    coherence::L1Cache &l1(int i) { return *l1s_.at(std::size_t(i)); }
    coherence::L2Bank &bank(int i) { return *banks_.at(std::size_t(i)); }

    /** The bank-aware policy, or nullptr for oblivious scenarios. */
    sttnoc::BankAwarePolicy *policy() { return bankAwarePolicy_.get(); }
    const sttnoc::BankAwarePolicy *
    policy() const
    {
        return bankAwarePolicy_.get();
    }

    const sttnoc::RegionMap &regions() const { return *regions_; }
    const sttnoc::ParentMap &parents() const { return *parents_; }

    stats::Group &cacheStats() { return cacheStats_; }
    const stats::Group &cacheStats() const { return cacheStats_; }
    stats::Group &coreStats() { return coreStats_; }
    const stats::Group &coreStats() const { return coreStats_; }
    stats::Group &memStats() { return memStats_; }
    const stats::Group &memStats() const { return memStats_; }

    RouterOccupancyProbe *probe() { return probe_.get(); }
    const RouterOccupancyProbe *probe() const { return probe_.get(); }

    /** Interval time-series, or nullptr when intervalPeriod == 0. */
    const telemetry::IntervalSampler *
    intervals() const
    {
        return sampler_.get();
    }

    /** The validation hub, or nullptr when validation is off. */
    validate::ValidationHub *validation() { return validation_.get(); }
    const validate::ValidationHub *
    validation() const
    {
        return validation_.get();
    }

    /** The cycle profiler, or nullptr when profiling is off. */
    const telemetry::CycleProfiler *
    profiler() const
    {
        return profiler_.get();
    }

    /** The heatmap collector, or nullptr when heatmapPeriod == 0. */
    const HeatmapCollector *heatmap() const { return heatmap_.get(); }

    /** The streaming energy probe, or nullptr when power is off. */
    const telemetry::EnergyProbe *power() const { return power_.get(); }

    /** The thermal probe, or nullptr when thermal is off. */
    const telemetry::ThermalProbe *thermal() const
    {
        return thermal_.get();
    }

    /**
     * Close the open partial interval of the streaming telemetry so
     * its totals cover exactly the measured window. Call once after
     * the final run() chunk, before exporting or reading power/thermal
     * results; idempotent, no-op when the probes are off.
     */
    void finalizeTelemetry();

    /** The progress reporter, or nullptr when progress is off. */
    ProgressReporter *progress() { return progress_.get(); }

    /** The fault injector, or nullptr when faults are off. */
    const fault::FaultInjector *faults() const { return faults_.get(); }

    /** The liveness watchdog, or nullptr when it is off. */
    const fault::Watchdog *watchdogProbe() const { return watchdog_.get(); }

    /** Dump every statistics group to @p os. */
    void dumpStats(std::ostream &os) const;

    // --- Wall-clock performance of the execution engine -------------

    /** Wall seconds spent inside run()/warmup() so far. */
    double wallSeconds() const { return wallSeconds_; }

    /** Simulated cycles executed inside run()/warmup() so far. */
    Cycle engineTicks() const { return engineTicks_; }

    /** Simulated cycles per wall second (0 before any run()). */
    double
    ticksPerSecond() const
    {
        return wallSeconds_ > 0.0
                   ? static_cast<double>(engineTicks_) / wallSeconds_
                   : 0.0;
    }

    const char *engineName() const { return engine_->name(); }
    int engineThreads() const { return engine_->threads(); }
    bool engineElides() const { return engine_->elides(); }

    /** Component ticks actually executed by the engine. */
    std::uint64_t engineTickedComponents() const
    {
        return engine_->tickedComponents();
    }

    /** Component ticks a full walk would have executed. */
    std::uint64_t engineTickSlots() const { return engine_->tickSlots(); }

    /** Mean fraction of components ticked per cycle (1.0 = no elision). */
    double
    engineActiveFraction() const
    {
        const auto slots = engine_->tickSlots();
        return slots != 0
                   ? static_cast<double>(engine_->tickedComponents()) /
                         static_cast<double>(slots)
                   : 1.0;
    }

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    void buildNetwork();
    void buildMemorySystem();
    void buildCores();

    SystemConfig config_;
    MeshShape shape_;
    Simulator sim_;

    stats::Group cacheStats_;
    stats::Group coreStats_;
    stats::Group memStats_;

    std::unique_ptr<fault::FaultInjector> faults_;
    std::unique_ptr<fault::Watchdog> watchdog_;
    std::unique_ptr<sttnoc::RegionMap> regions_;
    std::unique_ptr<sttnoc::ParentMap> parents_;
    std::unique_ptr<noc::ArbitrationPolicy> obliviousPolicy_;
    std::unique_ptr<sttnoc::BankAwarePolicy> bankAwarePolicy_;
    std::unique_ptr<noc::Network> net_;
    std::unique_ptr<sttnoc::RcaFabric> rcaFabric_;

    std::vector<std::unique_ptr<coherence::L1Cache>> l1s_;
    std::vector<std::unique_ptr<coherence::L2Bank>> banks_;
    std::vector<std::unique_ptr<mem::MemoryController>> mcs_;
    std::vector<std::unique_ptr<workload::SyntheticStream>> streams_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::unique_ptr<RouterOccupancyProbe> probe_;
    std::unique_ptr<telemetry::IntervalSampler> sampler_;
    std::unique_ptr<validate::ValidationHub> validation_;
    std::unique_ptr<telemetry::CycleProfiler> profiler_;
    std::unique_ptr<HeatmapCollector> heatmap_;
    std::unique_ptr<telemetry::EnergyProbe> power_;
    std::unique_ptr<telemetry::ThermalProbe> thermal_;
    std::unique_ptr<ProgressReporter> progress_;
    /** Tracer owned for diagnostic dumps when none was installed. */
    std::unique_ptr<telemetry::PacketTracer> ownedTracer_;
    telemetry::ProbeHub hub_;
    std::unique_ptr<engine::ExecutionEngine> engine_;

    Cycle measureStart_ = 0;
    double wallSeconds_ = 0.0;
    Cycle engineTicks_ = 0;
};

} // namespace stacknoc::system

#endif // STACKNOC_SYSTEM_CMP_SYSTEM_HH
