/**
 * @file
 * Spatial heatmap collection: per-interval width x height grids of
 * router activity for both mesh layers, for rendering congestion and
 * write-pressure maps (tools/heatmap_render.py).
 *
 * Four metrics per frame:
 *  - flits: flits switched per router during the interval (delta of
 *    Router::flitsSwitchedTotal()),
 *  - occupancy: input-VC flits buffered per router at frame end,
 *  - tsb: flits buffered in a router's vertical (Up/Down) input ports
 *    at frame end — traffic that crossed, or is about to cross, the
 *    through-silicon bus,
 *  - holds: parent-hold pressure accumulated per bank during the
 *    interval (delta of BankAwarePolicy::holdCyclesOfBank(), mapped to
 *    the bank's node on the cache layer; all-zero without the
 *    bank-aware policy).
 *
 * The collector is a cycle-end observer: it only reads component
 * state after the engine's phase barrier, never mutates it, so
 * determinism digests are identical with it on or off.
 */

#ifndef STACKNOC_SYSTEM_HEATMAP_HH
#define STACKNOC_SYSTEM_HEATMAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hh"
#include "telemetry/probe.hh"

namespace stacknoc::noc {
class Network;
}
namespace stacknoc::sttnoc {
class BankAwarePolicy;
class RegionMap;
}

namespace stacknoc::system {

/** Samples the network every @c period cycles into retained frames. */
class HeatmapCollector : public telemetry::Probe
{
  public:
    /** One sampled interval. Grids are row-major, one per layer. */
    struct Frame
    {
        Cycle start = 0; //!< first cycle covered (inclusive)
        Cycle end = 0;   //!< last cycle covered (inclusive)
        /** [layer][y * width + x] */
        std::vector<std::vector<std::uint64_t>> flits;
        std::vector<std::vector<std::uint64_t>> occupancy;
        std::vector<std::vector<std::uint64_t>> tsb;
        std::vector<std::vector<std::uint64_t>> holds;
    };

    /**
     * @param net the network to sample (must outlive the collector).
     * @param policy bank-aware policy for hold pressure (may be null).
     * @param regions bank -> node mapping (may be null; then holds
     *        stay zero even with a policy).
     * @param shape mesh geometry.
     * @param period sampling period in cycles (>= 1).
     * @param max_frames retention cap; sampling stops once reached.
     */
    HeatmapCollector(const noc::Network &net,
                     const sttnoc::BankAwarePolicy *policy,
                     const sttnoc::RegionMap *regions,
                     const MeshShape &shape, Cycle period,
                     std::size_t max_frames = std::size_t{1} << 14);

    void onCycle(Cycle now) override;
    void onWarmupBegin(Cycle now) override;
    void onReset(Cycle now) override;

    Cycle period() const { return period_; }
    const std::vector<Frame> &frames() const { return frames_; }
    std::uint64_t framesDropped() const { return framesDropped_; }

    /**
     * Write one JSON document per metric: <prefix>.<metric>.json for
     * metric in {flits, occupancy, tsb, holds}, each
     * { "metric", "width", "height", "layers", "period",
     *   "frames": [{"start", "end", "grids": [[...], [...]]}] }.
     * @return false when any file could not be opened.
     */
    bool writeFiles(const std::string &prefix) const;

  private:
    void captureBaseline();
    Frame sampleFrame(Cycle now);

    const noc::Network &net_;
    const sttnoc::BankAwarePolicy *policy_;
    const sttnoc::RegionMap *regions_;
    MeshShape shape_;
    Cycle period_;
    std::size_t maxFrames_;

    bool inWarmup_ = false;
    Cycle frameStart_ = 0;
    /** Last-seen cumulative counters, for interval deltas. */
    std::vector<std::uint64_t> flitsBase_;
    std::vector<std::uint64_t> holdsBase_;

    std::vector<Frame> frames_;
    std::uint64_t framesDropped_ = 0;
};

} // namespace stacknoc::system

#endif // STACKNOC_SYSTEM_HEATMAP_HH
