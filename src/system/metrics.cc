#include "system/metrics.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stacknoc::system {

double
Metrics::instructionThroughput() const
{
    double sum = 0.0;
    for (const double v : ipc)
        sum += v;
    return sum;
}

double
Metrics::minIpc() const
{
    if (ipc.empty())
        return 0.0;
    return *std::min_element(ipc.begin(), ipc.end());
}

double
Metrics::meanIpc() const
{
    return ipc.empty() ? 0.0
                       : instructionThroughput() /
                             static_cast<double>(ipc.size());
}

double
weightedSpeedup(const std::vector<double> &shared_ipc,
                const std::vector<double> &alone_ipc)
{
    panic_if(shared_ipc.size() != alone_ipc.size(),
             "weightedSpeedup: size mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < shared_ipc.size(); ++i) {
        if (alone_ipc[i] > 0.0)
            sum += shared_ipc[i] / alone_ipc[i];
    }
    return sum;
}

double
maxSlowdown(const std::vector<double> &shared_ipc,
            const std::vector<double> &alone_ipc)
{
    panic_if(shared_ipc.size() != alone_ipc.size(),
             "maxSlowdown: size mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < shared_ipc.size(); ++i) {
        if (shared_ipc[i] > 0.0)
            worst = std::max(worst, alone_ipc[i] / shared_ipc[i]);
    }
    return worst;
}

} // namespace stacknoc::system
