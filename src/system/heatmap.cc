#include "system/heatmap.hh"

#include <fstream>

#include "common/logging.hh"
#include "telemetry/json.hh"
#include "noc/network.hh"
#include "sttnoc/bank_aware_policy.hh"
#include "sttnoc/region_map.hh"

namespace stacknoc::system {

HeatmapCollector::HeatmapCollector(const noc::Network &net,
                                   const sttnoc::BankAwarePolicy *policy,
                                   const sttnoc::RegionMap *regions,
                                   const MeshShape &shape, Cycle period,
                                   std::size_t max_frames)
    : net_(net), policy_(policy), regions_(regions), shape_(shape),
      period_(period), maxFrames_(max_frames)
{
    panic_if(period_ < 1, "heatmap period must be >= 1");
    flitsBase_.resize(static_cast<std::size_t>(shape_.totalNodes()), 0);
    holdsBase_.resize(
        policy_ != nullptr && regions_ != nullptr
            ? static_cast<std::size_t>(regions_->numBanks())
            : 0,
        0);
}

void
HeatmapCollector::captureBaseline()
{
    for (NodeId n = 0; n < shape_.totalNodes(); ++n)
        flitsBase_[static_cast<std::size_t>(n)] =
            net_.router(n).flitsSwitchedTotal();
    for (BankId b = 0; b < static_cast<BankId>(holdsBase_.size()); ++b)
        holdsBase_[static_cast<std::size_t>(b)] =
            policy_->holdCyclesOfBank(b);
}

HeatmapCollector::Frame
HeatmapCollector::sampleFrame(Cycle now)
{
    const std::size_t per =
        static_cast<std::size_t>(shape_.nodesPerLayer());
    const int layers = shape_.layers();

    Frame f;
    f.start = frameStart_;
    f.end = now;
    f.flits.assign(static_cast<std::size_t>(layers),
                   std::vector<std::uint64_t>(per, 0));
    f.occupancy = f.flits;
    f.tsb = f.flits;
    f.holds = f.flits;

    for (NodeId n = 0; n < shape_.totalNodes(); ++n) {
        const Coord c = shape_.coord(n);
        const auto layer = static_cast<std::size_t>(c.layer);
        const auto cell =
            static_cast<std::size_t>(c.y * shape_.width() + c.x);
        const noc::Router &r = net_.router(n);

        const std::uint64_t total = r.flitsSwitchedTotal();
        f.flits[layer][cell] =
            total - flitsBase_[static_cast<std::size_t>(n)];
        flitsBase_[static_cast<std::size_t>(n)] = total;

        f.occupancy[layer][cell] =
            static_cast<std::uint64_t>(r.bufferedFlits());
        f.tsb[layer][cell] = static_cast<std::uint64_t>(
            r.bufferedFlits(noc::Dir::Up) +
            r.bufferedFlits(noc::Dir::Down));
    }

    for (BankId b = 0; b < static_cast<BankId>(holdsBase_.size()); ++b) {
        const Coord c = shape_.coord(regions_->nodeOfBank(b));
        const auto cell =
            static_cast<std::size_t>(c.y * shape_.width() + c.x);
        const std::uint64_t total = policy_->holdCyclesOfBank(b);
        f.holds[static_cast<std::size_t>(c.layer)][cell] =
            total - holdsBase_[static_cast<std::size_t>(b)];
        holdsBase_[static_cast<std::size_t>(b)] = total;
    }

    return f;
}

void
HeatmapCollector::onCycle(Cycle now)
{
    if (now - frameStart_ + 1 < period_)
        return;
    if (inWarmup_) {
        // Keep the deltas rolling so the first measured frame doesn't
        // absorb warm-up traffic, but retain nothing.
        (void)sampleFrame(now);
        frameStart_ = now + 1;
        return;
    }
    if (frames_.size() >= maxFrames_) {
        (void)sampleFrame(now);
        ++framesDropped_;
        frameStart_ = now + 1;
        return;
    }
    frames_.push_back(sampleFrame(now));
    frameStart_ = now + 1;
}

void
HeatmapCollector::onWarmupBegin(Cycle now)
{
    (void)now;
    inWarmup_ = true;
}

void
HeatmapCollector::onReset(Cycle now)
{
    inWarmup_ = false;
    frames_.clear();
    framesDropped_ = 0;
    frameStart_ = now;
    captureBaseline();
}

bool
HeatmapCollector::writeFiles(const std::string &prefix) const
{
    struct Metric
    {
        const char *name;
        const std::vector<std::vector<std::uint64_t>> Frame::*grids;
    };
    static constexpr Metric kMetrics[] = {
        {"flits", &Frame::flits},
        {"occupancy", &Frame::occupancy},
        {"tsb", &Frame::tsb},
        {"holds", &Frame::holds},
    };

    for (const Metric &m : kMetrics) {
        std::ofstream os(prefix + "." + m.name + ".json");
        if (!os)
            return false;
        telemetry::JsonWriter w(os);
        w.beginObject();
        w.kv("metric", m.name);
        w.kv("width", shape_.width());
        w.kv("height", shape_.height());
        w.kv("layers", shape_.layers());
        w.kv("period", static_cast<std::uint64_t>(period_));
        w.kv("frames_dropped", framesDropped_);
        w.key("frames");
        w.beginArray();
        for (const Frame &f : frames_) {
            w.beginObject();
            w.kv("start", static_cast<std::uint64_t>(f.start));
            w.kv("end", static_cast<std::uint64_t>(f.end));
            w.key("grids");
            w.beginArray();
            for (const auto &grid : f.*(m.grids)) {
                w.beginArray();
                for (const std::uint64_t v : grid)
                    w.value(v);
                w.endArray();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
    }
    return true;
}

} // namespace stacknoc::system
