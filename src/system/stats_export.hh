/**
 * @file
 * Machine-readable run output: serialises a finished CmpSystem — run
 * identity, headline metrics, every statistics group (with histogram
 * percentiles), the interval time-series and the occupancy probe — as
 * one JSON document.
 */

#ifndef STACKNOC_SYSTEM_STATS_EXPORT_HH
#define STACKNOC_SYSTEM_STATS_EXPORT_HH

#include <iosfwd>
#include <string>

#include "common/types.hh"
#include "system/cmp_system.hh"

namespace stacknoc::system {

/** Identity of the run being exported (echoed under "run"). */
struct RunInfo
{
    std::string scenario;
    std::string app;
    std::uint64_t seed = 0;
    Cycle warmupCycles = 0;
    Cycle measuredCycles = 0;

    /** Run was cut short by a wall-clock --timeout-sec guard. */
    bool timedOut = false;

    /** Run was warm-started from a checkpoint (--restore). */
    bool restored = false;

    /** Cycle the restored checkpoint was captured at. */
    Cycle restoredFromCycle = 0;

    /** Emit the stats digest under "run" (set by --digest). */
    bool hasStatsDigest = false;
    std::uint64_t statsDigest = 0;
};

/**
 * Write the full JSON stats document for @p sys to @p os. The output is
 * a single compact line, suitable for JSONL aggregation across runs.
 */
void writeJsonStats(std::ostream &os, const CmpSystem &sys,
                    const RunInfo &info);

} // namespace stacknoc::system

#endif // STACKNOC_SYSTEM_STATS_EXPORT_HH
