/**
 * @file
 * The design scenarios evaluated in the paper (Section 4.1), plus the
 * Section 4.4 write-buffer baselines.
 */

#ifndef STACKNOC_SYSTEM_SCENARIO_HH
#define STACKNOC_SYSTEM_SCENARIO_HH

#include <array>
#include <optional>
#include <string>

#include "mem/tech.hh"
#include "sttnoc/estimator.hh"
#include "sttnoc/region_map.hh"

namespace stacknoc::system {

/** One point of the design space. */
struct Scenario
{
    std::string name = "MRAM-4TSB-WB";

    /** L2 bank technology. */
    mem::CacheTech tech = mem::CacheTech::SttRam;

    /**
     * Number of logical cache regions / core-to-cache TSBs; 0 keeps all
     * vertical links unrestricted (the 64TSB baselines).
     */
    int tsbRegions = 4;

    /** Placement of the region TSBs (Figure 11). */
    sttnoc::TsbPlacement placement = sttnoc::TsbPlacement::Corner;

    /**
     * STT-RAM-aware arbitration scheme; nullopt disables re-ordering
     * (plain round-robin arbitration).
     */
    std::optional<sttnoc::EstimatorKind> scheme =
        sttnoc::EstimatorKind::Window;

    /** Re-ordering distance H (Section 4.3 settles on 2). */
    int parentHops = 2;

    /** How delayed writes are expressed (see sttnoc::DelayMode). */
    sttnoc::DelayMode delayMode = sttnoc::DelayMode::Priority;

    /** Enable the 20-entry per-bank write buffer (BUFF-20 baseline). */
    bool writeBuffer = false;

    /** Write-buffer capacity when writeBuffer is set. */
    int writeBufferEntries = 20;

    /**
     * Bank-level read priority + read preemption without a write buffer
     * (the complementary mechanism of the paper's Section 5 discussion;
     * combinable with the network scheme).
     */
    bool readPriority = false;

    /** VCs per virtual network; {2,3,1,1} is the "+1 VC" variant
     *  (one extra lane for the re-ordered write class). */
    std::array<int, 4> vcsPerVnet{2, 2, 1, 1};
};

namespace scenarios {

/** SRAM-64TSB: the paper's normalisation baseline. */
Scenario sram64Tsb();

/** MRAM-64TSB: naive SRAM->STT-RAM swap, full path diversity. */
Scenario sttram64Tsb();

/** MRAM-4TSB: path restriction only, no re-ordering. */
Scenario sttram4Tsb();

/** MRAM-4TSB-SS / -RCA / -WB: the three proposed schemes. */
Scenario sttram4TsbSS();
Scenario sttram4TsbRca();
Scenario sttram4TsbWb();

/** STT-RAM with per-bank 20-entry write buffers (Sun et al. baseline). */
Scenario sttramBuff20();

/** WB scheme with one extra request VC instead of write buffers. */
Scenario sttram4TsbWbPlus1Vc();

/** Extension: bank-level read priority/preemption alone. */
Scenario sttramReadPriority();

/** Extension: the WB network scheme combined with bank read priority —
 *  the complementarity Section 5 of the paper conjectures. */
Scenario sttram4TsbWbReadPriority();

/** The six Figure-6/8 design scenarios in presentation order. */
std::array<Scenario, 6> figureSix();

/**
 * Look up a scenario by its CLI name (e.g. "MRAM-4TSB-WB").
 * @return true and fill @p out on success; false for unknown names.
 */
bool byName(const std::string &name, Scenario &out);

/** The accepted scenario names, for error messages / usage text. */
const char *knownNames();

} // namespace scenarios

} // namespace stacknoc::system

#endif // STACKNOC_SYSTEM_SCENARIO_HH
