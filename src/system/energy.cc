#include "system/energy.hh"

namespace stacknoc::system {

EnergyBreakdown
computeEnergy(const stats::Group &cache_stats,
              const stats::Group &net_stats, mem::CacheTech tech,
              int num_banks, int num_routers, Cycle cycles,
              const NocEnergyParams &noc_params,
              const stats::Group *fault_stats)
{
    const mem::BankTechParams &bank = mem::bankTech(tech);
    const double seconds =
        static_cast<double>(cycles) / (mem::kClockGHz * 1e9);

    auto counter = [](const stats::Group &g, const char *statname) {
        const stats::Counter *c = g.findCounter(statname);
        return c ? static_cast<double>(c->value()) : 0.0;
    };

    EnergyBreakdown e;
    e.cacheDynamicUJ = (counter(cache_stats, "bank_reads") *
                            bank.readEnergyNJ +
                        counter(cache_stats, "bank_writes") *
                            bank.writeEnergyNJ) *
                       1e-3;
    e.cacheLeakageUJ = bank.leakagePowerMW * 1e-3 * num_banks * seconds *
                       1e6;

    const double buffered = counter(net_stats, "flits_buffered");
    const double switched = counter(net_stats, "flits_switched");
    e.netDynamicUJ = (buffered * noc_params.bufferWriteNJ +
                      switched * (noc_params.bufferReadNJ +
                                  noc_params.crossbarNJ +
                                  noc_params.arbiterNJ +
                                  noc_params.linkNJ)) *
                     1e-3;
    e.netLeakageUJ = noc_params.routerLeakageMW * 1e-3 * num_routers *
                     seconds * 1e6;

    if (fault_stats != nullptr) {
        e.retryWriteUJ = counter(*fault_stats,
                                 "stt_write_retry_rounds") *
                         noc_params.retryWriteNJ * 1e-3;
        e.retransmitFlitUJ = counter(*fault_stats,
                                     "link_flits_retransmitted") *
                             noc_params.retransmitFlitNJ * 1e-3;
    }
    return e;
}

} // namespace stacknoc::system
