/**
 * @file
 * Uncore (cache + interconnect) energy accounting, the quantity of the
 * paper's Figure 8. Cache energies come from Table 2; router and link
 * event energies are Orion-style 32 nm constants.
 */

#ifndef STACKNOC_SYSTEM_ENERGY_HH
#define STACKNOC_SYSTEM_ENERGY_HH

#include "common/types.hh"
#include "sim/stats.hh"
#include "mem/tech.hh"

namespace stacknoc::system {

/** Per-event network energies (nJ) and leakage (mW) at 32 nm, 3 GHz. */
struct NocEnergyParams
{
    double bufferWriteNJ = 0.012; //!< per flit buffered
    double bufferReadNJ = 0.010;  //!< per flit read for traversal
    double crossbarNJ = 0.015;    //!< per flit switched
    double arbiterNJ = 0.001;     //!< per allocation
    double linkNJ = 0.017;        //!< per flit-hop on a 128-bit link
    double routerLeakageMW = 5.0; //!< per router

    // Fault-path event energies. A failed STT-RAM write verify re-runs
    // the write itself through BankModel::startWrite (already counted
    // in bank_writes); retryWriteNJ is the *additional* verify-sense
    // read and control overhead per retry round, sized like an STT-RAM
    // array read (Table 2). retransmitFlitNJ charges the NACK plus the
    // re-serialisation of one flit over the last-hop link; the
    // retransmission is otherwise modelled as a pure latency penalty,
    // so without this term fault recovery would look energy-free.
    double retryWriteNJ = 0.4;      //!< per failed-verify write round
    double retransmitFlitNJ = 0.055; //!< per retransmitted flit
};

/** Uncore energy split, in microjoules. */
struct EnergyBreakdown
{
    double cacheDynamicUJ = 0.0;
    double cacheLeakageUJ = 0.0;
    double netDynamicUJ = 0.0;
    double netLeakageUJ = 0.0;
    double retryWriteUJ = 0.0;     //!< STT-RAM verify-retry overhead
    double retransmitFlitUJ = 0.0; //!< CRC-failure retransmissions

    double
    totalUJ() const
    {
        return cacheDynamicUJ + cacheLeakageUJ + netDynamicUJ +
               netLeakageUJ + retryWriteUJ + retransmitFlitUJ;
    }
};

/**
 * Compute the uncore energy of a run.
 *
 * @param cache_stats group holding bank_reads / bank_writes.
 * @param net_stats group holding flits_buffered / flits_switched.
 * @param tech L2 bank technology.
 * @param num_banks banks in the system.
 * @param num_routers routers in the system.
 * @param cycles measured cycles (at 3 GHz).
 * @param noc_params event energy constants.
 * @param fault_stats fault-injector group holding
 *        stt_write_retry_rounds / link_flits_retransmitted, or null
 *        when no faults are configured (the fault terms stay zero).
 */
EnergyBreakdown
computeEnergy(const stats::Group &cache_stats,
              const stats::Group &net_stats, mem::CacheTech tech,
              int num_banks, int num_routers, Cycle cycles,
              const NocEnergyParams &noc_params = NocEnergyParams{},
              const stats::Group *fault_stats = nullptr);

} // namespace stacknoc::system

#endif // STACKNOC_SYSTEM_ENERGY_HH
