/**
 * @file
 * Uncore (cache + interconnect) energy accounting, the quantity of the
 * paper's Figure 8. Cache energies come from Table 2; router and link
 * event energies are Orion-style 32 nm constants.
 */

#ifndef STACKNOC_SYSTEM_ENERGY_HH
#define STACKNOC_SYSTEM_ENERGY_HH

#include "common/types.hh"
#include "sim/stats.hh"
#include "mem/tech.hh"

namespace stacknoc::system {

/** Per-event network energies (nJ) and leakage (mW) at 32 nm, 3 GHz. */
struct NocEnergyParams
{
    double bufferWriteNJ = 0.012; //!< per flit buffered
    double bufferReadNJ = 0.010;  //!< per flit read for traversal
    double crossbarNJ = 0.015;    //!< per flit switched
    double arbiterNJ = 0.001;     //!< per allocation
    double linkNJ = 0.017;        //!< per flit-hop on a 128-bit link
    double routerLeakageMW = 5.0; //!< per router
};

/** Uncore energy split, in microjoules. */
struct EnergyBreakdown
{
    double cacheDynamicUJ = 0.0;
    double cacheLeakageUJ = 0.0;
    double netDynamicUJ = 0.0;
    double netLeakageUJ = 0.0;

    double
    totalUJ() const
    {
        return cacheDynamicUJ + cacheLeakageUJ + netDynamicUJ +
               netLeakageUJ;
    }
};

/**
 * Compute the uncore energy of a run.
 *
 * @param cache_stats group holding bank_reads / bank_writes.
 * @param net_stats group holding flits_buffered / flits_switched.
 * @param tech L2 bank technology.
 * @param num_banks banks in the system.
 * @param num_routers routers in the system.
 * @param cycles measured cycles (at 3 GHz).
 * @param noc_params event energy constants.
 */
EnergyBreakdown
computeEnergy(const stats::Group &cache_stats,
              const stats::Group &net_stats, mem::CacheTech tech,
              int num_banks, int num_routers, Cycle cycles,
              const NocEnergyParams &noc_params = NocEnergyParams{});

} // namespace stacknoc::system

#endif // STACKNOC_SYSTEM_ENERGY_HH
