#include "system/scenario.hh"

namespace stacknoc::system::scenarios {

Scenario
sram64Tsb()
{
    Scenario s;
    s.name = "SRAM-64TSB";
    s.tech = mem::CacheTech::Sram;
    s.tsbRegions = 0;
    s.scheme.reset();
    return s;
}

Scenario
sttram64Tsb()
{
    Scenario s;
    s.name = "MRAM-64TSB";
    s.tech = mem::CacheTech::SttRam;
    s.tsbRegions = 0;
    s.scheme.reset();
    return s;
}

Scenario
sttram4Tsb()
{
    Scenario s;
    s.name = "MRAM-4TSB";
    s.tsbRegions = 4;
    s.scheme.reset();
    return s;
}

Scenario
sttram4TsbSS()
{
    Scenario s;
    s.name = "MRAM-4TSB-SS";
    s.scheme = sttnoc::EstimatorKind::Simple;
    return s;
}

Scenario
sttram4TsbRca()
{
    Scenario s;
    s.name = "MRAM-4TSB-RCA";
    s.scheme = sttnoc::EstimatorKind::Rca;
    return s;
}

Scenario
sttram4TsbWb()
{
    Scenario s;
    s.name = "MRAM-4TSB-WB";
    s.scheme = sttnoc::EstimatorKind::Window;
    return s;
}

Scenario
sttramBuff20()
{
    Scenario s;
    s.name = "BUFF-20";
    s.tsbRegions = 0;
    s.scheme.reset();
    s.writeBuffer = true;
    return s;
}

Scenario
sttram4TsbWbPlus1Vc()
{
    Scenario s = sttram4TsbWb();
    s.name = "MRAM-4TSB-WB+1VC";
    s.vcsPerVnet = {2, 3, 1, 1};
    return s;
}

Scenario
sttramReadPriority()
{
    Scenario s;
    s.name = "MRAM-RP";
    s.tsbRegions = 0;
    s.scheme.reset();
    s.readPriority = true;
    return s;
}

Scenario
sttram4TsbWbReadPriority()
{
    Scenario s = sttram4TsbWb();
    s.name = "MRAM-4TSB-WB+RP";
    s.readPriority = true;
    return s;
}

std::array<Scenario, 6>
figureSix()
{
    return {sram64Tsb(),    sttram64Tsb(),    sttram4Tsb(),
            sttram4TsbSS(), sttram4TsbRca(), sttram4TsbWb()};
}

bool
byName(const std::string &name, Scenario &out)
{
    if (name == "SRAM-64TSB") { out = sram64Tsb(); return true; }
    if (name == "MRAM-64TSB") { out = sttram64Tsb(); return true; }
    if (name == "MRAM-4TSB") { out = sttram4Tsb(); return true; }
    if (name == "MRAM-4TSB-SS") { out = sttram4TsbSS(); return true; }
    if (name == "MRAM-4TSB-RCA") { out = sttram4TsbRca(); return true; }
    if (name == "MRAM-4TSB-WB") { out = sttram4TsbWb(); return true; }
    if (name == "BUFF-20") { out = sttramBuff20(); return true; }
    if (name == "+1VC") { out = sttram4TsbWbPlus1Vc(); return true; }
    if (name == "MRAM-RP") { out = sttramReadPriority(); return true; }
    if (name == "MRAM-4TSB-WB+RP") {
        out = sttram4TsbWbReadPriority();
        return true;
    }
    return false;
}

const char *
knownNames()
{
    return "SRAM-64TSB, MRAM-64TSB, MRAM-4TSB, MRAM-4TSB-SS, "
           "MRAM-4TSB-RCA, MRAM-4TSB-WB, BUFF-20, +1VC, MRAM-RP, "
           "MRAM-4TSB-WB+RP";
}

} // namespace stacknoc::system::scenarios
