#include "system/scenario.hh"

namespace stacknoc::system::scenarios {

Scenario
sram64Tsb()
{
    Scenario s;
    s.name = "SRAM-64TSB";
    s.tech = mem::CacheTech::Sram;
    s.tsbRegions = 0;
    s.scheme.reset();
    return s;
}

Scenario
sttram64Tsb()
{
    Scenario s;
    s.name = "MRAM-64TSB";
    s.tech = mem::CacheTech::SttRam;
    s.tsbRegions = 0;
    s.scheme.reset();
    return s;
}

Scenario
sttram4Tsb()
{
    Scenario s;
    s.name = "MRAM-4TSB";
    s.tsbRegions = 4;
    s.scheme.reset();
    return s;
}

Scenario
sttram4TsbSS()
{
    Scenario s;
    s.name = "MRAM-4TSB-SS";
    s.scheme = sttnoc::EstimatorKind::Simple;
    return s;
}

Scenario
sttram4TsbRca()
{
    Scenario s;
    s.name = "MRAM-4TSB-RCA";
    s.scheme = sttnoc::EstimatorKind::Rca;
    return s;
}

Scenario
sttram4TsbWb()
{
    Scenario s;
    s.name = "MRAM-4TSB-WB";
    s.scheme = sttnoc::EstimatorKind::Window;
    return s;
}

Scenario
sttramBuff20()
{
    Scenario s;
    s.name = "BUFF-20";
    s.tsbRegions = 0;
    s.scheme.reset();
    s.writeBuffer = true;
    return s;
}

Scenario
sttram4TsbWbPlus1Vc()
{
    Scenario s = sttram4TsbWb();
    s.name = "MRAM-4TSB-WB+1VC";
    s.vcsPerVnet = {2, 3, 1, 1};
    return s;
}

Scenario
sttramReadPriority()
{
    Scenario s;
    s.name = "MRAM-RP";
    s.tsbRegions = 0;
    s.scheme.reset();
    s.readPriority = true;
    return s;
}

Scenario
sttram4TsbWbReadPriority()
{
    Scenario s = sttram4TsbWb();
    s.name = "MRAM-4TSB-WB+RP";
    s.readPriority = true;
    return s;
}

std::array<Scenario, 6>
figureSix()
{
    return {sram64Tsb(),    sttram64Tsb(),    sttram4Tsb(),
            sttram4TsbSS(), sttram4TsbRca(), sttram4TsbWb()};
}

} // namespace stacknoc::system::scenarios
