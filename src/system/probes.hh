/**
 * @file
 * Measurement probes over live routers: the Figure 3 inset / Figure 13a
 * "requests buffered H hops from their destination bank" statistic.
 */

#ifndef STACKNOC_SYSTEM_PROBES_HH
#define STACKNOC_SYSTEM_PROBES_HH

#include <array>

#include "common/types.hh"
#include "noc/network.hh"
#include "telemetry/probe.hh"

namespace stacknoc::system {

/**
 * Samples cache-layer routers periodically and records how many
 * buffered core-to-cache request packets sit exactly H in-layer hops
 * from their destination bank, for H in 1..3.
 *
 * The reported average is conditioned on routers that held at least one
 * such request at sampling time (matching the paper's "requests in a
 * router following a write packet" framing).
 *
 * Registered with the system's telemetry::ProbeHub: sampling is
 * suppressed during the warm-up window (onWarmupBegin) so transient
 * fill-up traffic never leaks into the reported averages, and the
 * sampling phase is re-aligned to the start of the measured window on
 * onReset().
 */
class RouterOccupancyProbe : public telemetry::Probe
{
  public:
    /**
     * @param net the network to observe.
     * @param sample_period cycles between samples.
     */
    explicit RouterOccupancyProbe(noc::Network &net,
                                  Cycle sample_period = 64);

    void onCycle(Cycle now) override;
    void onWarmupBegin(Cycle now) override;
    void onReset(Cycle now) override;

    /** @return mean #requests per occupied router at distance @p hops. */
    double avgRequestsAtHops(int hops) const;

    /** Drop all accumulated samples (end of warm-up). */
    void reset();

    /** @return true while warm-up suppression is active. */
    bool suppressed() const { return suppressed_; }

  private:
    noc::Network &net_;
    Cycle period_;
    Cycle origin_ = 0;       //!< phase anchor for the sampling period
    bool suppressed_ = false;
    std::array<double, 4> sum_{};      //!< index by hops 1..3
    std::array<std::uint64_t, 4> occupiedSamples_{};
};

} // namespace stacknoc::system

#endif // STACKNOC_SYSTEM_PROBES_HH
