/**
 * @file
 * Live run progress on stderr: cycle count, simulated ticks per wall
 * second, aggregate IPC, and an ETA extrapolated from the recent
 * rate. Purely an observer — it reads committed-instruction counts
 * after the cycle barrier and writes to a stream, so enabling it
 * cannot change any simulation result.
 */

#ifndef STACKNOC_SYSTEM_PROGRESS_HH
#define STACKNOC_SYSTEM_PROGRESS_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>

#include "telemetry/probe.hh"

namespace stacknoc::system {

/**
 * Emits one status line every reporting period. The wall clock runs
 * from construction; cycle zero is the first onCycle() seen, so the
 * reporter works for any starting simulator time.
 */
class ProgressReporter : public telemetry::Probe
{
  public:
    /**
     * @param os destination stream (typically std::cerr).
     * @param total_cycles planned run length (warmup + measurement),
     *        for the percentage and ETA; 0 hides both.
     * @param period_cycles cycles between reports (>= 1).
     * @param committed_fn returns total committed instructions across
     *        all cores (for IPC; may be empty).
     */
    ProgressReporter(std::ostream &os, Cycle total_cycles,
                     Cycle period_cycles,
                     std::function<std::uint64_t()> committed_fn);

    void onCycle(Cycle now) override;
    void onReset(Cycle now) override;

    /** Emit a final line and a trailing newline. */
    void finish(Cycle now);

  private:
    void report(Cycle now, bool final_line);

    std::ostream &os_;
    Cycle total_;
    Cycle period_;
    std::function<std::uint64_t()> committed_;

    std::chrono::steady_clock::time_point wallStart_;
    bool started_ = false;
    Cycle firstCycle_ = 0;
    Cycle lastReport_ = 0;
    /** IPC baseline: committed counts reset at end of warm-up. */
    Cycle ipcStartCycle_ = 0;
};

} // namespace stacknoc::system

#endif // STACKNOC_SYSTEM_PROGRESS_HH
