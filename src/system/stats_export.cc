#include "system/stats_export.hh"

#include <ostream>
#include <thread>

#include "telemetry/json.hh"

namespace stacknoc::system {

namespace {

void
writeMetrics(telemetry::JsonWriter &w, const Metrics &m)
{
    w.key("metrics");
    w.beginObject();
    w.kv("cycles", static_cast<std::uint64_t>(m.cycles));
    w.kv("instruction_throughput", m.instructionThroughput());
    w.kv("mean_ipc", m.meanIpc());
    w.kv("min_ipc", m.minIpc());
    w.kv("avg_network_latency", m.avgNetworkLatency);
    w.kv("p50_network_latency", m.p50NetworkLatency);
    w.kv("p95_network_latency", m.p95NetworkLatency);
    w.kv("p99_network_latency", m.p99NetworkLatency);
    w.kv("avg_bank_queue_latency", m.avgBankQueueLatency);
    w.kv("avg_uncore_latency", m.avgUncoreLatency);
    w.key("energy_uj");
    w.beginObject();
    w.kv("cache_dynamic", m.energy.cacheDynamicUJ);
    w.kv("cache_leakage", m.energy.cacheLeakageUJ);
    w.kv("net_dynamic", m.energy.netDynamicUJ);
    w.kv("net_leakage", m.energy.netLeakageUJ);
    w.kv("total", m.energy.totalUJ());
    w.endObject();
    w.endObject();
}

} // namespace

void
writeJsonStats(std::ostream &os, const CmpSystem &sys, const RunInfo &info)
{
    telemetry::JsonWriter w(os);
    w.beginObject();

    w.key("run");
    w.beginObject();
    w.kv("scenario", info.scenario);
    w.kv("app", info.app);
    w.kv("seed", info.seed);
    w.kv("warmup_cycles", static_cast<std::uint64_t>(info.warmupCycles));
    w.kv("measured_cycles",
         static_cast<std::uint64_t>(info.measuredCycles));
    w.kv("timed_out", info.timedOut);
    w.endObject();

    writeMetrics(w, sys.metrics());

    // Wall-clock performance of the execution engine, so speedups are
    // visible in every run artifact. Never feed this into determinism
    // digests: wall time varies run to run by construction.
    w.key("perf");
    w.beginObject();
    w.kv("engine", std::string(sys.engineName()));
    w.kv("threads", static_cast<std::uint64_t>(sys.engineThreads()));
    w.kv("hardware_threads",
         static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    w.kv("wall_seconds", sys.wallSeconds());
    w.kv("ticks", static_cast<std::uint64_t>(sys.engineTicks()));
    w.kv("ticks_per_sec", sys.ticksPerSecond());
    w.endObject();

    // Cycle-accounting profile. Wall-clock like "perf": excluded from
    // determinism digests (stats_diff.py skips both by default).
    w.key("profile");
    if (const auto *prof = sys.profiler()) {
        w.beginObject();
        w.kv("cycles", static_cast<std::uint64_t>(prof->cycles()));
        w.kv("total_seconds", prof->totalPhaseSeconds());
        w.key("phases");
        w.beginObject();
        for (std::size_t p = 0; p < telemetry::kNumEnginePhases; ++p) {
            const auto ph = static_cast<telemetry::EnginePhase>(p);
            w.kv(telemetry::enginePhaseName(ph), prof->phaseSeconds(ph));
        }
        w.endObject();
        w.key("shards");
        w.beginArray();
        for (std::size_t s = 0; s < prof->numShards(); ++s) {
            w.beginObject();
            w.kv("shard", static_cast<std::uint64_t>(s));
            w.kv("compute_seconds",
                 prof->shardSeconds(s, telemetry::EnginePhase::Compute));
            w.endObject();
        }
        w.endArray();
        w.key("kinds");
        w.beginObject();
        for (std::size_t k = 0; k < prof->kindNames().size(); ++k)
            w.kv(prof->kindNames()[k], prof->kindSeconds(k));
        w.endObject();
        w.kv("spans_recorded", prof->spansRecorded());
        w.kv("spans_dropped", prof->spansDropped());
        w.endObject();
    } else {
        w.null();
    }

    w.key("groups");
    w.beginObject();
    w.key("cache");
    telemetry::writeGroupJson(w, sys.cacheStats());
    w.key("core");
    telemetry::writeGroupJson(w, sys.coreStats());
    w.key("mem");
    telemetry::writeGroupJson(w, sys.memStats());
    w.key("net");
    telemetry::writeGroupJson(w, sys.network().stats());
    if (const auto *policy = sys.policy()) {
        w.key("sttnoc");
        telemetry::writeGroupJson(w, policy->stats());
    }
    if (const auto *faults = sys.faults()) {
        w.key("faults");
        telemetry::writeGroupJson(w, faults->stats());
    }
    w.endObject();

    // Fault-campaign summary: the active spec plus the watchdog verdict
    // (null when no faults and no watchdog were configured).
    w.key("faults");
    if (sys.faults() || sys.watchdogProbe()) {
        w.beginObject();
        w.kv("spec", sys.faults() ? sys.faults()->spec().toString()
                                  : std::string("none"));
        w.key("watchdog");
        if (const auto *wd = sys.watchdogProbe()) {
            w.beginObject();
            w.kv("fired", wd->fired());
            w.kv("fired_at", static_cast<std::uint64_t>(wd->firedAt()));
            w.kv("stall_cycles",
                 static_cast<std::uint64_t>(wd->config().stallCycles));
            w.endObject();
        } else {
            w.null();
        }
        w.endObject();
    } else {
        w.null();
    }

    w.key("intervals");
    if (const auto *sampler = sys.intervals())
        telemetry::writeIntervalJson(w, *sampler);
    else
        w.null();

    w.key("probe");
    if (const auto *probe = sys.probe()) {
        w.beginObject();
        w.key("avg_requests_at_hops");
        w.beginObject();
        w.kv("1", probe->avgRequestsAtHops(1));
        w.kv("2", probe->avgRequestsAtHops(2));
        w.kv("3", probe->avgRequestsAtHops(3));
        w.endObject();
        w.endObject();
    } else {
        w.null();
    }

    w.endObject();
    os << "\n";
}

} // namespace stacknoc::system
