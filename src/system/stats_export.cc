#include "system/stats_export.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <thread>

#include "telemetry/json.hh"

namespace stacknoc::system {

namespace {

void
writeMetrics(telemetry::JsonWriter &w, const Metrics &m)
{
    w.key("metrics");
    w.beginObject();
    w.kv("cycles", static_cast<std::uint64_t>(m.cycles));
    w.kv("instruction_throughput", m.instructionThroughput());
    w.kv("mean_ipc", m.meanIpc());
    w.kv("min_ipc", m.minIpc());
    w.kv("avg_network_latency", m.avgNetworkLatency);
    w.kv("p50_network_latency", m.p50NetworkLatency);
    w.kv("p95_network_latency", m.p95NetworkLatency);
    w.kv("p99_network_latency", m.p99NetworkLatency);
    w.kv("avg_bank_queue_latency", m.avgBankQueueLatency);
    w.kv("avg_uncore_latency", m.avgUncoreLatency);
    w.key("energy_uj");
    w.beginObject();
    w.kv("cache_dynamic", m.energy.cacheDynamicUJ);
    w.kv("cache_leakage", m.energy.cacheLeakageUJ);
    w.kv("net_dynamic", m.energy.netDynamicUJ);
    w.kv("net_leakage", m.energy.netLeakageUJ);
    w.kv("retry_write", m.energy.retryWriteUJ);
    w.kv("retransmit_flit", m.energy.retransmitFlitUJ);
    w.kv("total", m.energy.totalUJ());
    w.endObject();
    w.endObject();
}

void
writeGrids(telemetry::JsonWriter &w,
           const std::vector<std::vector<double>> &grids)
{
    w.beginArray();
    for (const auto &grid : grids) {
        w.beginArray();
        for (const double v : grid)
            w.value(v);
        w.endArray();
    }
    w.endArray();
}

void
writePower(telemetry::JsonWriter &w, const CmpSystem &sys)
{
    const telemetry::EnergyProbe &p = *sys.power();
    const telemetry::PowerParams &pp = p.params();

    w.beginObject();
    w.kv("period", static_cast<std::uint64_t>(p.period()));
    w.kv("width", p.width());
    w.kv("height", p.height());
    w.kv("layers", p.layers());
    w.kv("frames_dropped", p.framesDropped());

    w.key("params");
    w.beginObject();
    w.kv("bank_read_nj", pp.bankReadNJ);
    w.kv("bank_write_nj", pp.bankWriteNJ);
    w.kv("bank_leakage_mw", pp.bankLeakageMW);
    w.kv("retry_write_nj", pp.retryWriteNJ);
    w.kv("buffer_write_nj", pp.bufferWriteNJ);
    w.kv("buffer_read_nj", pp.bufferReadNJ);
    w.kv("crossbar_nj", pp.crossbarNJ);
    w.kv("arbiter_nj", pp.arbiterNJ);
    w.kv("link_nj", pp.linkNJ);
    w.kv("router_leakage_mw", pp.routerLeakageMW);
    w.kv("retransmit_flit_nj", pp.retransmitFlitNJ);
    w.endObject();

    w.key("totals_uj");
    w.beginObject();
    w.kv("cache_dynamic", p.cacheDynamicUJ());
    w.kv("cache_leakage", p.cacheLeakageUJ());
    w.kv("net_dynamic", p.netDynamicUJ());
    w.kv("net_leakage", p.netLeakageUJ());
    w.kv("retry_write", p.retryWriteUJ());
    w.kv("retransmit_flit", p.retransmitFlitUJ());
    w.kv("total", p.totalUJ());
    w.endObject();

    // The streaming sum against the end-of-run computeEnergy scalar;
    // the observability validator asserts rel_error stays below 1e-6.
    const double computed = sys.metrics().energy.totalUJ();
    const double streamed = p.totalUJ();
    const double base = std::max(std::abs(computed), 1e-12);
    w.key("reconciliation");
    w.beginObject();
    w.kv("compute_energy_total_uj", computed);
    w.kv("streaming_total_uj", streamed);
    w.kv("rel_error", std::abs(streamed - computed) / base);
    w.endObject();

    w.key("series");
    w.beginArray();
    for (const telemetry::PowerFrame &f : p.frames()) {
        w.beginObject();
        w.kv("start", static_cast<std::uint64_t>(f.start));
        w.kv("end", static_cast<std::uint64_t>(f.end));
        w.kv("cache_dynamic_uj", f.cacheDynamicUJ);
        w.kv("cache_leakage_uj", f.cacheLeakageUJ);
        w.kv("net_dynamic_uj", f.netDynamicUJ);
        w.kv("net_leakage_uj", f.netLeakageUJ);
        w.kv("retry_write_uj", f.retryWriteUJ);
        w.kv("retransmit_flit_uj", f.retransmitFlitUJ);
        w.kv("total_uj", f.totalUJ());
        w.kv("total_w", f.totalW());
        w.endObject();
    }
    w.endArray();

    w.key("frames");
    w.beginArray();
    for (const telemetry::PowerFrame &f : p.frames()) {
        w.beginObject();
        w.kv("start", static_cast<std::uint64_t>(f.start));
        w.kv("end", static_cast<std::uint64_t>(f.end));
        w.key("grids");
        writeGrids(w, f.powerW);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeThermal(telemetry::JsonWriter &w, const CmpSystem &sys)
{
    const telemetry::ThermalProbe &t = *sys.thermal();
    const telemetry::ThermalParams &tp = t.grid().params();

    w.beginObject();
    w.kv("period",
         static_cast<std::uint64_t>(sys.power()->period()));
    w.kv("width", t.grid().width());
    w.kv("height", t.grid().height());
    w.kv("layers", t.grid().layers());
    w.kv("frames_dropped", t.framesDropped());
    w.kv("ambient_c", tp.ambientC);

    w.key("params");
    w.beginObject();
    w.kv("cell_capacity_j_per_k", tp.cellCapacityJPerK);
    w.kv("lateral_w_per_k", tp.lateralWPerK);
    w.kv("vertical_w_per_k", tp.verticalWPerK);
    w.kv("sink_w_per_k", tp.sinkWPerK);
    w.endObject();

    w.kv("peak_c", t.peakC());
    w.kv("substeps", t.grid().substepsTaken());

    w.key("hot_banks");
    w.beginArray();
    for (const auto &hb : t.hotBanks(8)) {
        w.beginObject();
        w.kv("bank", static_cast<std::int64_t>(hb.bank));
        w.kv("layer", hb.layer);
        w.kv("x", hb.x);
        w.kv("y", hb.y);
        w.kv("temp_c", hb.tempC);
        w.endObject();
    }
    w.endArray();

    w.key("series");
    w.beginArray();
    for (const telemetry::ThermalFrame &f : t.frames()) {
        w.beginObject();
        w.kv("start", static_cast<std::uint64_t>(f.start));
        w.kv("end", static_cast<std::uint64_t>(f.end));
        w.key("max_c");
        w.beginArray();
        for (const double v : f.layerMaxC)
            w.value(v);
        w.endArray();
        w.key("mean_c");
        w.beginArray();
        for (const double v : f.layerMeanC)
            w.value(v);
        w.endArray();
        w.key("hottest");
        w.beginObject();
        w.kv("layer", f.hottest.layer);
        w.kv("x", f.hottest.x);
        w.kv("y", f.hottest.y);
        w.kv("temp_c", f.hottest.tempC);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("frames");
    w.beginArray();
    for (const telemetry::ThermalFrame &f : t.frames()) {
        w.beginObject();
        w.kv("start", static_cast<std::uint64_t>(f.start));
        w.kv("end", static_cast<std::uint64_t>(f.end));
        w.key("grids");
        writeGrids(w, f.tempC);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

void
writeJsonStats(std::ostream &os, const CmpSystem &sys, const RunInfo &info)
{
    telemetry::JsonWriter w(os);
    w.beginObject();

    w.key("run");
    w.beginObject();
    w.kv("scenario", info.scenario);
    w.kv("app", info.app);
    w.kv("seed", info.seed);
    w.kv("warmup_cycles", static_cast<std::uint64_t>(info.warmupCycles));
    w.kv("measured_cycles",
         static_cast<std::uint64_t>(info.measuredCycles));
    w.kv("timed_out", info.timedOut);
    if (info.restored)
        w.kv("restored_from_cycle",
             static_cast<std::uint64_t>(info.restoredFromCycle));
    if (info.hasStatsDigest) {
        char buf[19];
        std::snprintf(buf, sizeof buf, "0x%016llx",
                      static_cast<unsigned long long>(info.statsDigest));
        w.kv("stats_digest", std::string(buf));
    }
    w.endObject();

    writeMetrics(w, sys.metrics());

    // Wall-clock performance of the execution engine, so speedups are
    // visible in every run artifact. Never feed this into determinism
    // digests: wall time varies run to run by construction.
    w.key("perf");
    w.beginObject();
    w.kv("engine", std::string(sys.engineName()));
    w.kv("threads", static_cast<std::uint64_t>(sys.engineThreads()));
    w.kv("hardware_threads",
         static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    w.kv("wall_seconds", sys.wallSeconds());
    w.kv("ticks", static_cast<std::uint64_t>(sys.engineTicks()));
    w.kv("ticks_per_sec", sys.ticksPerSecond());
    // Idle-elision occupancy: component ticks actually executed over
    // tick slots offered. Observer-only like wall time — the count may
    // legitimately differ between engines at equal results.
    w.kv("elide", sys.engineElides());
    w.kv("ticked_components",
         static_cast<std::uint64_t>(sys.engineTickedComponents()));
    w.kv("tick_slots", static_cast<std::uint64_t>(sys.engineTickSlots()));
    w.kv("active_fraction", sys.engineActiveFraction());
    w.endObject();

    // Cycle-accounting profile. Wall-clock like "perf": excluded from
    // determinism digests (stats_diff.py skips both by default).
    w.key("profile");
    if (const auto *prof = sys.profiler()) {
        w.beginObject();
        w.kv("cycles", static_cast<std::uint64_t>(prof->cycles()));
        w.kv("total_seconds", prof->totalPhaseSeconds());
        w.kv("active_fraction", sys.engineActiveFraction());
        w.key("phases");
        w.beginObject();
        for (std::size_t p = 0; p < telemetry::kNumEnginePhases; ++p) {
            const auto ph = static_cast<telemetry::EnginePhase>(p);
            w.kv(telemetry::enginePhaseName(ph), prof->phaseSeconds(ph));
        }
        w.endObject();
        w.key("shards");
        w.beginArray();
        for (std::size_t s = 0; s < prof->numShards(); ++s) {
            w.beginObject();
            w.kv("shard", static_cast<std::uint64_t>(s));
            w.kv("compute_seconds",
                 prof->shardSeconds(s, telemetry::EnginePhase::Compute));
            w.endObject();
        }
        w.endArray();
        w.key("kinds");
        w.beginObject();
        for (std::size_t k = 0; k < prof->kindNames().size(); ++k)
            w.kv(prof->kindNames()[k], prof->kindSeconds(k));
        w.endObject();
        w.kv("spans_recorded", prof->spansRecorded());
        w.kv("spans_dropped", prof->spansDropped());
        w.endObject();
    } else {
        w.null();
    }

    w.key("groups");
    w.beginObject();
    w.key("cache");
    telemetry::writeGroupJson(w, sys.cacheStats());
    w.key("core");
    telemetry::writeGroupJson(w, sys.coreStats());
    w.key("mem");
    telemetry::writeGroupJson(w, sys.memStats());
    w.key("net");
    telemetry::writeGroupJson(w, sys.network().stats());
    if (const auto *policy = sys.policy()) {
        w.key("sttnoc");
        telemetry::writeGroupJson(w, policy->stats());
    }
    if (const auto *faults = sys.faults()) {
        w.key("faults");
        telemetry::writeGroupJson(w, faults->stats());
    }
    w.endObject();

    // Fault-campaign summary: the active spec plus the watchdog verdict
    // (null when no faults and no watchdog were configured).
    w.key("faults");
    if (sys.faults() || sys.watchdogProbe()) {
        w.beginObject();
        w.kv("spec", sys.faults() ? sys.faults()->spec().toString()
                                  : std::string("none"));
        w.key("watchdog");
        if (const auto *wd = sys.watchdogProbe()) {
            w.beginObject();
            w.kv("fired", wd->fired());
            w.kv("fired_at", static_cast<std::uint64_t>(wd->firedAt()));
            w.kv("stall_cycles",
                 static_cast<std::uint64_t>(wd->config().stallCycles));
            w.endObject();
        } else {
            w.null();
        }
        w.endObject();
    } else {
        w.null();
    }

    w.key("intervals");
    if (const auto *sampler = sys.intervals())
        telemetry::writeIntervalJson(w, *sampler);
    else
        w.null();

    // Streaming power/thermal telemetry. Both sections are fully
    // deterministic (simulated-time quantities only), so stats_diff
    // compares them by default when both runs enabled the flags.
    w.key("power");
    if (sys.power() != nullptr)
        writePower(w, sys);
    else
        w.null();

    w.key("thermal");
    if (sys.thermal() != nullptr)
        writeThermal(w, sys);
    else
        w.null();

    w.key("probe");
    if (const auto *probe = sys.probe()) {
        w.beginObject();
        w.key("avg_requests_at_hops");
        w.beginObject();
        w.kv("1", probe->avgRequestsAtHops(1));
        w.kv("2", probe->avgRequestsAtHops(2));
        w.kv("3", probe->avgRequestsAtHops(3));
        w.endObject();
        w.endObject();
    } else {
        w.null();
    }

    w.endObject();
    os << "\n";
}

} // namespace stacknoc::system
