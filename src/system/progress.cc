#include "system/progress.hh"

#include <cstdio>
#include <ostream>

#include "common/logging.hh"

namespace stacknoc::system {

ProgressReporter::ProgressReporter(
    std::ostream &os, Cycle total_cycles, Cycle period_cycles,
    std::function<std::uint64_t()> committed_fn)
    : os_(os), total_(total_cycles), period_(period_cycles),
      committed_(std::move(committed_fn)),
      wallStart_(std::chrono::steady_clock::now())
{
    panic_if(period_ < 1, "progress period must be >= 1");
}

void
ProgressReporter::onCycle(Cycle now)
{
    if (!started_) {
        started_ = true;
        firstCycle_ = now;
        ipcStartCycle_ = now;
        lastReport_ = now;
        return;
    }
    if (now - lastReport_ < period_)
        return;
    lastReport_ = now;
    report(now, false);
}

void
ProgressReporter::onReset(Cycle now)
{
    // Committed-instruction counts were just zeroed (end of warm-up):
    // re-anchor the IPC window so it covers the measured region only.
    ipcStartCycle_ = now;
}

void
ProgressReporter::finish(Cycle now)
{
    report(now, true);
}

void
ProgressReporter::report(Cycle now, bool final_line)
{
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart_)
            .count();
    const auto done = static_cast<double>(now - firstCycle_);
    const double rate = wall > 0.0 ? done / wall : 0.0;

    double ipc = 0.0;
    if (committed_ && now > ipcStartCycle_) {
        ipc = static_cast<double>(committed_()) /
              static_cast<double>(now - ipcStartCycle_);
    }

    char buf[192];
    if (total_ > 0) {
        const auto total = static_cast<double>(total_);
        const double pct = 100.0 * done / total;
        const double eta =
            rate > 0.0 ? (total - done) / rate : 0.0;
        std::snprintf(buf, sizeof(buf),
                      "\r[progress] cycle %llu/%llu (%5.1f%%)  "
                      "%.2e ticks/s  agg IPC %6.2f  ETA %6.1fs",
                      static_cast<unsigned long long>(now),
                      static_cast<unsigned long long>(total_), pct, rate,
                      ipc, final_line ? 0.0 : eta);
    } else {
        std::snprintf(buf, sizeof(buf),
                      "\r[progress] cycle %llu  %.2e ticks/s  "
                      "agg IPC %6.2f",
                      static_cast<unsigned long long>(now), rate, ipc);
    }
    os_ << buf;
    if (final_line)
        os_ << "\n";
    os_.flush();
}

} // namespace stacknoc::system
