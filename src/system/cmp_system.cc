#include "system/cmp_system.hh"

#include <chrono>
#include <iostream>
#include <ostream>

#include "common/logging.hh"
#include "sttnoc/region_routing.hh"
#include "validate/invariants.hh"
#include "workload/app_profiles.hh"

namespace stacknoc::system {

CmpSystem::CmpSystem(const SystemConfig &config)
    : config_(config),
      shape_(config.meshWidth, config.meshHeight, 2),
      cacheStats_("cache"), coreStats_("core"), memStats_("mem")
{
    fatal_if(config_.apps.empty(), "no applications configured");
    fatal_if(config_.apps.size() != 1 &&
                 static_cast<int>(config_.apps.size()) != numCores(),
             "apps must have 1 or %d entries", numCores());

    if (config_.faultsEnabled) {
        fatal_if(config_.faults.stuckRouter != kInvalidNode &&
                     (config_.faults.stuckRouter < 0 ||
                      config_.faults.stuckRouter >= shape_.totalNodes()),
                 "router_stuck node %d out of range (mesh has %d nodes)",
                 static_cast<int>(config_.faults.stuckRouter),
                 shape_.totalNodes());
        faults_ = std::make_unique<fault::FaultInjector>(
            config_.faults, config_.seed, shape_, numBanks());
    }

    buildNetwork();
    buildMemorySystem();
    buildCores();

    if (config_.probePeriod > 0) {
        probe_ = std::make_unique<RouterOccupancyProbe>(
            *net_, config_.probePeriod);
        hub_.add(probe_.get());
    }
    if (config_.intervalPeriod > 0) {
        sampler_ = std::make_unique<telemetry::IntervalSampler>(
            config_.intervalPeriod, config_.intervalMaxSnapshots);
        sampler_->addGroup(&cacheStats_);
        sampler_->addGroup(&coreStats_);
        sampler_->addGroup(&memStats_);
        sampler_->addGroup(&net_->stats());
        if (bankAwarePolicy_)
            sampler_->addGroup(&bankAwarePolicy_->stats());
        if (faults_)
            sampler_->addGroup(&faults_->stats());
        hub_.add(sampler_.get());
    }
    if (config_.heatmapPeriod > 0) {
        heatmap_ = std::make_unique<HeatmapCollector>(
            *net_, bankAwarePolicy_.get(), regions_.get(), shape_,
            config_.heatmapPeriod, config_.heatmapMaxFrames);
        hub_.add(heatmap_.get());
    }
    if (config_.power || config_.thermal) {
        // Streaming energy accumulation over the same counters and
        // constants computeEnergy() reads at end of run, so the two
        // paths reconcile (tests pin the drift below 1e-6 relative).
        const NocEnergyParams noc_energy{};
        const mem::BankTechParams &bank_tech =
            mem::bankTech(config_.scenario.tech);
        telemetry::PowerParams pp;
        pp.bankReadNJ = bank_tech.readEnergyNJ;
        pp.bankWriteNJ = bank_tech.writeEnergyNJ;
        pp.bankLeakageMW = bank_tech.leakagePowerMW;
        pp.retryWriteNJ = noc_energy.retryWriteNJ;
        pp.bufferWriteNJ = noc_energy.bufferWriteNJ;
        pp.bufferReadNJ = noc_energy.bufferReadNJ;
        pp.crossbarNJ = noc_energy.crossbarNJ;
        pp.arbiterNJ = noc_energy.arbiterNJ;
        pp.linkNJ = noc_energy.linkNJ;
        pp.routerLeakageMW = noc_energy.routerLeakageMW;
        pp.retransmitFlitNJ = noc_energy.retransmitFlitNJ;
        pp.clockGHz = mem::kClockGHz;

        power_ = std::make_unique<telemetry::EnergyProbe>(
            shape_.width(), shape_.height(), shape_.layers(), pp,
            config_.powerPeriod, config_.powerMaxFrames);
        for (NodeId n = 0; n < shape_.totalNodes(); ++n) {
            const Coord c = shape_.coord(n);
            const noc::Router *router = &net_->router(n);
            const noc::NetworkInterface *ni = &net_->ni(n);
            power_->addRouter(c.x, c.y, c.layer, [router, ni] {
                telemetry::RouterActivity a;
                a.flitsBuffered = router->flitsBufferedTotal();
                a.flitsSwitched = router->flitsSwitchedTotal();
                a.flitsRetransmitted = ni->flitsRetransmittedTotal();
                return a;
            });
        }
        for (BankId b = 0; b < numBanks(); ++b) {
            const Coord c = shape_.coord(regions_->nodeOfBank(b));
            const coherence::L2Bank *bank =
                banks_.at(static_cast<std::size_t>(b)).get();
            power_->addBank(c.x, c.y, c.layer, [bank] {
                const mem::BankController &ctrl =
                    bank->bankController();
                telemetry::BankActivity a;
                a.reads = ctrl.bank().readsTotal();
                a.writes = ctrl.bank().writesTotal();
                a.retryRounds = ctrl.retryRoundsTotal();
                return a;
            });
        }
        if (config_.thermal) {
            thermal_ = std::make_unique<telemetry::ThermalProbe>(
                shape_.width(), shape_.height(), shape_.layers(),
                config_.thermalParams, config_.powerMaxFrames);
            for (BankId b = 0; b < numBanks(); ++b) {
                const Coord c = shape_.coord(regions_->nodeOfBank(b));
                thermal_->addBank(b, c.x, c.y, c.layer);
            }
            power_->setSink(thermal_.get());
        }
        hub_.add(power_.get());
    }
    if (config_.progress) {
        progress_ = std::make_unique<ProgressReporter>(
            std::cerr, config_.progressTotalCycles,
            config_.progressPeriod, [this] {
                std::uint64_t committed = 0;
                for (const auto &core : cores_)
                    committed += core->committed();
                return committed;
            });
        hub_.add(progress_.get());
    }
    if (config_.validate) {
        validation_ =
            std::make_unique<validate::ValidationHub>(config_.validation);
        validate::SystemView view;
        view.net = net_.get();
        for (const auto &l1 : l1s_)
            view.l1s.push_back(l1.get());
        for (const auto &bank : banks_)
            view.banks.push_back(bank.get());
        view.policy = bankAwarePolicy_.get();
        view.regions = regions_.get();
        view.parents = parents_.get();
        view.bankRequestCap = config_.bankRequestCap;
        view.bankWriteCap = config_.bankWriteCap;
        validate::addStandardCheckers(*validation_, view,
                                      config_.validation);
        hub_.add(validation_.get());
        // Violations dump the trace-ring tail; install a tracer so the
        // dump has context even when the caller didn't set one up.
        if (telemetry::tracer() == nullptr) {
            ownedTracer_ = std::make_unique<telemetry::PacketTracer>(
                1024, 1);
            telemetry::setTracer(ownedTracer_.get());
        }
    }
    if (config_.watchdogEnabled) {
        watchdog_ = std::make_unique<fault::Watchdog>(
            *net_, bankAwarePolicy_.get(),
            bankAwarePolicy_ ? numBanks() : 0, config_.watchdog);
        hub_.add(watchdog_.get());
        // The trigger dump includes the trace-ring tail; make sure one
        // exists even when the caller installed no tracer.
        if (telemetry::tracer() == nullptr && !ownedTracer_) {
            ownedTracer_ = std::make_unique<telemetry::PacketTracer>(
                1024, 1);
            telemetry::setTracer(ownedTracer_.get());
        }
    }
    if (!hub_.empty())
        sim_.onCycleEnd([this](Cycle now) { hub_.onCycle(now); });

    // Every component is registered by now; the engine snapshots the
    // registry when it builds its shard plan.
    engine_ = engine::makeEngine(sim_, config_.threads, config_.elide);

    if (config_.profile) {
        profiler_ = std::make_unique<telemetry::CycleProfiler>(
            config_.profileSpanCapacity);
        engine_->setProfiler(profiler_.get());
    }
}

CmpSystem::~CmpSystem()
{
    if (ownedTracer_ && telemetry::tracer() == ownedTracer_.get())
        telemetry::setTracer(nullptr);
}

void
CmpSystem::buildNetwork()
{
    const Scenario &sc = config_.scenario;

    // Region partition and parent map exist whenever the TSB restriction
    // is active; the bank-aware policy additionally needs a scheme.
    const int regions = sc.tsbRegions > 0 ? sc.tsbRegions : 4;
    regions_ = std::make_unique<sttnoc::RegionMap>(
        shape_, sttnoc::RegionConfig{regions, sc.placement});
    parents_ = std::make_unique<sttnoc::ParentMap>(*regions_,
                                                   sc.parentHops);

    noc::ArbitrationPolicy *policy = nullptr;
    if (sc.scheme.has_value()) {
        fatal_if(sc.tsbRegions <= 0,
                 "the STT-RAM-aware scheme requires region TSBs");
        sttnoc::SttAwareParams params;
        params.estimator = *sc.scheme;
        params.delayMode = sc.delayMode;
        params.writeServiceCycles =
            mem::bankTech(sc.tech).writeCycles;
        params.holdCap = 3 * params.writeServiceCycles;
        bankAwarePolicy_ = std::make_unique<sttnoc::BankAwarePolicy>(
            *regions_, *parents_, params, nullptr);
        policy = bankAwarePolicy_.get();
    } else {
        obliviousPolicy_ = std::make_unique<noc::ArbitrationPolicy>();
        policy = obliviousPolicy_.get();
    }

    std::unique_ptr<noc::RoutingFunction> routing;
    if (sc.tsbRegions > 0)
        routing = std::make_unique<sttnoc::RegionRouting>(*regions_);
    else
        routing = std::make_unique<noc::ZxyRouting>(shape_);

    noc::NocParams noc_params;
    noc_params.vcsPerVnet = sc.vcsPerVnet;
    net_ = std::make_unique<noc::Network>(sim_, shape_, noc_params,
                                          std::move(routing), *policy);
    if (faults_)
        net_->setFaultInjector(faults_.get());

    // Widen the region TSBs to 256 bits (two flits per cycle).
    if (sc.tsbRegions > 0) {
        for (int r = 0; r < regions_->numRegions(); ++r) {
            net_->topology().widenDownLink(regions_->tsbCoreNode(r),
                                           noc_params.tsbBandwidth);
        }
    }

    // The estimator may need the network (RCA sideband fabric).
    if (bankAwarePolicy_) {
        if (*sc.scheme == sttnoc::EstimatorKind::Rca) {
            rcaFabric_ = std::make_unique<sttnoc::RcaFabric>(*net_);
            // The fabric ticks from its congestion snapshot, so it can
            // join the parallel phase on its own shard key (one past
            // the per-column keys the network components use). The
            // snapshot + publish step runs at cycle end, after every
            // router has ticked.
            sim_.add(rcaFabric_.get(), shape_.nodesPerLayer());
            sim_.onCycleEnd(
                [fab = rcaFabric_.get()](Cycle now) {
                    fab->onCycleEnd(now);
                });
        }
        bankAwarePolicy_->setEstimator(sttnoc::makeEstimator(
            *sc.scheme, *regions_, *parents_,
            bankAwarePolicy_->params(), rcaFabric_.get()));
        // Parent nodes receive WB probe echoes through their NIs.
        for (NodeId n = 0; n < shape_.totalNodes(); ++n)
            net_->ni(n).setProbeSink(bankAwarePolicy_.get());
        // With write faults active, busy-NACKs widen the hold horizon
        // by at most two write-service rounds (the recovery contract
        // the relaxed parent-hold invariant checks against).
        if (faults_) {
            bankAwarePolicy_->configureFaultRecovery(
                2 * bankAwarePolicy_->params().writeServiceCycles);
        }
    }
}

void
CmpSystem::buildMemorySystem()
{
    const Scenario &sc = config_.scenario;
    const int w = shape_.width();
    const int h = shape_.height();

    coherence::L2Config l2cfg;
    l2cfg.tech = sc.tech;
    l2cfg.bankCtrl.writeBuffer = sc.writeBuffer;
    l2cfg.bankCtrl.writeBufferEntries = sc.writeBufferEntries;
    l2cfg.bankCtrl.readPriority = sc.readPriority;
    l2cfg.realTags = config_.realTags;
    if (config_.realTags) {
        // 128 B blocks, 16 ways: 4 MB -> 2048 sets, 1 MB -> 512 sets.
        l2cfg.sets = sc.tech == mem::CacheTech::SttRam ? 2048 : 512;
        l2cfg.ways = 16;
    }
    l2cfg.victimDirtyProb = config_.victimDirtyProb;
    l2cfg.requestCap = config_.bankRequestCap;
    l2cfg.writeCap = config_.bankWriteCap;
    l2cfg.seed = config_.seed;
    l2cfg.faultInjector = faults_.get();
    l2cfg.mcNodes = {shape_.node(0, 0, 1), shape_.node(w - 1, 0, 1),
                     shape_.node(0, h - 1, 1),
                     shape_.node(w - 1, h - 1, 1)};

    for (BankId b = 0; b < numBanks(); ++b) {
        const NodeId node = regions_->nodeOfBank(b);
        banks_.push_back(std::make_unique<coherence::L2Bank>(
            detail::format("l2bank%d", b), b, node, net_->ni(node),
            l2cfg, cacheStats_));
        net_->ni(node).setClient(banks_.back().get());
        // Write verify-retry recovery: a bank overrunning its predicted
        // busy window NACKs its parent node, where the policy listens.
        if (faults_ && bankAwarePolicy_)
            banks_.back()->setParentNode(parents_->parentOf(b));
        // Same affinity key as the node's router/NI: the bank-aware
        // policy's per-bank state is only touched from this node.
        sim_.add(banks_.back().get(), node % shape_.nodesPerLayer());
    }

    for (const NodeId node : l2cfg.mcNodes) {
        mcs_.push_back(std::make_unique<mem::MemoryController>(
            detail::format("mc%d", node), node, net_->ni(node),
            config_.dram, memStats_));
        net_->ni(node).setMemClient(mcs_.back().get());
        sim_.add(mcs_.back().get(), node % shape_.nodesPerLayer());
    }
}

void
CmpSystem::buildCores()
{
    coherence::HomeMap home;
    home.numBanks = numBanks();
    home.cacheLayerBase = shape_.nodesPerLayer();

    workload::StreamParams stream = config_.stream;
    stream.numBanks = numBanks();
    stream.l2CapacityMissFactor =
        config_.scenario.tech == mem::CacheTech::Sram ? 2.0 : 1.0;

    for (CoreId c = 0; c < numCores(); ++c) {
        const std::string &app_name =
            config_.apps.size() == 1
                ? config_.apps[0]
                : config_.apps[static_cast<std::size_t>(c)];
        const workload::AppProfile &profile =
            workload::findApp(app_name);

        l1s_.push_back(std::make_unique<coherence::L1Cache>(
            detail::format("l1.%d", c), c, net_->ni(c), home,
            config_.l1, cacheStats_));
        net_->ni(c).setClient(l1s_.back().get());
        // Core node ids equal core ids (layer 0), so the affinity key
        // matches the node's router/NI column key.
        sim_.add(l1s_.back().get(), c);

        streams_.push_back(std::make_unique<workload::SyntheticStream>(
            profile, c, config_.seed, stream));
        streams_.back()->attachL1(l1s_.back().get());

        cores_.push_back(std::make_unique<cpu::Core>(
            detail::format("core%d", c), c, *l1s_.back(),
            *streams_.back(), cpu::CoreConfig{}, coreStats_));
        sim_.add(cores_.back().get(), c);
    }
}

void
CmpSystem::run(Cycle cycles)
{
    const auto start = std::chrono::steady_clock::now();
    engine_->run(cycles);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    wallSeconds_ += elapsed.count();
    engineTicks_ += cycles;
}

void
CmpSystem::warmup(Cycle cycles)
{
    warmupBegin();
    run(cycles);
    warmupEnd();
}

void
CmpSystem::warmupBegin()
{
    hub_.onWarmupBegin(sim_.now());
}

void
CmpSystem::warmupEnd()
{
    cacheStats_.reset();
    coreStats_.reset();
    memStats_.reset();
    net_->stats().reset();
    if (bankAwarePolicy_)
        bankAwarePolicy_->stats().reset();
    if (faults_)
        faults_->stats().reset();
    for (auto &core : cores_)
        core->resetCommitted();
    hub_.onReset(sim_.now());
    measureStart_ = sim_.now();
}

Metrics
CmpSystem::metrics() const
{
    Metrics m;
    m.cycles = sim_.now() - measureStart_;
    const double cycles = std::max<double>(1.0,
                                           static_cast<double>(m.cycles));
    for (const auto &core : cores_)
        m.ipc.push_back(static_cast<double>(core->committed()) / cycles);

    if (const auto *a = net_->stats().findAverage(
            "packet_network_latency"))
        m.avgNetworkLatency = a->mean();
    if (const auto *a = cacheStats_.findAverage("bank_queue_latency"))
        m.avgBankQueueLatency = a->mean();
    if (const auto *a = cacheStats_.findAverage("l1_miss_latency"))
        m.avgUncoreLatency = a->mean();
    if (const auto *h = net_->stats().findHistogram(
            "packet_network_latency_hist")) {
        m.p50NetworkLatency = h->percentile(0.50);
        m.p95NetworkLatency = h->percentile(0.95);
        m.p99NetworkLatency = h->percentile(0.99);
    }

    m.energy = computeEnergy(cacheStats_, net_->stats(),
                             config_.scenario.tech, numBanks(),
                             shape_.totalNodes(), m.cycles,
                             NocEnergyParams{},
                             faults_ ? &faults_->stats() : nullptr);
    return m;
}

void
CmpSystem::finalizeTelemetry()
{
    if (power_)
        power_->finalize(sim_.now());
}

void
CmpSystem::dumpStats(std::ostream &os) const
{
    cacheStats_.dump(os);
    coreStats_.dump(os);
    memStats_.dump(os);
    net_->stats().dump(os);
    if (bankAwarePolicy_)
        bankAwarePolicy_->stats().dump(os);
    if (faults_)
        faults_->stats().dump(os);
}

} // namespace stacknoc::system
