#include "system/probes.hh"

namespace stacknoc::system {

RouterOccupancyProbe::RouterOccupancyProbe(noc::Network &net,
                                           Cycle sample_period)
    : net_(net), period_(sample_period)
{
}

void
RouterOccupancyProbe::onCycle(Cycle now)
{
    // Warm-up samples would bias the conditioned averages toward the
    // cold-start transient, so they are skipped outright rather than
    // accumulated and discarded.
    if (suppressed_ || (now - origin_) % period_ != 0)
        return;
    const MeshShape &shape = net_.shape();
    const int per_layer = shape.nodesPerLayer();
    for (NodeId n = per_layer; n < shape.totalNodes(); ++n) {
        std::array<int, 4> count{};
        net_.router(n).forEachBufferedPacket(
            [&](const noc::Packet &pkt) {
                if (!noc::isRestrictedRequest(pkt.cls))
                    return;
                if (pkt.dest < per_layer)
                    return;
                const int h = shape.planarDistance(n, pkt.dest);
                if (h >= 1 && h <= 3)
                    ++count[static_cast<std::size_t>(h)];
            });
        for (int h = 1; h <= 3; ++h) {
            if (count[static_cast<std::size_t>(h)] > 0) {
                sum_[static_cast<std::size_t>(h)] +=
                    count[static_cast<std::size_t>(h)];
                ++occupiedSamples_[static_cast<std::size_t>(h)];
            }
        }
    }
}

double
RouterOccupancyProbe::avgRequestsAtHops(int hops) const
{
    const auto h = static_cast<std::size_t>(hops);
    return occupiedSamples_[h]
               ? sum_[h] / static_cast<double>(occupiedSamples_[h])
               : 0.0;
}

void
RouterOccupancyProbe::onWarmupBegin(Cycle)
{
    suppressed_ = true;
}

void
RouterOccupancyProbe::onReset(Cycle now)
{
    reset();
    suppressed_ = false;
    origin_ = now; // re-align the sampling phase to the measured window
}

void
RouterOccupancyProbe::reset()
{
    sum_.fill(0.0);
    occupiedSamples_.fill(0);
}

} // namespace stacknoc::system
