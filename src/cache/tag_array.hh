/**
 * @file
 * A set-associative tag array with true-LRU replacement, shared by the
 * L1 caches and the L2 banks ("real tags" mode).
 */

#ifndef STACKNOC_CACHE_TAG_ARRAY_HH
#define STACKNOC_CACHE_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::cache {

/** One cached block. `state` is protocol-defined (MESI for the L1s). */
struct TagEntry
{
    BlockAddr addr = 0;
    bool valid = false;
    bool dirty = false;
    /** Protocol-defined state byte (coherence::L1State for L1 tags). */
    std::uint8_t state = 0;
    /** Blocks with in-flight transactions must not be evicted. */
    bool pinned = false;
    std::uint64_t lastUse = 0;
};

/**
 * numSets x ways blocks. Lookup, allocation with LRU victimisation
 * (skipping pinned entries), and invalidation.
 */
class TagArray
{
  public:
    TagArray(int num_sets, int ways);

    /** @return the entry holding @p addr, or nullptr. Updates LRU. */
    TagEntry *find(BlockAddr addr);

    /** @return the entry holding @p addr without touching LRU state. */
    const TagEntry *peek(BlockAddr addr) const;

    /**
     * Allocate a frame for @p addr (which must not be present).
     * The LRU non-pinned entry of the set is chosen; if it was valid its
     * contents are copied to @p evicted.
     *
     * @return the (re-initialised, valid) entry, or nullptr when every
     * way of the set is pinned (caller must retry later).
     */
    TagEntry *allocate(BlockAddr addr, TagEntry *evicted);

    /** Drop @p addr if present. @return whether it was present. */
    bool invalidate(BlockAddr addr);

    /** @return a resident, non-pinned block of the cache, or nullptr.
     *  Used by workload generators to synthesise re-references.
     *  @param salt selects among candidates deterministically. */
    const TagEntry *anyResident(std::uint64_t salt) const;

    int numSets() const { return numSets_; }
    int ways() const { return ways_; }
    int validCount() const { return validCount_; }

    /** Visit every valid entry (observer use: validation, stats). */
    template <typename Fn>
    void
    forEachValid(Fn fn) const
    {
        for (const auto &e : entries_) {
            if (e.valid)
                fn(e);
        }
    }

  private:
    friend class snapshot::StateIO; //!< checkpoints entries + LRU clock

    std::size_t setBase(BlockAddr addr) const;

    int numSets_;
    int ways_;
    int validCount_ = 0;
    std::uint64_t useClock_ = 0;
    std::vector<TagEntry> entries_;
};

} // namespace stacknoc::cache

#endif // STACKNOC_CACHE_TAG_ARRAY_HH
