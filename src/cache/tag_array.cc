#include "cache/tag_array.hh"

#include "common/logging.hh"

namespace stacknoc::cache {

TagArray::TagArray(int num_sets, int ways)
    : numSets_(num_sets), ways_(ways),
      entries_(static_cast<std::size_t>(num_sets) *
               static_cast<std::size_t>(ways))
{
    panic_if(num_sets <= 0 || ways <= 0, "bad tag array geometry");
}

std::size_t
TagArray::setBase(BlockAddr addr) const
{
    return (addr % static_cast<std::uint64_t>(numSets_)) *
           static_cast<std::size_t>(ways_);
}

TagEntry *
TagArray::find(BlockAddr addr)
{
    const std::size_t base = setBase(addr);
    for (int w = 0; w < ways_; ++w) {
        TagEntry &e = entries_[base + static_cast<std::size_t>(w)];
        if (e.valid && e.addr == addr) {
            e.lastUse = ++useClock_;
            return &e;
        }
    }
    return nullptr;
}

const TagEntry *
TagArray::peek(BlockAddr addr) const
{
    const std::size_t base = setBase(addr);
    for (int w = 0; w < ways_; ++w) {
        const TagEntry &e = entries_[base + static_cast<std::size_t>(w)];
        if (e.valid && e.addr == addr)
            return &e;
    }
    return nullptr;
}

TagEntry *
TagArray::allocate(BlockAddr addr, TagEntry *evicted)
{
    panic_if(peek(addr) != nullptr, "allocate of resident block %llx",
             static_cast<unsigned long long>(addr));
    const std::size_t base = setBase(addr);
    TagEntry *victim = nullptr;
    for (int w = 0; w < ways_; ++w) {
        TagEntry &e = entries_[base + static_cast<std::size_t>(w)];
        if (e.pinned)
            continue;
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lastUse < victim->lastUse)
            victim = &e;
    }
    if (!victim)
        return nullptr; // whole set pinned: caller retries
    if (victim->valid) {
        if (evicted)
            *evicted = *victim;
        --validCount_;
    }
    *victim = TagEntry{};
    victim->addr = addr;
    victim->valid = true;
    victim->lastUse = ++useClock_;
    ++validCount_;
    return victim;
}

bool
TagArray::invalidate(BlockAddr addr)
{
    const std::size_t base = setBase(addr);
    for (int w = 0; w < ways_; ++w) {
        TagEntry &e = entries_[base + static_cast<std::size_t>(w)];
        if (e.valid && e.addr == addr) {
            e = TagEntry{};
            --validCount_;
            return true;
        }
    }
    return false;
}

const TagEntry *
TagArray::anyResident(std::uint64_t salt) const
{
    if (validCount_ == 0)
        return nullptr;
    const std::size_t n = entries_.size();
    const std::size_t start = static_cast<std::size_t>(salt % n);
    for (std::size_t i = 0; i < n; ++i) {
        const TagEntry &e = entries_[(start + i) % n];
        if (e.valid && !e.pinned)
            return &e;
    }
    return nullptr;
}

} // namespace stacknoc::cache
