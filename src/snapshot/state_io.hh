/**
 * @file
 * Whole-system checkpoint save/restore.
 *
 * StateIO is befriended by every stateful component and serialises the
 * complete behavioural state of a CmpSystem: workload streams, cores,
 * L1s, L2 banks (directory, TBEs, bank controllers), memory controllers,
 * every router/NI/link of the network, the bank-aware policy and its
 * estimator, the RCA fabric, the fault-injector site streams, the
 * global packet-id streams, and the engines' idle-elision active sets.
 *
 * Contract: a checkpoint is taken at the warm-up boundary (immediately
 * after CmpSystem::warmupEnd()) and restored into a freshly constructed,
 * never-run CmpSystem built from the same scenario/seed configuration.
 * The restored run then produces stats bit-identical to the
 * uninterrupted run at any --threads and with elision on or off.
 * Observer-only state (stats groups, probes, samplers, profiler) is NOT
 * serialised: at the warm boundary all stats are zero and the probes
 * re-baseline from the restored plain counters via ProbeHub::onReset.
 *
 * Systems running with validation enabled cannot be checkpointed or
 * restored (the validation hub's census state is not serialised).
 */

#ifndef STACKNOC_SNAPSHOT_STATE_IO_HH
#define STACKNOC_SNAPSHOT_STATE_IO_HH

#include <cstdint>

#include "snapshot/serialize.hh"

namespace stacknoc::system {
class CmpSystem;
} // namespace stacknoc::system

namespace stacknoc::cpu {
class Core;
} // namespace stacknoc::cpu

namespace stacknoc::coherence {
class L1Cache;
class L2Bank;
} // namespace stacknoc::coherence

namespace stacknoc::mem {
class BankController;
class MemoryController;
} // namespace stacknoc::mem

namespace stacknoc::noc {
class NetworkInterface;
class Router;
struct Link;
} // namespace stacknoc::noc

namespace stacknoc::cache {
class TagArray;
} // namespace stacknoc::cache

namespace stacknoc::workload {
class SyntheticStream;
} // namespace stacknoc::workload

namespace stacknoc::sttnoc {
class BankAwarePolicy;
class RcaFabric;
} // namespace stacknoc::sttnoc

namespace stacknoc::fault {
class FaultInjector;
} // namespace stacknoc::fault

namespace stacknoc::snapshot {

class SaveCtx;
class LoadCtx;
class Loader;
class Saver;

/**
 * The single (friended) entry point for component state serialisation.
 * All methods are static; the class exists only so components can grant
 * access with one friend declaration.
 */
class StateIO
{
  public:
    /**
     * Serialise the complete behavioural state of @p sys into @p s.
     * @throws SnapshotError when the system holds non-serialisable
     * state (validation enabled, or a test-only callback completion).
     */
    static void save(const system::CmpSystem &sys, Saver &s);

    /**
     * Restore @p sys — freshly constructed from the same configuration,
     * never run — from @p l. The caller completes the restore with
     * CmpSystem::warmupEnd() (probe re-baseline + measurement start).
     * @throws SnapshotError on any structural mismatch or truncation.
     */
    static void load(system::CmpSystem &sys, Loader &l);

    /** Implementation behind snapshot::statsDigest (needs friendship). */
    static std::uint64_t digest(const system::CmpSystem &sys);

  private:
    // Per-component passes. Private static members (not file-local
    // helpers) because friendship does not transfer to free functions.
    static void saveStream(Saver &s, const workload::SyntheticStream &st);
    static void loadStream(Loader &l, workload::SyntheticStream &st);
    static void saveCore(Saver &s, SaveCtx &ctx, const cpu::Core &core);
    static void loadCore(Loader &l, LoadCtx &ctx, cpu::Core &core);
    static void saveL1(Saver &s, SaveCtx &ctx,
                       const coherence::L1Cache &l1);
    static void loadL1(Loader &l, LoadCtx &ctx, coherence::L1Cache &l1);
    static void saveBank(Saver &s, SaveCtx &ctx,
                         const coherence::L2Bank &bank);
    static void loadBank(Loader &l, LoadCtx &ctx,
                         coherence::L2Bank &bank);
    static void saveBankCtrl(Saver &s, const mem::BankController &ctrl);
    static void loadBankCtrl(Loader &l, mem::BankController &ctrl,
                             coherence::L2Bank &owner);
    static void saveMc(Saver &s, SaveCtx &ctx,
                       const mem::MemoryController &mc);
    static void loadMc(Loader &l, LoadCtx &ctx,
                       mem::MemoryController &mc);
    static void saveRouter(Saver &s, SaveCtx &ctx,
                           const noc::Router &r);
    static void loadRouter(Loader &l, LoadCtx &ctx, noc::Router &r);
    static void saveNi(Saver &s, SaveCtx &ctx,
                       const noc::NetworkInterface &ni);
    static void loadNi(Loader &l, LoadCtx &ctx,
                       noc::NetworkInterface &ni);
    static void saveLink(Saver &s, SaveCtx &ctx, const noc::Link &link);
    static void loadLink(Loader &l, LoadCtx &ctx, noc::Link &link);
    static void saveTags(Saver &s, const cache::TagArray &tags);
    static void loadTags(Loader &l, cache::TagArray &tags);
    static void savePolicy(Saver &s, const sttnoc::BankAwarePolicy &p);
    static void loadPolicy(Loader &l, sttnoc::BankAwarePolicy &p);
    static void saveFabric(Saver &s, const sttnoc::RcaFabric &f);
    static void loadFabric(Loader &l, sttnoc::RcaFabric &f);
    static void saveFaults(Saver &s, const fault::FaultInjector &fi);
    static void loadFaults(Loader &l, fault::FaultInjector &fi);
    static void saveEngine(Saver &s, const system::CmpSystem &sys);
    static void loadEngine(Loader &l, system::CmpSystem &sys);
};

/**
 * FNV-1a digest over every stats group of @p sys (counters, averages
 * with bit-exact sums, distributions, histograms) plus the per-core
 * committed-instruction counts and the current cycle. Two runs are
 * "bit-identical" exactly when these digests match; interval/heatmap
 * snapshots and wall-clock telemetry are deliberately excluded.
 */
std::uint64_t statsDigest(const system::CmpSystem &sys);

} // namespace stacknoc::snapshot

#endif // STACKNOC_SNAPSHOT_STATE_IO_HH
