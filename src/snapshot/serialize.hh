/**
 * @file
 * Byte-buffer serialization primitives for simulator checkpoints.
 *
 * A Saver appends fixed-width little-endian-ordered scalars to a byte
 * vector; a Loader reads them back in the same order. Nothing here knows
 * about components — per-component field order is owned by
 * snapshot::StateIO, and the framing (magic, version, digests) by
 * snapshot/checkpoint.hh. All failures surface as SnapshotError, which
 * the checkpoint layer converts into a one-line rejection reason.
 */

#ifndef STACKNOC_SNAPSHOT_SERIALIZE_HH
#define STACKNOC_SNAPSHOT_SERIALIZE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace stacknoc::snapshot {

/** Any malformed-checkpoint condition (truncation, bad tags, ...). */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** FNV-1a 64-bit, the digest used for config keys and payload checks. */
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t h = kFnvOffset)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

inline std::uint64_t
fnv1a(const std::string &s, std::uint64_t h = kFnvOffset)
{
    return fnv1a(s.data(), s.size(), h);
}

/** Append-only scalar writer. */
class Saver
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    /** Doubles travel as raw bits: bit-identity is the whole point. */
    void d(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Sequential scalar reader over a byte buffer; throws on underflow. */
class Loader
{
  public:
    Loader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Loader(const std::vector<std::uint8_t> &buf)
        : Loader(buf.data(), buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        if (pos_ >= size_)
            throw SnapshotError("checkpoint payload truncated");
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo | (u8() << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (static_cast<std::uint32_t>(u16()) << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (static_cast<std::uint64_t>(u32()) << 32);
    }

    std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool b() { return u8() != 0; }
    double d() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (size_ - pos_ < n)
            throw SnapshotError("checkpoint payload truncated");
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    bool atEnd() const { return pos_ == size_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace stacknoc::snapshot

#endif // STACKNOC_SNAPSHOT_SERIALIZE_HH
