#include "snapshot/state_io.hh"

#include <algorithm>
#include <bit>
#include <vector>

#include "engine/sequential_engine.hh"
#include "engine/sharded_engine.hh"
#include "snapshot/context.hh"
#include "system/cmp_system.hh"

namespace stacknoc::snapshot {

namespace {

/** Collect a map's keys in sorted order so unordered containers
 *  serialise deterministically. */
template <typename Map>
std::vector<typename Map::key_type>
sortedKeys(const Map &m)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(m.size());
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

template <typename Set>
std::vector<typename Set::key_type>
sortedValues(const Set &s)
{
    std::vector<typename Set::key_type> vals(s.begin(), s.end());
    std::sort(vals.begin(), vals.end());
    return vals;
}

void
saveFlitValue(Saver &s, SaveCtx &ctx, const noc::Flit &f)
{
    ctx.putPacket(s, f.pkt);
    s.i32(f.seq);
    s.u64(f.arrivedAt);
}

noc::Flit
loadFlitValue(Loader &l, LoadCtx &ctx)
{
    noc::Flit f;
    f.pkt = ctx.getPacket(l);
    f.seq = l.i32();
    f.arrivedAt = l.u64();
    return f;
}

void
checkCount(std::size_t have, std::size_t want, const char *what)
{
    if (have != want)
        throw SnapshotError(std::string("checkpoint structure mismatch: ")
                            + what);
}

} // namespace

// ---------------------------------------------------------------- workload

void
StateIO::saveStream(Saver &s, const workload::SyntheticStream &st)
{
    for (std::uint64_t w : st.rng_.s_)
        s.u64(w);
    s.u64(st.memOps_);
    s.u64(st.misses_);
    s.u32(st.burstRemaining_);
    s.u32(st.bankRun_);
    s.i32(st.hotBank_);
    const auto banks = sortedKeys(st.bankCursor_);
    s.u32(static_cast<std::uint32_t>(banks.size()));
    for (int b : banks) {
        s.i32(b);
        s.u64(st.bankCursor_.at(b));
    }
    s.u32(static_cast<std::uint32_t>(st.history_.size()));
    for (const auto &ring : st.history_) {
        s.u32(static_cast<std::uint32_t>(ring.size()));
        for (BlockAddr a : ring)
            s.u64(a);
    }
    s.u64(st.historyIdx_);
}

void
StateIO::loadStream(Loader &l, workload::SyntheticStream &st)
{
    for (std::uint64_t &w : st.rng_.s_)
        w = l.u64();
    st.memOps_ = l.u64();
    st.misses_ = l.u64();
    st.burstRemaining_ = l.u32();
    st.bankRun_ = l.u32();
    st.hotBank_ = l.i32();
    st.bankCursor_.clear();
    const std::uint32_t nbanks = l.u32();
    for (std::uint32_t i = 0; i < nbanks; ++i) {
        const int b = l.i32();
        st.bankCursor_[b] = l.u64();
    }
    checkCount(st.history_.size(), l.u32(), "stream history rings");
    for (auto &ring : st.history_) {
        ring.resize(l.u32());
        for (BlockAddr &a : ring)
            a = l.u64();
    }
    st.historyIdx_ = l.u64();
}

// -------------------------------------------------------------------- cpu

void
StateIO::saveCore(Saver &s, SaveCtx &ctx, const cpu::Core &core)
{
    s.u32(static_cast<std::uint32_t>(core.rob_.size()));
    for (const auto &e : core.rob_) {
        s.b(e.op.isMem);
        s.b(e.op.isWrite);
        s.u64(e.op.addr);
        s.b(e.op.l2Hit);
        s.b(e.op.dependsOnPrev);
        s.b(e.issued);
        ctx.putFlag(s, e.done);
    }
    s.u64(core.issueCursor_);
    ctx.putFlag(s, core.lastMemDone_);
    s.u64(core.committed_);
}

void
StateIO::loadCore(Loader &l, LoadCtx &ctx, cpu::Core &core)
{
    core.rob_.clear();
    const std::uint32_t n = l.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        cpu::Core::RobEntry e;
        e.op.isMem = l.b();
        e.op.isWrite = l.b();
        e.op.addr = l.u64();
        e.op.l2Hit = l.b();
        e.op.dependsOnPrev = l.b();
        e.issued = l.b();
        e.done = ctx.getFlag(l);
        core.rob_.push_back(std::move(e));
    }
    core.issueCursor_ = static_cast<std::size_t>(l.u64());
    core.lastMemDone_ = ctx.getFlag(l);
    core.committed_ = l.u64();
}

// -------------------------------------------------------------- coherence

namespace {
// Placeholder namespace so the Completion helpers below read as a unit.
} // namespace

void
StateIO::saveL1(Saver &s, SaveCtx &ctx, const coherence::L1Cache &l1)
{
    const auto saveCompletion =
        [&](const coherence::L1Cache::Completion &c) {
            if (c.fn)
                throw SnapshotError(
                    "non-serialisable L1 completion callback (test-only "
                    "std::function path cannot be checkpointed)");
            ctx.putFlag(s, c.flag);
        };

    saveTags(s, l1.tags_);
    const auto addrs = sortedKeys(l1.mshrs_);
    s.u32(static_cast<std::uint32_t>(addrs.size()));
    for (BlockAddr a : addrs) {
        const auto &m = l1.mshrs_.at(a);
        s.u64(a);
        s.b(m.isWrite);
        s.u64(m.startedAt);
        saveCompletion(m.onDone);
    }
    const auto putms = sortedValues(l1.pendingPutM_);
    s.u32(static_cast<std::uint32_t>(putms.size()));
    for (BlockAddr a : putms)
        s.u64(a);
    s.u32(static_cast<std::uint32_t>(l1.delayed_.size()));
    for (const auto &[at, c] : l1.delayed_) {
        s.u64(at);
        saveCompletion(c);
    }
}

void
StateIO::loadL1(Loader &l, LoadCtx &ctx, coherence::L1Cache &l1)
{
    const auto loadCompletion = [&]() {
        coherence::L1Cache::Completion c;
        c.flag = ctx.getFlag(l);
        return c;
    };

    loadTags(l, l1.tags_);
    l1.mshrs_.clear();
    const std::uint32_t nmshr = l.u32();
    for (std::uint32_t i = 0; i < nmshr; ++i) {
        const BlockAddr a = l.u64();
        coherence::L1Cache::Mshr m;
        m.isWrite = l.b();
        m.startedAt = l.u64();
        m.onDone = loadCompletion();
        l1.mshrs_.emplace(a, std::move(m));
    }
    l1.pendingPutM_.clear();
    const std::uint32_t nputm = l.u32();
    for (std::uint32_t i = 0; i < nputm; ++i)
        l1.pendingPutM_.insert(l.u64());
    l1.delayed_.clear();
    const std::uint32_t ndel = l.u32();
    for (std::uint32_t i = 0; i < ndel; ++i) {
        const Cycle at = l.u64();
        l1.delayed_.emplace_back(at, loadCompletion());
    }
}

void
StateIO::saveBank(Saver &s, SaveCtx &ctx, const coherence::L2Bank &bank)
{
    s.i32(bank.admittedRequests_);
    s.i32(bank.admittedWrites_);
    s.u64(bank.lastNackedEpisode_);
    for (std::uint64_t w : bank.rng_.s_)
        s.u64(w);

    const auto dirAddrs = sortedKeys(bank.dir_);
    s.u32(static_cast<std::uint32_t>(dirAddrs.size()));
    for (BlockAddr a : dirAddrs) {
        const auto &d = bank.dir_.at(a);
        s.u64(a);
        s.u8(static_cast<std::uint8_t>(d.state));
        s.u64(d.sharers);
        s.i32(d.owner);
    }

    const auto tbeAddrs = sortedKeys(bank.tbes_);
    s.u32(static_cast<std::uint32_t>(tbeAddrs.size()));
    for (BlockAddr a : tbeAddrs) {
        const auto &t = bank.tbes_.at(a);
        s.u64(a);
        s.u8(static_cast<std::uint8_t>(t.kind));
        s.i32(t.requester);
        s.b(t.l2Hit);
        s.b(t.upgrade);
        s.u8(static_cast<std::uint8_t>(t.phase));
        s.i32(t.pendingAcks);
        s.i32(t.recallOwner);
        s.u8(static_cast<std::uint8_t>(t.grant));
        s.u32(static_cast<std::uint32_t>(t.blocked.size()));
        for (const auto &pkt : t.blocked)
            ctx.putPacket(s, pkt);
        s.u64(t.pktId);
        s.u8(t.pktCls);
        s.u64(t.arrivedAt);
    }

    s.b(bank.tags_ != nullptr);
    if (bank.tags_)
        saveTags(s, *bank.tags_);
    saveBankCtrl(s, bank.ctrl_);
}

void
StateIO::loadBank(Loader &l, LoadCtx &ctx, coherence::L2Bank &bank)
{
    bank.admittedRequests_ = l.i32();
    bank.admittedWrites_ = l.i32();
    bank.lastNackedEpisode_ = l.u64();
    for (std::uint64_t &w : bank.rng_.s_)
        w = l.u64();

    bank.dir_.clear();
    const std::uint32_t ndir = l.u32();
    for (std::uint32_t i = 0; i < ndir; ++i) {
        const BlockAddr a = l.u64();
        coherence::DirEntry d;
        d.state = static_cast<coherence::DirEntry::State>(l.u8());
        d.sharers = l.u64();
        d.owner = l.i32();
        bank.dir_.emplace(a, d);
    }

    bank.tbes_.clear();
    const std::uint32_t ntbe = l.u32();
    for (std::uint32_t i = 0; i < ntbe; ++i) {
        const BlockAddr a = l.u64();
        coherence::L2Bank::Tbe t;
        t.kind = static_cast<coherence::CohKind>(l.u8());
        t.requester = l.i32();
        t.l2Hit = l.b();
        t.upgrade = l.b();
        t.phase = static_cast<coherence::L2Bank::Phase>(l.u8());
        t.pendingAcks = l.i32();
        t.recallOwner = l.i32();
        t.grant = static_cast<coherence::Grant>(l.u8());
        const std::uint32_t nblk = l.u32();
        for (std::uint32_t j = 0; j < nblk; ++j)
            t.blocked.push_back(ctx.getPacket(l));
        t.pktId = l.u64();
        t.pktCls = l.u8();
        t.arrivedAt = l.u64();
        bank.tbes_.emplace(a, std::move(t));
    }

    const bool hasTags = l.b();
    checkCount(hasTags ? 1 : 0, bank.tags_ ? 1 : 0, "L2 real-tags mode");
    if (bank.tags_)
        loadTags(l, *bank.tags_);
    loadBankCtrl(l, bank.ctrl_, bank);
}

// -------------------------------------------------------------------- mem

void
StateIO::saveBankCtrl(Saver &s, const mem::BankController &ctrl)
{
    const auto saveReq = [&s](const mem::BankRequest &req) {
        s.b(req.isWrite);
        s.u64(req.addr);
        s.u64(req.enqueuedAt);
        s.u64(req.tracePktId);
        s.u8(req.traceCls);
        // The production completion is always the owning L2Bank's
        // respondAndFinish bound to req.addr; only its presence needs
        // to travel (loadBankCtrl re-forms the lambda).
        s.b(static_cast<bool>(req.onDone));
    };

    s.u64(ctrl.bank_.busyUntil_);
    s.b(ctrl.bank_.currentIsWrite_);
    s.u64(ctrl.bank_.readsTotal_);
    s.u64(ctrl.bank_.writesTotal_);

    s.u32(static_cast<std::uint32_t>(ctrl.queue_.size()));
    for (const auto &req : ctrl.queue_)
        saveReq(req);
    s.b(ctrl.current_.has_value());
    if (ctrl.current_) {
        saveReq(ctrl.current_->req);
        s.u64(ctrl.current_->doneAt);
        s.i32(ctrl.current_->failures);
    }
    s.u32(static_cast<std::uint32_t>(ctrl.buffer_.size()));
    for (const auto &bw : ctrl.buffer_) {
        s.u64(bw.addr);
        s.b(bw.draining);
    }
    s.b(ctrl.drainDoneAt_.has_value());
    if (ctrl.drainDoneAt_)
        s.u64(*ctrl.drainDoneAt_);
    s.u32(static_cast<std::uint32_t>(ctrl.delayed_.size()));
    for (const auto &dd : ctrl.delayed_) {
        s.u64(dd.at);
        saveReq(dd.req);
    }
    s.u64(ctrl.lastArrival_);
    s.b(ctrl.lastWasWrite_);
    s.i32(ctrl.drainFailures_);
    s.b(ctrl.retryActive_);
    s.u64(ctrl.retryEpisodes_);
    s.u64(ctrl.retryRoundsTotal_);
}

void
StateIO::loadBankCtrl(Loader &l, mem::BankController &ctrl,
                      coherence::L2Bank &owner)
{
    const auto loadReq = [&l, &owner]() {
        mem::BankRequest req;
        req.isWrite = l.b();
        req.addr = l.u64();
        req.enqueuedAt = l.u64();
        req.tracePktId = l.u64();
        req.traceCls = l.u8();
        if (l.b()) {
            coherence::L2Bank *bank = &owner;
            const BlockAddr addr = req.addr;
            req.onDone = [bank, addr](Cycle t) {
                bank->respondAndFinish(addr, t);
            };
        }
        return req;
    };

    ctrl.bank_.busyUntil_ = l.u64();
    ctrl.bank_.currentIsWrite_ = l.b();
    ctrl.bank_.readsTotal_ = l.u64();
    ctrl.bank_.writesTotal_ = l.u64();

    ctrl.queue_.clear();
    const std::uint32_t nq = l.u32();
    for (std::uint32_t i = 0; i < nq; ++i)
        ctrl.queue_.push_back(loadReq());
    ctrl.current_.reset();
    if (l.b()) {
        mem::BankController::InFlight inf;
        inf.req = loadReq();
        inf.doneAt = l.u64();
        inf.failures = l.i32();
        ctrl.current_ = std::move(inf);
    }
    ctrl.buffer_.clear();
    const std::uint32_t nb = l.u32();
    for (std::uint32_t i = 0; i < nb; ++i) {
        mem::BankController::BufferedWrite bw;
        bw.addr = l.u64();
        bw.draining = l.b();
        ctrl.buffer_.push_back(bw);
    }
    ctrl.drainDoneAt_.reset();
    if (l.b())
        ctrl.drainDoneAt_ = l.u64();
    ctrl.delayed_.clear();
    const std::uint32_t nd = l.u32();
    for (std::uint32_t i = 0; i < nd; ++i) {
        mem::BankController::DelayedDone dd;
        dd.at = l.u64();
        dd.req = loadReq();
        ctrl.delayed_.push_back(std::move(dd));
    }
    ctrl.lastArrival_ = l.u64();
    ctrl.lastWasWrite_ = l.b();
    ctrl.drainFailures_ = l.i32();
    ctrl.retryActive_ = l.b();
    ctrl.retryEpisodes_ = l.u64();
    ctrl.retryRoundsTotal_ = l.u64();
}

void
StateIO::saveMc(Saver &s, SaveCtx &ctx, const mem::MemoryController &mc)
{
    s.u32(static_cast<std::uint32_t>(mc.queue_.size()));
    for (const auto &pkt : mc.queue_)
        ctx.putPacket(s, pkt);
    s.u32(static_cast<std::uint32_t>(mc.inflight_.size()));
    for (const auto &a : mc.inflight_) {
        ctx.putPacket(s, a.pkt);
        s.u64(a.doneAt);
    }
}

void
StateIO::loadMc(Loader &l, LoadCtx &ctx, mem::MemoryController &mc)
{
    mc.queue_.clear();
    const std::uint32_t nq = l.u32();
    for (std::uint32_t i = 0; i < nq; ++i)
        mc.queue_.push_back(ctx.getPacket(l));
    mc.inflight_.clear();
    const std::uint32_t ni = l.u32();
    for (std::uint32_t i = 0; i < ni; ++i) {
        mem::MemoryController::Access a;
        a.pkt = ctx.getPacket(l);
        a.doneAt = l.u64();
        mc.inflight_.push_back(std::move(a));
    }
}

// ------------------------------------------------------------------ cache

void
StateIO::saveTags(Saver &s, const cache::TagArray &tags)
{
    s.i32(tags.numSets_);
    s.i32(tags.ways_);
    s.i32(tags.validCount_);
    s.u64(tags.useClock_);
    for (const auto &e : tags.entries_) {
        s.u64(e.addr);
        s.b(e.valid);
        s.b(e.dirty);
        s.u8(e.state);
        s.b(e.pinned);
        s.u64(e.lastUse);
    }
}

void
StateIO::loadTags(Loader &l, cache::TagArray &tags)
{
    checkCount(static_cast<std::size_t>(l.i32()),
               static_cast<std::size_t>(tags.numSets_), "tag array sets");
    checkCount(static_cast<std::size_t>(l.i32()),
               static_cast<std::size_t>(tags.ways_), "tag array ways");
    tags.validCount_ = l.i32();
    tags.useClock_ = l.u64();
    for (auto &e : tags.entries_) {
        e.addr = l.u64();
        e.valid = l.b();
        e.dirty = l.b();
        e.state = l.u8();
        e.pinned = l.b();
        e.lastUse = l.u64();
    }
}

// -------------------------------------------------------------------- noc

void
StateIO::saveLink(Saver &s, SaveCtx &ctx, const noc::Link &link)
{
    if (!link.data.staged_.empty() || !link.credit.staged_.empty())
        throw SnapshotError("channel has uncommitted staged values "
                            "(checkpoint must be taken between cycles)");
    s.u32(static_cast<std::uint32_t>(link.data.queue_.size()));
    for (const auto &[at, lf] : link.data.queue_) {
        s.u64(at);
        saveFlitValue(s, ctx, lf.flit);
        s.i32(lf.vc);
    }
    s.u32(static_cast<std::uint32_t>(link.credit.queue_.size()));
    for (const auto &[at, cr] : link.credit.queue_) {
        s.u64(at);
        s.i32(cr.vc);
    }
}

void
StateIO::loadLink(Loader &l, LoadCtx &ctx, noc::Link &link)
{
    // Deliberately no wakeTarget(): the engine active set travels in the
    // checkpoint, and the pending-signal bytes are restored per owner.
    link.data.queue_.clear();
    const std::uint32_t nd = l.u32();
    for (std::uint32_t i = 0; i < nd; ++i) {
        const Cycle at = l.u64();
        noc::LinkFlit lf;
        lf.flit = loadFlitValue(l, ctx);
        lf.vc = l.i32();
        link.data.queue_.emplace_back(at, std::move(lf));
    }
    link.credit.queue_.clear();
    const std::uint32_t nc = l.u32();
    for (std::uint32_t i = 0; i < nc; ++i) {
        const Cycle at = l.u64();
        noc::Credit cr;
        cr.vc = l.i32();
        link.credit.queue_.emplace_back(at, cr);
    }
}

void
StateIO::saveRouter(Saver &s, SaveCtx &ctx, const noc::Router &r)
{
    for (const auto &ip : r.in_) {
        s.u32(static_cast<std::uint32_t>(ip.vcs.size()));
        for (const auto &vc : ip.vcs) {
            s.u32(static_cast<std::uint32_t>(vc.buffer.size()));
            for (const auto &f : vc.buffer)
                saveFlitValue(s, ctx, f);
            s.u8(static_cast<std::uint8_t>(vc.status));
            s.u8(static_cast<std::uint8_t>(vc.outDir));
            s.i32(vc.outVc);
            s.u64(vc.vaDoneAt);
        }
        s.i32(ip.rrSaVc);
    }
    for (const auto &op : r.out_) {
        s.u32(static_cast<std::uint32_t>(op.credits.size()));
        for (int c : op.credits)
            s.i32(c);
        for (bool b : op.vcBusy)
            s.b(b);
        s.i32(op.rrVa);
        s.i32(op.rrSa);
    }
    for (std::uint8_t p : r.dataPending_)
        s.u8(p);
    for (std::uint8_t p : r.creditPending_)
        s.u8(p);
    s.u64(r.flitsSwitchedTotal_);
    s.u64(r.flitsBufferedTotal_);
}

void
StateIO::loadRouter(Loader &l, LoadCtx &ctx, noc::Router &r)
{
    for (auto &ip : r.in_) {
        checkCount(ip.vcs.size(), l.u32(), "router input VCs");
        for (auto &vc : ip.vcs) {
            vc.buffer.clear();
            const std::uint32_t nf = l.u32();
            for (std::uint32_t i = 0; i < nf; ++i)
                vc.buffer.push_back(loadFlitValue(l, ctx));
            vc.status = static_cast<noc::Router::VcStatus>(l.u8());
            vc.outDir = static_cast<noc::Dir>(l.u8());
            vc.outVc = l.i32();
            vc.vaDoneAt = l.u64();
        }
        ip.rrSaVc = l.i32();
    }
    for (auto &op : r.out_) {
        checkCount(op.credits.size(), l.u32(), "router output VCs");
        for (int &c : op.credits)
            c = l.i32();
        for (std::size_t i = 0; i < op.vcBusy.size(); ++i)
            op.vcBusy[i] = l.b();
        op.rrVa = l.i32();
        op.rrSa = l.i32();
    }
    for (std::uint8_t &p : r.dataPending_)
        p = l.u8();
    for (std::uint8_t &p : r.creditPending_)
        p = l.u8();
    r.flitsSwitchedTotal_ = l.u64();
    r.flitsBufferedTotal_ = l.u64();

    // Canonically recompute the derived pipeline-state masks, counts and
    // occupancy mirrors. The Idle slots of stateMask/stateCount carry
    // history-dependent values in a live run, but they are never read
    // (see router.hh), so the canonical rebuild is behaviourally exact.
    r.stateCount_ = {};
    r.bufferedTotal_ = 0;
    r.localCongestion_ = 0;
    for (int p = 0; p < noc::kNumDirs; ++p) {
        auto &ip = r.in_[static_cast<std::size_t>(p)];
        ip.stateMask = {};
        for (const auto &vc : ip.vcs) {
            const auto st = static_cast<std::size_t>(vc.status);
            ip.stateMask[st] |= std::uint64_t{1} << vc.idx;
            ++r.stateCount_[st];
            const int held = static_cast<int>(vc.buffer.size());
            r.bufferedTotal_ += held;
            if (p != static_cast<int>(noc::Dir::Local))
                r.localCongestion_ += held;
        }
    }
}

void
StateIO::saveNi(Saver &s, SaveCtx &ctx, const noc::NetworkInterface &ni)
{
    s.u32(static_cast<std::uint32_t>(ni.injectQueue_.size()));
    for (const auto &pkt : ni.injectQueue_)
        ctx.putPacket(s, pkt);
    s.u32(static_cast<std::uint32_t>(ni.injVcs_.size()));
    for (const auto &vc : ni.injVcs_) {
        ctx.putPacket(s, vc.pkt);
        s.i32(vc.nextSeq);
        s.i32(vc.credits);
    }
    s.u32(static_cast<std::uint32_t>(ni.ejectVcs_.size()));
    for (const auto &vc : ni.ejectVcs_) {
        s.u32(static_cast<std::uint32_t>(vc.buffer.size()));
        for (const auto &f : vc.buffer)
            saveFlitValue(s, ctx, f);
        s.b(vc.committed);
        ctx.putPacket(s, vc.committedPkt);
        s.b(vc.crcClean);
        s.b(vc.dropping);
        s.i32(vc.retxAttempts);
        s.u64(vc.retxHoldUntil);
    }
    s.i32(ni.rrInjVc_);
    s.u8(ni.dataPending_);
    s.u8(ni.creditPending_);
    s.u64(ni.flitsRetransmittedTotal_);
}

void
StateIO::loadNi(Loader &l, LoadCtx &ctx, noc::NetworkInterface &ni)
{
    ni.injectQueue_.clear();
    const std::uint32_t nq = l.u32();
    for (std::uint32_t i = 0; i < nq; ++i)
        ni.injectQueue_.push_back(ctx.getPacket(l));
    checkCount(ni.injVcs_.size(), l.u32(), "NI injection VCs");
    for (auto &vc : ni.injVcs_) {
        vc.pkt = ctx.getPacket(l);
        vc.nextSeq = l.i32();
        vc.credits = l.i32();
    }
    checkCount(ni.ejectVcs_.size(), l.u32(), "NI ejection VCs");
    for (auto &vc : ni.ejectVcs_) {
        vc.buffer.clear();
        const std::uint32_t nf = l.u32();
        for (std::uint32_t i = 0; i < nf; ++i)
            vc.buffer.push_back(loadFlitValue(l, ctx));
        vc.committed = l.b();
        vc.committedPkt = ctx.getPacket(l);
        vc.crcClean = l.b();
        vc.dropping = l.b();
        vc.retxAttempts = l.i32();
        vc.retxHoldUntil = l.u64();
    }
    ni.rrInjVc_ = l.i32();
    ni.dataPending_ = l.u8();
    ni.creditPending_ = l.u8();
    ni.flitsRetransmittedTotal_ = l.u64();
}

// ----------------------------------------------------------------- sttnoc

void
StateIO::savePolicy(Saver &s, const sttnoc::BankAwarePolicy &p)
{
    s.u32(static_cast<std::uint32_t>(p.busyUntil_.size()));
    for (Cycle c : p.busyUntil_)
        s.u64(c);
    for (Cycle c : p.holdMargin_)
        s.u64(c);
    for (std::uint64_t v : p.holdCyclesByBank_)
        s.u64(v);

    const auto *wb =
        dynamic_cast<const sttnoc::WindowEstimator *>(p.estimator_.get());
    s.b(wb != nullptr);
    if (wb != nullptr) {
        s.u32(static_cast<std::uint32_t>(wb->state_.size()));
        for (const auto &cs : wb->state_) {
            s.u64(cs.forwarded);
            s.b(cs.probeOutstanding);
            s.i16(cs.stamp);
            s.u64(cs.sentAt);
            s.u64(cs.congestion);
            s.u64(cs.updatedAt);
        }
    }
}

void
StateIO::loadPolicy(Loader &l, sttnoc::BankAwarePolicy &p)
{
    checkCount(p.busyUntil_.size(), l.u32(), "policy bank count");
    for (Cycle &c : p.busyUntil_)
        c = l.u64();
    for (Cycle &c : p.holdMargin_)
        c = l.u64();
    for (std::uint64_t &v : p.holdCyclesByBank_)
        v = l.u64();

    auto *wb = dynamic_cast<sttnoc::WindowEstimator *>(p.estimator_.get());
    const bool hadWb = l.b();
    checkCount(hadWb ? 1 : 0, wb != nullptr ? 1 : 0, "estimator kind");
    if (wb != nullptr) {
        checkCount(wb->state_.size(), l.u32(), "WB estimator children");
        for (auto &cs : wb->state_) {
            cs.forwarded = l.u64();
            cs.probeOutstanding = l.b();
            cs.stamp = l.i16();
            cs.sentAt = l.u64();
            cs.congestion = l.u64();
            cs.updatedAt = l.u64();
        }
    }
}

void
StateIO::saveFabric(Saver &s, const sttnoc::RcaFabric &f)
{
    s.u32(static_cast<std::uint32_t>(f.prev_.size()));
    for (std::uint32_t v : f.prev_)
        s.u32(v);
    for (std::uint32_t v : f.next_)
        s.u32(v);
    for (std::uint32_t v : f.snapshot_)
        s.u32(v);
    s.b(f.prevNonzero_);
    s.b(f.nextNonzero_);
    s.b(f.snapNonzero_);
}

void
StateIO::loadFabric(Loader &l, sttnoc::RcaFabric &f)
{
    checkCount(f.prev_.size(), l.u32(), "RCA fabric node count");
    for (std::uint32_t &v : f.prev_)
        v = l.u32();
    for (std::uint32_t &v : f.next_)
        v = l.u32();
    for (std::uint32_t &v : f.snapshot_)
        v = l.u32();
    f.prevNonzero_ = l.b();
    f.nextNonzero_ = l.b();
    f.snapNonzero_ = l.b();
}

// ------------------------------------------------------------------ fault

void
StateIO::saveFaults(Saver &s, const fault::FaultInjector &fi)
{
    s.u32(static_cast<std::uint32_t>(fi.bankStreams_.size()));
    for (const auto &st : fi.bankStreams_)
        s.u64(st.state_);
    s.u32(static_cast<std::uint32_t>(fi.niStreams_.size()));
    for (const auto &st : fi.niStreams_)
        s.u64(st.state_);
}

void
StateIO::loadFaults(Loader &l, fault::FaultInjector &fi)
{
    checkCount(fi.bankStreams_.size(), l.u32(), "fault bank streams");
    for (auto &st : fi.bankStreams_)
        st.state_ = l.u64();
    checkCount(fi.niStreams_.size(), l.u32(), "fault NI streams");
    for (auto &st : fi.niStreams_)
        st.state_ = l.u64();
}

// ----------------------------------------------------------------- engine

void
StateIO::saveEngine(Saver &s, const system::CmpSystem &sys)
{
    // Active flags in canonical schedule-ordinal order, whichever engine
    // is attached. Unscheduled (never-run) engines report all-awake.
    const std::size_t n = sys.sim_.componentCount();
    std::vector<std::uint8_t> flags(n, 1);
    engine::ExecutionEngine *eng = sys.engine_.get();
    if (auto *seq = dynamic_cast<engine::SequentialEngine *>(eng)) {
        if (seq->scheduleBuilt_) {
            for (std::size_t i = 0; i < seq->order_.size(); ++i)
                flags.at(seq->order_[i].ordinal) = seq->active_[i];
        }
    } else if (auto *sh =
                   dynamic_cast<engine::ShardedParallelEngine *>(eng)) {
        for (std::size_t sh_i = 0; sh_i < sh->plan_.shards.size(); ++sh_i) {
            const auto &items = sh->plan_.shards[sh_i];
            const auto &st = *sh->shard_state_[sh_i];
            for (std::size_t i = 0; i < items.size(); ++i)
                flags.at(items[i].ordinal) = st.active[i];
        }
        for (std::size_t i = 0; i < sh->plan_.serial.size(); ++i)
            flags.at(sh->plan_.serial[i].ordinal) = sh->serial_active_[i];
    }
    s.u32(static_cast<std::uint32_t>(n));
    for (std::uint8_t f : flags)
        s.u8(f);
}

void
StateIO::loadEngine(Loader &l, system::CmpSystem &sys)
{
    const std::size_t n = sys.sim_.componentCount();
    checkCount(n, l.u32(), "engine component count");
    std::vector<std::uint8_t> flags(n);
    for (std::uint8_t &f : flags)
        f = l.u8();

    // A spurious wake is harmless (quiescent ticks are no-ops) but a
    // missed wake diverges, so the flags are applied exactly. Engines
    // that ignore the flags (elision off) tick everything anyway.
    engine::ExecutionEngine *eng = sys.engine_.get();
    if (auto *seq = dynamic_cast<engine::SequentialEngine *>(eng)) {
        seq->ensureSchedule();
        for (std::size_t i = 0; i < seq->order_.size(); ++i)
            seq->active_[i] = flags.at(seq->order_[i].ordinal);
    } else if (auto *sh =
                   dynamic_cast<engine::ShardedParallelEngine *>(eng)) {
        for (std::size_t sh_i = 0; sh_i < sh->plan_.shards.size(); ++sh_i) {
            const auto &items = sh->plan_.shards[sh_i];
            auto &st = *sh->shard_state_[sh_i];
            for (std::size_t i = 0; i < items.size(); ++i)
                st.active[i] = flags.at(items[i].ordinal);
        }
        for (std::size_t i = 0; i < sh->plan_.serial.size(); ++i)
            sh->serial_active_[i] = flags.at(sh->plan_.serial[i].ordinal);
    }
}

// ----------------------------------------------------------- whole system

void
StateIO::save(const system::CmpSystem &sys, Saver &s)
{
    if (sys.validation_)
        throw SnapshotError("cannot checkpoint a system with validation "
                            "enabled (census state is not serialised)");

    const auto idStreams = noc::savePacketIdStreams();
    s.u32(static_cast<std::uint32_t>(idStreams.size()));
    for (const auto &[idx, seq] : idStreams) {
        s.u32(idx);
        s.u64(seq);
    }

    s.u64(sys.sim_.now_);

    SaveCtx ctx;
    for (const auto &st : sys.streams_)
        saveStream(s, *st);
    for (const auto &core : sys.cores_)
        saveCore(s, ctx, *core);
    for (const auto &l1 : sys.l1s_)
        saveL1(s, ctx, *l1);
    for (const auto &bank : sys.banks_)
        saveBank(s, ctx, *bank);
    for (const auto &mc : sys.mcs_)
        saveMc(s, ctx, *mc);

    const noc::Network &net = *sys.net_;
    const int nodes = sys.shape_.totalNodes();
    for (NodeId n = 0; n < nodes; ++n)
        saveRouter(s, ctx, net.router(n));
    for (NodeId n = 0; n < nodes; ++n)
        saveNi(s, ctx, net.ni(n));
    for (NodeId n = 0; n < nodes; ++n) {
        for (int d = 0; d < noc::kNumDirs; ++d) {
            const noc::Link *lk =
                net.topo_.linkOut(n, static_cast<noc::Dir>(d));
            if (lk != nullptr)
                saveLink(s, ctx, *lk);
        }
    }
    for (const auto &lk : net.niLinks_)
        saveLink(s, ctx, *lk);

    s.b(sys.bankAwarePolicy_ != nullptr);
    if (sys.bankAwarePolicy_)
        savePolicy(s, *sys.bankAwarePolicy_);
    s.b(sys.rcaFabric_ != nullptr);
    if (sys.rcaFabric_)
        saveFabric(s, *sys.rcaFabric_);
    s.b(sys.faults_ != nullptr);
    if (sys.faults_)
        saveFaults(s, *sys.faults_);

    saveEngine(s, sys);
}

void
StateIO::load(system::CmpSystem &sys, Loader &l)
{
    if (sys.validation_)
        throw SnapshotError("cannot restore into a system with validation "
                            "enabled (census state is not serialised)");

    std::vector<std::pair<std::uint32_t, std::uint64_t>> idStreams;
    const std::uint32_t nStreams = l.u32();
    idStreams.reserve(nStreams);
    for (std::uint32_t i = 0; i < nStreams; ++i) {
        const std::uint32_t idx = l.u32();
        const std::uint64_t seq = l.u64();
        idStreams.emplace_back(idx, seq);
    }
    noc::restorePacketIdStreams(idStreams);

    sys.sim_.now_ = l.u64();

    LoadCtx ctx;
    for (const auto &st : sys.streams_)
        loadStream(l, *st);
    for (const auto &core : sys.cores_)
        loadCore(l, ctx, *core);
    for (const auto &l1 : sys.l1s_)
        loadL1(l, ctx, *l1);
    for (const auto &bank : sys.banks_)
        loadBank(l, ctx, *bank);
    for (const auto &mc : sys.mcs_)
        loadMc(l, ctx, *mc);

    noc::Network &net = *sys.net_;
    const int nodes = sys.shape_.totalNodes();
    for (NodeId n = 0; n < nodes; ++n)
        loadRouter(l, ctx, net.router(n));
    for (NodeId n = 0; n < nodes; ++n)
        loadNi(l, ctx, net.ni(n));
    for (NodeId n = 0; n < nodes; ++n) {
        for (int d = 0; d < noc::kNumDirs; ++d) {
            noc::Link *lk = net.topo_.linkOut(n, static_cast<noc::Dir>(d));
            if (lk != nullptr)
                loadLink(l, ctx, *lk);
        }
    }
    for (const auto &lk : net.niLinks_)
        loadLink(l, ctx, *lk);

    const bool hadPolicy = l.b();
    checkCount(hadPolicy ? 1 : 0, sys.bankAwarePolicy_ ? 1 : 0,
               "bank-aware policy presence");
    if (sys.bankAwarePolicy_)
        loadPolicy(l, *sys.bankAwarePolicy_);
    const bool hadFabric = l.b();
    checkCount(hadFabric ? 1 : 0, sys.rcaFabric_ ? 1 : 0,
               "RCA fabric presence");
    if (sys.rcaFabric_)
        loadFabric(l, *sys.rcaFabric_);
    const bool hadFaults = l.b();
    checkCount(hadFaults ? 1 : 0, sys.faults_ ? 1 : 0,
               "fault injector presence");
    if (sys.faults_)
        loadFaults(l, *sys.faults_);

    loadEngine(l, sys);

    if (!l.atEnd())
        throw SnapshotError("trailing bytes after checkpoint payload");
}

// ----------------------------------------------------------------- digest

std::uint64_t
StateIO::digest(const system::CmpSystem &sys)
{
    std::uint64_t h = kFnvOffset;
    const auto mix64 = [&h](std::uint64_t v) {
        h = fnv1a(&v, sizeof v, h);
    };
    const auto mixStr = [&h](const std::string &str) { h = fnv1a(str, h); };
    const auto mixGroup = [&](const stats::Group &g) {
        mixStr(g.name());
        for (const auto &[name, c] : g.allCounters()) {
            mixStr(name);
            mix64(c.value());
        }
        for (const auto &[name, a] : g.allAverages()) {
            mixStr(name);
            mix64(a.count());
            mix64(std::bit_cast<std::uint64_t>(a.sum()));
        }
        for (const auto &[name, d] : g.allDistributions()) {
            mixStr(name);
            mix64(d.total());
            for (std::size_t i = 0; i < d.numBins(); ++i)
                mix64(d.binCount(i));
        }
        for (const auto &[name, hist] : g.allHistograms()) {
            mixStr(name);
            mix64(hist.count());
            mix64(hist.sum());
            mix64(hist.minValue());
            mix64(hist.maxValue());
            for (std::size_t i = 0; i < stats::Histogram::kNumBuckets; ++i)
                mix64(hist.bucketCount(i));
        }
    };

    mix64(sys.sim_.now_);
    for (const auto &core : sys.cores_)
        mix64(core->committed());
    mixGroup(sys.cacheStats_);
    mixGroup(sys.coreStats_);
    mixGroup(sys.memStats_);
    mixGroup(sys.net_->stats());
    if (sys.bankAwarePolicy_)
        mixGroup(sys.bankAwarePolicy_->stats());
    if (sys.faults_)
        mixGroup(sys.faults_->stats());
    return h;
}

std::uint64_t
statsDigest(const system::CmpSystem &sys)
{
    return StateIO::digest(sys);
}

} // namespace stacknoc::snapshot
