#include "snapshot/checkpoint.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <istream>
#include <ostream>
#include <sstream>

#include "snapshot/state_io.hh"
#include "system/cmp_system.hh"

namespace stacknoc::snapshot {

const char kCheckpointMagic[8] = {'S', 'N', 'O', 'C', 'C', 'K', 'P', 'T'};

namespace {

void
putU32(std::ostream &out, std::uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out.write(b, sizeof b);
}

void
putU64(std::ostream &out, std::uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out.write(b, sizeof b);
}

bool
getU32(std::istream &in, std::uint32_t &v)
{
    char b[4];
    if (!in.read(b, sizeof b))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(static_cast<unsigned char>(b[i])) << (8 * i);
    return true;
}

bool
getU64(std::istream &in, std::uint64_t &v)
{
    char b[8];
    if (!in.read(b, sizeof b))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(static_cast<unsigned char>(b[i])) << (8 * i);
    return true;
}

/** Bit-exact double rendering for the canonical spec. */
std::string
hexDouble(double d)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::bit_cast<std::uint64_t>(d);
    return os.str();
}

} // namespace

std::string
canonicalWarmSpec(const system::SystemConfig &cfg, Cycle warmupCycles)
{
    const system::Scenario &sc = cfg.scenario;
    std::ostringstream os;
    os << "v=" << kFormatVersion;
    os << ";mesh=" << cfg.meshWidth << "x" << cfg.meshHeight;
    os << ";scenario=" << sc.name;
    os << ";tech=" << static_cast<int>(sc.tech);
    os << ";tsb=" << sc.tsbRegions;
    os << ";placement=" << static_cast<int>(sc.placement);
    os << ";scheme="
       << (sc.scheme ? static_cast<int>(*sc.scheme) : -1);
    os << ";parent_hops=" << sc.parentHops;
    os << ";delay_mode=" << static_cast<int>(sc.delayMode);
    os << ";write_buffer=" << (sc.writeBuffer ? 1 : 0)
       << ":" << sc.writeBufferEntries;
    os << ";read_priority=" << (sc.readPriority ? 1 : 0);
    os << ";vcs=";
    for (int v : sc.vcsPerVnet)
        os << v << ",";
    os << ";apps=";
    for (const std::string &a : cfg.apps)
        os << a << ",";
    os << ";seed=" << cfg.seed;
    os << ";stream=" << hexDouble(cfg.stream.memFraction) << ","
       << hexDouble(cfg.stream.l2CapacityMissFactor) << ","
       << hexDouble(cfg.stream.shareProb) << ","
       << cfg.stream.sharedPoolBlocks << "," << cfg.stream.numBanks << ","
       << hexDouble(cfg.stream.burstContinueProb) << ","
       << cfg.stream.burstMaxLen << ","
       << hexDouble(cfg.stream.burstMissProb) << ","
       << hexDouble(cfg.stream.hotBankStickiness) << ","
       << hexDouble(cfg.stream.reuseProb) << ","
       << hexDouble(cfg.stream.storeHitFraction) << ","
       << hexDouble(cfg.stream.depProb);
    os << ";l1=" << cfg.l1.sets << "," << cfg.l1.ways << ","
       << cfg.l1.hitLatency << "," << cfg.l1.mshrs;
    os << ";dram=" << cfg.dram.accessCycles << ","
       << cfg.dram.maxInFlight;
    os << ";real_tags=" << (cfg.realTags ? 1 : 0);
    os << ";victim_dirty=" << hexDouble(cfg.victimDirtyProb);
    os << ";caps=" << cfg.bankRequestCap << "," << cfg.bankWriteCap;
    os << ";warmup=" << warmupCycles;
    os << ";faults="
       << (cfg.faultsEnabled ? cfg.faults.toString() : std::string("off"));
    return os.str();
}

std::uint64_t
warmConfigDigest(const system::SystemConfig &cfg, Cycle warmupCycles)
{
    return fnv1a(canonicalWarmSpec(cfg, warmupCycles));
}

void
saveCheckpoint(const system::CmpSystem &sys, std::ostream &out,
               std::uint64_t warmDigest)
{
    Saver s;
    StateIO::save(sys, s);
    const std::vector<std::uint8_t> &payload = s.bytes();

    out.write(kCheckpointMagic, sizeof kCheckpointMagic);
    putU32(out, kFormatVersion);
    putU64(out, warmDigest);
    putU64(out, sys.simulator().now());
    putU64(out, payload.size());
    putU64(out, fnv1a(payload.data(), payload.size()));
    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
}

std::string
restoreCheckpoint(system::CmpSystem &sys, std::istream &in,
                  std::uint64_t expectedDigest, Cycle *restoredCycle)
{
    char magic[sizeof kCheckpointMagic];
    if (!in.read(magic, sizeof magic))
        return "checkpoint truncated (missing magic)";
    if (std::memcmp(magic, kCheckpointMagic, sizeof magic) != 0)
        return "not a stacknoc checkpoint (bad magic)";

    std::uint32_t version = 0;
    if (!getU32(in, version))
        return "checkpoint truncated (missing version)";
    if (version != kFormatVersion) {
        std::ostringstream os;
        os << "checkpoint format version " << version
           << " unsupported (this build reads version " << kFormatVersion
           << "; re-create the checkpoint)";
        return os.str();
    }

    std::uint64_t warmDigest = 0, cycle = 0, size = 0, fnv = 0;
    if (!getU64(in, warmDigest) || !getU64(in, cycle) || !getU64(in, size)
        || !getU64(in, fnv))
        return "checkpoint truncated (short header)";
    if (warmDigest != expectedDigest) {
        std::ostringstream os;
        os << "checkpoint was taken under a different warm configuration "
              "(digest 0x"
           << std::hex << warmDigest << " != expected 0x" << expectedDigest
           << ")";
        return os.str();
    }
    if (size > (std::uint64_t{1} << 32))
        return "checkpoint payload size implausible (corrupt header)";

    std::vector<std::uint8_t> payload(static_cast<std::size_t>(size));
    if (!in.read(reinterpret_cast<char *>(payload.data()),
                 static_cast<std::streamsize>(payload.size())))
        return "checkpoint truncated (short payload)";
    if (fnv1a(payload.data(), payload.size()) != fnv)
        return "checkpoint payload checksum mismatch (corrupt file)";

    try {
        Loader l(payload.data(), payload.size());
        StateIO::load(sys, l);
    } catch (const SnapshotError &e) {
        return std::string("checkpoint restore failed: ") + e.what();
    }
    // Complete the warm boundary exactly as an uninterrupted run would:
    // stats groups are already zero, probes re-baseline from the
    // restored plain counters, measurement starts at the restored cycle.
    sys.warmupEnd();
    if (restoredCycle != nullptr)
        *restoredCycle = cycle;
    return {};
}

namespace {

bool
isCheckpointEntry(const std::filesystem::directory_entry &e)
{
    if (!e.is_regular_file())
        return false;
    const std::string name = e.path().filename().string();
    return name.rfind("ckpt_", 0) == 0 && name.size() > 9 &&
           name.compare(name.size() - 4, 4, ".bin") == 0;
}

} // namespace

CkptDirUsage
ckptDirUsage(const std::string &dir)
{
    CkptDirUsage usage;
    if (dir.empty())
        return usage;
    std::error_code ec;
    for (const auto &e : std::filesystem::directory_iterator(dir, ec)) {
        if (!isCheckpointEntry(e))
            continue;
        std::error_code sec;
        const auto size = e.file_size(sec);
        if (sec)
            continue; // raced with a concurrent delete
        usage.bytes += size;
        ++usage.files;
    }
    return usage;
}

std::vector<CkptEviction>
evictCheckpointsLru(const std::string &dir, std::uint64_t capBytes)
{
    std::vector<CkptEviction> evicted;
    if (dir.empty())
        return evicted;

    struct Entry
    {
        std::filesystem::path path;
        std::filesystem::file_time_type mtime;
        std::uint64_t bytes = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &e : std::filesystem::directory_iterator(dir, ec)) {
        if (!isCheckpointEntry(e))
            continue;
        std::error_code sec;
        const auto size = e.file_size(sec);
        const auto mtime = e.last_write_time(sec);
        if (sec)
            continue;
        entries.push_back({e.path(), mtime, size});
        total += size;
    }
    if (total <= capBytes)
        return evicted;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    for (const Entry &e : entries) {
        if (total <= capBytes)
            break;
        std::error_code rec;
        if (!std::filesystem::remove(e.path, rec) || rec)
            continue; // a concurrent server got it first
        total -= e.bytes;
        evicted.push_back({e.path.filename().string(), e.bytes});
    }
    return evicted;
}

void
touchCheckpoint(const std::string &path)
{
    std::error_code ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
}

} // namespace stacknoc::snapshot
