/**
 * @file
 * On-disk checkpoint container around snapshot::StateIO.
 *
 * Layout (all integers little-endian):
 *
 *     offset  size  field
 *     0       8     magic "SNOCCKPT"
 *     8       4     format version (kFormatVersion)
 *     12      8     warm-config digest (see warmConfigDigest)
 *     20      8     simulation cycle at capture
 *     28      8     payload size in bytes
 *     36      8     FNV-1a of the payload
 *     44      ...   StateIO payload
 *
 * Version policy: the format version bumps on ANY change to the payload
 * encoding (field added/removed/reordered anywhere in StateIO) or to
 * the warm-config canonicalisation. Readers reject other versions with
 * a one-line reason rather than attempting migration — checkpoints are
 * warm-state caches, always re-creatable from the scenario and seed.
 */

#ifndef STACKNOC_SNAPSHOT_CHECKPOINT_HH
#define STACKNOC_SNAPSHOT_CHECKPOINT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stacknoc::system {
class CmpSystem;
struct SystemConfig;
} // namespace stacknoc::system

namespace stacknoc::snapshot {

/** Bumped on any payload or canonicalisation change. */
constexpr std::uint32_t kFormatVersion = 1;

/** The 8-byte container magic. */
extern const char kCheckpointMagic[8];

/**
 * Canonical text rendering of everything that shapes simulator state at
 * the warm-up boundary: scenario knobs, mesh, apps, seed, workload/L1/
 * DRAM parameters, bank caps, warm-up length, fault spec and the format
 * version. Deliberately EXCLUDES threads, elision, and observer-only
 * telemetry settings — the determinism contract makes warm state
 * independent of those, so sweep points differing only there can share
 * one warm checkpoint. Doubles are rendered bit-exactly.
 */
std::string canonicalWarmSpec(const system::SystemConfig &cfg,
                              Cycle warmupCycles);

/** FNV-1a digest of canonicalWarmSpec — the checkpoint compatibility key. */
std::uint64_t warmConfigDigest(const system::SystemConfig &cfg,
                               Cycle warmupCycles);

/**
 * Serialise @p sys (already past warmupEnd()) into @p out.
 * @param warmDigest the warmConfigDigest of the producing configuration.
 * @throws SnapshotError on non-serialisable state, std::ios failures
 * are left on the stream for the caller.
 */
void saveCheckpoint(const system::CmpSystem &sys, std::ostream &out,
                    std::uint64_t warmDigest);

/**
 * Restore @p sys — freshly constructed, never run — from @p in and
 * complete the warm boundary (CmpSystem::warmupEnd()).
 *
 * @param expectedDigest warmConfigDigest of the restoring configuration;
 *                       mismatches are rejected.
 * @param restoredCycle  set to the checkpoint's capture cycle on success.
 * @return empty string on success, else a one-line reason (bad magic,
 *         version mismatch, digest mismatch, truncation, corruption).
 *         The system must be considered unusable after a failure.
 */
std::string restoreCheckpoint(system::CmpSystem &sys, std::istream &in,
                              std::uint64_t expectedDigest,
                              Cycle *restoredCycle = nullptr);

// --- Checkpoint-directory accounting and eviction ---------------------
//
// Warm checkpoints (`ckpt_<warm-key>.bin` under the server's
// --ckpt-dir) are a cache: every entry is re-creatable from its
// scenario and seed, so the directory can be capped. Eviction is
// least-recently-used on the filesystem write timestamp — restorers
// bump it (touchCheckpoint) so reuse counts as recency — and deletes
// are single unlinks, atomic with respect to concurrent restorers: a
// worker that already opened the file keeps a valid descriptor.

/** Aggregate size of the `ckpt_*.bin` entries in @p dir. */
struct CkptDirUsage
{
    std::uint64_t bytes = 0;
    std::uint64_t files = 0;
};

/** Scan @p dir ("" or missing directory yields zeros). */
CkptDirUsage ckptDirUsage(const std::string &dir);

/** One eviction, for logging and accounting. */
struct CkptEviction
{
    std::string file; //!< file name (not the full path)
    std::uint64_t bytes = 0;
};

/**
 * Delete least-recently-written `ckpt_*.bin` entries in @p dir until
 * the aggregate size is <= @p capBytes. @return the evicted entries,
 * oldest first (empty when already under the cap or @p dir is "").
 */
std::vector<CkptEviction> evictCheckpointsLru(const std::string &dir,
                                              std::uint64_t capBytes);

/**
 * Best-effort bump of @p path's write timestamp to now, marking a
 * restored checkpoint as recently used for LRU eviction.
 */
void touchCheckpoint(const std::string &path);

} // namespace stacknoc::snapshot

#endif // STACKNOC_SNAPSHOT_CHECKPOINT_HH
