/**
 * @file
 * Cross-reference tables shared by every component's save/load pass.
 *
 * Two kinds of state are aliased between components and must keep their
 * sharing structure across a checkpoint round trip:
 *
 *  - PacketPtr: one Packet may sit in several places at once (a router
 *    VC buffer flit-by-flit, a Tbe blocked queue, an NI committedPkt).
 *    The save pass writes each distinct Packet once (first encounter)
 *    and refers back by table index afterwards; the load pass rebuilds
 *    the exact same shared_ptr graph.
 *
 *  - std::shared_ptr<bool> completion flags: a Core ROB entry and the
 *    L1 MSHR that will complete it point at the same bool (and
 *    lastMemDone_ may alias it again). Same first-encounter scheme.
 */

#ifndef STACKNOC_SNAPSHOT_CONTEXT_HH
#define STACKNOC_SNAPSHOT_CONTEXT_HH

#include <map>
#include <memory>
#include <vector>

#include "noc/packet.hh"
#include "snapshot/serialize.hh"

namespace stacknoc::snapshot {

namespace tag {
constexpr std::uint8_t kNull = 0; //!< empty pointer
constexpr std::uint8_t kNew = 1;  //!< body follows; assign next index
constexpr std::uint8_t kRef = 2;  //!< u32 index of an earlier kNew
} // namespace tag

/** Save-side tables. One per checkpoint save pass. */
class SaveCtx
{
  public:
    void
    putPacket(Saver &s, const noc::PacketPtr &pkt)
    {
        if (!pkt) {
            s.u8(tag::kNull);
            return;
        }
        const auto it = packets_.find(pkt.get());
        if (it != packets_.end()) {
            s.u8(tag::kRef);
            s.u32(it->second);
            return;
        }
        packets_.emplace(pkt.get(),
                         static_cast<std::uint32_t>(packets_.size()));
        s.u8(tag::kNew);
        const noc::Packet &p = *pkt;
        s.u64(p.id);
        s.u8(static_cast<std::uint8_t>(p.cls));
        s.i32(p.src);
        s.i32(p.dest);
        s.i32(p.numFlits);
        s.u64(p.addr);
        s.i32(p.destBank);
        s.u8(p.info.kind);
        s.u8(p.info.flags);
        s.u16(p.info.aux);
        s.u32(p.info.origin);
        s.u64(p.createdAt);
        s.u64(p.injectedAt);
        s.u64(p.ejectedAt);
        s.i16(p.probeStamp);
        s.i32(p.probeParent);
        s.u64(p.firstHeldAt);
    }

    void
    putFlag(Saver &s, const std::shared_ptr<bool> &flag)
    {
        if (!flag) {
            s.u8(tag::kNull);
            return;
        }
        const auto it = flags_.find(flag.get());
        if (it != flags_.end()) {
            s.u8(tag::kRef);
            s.u32(it->second);
            return;
        }
        flags_.emplace(flag.get(),
                       static_cast<std::uint32_t>(flags_.size()));
        s.u8(tag::kNew);
        s.b(*flag);
    }

  private:
    std::map<const noc::Packet *, std::uint32_t> packets_;
    std::map<const bool *, std::uint32_t> flags_;
};

/** Load-side tables, mirroring SaveCtx. */
class LoadCtx
{
  public:
    noc::PacketPtr
    getPacket(Loader &l)
    {
        switch (l.u8()) {
          case tag::kNull:
            return nullptr;
          case tag::kRef: {
            const std::uint32_t idx = l.u32();
            if (idx >= packets_.size())
                throw SnapshotError("bad packet back-reference");
            return packets_[idx];
          }
          case tag::kNew: {
            auto pkt = std::make_shared<noc::Packet>();
            noc::Packet &p = *pkt;
            p.id = l.u64();
            p.cls = static_cast<noc::PacketClass>(l.u8());
            p.src = l.i32();
            p.dest = l.i32();
            p.numFlits = l.i32();
            p.addr = l.u64();
            p.destBank = l.i32();
            p.info.kind = l.u8();
            p.info.flags = l.u8();
            p.info.aux = l.u16();
            p.info.origin = l.u32();
            p.createdAt = l.u64();
            p.injectedAt = l.u64();
            p.ejectedAt = l.u64();
            p.probeStamp = l.i16();
            p.probeParent = l.i32();
            p.firstHeldAt = l.u64();
            packets_.push_back(pkt);
            return pkt;
          }
          default:
            throw SnapshotError("bad packet tag");
        }
    }

    std::shared_ptr<bool>
    getFlag(Loader &l)
    {
        switch (l.u8()) {
          case tag::kNull:
            return nullptr;
          case tag::kRef: {
            const std::uint32_t idx = l.u32();
            if (idx >= flags_.size())
                throw SnapshotError("bad flag back-reference");
            return flags_[idx];
          }
          case tag::kNew: {
            auto flag = std::make_shared<bool>(l.b());
            flags_.push_back(flag);
            return flag;
          }
          default:
            throw SnapshotError("bad flag tag");
        }
    }

  private:
    std::vector<noc::PacketPtr> packets_;
    std::vector<std::shared_ptr<bool>> flags_;
};

} // namespace stacknoc::snapshot

#endif // STACKNOC_SNAPSHOT_CONTEXT_HH
