#include "mem/tech.hh"

#include "common/logging.hh"

namespace stacknoc::mem {

const char *
cacheTechName(CacheTech tech)
{
    return tech == CacheTech::Sram ? "SRAM" : "STT-RAM";
}

const BankTechParams &
bankTech(CacheTech tech)
{
    // Table 2: SRAM and STT-RAM comparison at 32nm.
    static const BankTechParams sram{
        "1MB SRAM", 1.0, 3.03, 0.168, 0.168, 444.6, 0.702, 0.702, 3, 3};
    static const BankTechParams sttram{
        "4MB STT-RAM", 4.0, 3.39, 0.278, 0.765, 190.5, 0.880, 10.67, 3,
        33};
    switch (tech) {
      case CacheTech::Sram: return sram;
      case CacheTech::SttRam: return sttram;
      default: panic("unknown cache technology");
    }
}

} // namespace stacknoc::mem
