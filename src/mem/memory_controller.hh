/**
 * @file
 * On-chip memory controllers: fixed-latency DRAM behind the four corner
 * nodes of the cache layer (Table 1).
 */

#ifndef STACKNOC_MEM_MEMORY_CONTROLLER_HH
#define STACKNOC_MEM_MEMORY_CONTROLLER_HH

#include <deque>
#include <vector>

#include "sim/stats.hh"
#include "sim/ticking.hh"
#include "noc/network_interface.hh"
#include "mem/tech.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::mem {

/**
 * Receives MemReq/MemWrite packets from L2 banks, services them with a
 * fixed 320-cycle DRAM access (bounded outstanding requests), and
 * returns MemResp fill data over the response virtual network.
 */
class MemoryController final : public Ticking, public noc::NetworkClient
{
  public:
    /**
     * @param mcname component name.
     * @param node the cache-layer node this controller shares.
     * @param ni the node's network interface, used to inject responses.
     * @param params DRAM parameters.
     * @param group shared statistics group for all controllers.
     */
    MemoryController(std::string mcname, NodeId node,
                     noc::NetworkInterface &ni, const DramParams &params,
                     stats::Group &group);

    void deliver(noc::PacketPtr pkt, Cycle now) override;
    void tick(Cycle now) override;

    /** Idle iff nothing is queued or being serviced; deliver() wakes. */
    bool
    quiescent(Cycle) const override
    {
        return queue_.empty() && inflight_.empty();
    }

    TickKind tickKind() const override
    {
        return TickKind::MemoryController;
    }

    std::size_t queueDepth() const { return queue_.size(); }
    std::size_t inFlight() const { return inflight_.size(); }

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    struct Access
    {
        noc::PacketPtr pkt;
        Cycle doneAt;
    };

    NodeId node_;
    noc::NetworkInterface &ni_;
    DramParams params_;
    std::deque<noc::PacketPtr> queue_;
    std::vector<Access> inflight_;

    stats::Counter &reads_;
    stats::Counter &writes_;
    stats::Average &queueLatency_;
};

} // namespace stacknoc::mem

#endif // STACKNOC_MEM_MEMORY_CONTROLLER_HH
