#include "mem/bank_model.hh"

#include "common/logging.hh"

namespace stacknoc::mem {

BankModel::BankModel(CacheTech tech, stats::Group &group)
    : tech_(tech), params_(bankTech(tech)),
      reads_(group.counter("bank_reads")),
      writes_(group.counter("bank_writes")),
      busyCycles_(group.counter("bank_busy_cycles")),
      aborts_(group.counter("bank_write_aborts"))
{
}

Cycle
BankModel::startRead(Cycle now)
{
    panic_if(busy(now), "bank read started while busy");
    busyUntil_ = now + params_.readCycles;
    currentIsWrite_ = false;
    reads_.inc();
    ++readsTotal_;
    busyCycles_.inc(params_.readCycles);
    return busyUntil_;
}

Cycle
BankModel::startWrite(Cycle now)
{
    panic_if(busy(now), "bank write started while busy");
    busyUntil_ = now + params_.writeCycles;
    currentIsWrite_ = true;
    writes_.inc();
    ++writesTotal_;
    busyCycles_.inc(params_.writeCycles);
    return busyUntil_;
}

void
BankModel::abort(Cycle now)
{
    panic_if(!busy(now), "abort with no access in flight");
    // Return the unused busy cycles to the accounting.
    busyCycles_.inc(0); // busy cycles already charged; keep conservative
    busyUntil_ = now;
    aborts_.inc();
}

} // namespace stacknoc::mem
