#include "mem/memory_controller.hh"

#include "common/logging.hh"

namespace stacknoc::mem {

MemoryController::MemoryController(std::string mcname, NodeId node,
                                   noc::NetworkInterface &ni,
                                   const DramParams &params,
                                   stats::Group &group)
    : Ticking(std::move(mcname)), node_(node), ni_(ni), params_(params),
      reads_(group.counter("dram_reads")),
      writes_(group.counter("dram_writes")),
      queueLatency_(group.average("dram_queue_latency"))
{
}

void
MemoryController::deliver(noc::PacketPtr pkt, Cycle now)
{
    wake();
    if (pkt->cls == noc::PacketClass::MemWrite) {
        // Fire-and-forget DRAM writeback; consumes bandwidth budget by
        // occupying an in-flight slot like any other access.
        writes_.inc();
    } else {
        panic_if(pkt->cls != noc::PacketClass::MemReq,
                 "memory controller got %s", pkt->toString().c_str());
        reads_.inc();
    }
    (void)now;
    queue_.push_back(std::move(pkt));
}

void
MemoryController::tick(Cycle now)
{
    // Complete finished accesses and inject fill responses.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (now < it->doneAt) {
            ++it;
            continue;
        }
        if (it->pkt->cls == noc::PacketClass::MemReq) {
            auto resp = noc::makePacket(noc::PacketClass::MemResp, node_,
                                        it->pkt->src, it->pkt->addr);
            resp->destBank = it->pkt->destBank;
            resp->info = it->pkt->info;
            ni_.send(std::move(resp), now);
        }
        it = inflight_.erase(it);
    }

    // Start new accesses while slots are free.
    while (!queue_.empty() &&
           static_cast<int>(inflight_.size()) < params_.maxInFlight) {
        noc::PacketPtr pkt = std::move(queue_.front());
        queue_.pop_front();
        queueLatency_.sample(static_cast<double>(now - pkt->ejectedAt));
        inflight_.push_back(Access{std::move(pkt),
                                   now + params_.accessCycles});
    }
}

} // namespace stacknoc::mem
