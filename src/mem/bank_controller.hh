/**
 * @file
 * The per-bank request scheduler: FIFO service of reads and writes onto
 * the bank port, optionally through the Sun et al. (HPCA'09) SRAM write
 * buffer with read preemption — the BUFF-20 baseline of Section 4.4.
 */

#ifndef STACKNOC_MEM_BANK_CONTROLLER_HH
#define STACKNOC_MEM_BANK_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/stats.hh"
#include "mem/bank_model.hh"

namespace stacknoc::fault {
class FaultInjector;
} // namespace stacknoc::fault

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::mem {

/** Sentinel: no packet attached to a request for tracing purposes. */
inline constexpr std::uint64_t kNoTracePkt = ~0ULL;

/** One timed request against a bank. */
struct BankRequest
{
    bool isWrite = false;
    BlockAddr addr = 0;
    Cycle enqueuedAt = 0;
    /** Invoked once when the access completes. */
    std::function<void(Cycle)> onDone;
    /** Network packet that carried this request (telemetry only). */
    std::uint64_t tracePktId = kNoTracePkt;
    std::uint8_t traceCls = 0;
};

/** Configuration of the bank front-end. */
struct BankControllerConfig
{
    /** Enable the Sun et al. SRAM write buffer. */
    bool writeBuffer = false;
    /** Buffer capacity (the paper's comparison uses 20 entries). */
    int writeBufferEntries = 20;
    /** Allow reads to abort an in-progress buffer-drain write. */
    bool readPreemption = true;
    /** Read/write detection overhead on every request (1 cycle). */
    Cycle checkCycles = 1;
    /** SRAM-speed access latency of the buffer itself. */
    Cycle bufferAccessCycles = 3;

    /**
     * Plain-mode read priority (the paper's Section 5 notes the network
     * scheme complements Sun et al.'s read preemption): queued reads
     * are served before queued writes, and a read may abort an
     * in-service write, which then restarts from scratch.
     */
    bool readPriority = false;
};

/**
 * Serialises requests onto a BankModel. Owners call tick() once per
 * cycle and enqueue() at any time; completions fire the request's onDone.
 */
class BankController
{
  public:
    /**
     * @param tech bank technology.
     * @param config front-end configuration.
     * @param group shared statistics group for all banks.
     * @param stat_prefix when non-empty, adds a per-bank
     *        "<prefix>.queue_latency_hist" histogram to @p group.
     * @param node node this bank sits at (stamped on trace events).
     */
    BankController(CacheTech tech, const BankControllerConfig &config,
                   stats::Group &group, std::string stat_prefix = "",
                   NodeId node = kInvalidNode);

    /**
     * Enable stochastic write-verify-retry (STT-RAM banks only): a
     * completed write whose verify fails re-occupies the bank for
     * another full service round, up to the injector's retry budget,
     * after which the line is handed to ECC and the write completes as
     * "abandoned".
     */
    void setFaultInjector(fault::FaultInjector *fi, BankId bank);

    /** @return true while the in-service write is in a retry round. */
    bool writeRetryActive() const { return retryActive_; }

    /** Failed verify rounds at this bank since construction (monotonic;
     *  lets the owner emit one busy-NACK per failure episode). */
    std::uint64_t retryEpisodes() const { return retryEpisodes_; }

    /** Write rounds re-run after a failed verify since construction
     *  (the rounds counted into stt_write_retry_rounds). Plain counter
     *  for cycle-end probes: the EnergyProbe charges the verify-sense
     *  overhead of each retry round from per-bank deltas of this. */
    std::uint64_t retryRoundsTotal() const { return retryRoundsTotal_; }

    /** Predicted completion of the write occupying the bank (now when
     *  no write is in service). */
    Cycle activeWriteDoneAt(Cycle now) const;

    /** Add a request. */
    void enqueue(BankRequest req, Cycle now);

    /** Advance one cycle: complete and start work. */
    void tick(Cycle now);

    /** Requests waiting for service (demand queue only). */
    std::size_t queueDepth() const { return queue_.size(); }

    /** Writes parked in the write buffer. */
    std::size_t bufferDepth() const { return buffer_.size(); }

    /** @return true when nothing is queued, buffered, or in flight. */
    bool idle(Cycle now) const;

    const BankModel &bank() const { return bank_; }

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    struct InFlight
    {
        BankRequest req;
        Cycle doneAt;
        int failures = 0; //!< failed write-verify rounds so far
    };

    struct BufferedWrite
    {
        BlockAddr addr;
        bool draining = false;
    };

    struct DelayedDone
    {
        Cycle at;
        BankRequest req;
    };

    void completeDue(Cycle now);
    void startPlain(Cycle now);
    void startBuffered(Cycle now);
    bool bufferContains(BlockAddr addr) const;

    /** Record queue latency (histograms + trace) as service begins. */
    void noteServiceStart(const BankRequest &req, Cycle now);

    /** Pop the next plain-mode request honouring read priority. */
    BankRequest takeNextPlain();

    /**
     * Verify a just-completed write against the fault injector.
     * @return true when the write failed and must run another round
     * (@p failures is advanced); false when it completes — either
     * verified clean or abandoned to ECC at the retry budget.
     */
    bool writeNeedsRetry(int &failures);

    BankModel bank_;
    BankControllerConfig config_;

    std::deque<BankRequest> queue_;
    std::optional<InFlight> current_;        //!< demand op on the bank
    std::deque<BufferedWrite> buffer_;
    std::optional<Cycle> drainDoneAt_;       //!< drain write in flight
    std::vector<DelayedDone> delayed_;       //!< buffer-speed completions

    /** Figure-3 probe: arrival-gap tracking after a write request. */
    Cycle lastArrival_ = kCycleNever;
    bool lastWasWrite_ = false;

    NodeId node_ = kInvalidNode;

    fault::FaultInjector *faults_ = nullptr;
    BankId bankId_ = kInvalidBank;
    int drainFailures_ = 0;     //!< verify failures of the drain write
    bool retryActive_ = false;  //!< a write is in a retry round now
    std::uint64_t retryEpisodes_ = 0;
    std::uint64_t retryRoundsTotal_ = 0;

    stats::Average &queueLatency_;
    stats::Counter &served_;
    stats::Counter &bufferHits_;
    stats::Counter &preemptions_;
    stats::Distribution &gapAfterWrite_;
    stats::Histogram &queueLatencyHist_;     //!< aggregate over banks
    stats::Histogram *perBankQueueHist_ = nullptr;
};

} // namespace stacknoc::mem

#endif // STACKNOC_MEM_BANK_CONTROLLER_HH
