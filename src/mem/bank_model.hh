/**
 * @file
 * The raw timed data array of one L2 bank: a single read/write port with
 * technology-dependent occupancy and per-access energy accounting.
 */

#ifndef STACKNOC_MEM_BANK_MODEL_HH
#define STACKNOC_MEM_BANK_MODEL_HH

#include "common/types.hh"
#include "sim/stats.hh"
#include "mem/tech.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::mem {

/**
 * Models bank-port occupancy: an access started at t occupies the bank
 * until t + latency. Callers must check busy() before starting an access
 * (the BankController serialises requests).
 */
class BankModel
{
  public:
    /**
     * @param tech cell technology (decides latencies and energies).
     * @param group statistics group shared by all banks of the system.
     */
    BankModel(CacheTech tech, stats::Group &group);

    bool busy(Cycle now) const { return now < busyUntil_; }
    Cycle busyUntil() const { return busyUntil_; }

    /** Begin a read. @return completion cycle. */
    Cycle startRead(Cycle now);

    /** Begin a write. @return completion cycle. */
    Cycle startWrite(Cycle now);

    /**
     * Abort the in-flight access (read preemption of a write): the bank
     * becomes free immediately; the energy already spent is kept.
     */
    void abort(Cycle now);

    /** @return true when a write is currently occupying the port. */
    bool writingNow(Cycle now) const
    {
        return busy(now) && currentIsWrite_;
    }

    CacheTech tech() const { return tech_; }
    const BankTechParams &params() const { return params_; }

    /**
     * Accesses served by this bank since construction. Plain
     * (non-Group) counters so spatial exporters can read per-bank
     * values: written only by the owning component's tick, read from
     * cycle-end probes after the phase barrier. Retried write rounds
     * re-enter startWrite() and therefore re-count, matching the
     * shared bank_writes statistic.
     */
    std::uint64_t readsTotal() const { return readsTotal_; }
    std::uint64_t writesTotal() const { return writesTotal_; }

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    CacheTech tech_;
    const BankTechParams &params_;
    Cycle busyUntil_ = 0;
    bool currentIsWrite_ = false;

    stats::Counter &reads_;
    stats::Counter &writes_;
    stats::Counter &busyCycles_;
    stats::Counter &aborts_;

    std::uint64_t readsTotal_ = 0;
    std::uint64_t writesTotal_ = 0;
};

} // namespace stacknoc::mem

#endif // STACKNOC_MEM_BANK_MODEL_HH
