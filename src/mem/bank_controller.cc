#include "mem/bank_controller.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "telemetry/trace.hh"

namespace stacknoc::mem {

BankController::BankController(CacheTech tech,
                               const BankControllerConfig &config,
                               stats::Group &group,
                               std::string stat_prefix, NodeId node)
    : bank_(tech, group), config_(config), node_(node),
      queueLatency_(group.average("bank_queue_latency")),
      served_(group.counter("bank_requests_served")),
      bufferHits_(group.counter("write_buffer_hits")),
      preemptions_(group.counter("write_buffer_preemptions")),
      gapAfterWrite_(group.distribution("gap_after_write",
                                        {16, 33, 66, 99, 132, 165})),
      queueLatencyHist_(group.histogram("bank_queue_latency_hist"))
{
    if (!stat_prefix.empty()) {
        perBankQueueHist_ =
            &group.histogram(stat_prefix + ".queue_latency_hist");
    }
}

void
BankController::noteServiceStart(const BankRequest &req, Cycle now)
{
    const std::uint64_t waited = now - req.enqueuedAt;
    queueLatencyHist_.sample(waited);
    if (perBankQueueHist_)
        perBankQueueHist_->sample(waited);
    if (req.tracePktId == kNoTracePkt)
        return;
    if (auto *t = telemetry::tracer(); t && t->tracked(req.tracePktId)) {
        t->record(telemetry::TraceEvent::BankServiceStart, req.tracePktId,
                  req.traceCls, node_, now,
                  static_cast<std::int64_t>(waited));
    }
}

void
BankController::enqueue(BankRequest req, Cycle now)
{
    // Figure 3: distribution of accesses that follow a write request to
    // the same bank.
    if (lastWasWrite_ && lastArrival_ != kCycleNever)
        gapAfterWrite_.sample(now - lastArrival_);
    lastArrival_ = now;
    lastWasWrite_ = req.isWrite;

    req.enqueuedAt = now;
    if (req.tracePktId != kNoTracePkt) {
        if (auto *t = telemetry::tracer();
            t && t->tracked(req.tracePktId)) {
            // aux encodes the queue depth seen on arrival and the
            // access type: (depth << 1) | isWrite. The golden bank
            // model needs the type; the class alone can't provide it
            // (a MemResp fill is a bank *write* carrying a read's cls).
            t->record(telemetry::TraceEvent::BankQueueEnter,
                      req.tracePktId, req.traceCls, node_, now,
                      static_cast<std::int64_t>(
                          (queue_.size() << 1) |
                          (req.isWrite ? 1u : 0u)));
        }
    }
    queue_.push_back(std::move(req));
}

bool
BankController::idle(Cycle now) const
{
    return queue_.empty() && buffer_.empty() && !current_ &&
           !drainDoneAt_ && delayed_.empty() && !bank_.busy(now);
}

void
BankController::setFaultInjector(fault::FaultInjector *fi, BankId bank)
{
    faults_ = fi;
    bankId_ = bank;
}

Cycle
BankController::activeWriteDoneAt(Cycle now) const
{
    if (current_ && current_->req.isWrite)
        return current_->doneAt;
    if (drainDoneAt_)
        return *drainDoneAt_;
    return now;
}

bool
BankController::writeNeedsRetry(int &failures)
{
    if (!faults_ || bank_.tech() != CacheTech::SttRam)
        return false;
    if (!faults_->drawWriteFailure(bankId_)) {
        if (failures > 0) {
            faults_->noteWriteRecovered(
                failures, static_cast<Cycle>(failures)
                              * bank_.params().writeCycles);
        }
        retryActive_ = false;
        return false;
    }
    faults_->noteWriteFailure();
    ++retryEpisodes_;
    if (failures >= faults_->spec().sttWriteRetries) {
        // Retry budget exhausted: hand the line to ECC and complete.
        faults_->noteWriteAbandoned();
        retryActive_ = false;
        return false;
    }
    ++failures;
    faults_->noteWriteRetryRound();
    ++retryRoundsTotal_;
    retryActive_ = true;
    return true;
}

void
BankController::completeDue(Cycle now)
{
    if (current_ && now >= current_->doneAt) {
        if (current_->req.isWrite && writeNeedsRetry(current_->failures)) {
            // Failed verify: the bank runs another full write round.
            current_->doneAt = bank_.startWrite(now);
        } else {
            served_.inc();
            if (current_->req.onDone)
                current_->req.onDone(now);
            current_.reset();
        }
    }
    if (drainDoneAt_ && now >= *drainDoneAt_) {
        panic_if(buffer_.empty() || !buffer_.front().draining,
                 "drain completion without a draining entry");
        if (writeNeedsRetry(drainFailures_)) {
            drainDoneAt_ = bank_.startWrite(now);
        } else {
            buffer_.pop_front();
            drainDoneAt_.reset();
            drainFailures_ = 0;
        }
    }
    for (auto it = delayed_.begin(); it != delayed_.end();) {
        if (now >= it->at) {
            served_.inc();
            if (it->req.onDone)
                it->req.onDone(now);
            it = delayed_.erase(it);
        } else {
            ++it;
        }
    }
}

BankRequest
BankController::takeNextPlain()
{
    if (!config_.readPriority || queue_.front().isWrite == false) {
        BankRequest req = std::move(queue_.front());
        queue_.pop_front();
        return req;
    }
    // Read priority: serve the oldest queued read ahead of any write.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (!it->isWrite) {
            BankRequest req = std::move(*it);
            queue_.erase(it);
            return req;
        }
    }
    BankRequest req = std::move(queue_.front());
    queue_.pop_front();
    return req;
}

void
BankController::startPlain(Cycle now)
{
    if (current_ || queue_.empty() || bank_.busy(now))
        return;
    BankRequest req = takeNextPlain();
    queueLatency_.sample(static_cast<double>(now - req.enqueuedAt));
    noteServiceStart(req, now);
    const Cycle done =
        req.isWrite ? bank_.startWrite(now) : bank_.startRead(now);
    current_ = InFlight{std::move(req), done};
}

bool
BankController::bufferContains(BlockAddr addr) const
{
    return std::any_of(buffer_.begin(), buffer_.end(),
                       [&](const BufferedWrite &w) {
                           return w.addr == addr;
                       });
}

void
BankController::startBuffered(Cycle now)
{
    // Admit demand requests in order; every request pays the 1-cycle
    // read/write detection before any action (Section 4.4).
    while (!queue_.empty()) {
        BankRequest &front = queue_.front();
        if (now < front.enqueuedAt + config_.checkCycles)
            break;
        if (front.isWrite) {
            const bool buffer_free =
                static_cast<int>(buffer_.size()) <
                config_.writeBufferEntries;
            if (!buffer_free)
                break; // wait for a drain to free an entry
            BankRequest req = std::move(front);
            queue_.pop_front();
            buffer_.push_back(BufferedWrite{req.addr, false});
            queueLatency_.sample(static_cast<double>(
                now - req.enqueuedAt));
            noteServiceStart(req, now);
            delayed_.push_back(
                DelayedDone{now + config_.bufferAccessCycles,
                            std::move(req)});
            continue;
        }
        // Read: the buffer is searched in parallel with the bank.
        if (bufferContains(front.addr)) {
            BankRequest req = std::move(front);
            queue_.pop_front();
            bufferHits_.inc();
            queueLatency_.sample(static_cast<double>(
                now - req.enqueuedAt));
            noteServiceStart(req, now);
            delayed_.push_back(
                DelayedDone{now + config_.bufferAccessCycles,
                            std::move(req)});
            continue;
        }
        if (bank_.busy(now)) {
            // Read preemption: abort an in-progress drain write; the
            // unfinished write stays buffered and restarts later.
            if (drainDoneAt_ && config_.readPreemption) {
                bank_.abort(now);
                buffer_.front().draining = false;
                drainDoneAt_.reset();
                drainFailures_ = 0; // the restarted write re-verifies
                retryActive_ = false;
                preemptions_.inc();
            } else {
                break; // demand read already occupies the bank
            }
        }
        if (current_)
            break; // one demand access at a time
        BankRequest req = std::move(front);
        queue_.pop_front();
        const Cycle done = bank_.startRead(now);
        queueLatency_.sample(static_cast<double>(now - req.enqueuedAt));
        noteServiceStart(req, now);
        current_ = InFlight{std::move(req), done};
        break;
    }

    // Drain the oldest buffered write when the bank has nothing better
    // to do.
    if (!drainDoneAt_ && !current_ && !buffer_.empty() &&
        !bank_.busy(now)) {
        buffer_.front().draining = true;
        drainDoneAt_ = bank_.startWrite(now);
    }
}

void
BankController::tick(Cycle now)
{
    completeDue(now);
    if (config_.writeBuffer) {
        startBuffered(now);
        return;
    }
    // Plain-mode read preemption: abort an in-service write when a
    // read is waiting, and put the write back at the head of the queue.
    if (config_.readPriority && current_ && current_->req.isWrite &&
        bank_.writingNow(now)) {
        const bool read_waiting =
            std::any_of(queue_.begin(), queue_.end(),
                        [](const BankRequest &r) { return !r.isWrite; });
        if (read_waiting) {
            bank_.abort(now);
            queue_.push_front(std::move(current_->req));
            current_.reset();
            retryActive_ = false; // the restarted write re-verifies
            preemptions_.inc();
        }
    }
    startPlain(now);
}

} // namespace stacknoc::mem
