/**
 * @file
 * Memory technology parameters at 32 nm — a transcription of the paper's
 * Table 2 (derived by the authors from CACTI 6.0 and STT-RAM prototype
 * scaling). Latencies are in cycles of the 3 GHz core clock.
 */

#ifndef STACKNOC_MEM_TECH_HH
#define STACKNOC_MEM_TECH_HH

#include "common/types.hh"

namespace stacknoc::mem {

/** The cell technology an L2 bank is built from. */
enum class CacheTech { Sram, SttRam };

/** @return printable name ("SRAM" / "STT-RAM"). */
const char *cacheTechName(CacheTech tech);

/** Per-bank technology parameters (one row of Table 2). */
struct BankTechParams
{
    const char *name;
    double capacityMB;      //!< bank capacity in MB
    double areaMm2;         //!< bank area in mm^2
    double readEnergyNJ;    //!< energy per read access
    double writeEnergyNJ;   //!< energy per write access
    double leakagePowerMW;  //!< leakage power at 80 C
    double readLatencyNs;
    double writeLatencyNs;
    Cycle readCycles;       //!< read latency at 3 GHz
    Cycle writeCycles;      //!< write latency at 3 GHz
};

/** @return the Table 2 row for @p tech. */
const BankTechParams &bankTech(CacheTech tech);

/** Clock frequency assumed throughout (Table 1). */
constexpr double kClockGHz = 3.0;

/**
 * Main-memory parameters (Table 1: 4 GB DRAM, 320-cycle access, four
 * on-chip controllers). Table 1's "16 outstanding requests" is a
 * per-processor limit; each controller serves many processors, so its
 * in-flight window is sized so DRAM does not become the whole-system
 * bottleneck (the paper's evaluation is bank- and NoC-bound).
 */
struct DramParams
{
    Cycle accessCycles = 320;
    int maxInFlight = 64;
    double accessEnergyNJ = 15.0; //!< off-chip access, not in uncore energy
};

} // namespace stacknoc::mem

#endif // STACKNOC_MEM_TECH_HH
