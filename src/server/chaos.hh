/**
 * @file
 * Seed-deterministic failure injection for the campaign fleet
 * (`stacknoc_serve --chaos SPEC [--chaos-seed N]`), off by default.
 * The server validates the spec at startup (malformed = exit 2 with
 * the grammar) and forwards it verbatim to every worker it spawns;
 * the injection itself happens worker-side, where the failures are
 * real — a chaos kill is a genuine SIGKILL mid-phase, not a simulated
 * flag — so the recovery machinery under test is the production path.
 *
 * Grammar (comma-separated key=value, probabilities in [0,1]):
 *
 *     kill-worker=P    SIGKILL the worker halfway through the
 *                      measured phase of a job
 *     corrupt-ckpt=P   flip one payload byte of the warm checkpoint
 *                      the worker just published
 *     slow-worker=P    stall mid-measure (kSlowStallMs) so a
 *                      --job-deadline-sec guard fires
 *
 * Determinism: every draw is keyed by (chaos seed, job id, attempt,
 * site) through SplitMix64, so a given campaign replays identically —
 * and a retried attempt re-draws, which is what lets a killed job
 * succeed on retry. Chaos never touches simulated state: a surviving
 * job's stats_digest is identical to an undisturbed run by the
 * determinism contract, which tests/test_server_chaos.py pins.
 */

#ifndef STACKNOC_SERVER_CHAOS_HH
#define STACKNOC_SERVER_CHAOS_HH

#include <cstdint>
#include <string>

namespace stacknoc::server {

struct ChaosSpec
{
    double killWorker = 0.0;  //!< P(SIGKILL mid-measure) per attempt
    double corruptCkpt = 0.0; //!< P(corrupt just-published checkpoint)
    double slowWorker = 0.0;  //!< P(stall mid-measure) per attempt
    std::uint64_t seed = 1;

    bool any() const
    {
        return killWorker > 0.0 || corruptCkpt > 0.0 || slowWorker > 0.0;
    }
};

/** Stall length of a slow-worker injection, milliseconds. */
constexpr int kSlowStallMs = 3000;

/** Draw sites, part of every draw key. */
enum class ChaosSite : std::uint64_t
{
    KillWorker = 1,
    CorruptCkpt = 2,
    SlowWorker = 3,
};

/**
 * Parse the `--chaos` grammar into @p out (seed untouched). @return
 * empty string on success, else a one-line reason; the caller prints
 * the grammar and exits 2.
 */
std::string parseChaosSpec(const std::string &spec, ChaosSpec &out);

/** The one-line grammar, for usage and error messages. */
const char *chaosGrammar();

/**
 * Deterministic Bernoulli draw for @p site of job @p jobId, attempt
 * @p attempt: true with probability @p p under the spec's seed.
 */
bool chaosDraw(const ChaosSpec &spec, ChaosSite site,
               std::uint64_t jobId, int attempt, double p);

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_CHAOS_HH
