/**
 * @file
 * The campaign-server wire protocol: newline-delimited JSON objects
 * over a Unix-domain stream socket (NDJSON both ways).
 *
 * Client -> server commands (one object per line):
 *
 *     {"cmd":"run", <JobRequest members>}
 *     {"cmd":"status"}
 *     {"cmd":"shutdown"}
 *
 * Server -> client events:
 *
 *     {"event":"accepted","id":N,"cache":"hit"|"miss","key":"0x..."}
 *     {"event":"interval","id":N,"cycle":C,"mean_ipc":...,
 *      "avg_network_latency":...}            (streamed during the run)
 *     {"event":"result","id":N,"cached":B,"key":"0x...","data":{...}}
 *     {"event":"error","id":N,"reason":"..."}
 *     {"event":"status", ...}    {"event":"bye"}
 *
 * The result cache is keyed by cacheKeyDigest(): an FNV-1a over the
 * canonical request rendering (see cacheKeyString) — the full warm
 * configuration plus measured cycles, interval period, engine knobs
 * and the protocol schema version. Identical requests are served from
 * cache without re-simulation; the determinism contract guarantees the
 * cached stats are exactly what a re-run would produce.
 */

#ifndef STACKNOC_SERVER_PROTOCOL_HH
#define STACKNOC_SERVER_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "system/cmp_system.hh"
#include "telemetry/json.hh"

namespace stacknoc::server {

/** Bumped whenever the request grammar or result payload changes
 *  incompatibly; part of the cache key, so stale entries self-expire. */
constexpr int kProtocolVersion = 1;

/** One scenario-run request (the "run" command's payload). */
struct JobRequest
{
    std::string scenario = "MRAM-4TSB-WB";
    int regions = -1; //!< -1 keeps the scenario's default
    std::vector<std::string> apps{"tpcc"};
    std::uint64_t seed = 1;
    Cycle warmup = 3000;
    Cycle cycles = 20000;
    int meshWidth = 8;
    int meshHeight = 8;
    int threads = 1;
    bool elide = true;
    Cycle interval = 0; //!< interval-event period; 0 streams nothing
    std::string faultSpec; //!< --fault-spec grammar; empty = clean
    bool realTags = false;
};

/**
 * Fill @p out from the members of @p v (unknown members are ignored,
 * "cmd"/"id" included). @return empty string on success, else a
 * one-line reason.
 */
std::string parseJobRequest(const telemetry::JsonValue &v,
                            JobRequest &out);

/** Emit @p req's members into an already-open JSON object. */
void writeJobRequestMembers(telemetry::JsonWriter &w,
                            const JobRequest &req);

/**
 * Resolve @p req into a full SystemConfig (scenario lookup, app
 * round-robin expansion, fault-spec parse). @return empty string on
 * success, else a one-line reason.
 */
std::string buildConfig(const JobRequest &req, system::SystemConfig &cfg);

/** The canonical cache-key rendering (documented in docs/SERVER.md). */
std::string cacheKeyString(const JobRequest &req);

/** FNV-1a digest of cacheKeyString — the result-cache key. */
std::uint64_t cacheKeyDigest(const JobRequest &req);

/** Render any parsed JsonValue back to compact JSON. */
void writeJsonValue(telemetry::JsonWriter &w,
                    const telemetry::JsonValue &v);
std::string jsonValueToString(const telemetry::JsonValue &v);

/** "0x%016x" rendering used for keys and digests on the wire. */
std::string hexKey(std::uint64_t v);

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_PROTOCOL_HH
