/**
 * @file
 * The resident campaign server behind tools/stacknoc_serve.
 *
 * Accepts NDJSON commands on a Unix-domain stream socket (see
 * server/protocol.hh for the grammar), schedules "run" requests over a
 * persistent pool of worker processes, streams each job's interval
 * events back to the submitting client, and caches completed results
 * keyed by the full-config digest: resubmitting an identical request
 * is served from memory without re-simulation, which the determinism
 * contract makes exact, not approximate.
 *
 * Warm-state reuse happens inside the workers (see server/worker.hh):
 * requests that share a warm configuration — same scenario/seed/
 * warm-up, any engine knobs or measured length — skip warm-up via the
 * shared checkpoint directory. With --ckpt-cap-bytes the server keeps
 * that directory under an LRU byte cap.
 *
 * Self-healing (docs/RESILIENCE.md "Fleet tier"): with --store-dir the
 * result cache is backed by a durable on-disk store (ResultStore) and
 * reloaded on startup, so a restarted server serves prior results
 * byte-identically. A job whose worker dies — signal, nonzero exit,
 * pipe EOF — or exceeds --job-deadline-sec is re-dispatched up to
 * --job-retries times with exponential backoff, the final attempt
 * forced cold in case the warm checkpoint itself is the poison; the
 * client still sees exactly one result or one final error carrying the
 * attempt history. --max-queue bounds the queue, shedding load with a
 * structured retry_after_ms error (HTTP 503), and SIGTERM drains
 * gracefully: finish accepted jobs, seal the store, reject new
 * submissions. --chaos injects worker-side failures to prove all of
 * this (see server/chaos.hh).
 *
 * Fleet observability (docs/SERVER.md "Observability"): a
 * MetricsRegistry counts jobs, queueing, cache, checkpoint, store,
 * retry and worker health; an EventLog (--log-json) records every
 * job's lifecycle as NDJSON; and an optional HTTP front end (--http
 * PORT) serves GET /metrics (Prometheus text exposition), GET /status
 * (JSON) and POST /run (JobRequest JSON) to off-host clients beside
 * the socket. All of it is observer-only with respect to simulation:
 * the workers' result payloads and stats digests are byte-identical
 * with every observability feature on or off.
 *
 * Single-threaded: one poll() loop owns the listeners, every client
 * connection, every worker pipe and the signal self-pipe. Workers are
 * separate processes, so the loop only shuttles lines; a worker crash
 * retries its job and the worker is respawned.
 */

#ifndef STACKNOC_SERVER_SERVER_HH
#define STACKNOC_SERVER_SERVER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include <sys/types.h>

#include "server/chaos.hh"
#include "server/metrics.hh"
#include "server/oblog.hh"
#include "server/protocol.hh"
#include "server/result_store.hh"

namespace stacknoc::server {

/** Human-facing server version, reported in status and /metrics. */
constexpr const char *kServerVersion = "1.2";

class CampaignServer
{
  public:
    struct Options
    {
        std::string socketPath;
        int workers = 1;
        /** Warm-checkpoint directory ("" disables warm reuse). */
        std::string ckptDir;
        /** LRU byte cap on the checkpoint dir (0 = unbounded). */
        std::uint64_t ckptCapBytes = 0;
        /** Executable to spawn workers from (this binary). */
        std::string workerExe;
        /** TCP port for the HTTP front end (-1 off, 0 ephemeral). */
        int httpPort = -1;
        /** Job-lifecycle NDJSON log path ("" disables). */
        std::string logJsonPath;
        /** Log rotation cap in bytes (0 = EventLog default). */
        std::uint64_t logRotateBytes = 0;
        /** Durable result store directory ("" disables). */
        std::string storeDir;
        /** Queue bound; submissions beyond it are shed (0 = none). */
        int maxQueue = 0;
        /** Re-dispatches after a worker death or deadline kill. */
        int jobRetries = 2;
        /** Base retry backoff, doubled per retry. */
        int jobBackoffMs = 200;
        /** Per-attempt wall deadline; 0 disables the watchdog. */
        int jobDeadlineSec = 0;
        /** Failure injection (off unless --chaos was given). */
        ChaosSpec chaos;
    };

    explicit CampaignServer(Options opt);
    ~CampaignServer();

    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /** Bind the socket(s) and spawn the worker pool. */
    bool start(std::string &err);

    /** Serve until a shutdown command. @return process exit code. */
    int run();

    /** Actual HTTP port after start() (-1 when disabled). */
    int httpPort() const { return httpPort_; }

  private:
    enum class Transport { Unix, Http };

    struct Client
    {
        int fd = -1;
        std::string inBuf;
    };
    struct HttpClient
    {
        int fd = -1;
        std::string inBuf;
        bool jobPending = false; //!< response deferred to job end
    };
    struct Worker
    {
        pid_t pid = -1;
        int toFd = -1;   //!< server -> worker stdin
        int fromFd = -1; //!< worker stdout -> server
        std::string outBuf;
        bool busy = false;
        std::uint64_t jobId = 0;
        std::uint64_t busySinceUs = 0; //!< monoUs() at dispatch
        std::uint64_t busyAccumUs = 0; //!< total busy time, past jobs
        bool deadlineKilled = false;   //!< killed by the job watchdog
    };
    struct Job
    {
        std::uint64_t id = 0;
        Transport transport = Transport::Unix;
        int clientFd = -1;
        std::uint64_t key = 0;
        JobRequest req;
        int attempt = 1;
        bool forceCold = false; //!< final attempt skips warm restore
        /** One failure reason per exhausted attempt. */
        std::vector<std::string> history;
        std::uint64_t submitUs = 0;    //!< monoUs() at submission
        std::uint64_t dispatchUs = 0;  //!< monoUs() at dispatch
        std::uint64_t notBeforeUs = 0; //!< retry backoff gate
        std::uint64_t deadlineUs = 0;  //!< watchdog kill time (0 none)
    };

    bool spawnWorker(Worker &w, std::string &err);
    void dispatchJobs();
    void handleClientLine(Client &c, const std::string &line);
    void handleWorkerLine(Worker &w, const std::string &line);
    void handleHttpClient(HttpClient &h);
    void handleHttpRequest(HttpClient &h, const std::string &method,
                           const std::string &path,
                           const std::string &body);
    /** Validate+enqueue one run request. Shared by socket and HTTP. */
    void submitRun(const telemetry::JsonValue &doc, Transport transport,
                   int clientFd);
    void finishHttpJob(int fd, int status, const std::string &body);
    void sendToClient(int fd, const std::string &line);
    void sendRaw(int fd, const std::string &bytes);
    void closeClient(int fd);
    void closeHttpClient(int fd);
    void killWorkers();
    void onWorkerDeath(Worker &w);

    /** The NDJSON line dispatched to a worker for @p job. */
    std::string workerLineFor(const Job &job) const;
    /** Retry @p job after @p reason, or fail it for good. */
    void failAttempt(Job &&job, const std::string &reason);
    /** Emit the final error (with attempt history) for @p job. */
    void finalFail(Job &&job, const std::string &reason);
    /** SIGKILL workers whose job passed its deadline. */
    void checkDeadlines();
    /** poll() timeout to the next backoff or deadline (-1 = none). */
    int pollTimeoutMs() const;
    /** Stop accepting jobs; run() exits once the queue drains. */
    void beginDrain();

    /** Refresh point-in-time gauges before a scrape or status. */
    void refreshGauges();
    std::string statusJson();
    std::string renderMetrics();
    void enforceCkptCap();

    /** Microseconds since start() on the steady clock. */
    std::uint64_t monoUs() const;

    Options opt_;
    int listenFd_ = -1;
    int httpListenFd_ = -1;
    int httpPort_ = -1;
    int sigFd_ = -1; //!< read end of the SIGTERM self-pipe
    std::vector<Worker> workers_;
    std::map<int, Client> clients_;
    std::map<int, HttpClient> httpClients_;
    std::deque<Job> queue_;
    /** In-flight jobs by id (owner lookup for worker events). */
    std::map<std::uint64_t, Job> inflight_;
    /** Completed results: cache key digest -> result "data" JSON. */
    std::map<std::uint64_t, std::string> cache_;
    std::uint64_t cacheBytes_ = 0;
    std::uint64_t nextJobId_ = 1;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t retried_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t deadlineKills_ = 0;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t respawns_ = 0;
    bool shutdown_ = false;
    bool draining_ = false;
    std::chrono::steady_clock::time_point startTp_{};

    ResultStore store_;
    MetricsRegistry metrics_;
    EventLog log_;
};

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_SERVER_HH
