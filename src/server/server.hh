/**
 * @file
 * The resident campaign server behind tools/stacknoc_serve.
 *
 * Accepts NDJSON commands on a Unix-domain stream socket (see
 * server/protocol.hh for the grammar), schedules "run" requests over a
 * persistent pool of worker processes, streams each job's interval
 * events back to the submitting client, and caches completed results
 * keyed by the full-config digest: resubmitting an identical request
 * is served from memory without re-simulation, which the determinism
 * contract makes exact, not approximate.
 *
 * Warm-state reuse happens inside the workers (see server/worker.hh):
 * requests that share a warm configuration — same scenario/seed/
 * warm-up, any engine knobs or measured length — skip warm-up via the
 * shared checkpoint directory.
 *
 * Single-threaded: one poll() loop owns the listener, every client
 * connection and every worker pipe. Workers are separate processes, so
 * the loop only shuttles lines; a worker crash fails its job with an
 * "error" event and the worker is respawned.
 */

#ifndef STACKNOC_SERVER_SERVER_HH
#define STACKNOC_SERVER_SERVER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include <sys/types.h>

namespace stacknoc::server {

class CampaignServer
{
  public:
    struct Options
    {
        std::string socketPath;
        int workers = 1;
        /** Warm-checkpoint directory ("" disables warm reuse). */
        std::string ckptDir;
        /** Executable to spawn workers from (this binary). */
        std::string workerExe;
    };

    explicit CampaignServer(Options opt);
    ~CampaignServer();

    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /** Bind the socket and spawn the worker pool. */
    bool start(std::string &err);

    /** Serve until a shutdown command. @return process exit code. */
    int run();

  private:
    struct Client
    {
        int fd = -1;
        std::string inBuf;
    };
    struct Worker
    {
        pid_t pid = -1;
        int toFd = -1;   //!< server -> worker stdin
        int fromFd = -1; //!< worker stdout -> server
        std::string outBuf;
        bool busy = false;
        std::uint64_t jobId = 0;
    };
    struct Job
    {
        std::uint64_t id = 0;
        int clientFd = -1;
        std::uint64_t key = 0;
        std::string workerLine;
    };

    bool spawnWorker(Worker &w, std::string &err);
    void dispatchJobs();
    void handleClientLine(Client &c, const std::string &line);
    void handleWorkerLine(Worker &w, const std::string &line);
    void sendToClient(int fd, const std::string &line);
    void closeClient(int fd);
    void killWorkers();

    Options opt_;
    int listenFd_ = -1;
    std::vector<Worker> workers_;
    std::map<int, Client> clients_;
    std::deque<Job> queue_;
    /** In-flight jobs by id (owner lookup for worker events). */
    std::map<std::uint64_t, Job> inflight_;
    /** Completed results: cache key digest -> result "data" JSON. */
    std::map<std::uint64_t, std::string> cache_;
    std::uint64_t nextJobId_ = 1;
    std::uint64_t completed_ = 0;
    std::uint64_t cacheHits_ = 0;
    bool shutdown_ = false;
};

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_SERVER_HH
