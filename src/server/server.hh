/**
 * @file
 * The resident campaign server behind tools/stacknoc_serve.
 *
 * Accepts NDJSON commands on a Unix-domain stream socket (see
 * server/protocol.hh for the grammar), schedules "run" requests over a
 * persistent pool of worker processes, streams each job's interval
 * events back to the submitting client, and caches completed results
 * keyed by the full-config digest: resubmitting an identical request
 * is served from memory without re-simulation, which the determinism
 * contract makes exact, not approximate.
 *
 * Warm-state reuse happens inside the workers (see server/worker.hh):
 * requests that share a warm configuration — same scenario/seed/
 * warm-up, any engine knobs or measured length — skip warm-up via the
 * shared checkpoint directory. With --ckpt-cap-bytes the server keeps
 * that directory under an LRU byte cap.
 *
 * Fleet observability (docs/SERVER.md "Observability"): a
 * MetricsRegistry counts jobs, queueing, cache, checkpoint and worker
 * health; an EventLog (--log-json) records every job's lifecycle as
 * NDJSON; and an optional HTTP front end (--http PORT) serves
 * GET /metrics (Prometheus text exposition), GET /status (JSON) and
 * POST /run (JobRequest JSON) to off-host clients beside the socket.
 * All of it is observer-only with respect to simulation: the workers'
 * result payloads and stats digests are byte-identical with every
 * observability feature on or off.
 *
 * Single-threaded: one poll() loop owns the listeners, every client
 * connection and every worker pipe. Workers are separate processes, so
 * the loop only shuttles lines; a worker crash fails its job with an
 * "error" event and the worker is respawned.
 */

#ifndef STACKNOC_SERVER_SERVER_HH
#define STACKNOC_SERVER_SERVER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include <sys/types.h>

#include "server/metrics.hh"
#include "server/oblog.hh"

namespace stacknoc::server {

/** Human-facing server version, reported in status and /metrics. */
constexpr const char *kServerVersion = "1.1";

class CampaignServer
{
  public:
    struct Options
    {
        std::string socketPath;
        int workers = 1;
        /** Warm-checkpoint directory ("" disables warm reuse). */
        std::string ckptDir;
        /** LRU byte cap on the checkpoint dir (0 = unbounded). */
        std::uint64_t ckptCapBytes = 0;
        /** Executable to spawn workers from (this binary). */
        std::string workerExe;
        /** TCP port for the HTTP front end (-1 off, 0 ephemeral). */
        int httpPort = -1;
        /** Job-lifecycle NDJSON log path ("" disables). */
        std::string logJsonPath;
        /** Log rotation cap in bytes (0 = EventLog default). */
        std::uint64_t logRotateBytes = 0;
    };

    explicit CampaignServer(Options opt);
    ~CampaignServer();

    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /** Bind the socket(s) and spawn the worker pool. */
    bool start(std::string &err);

    /** Serve until a shutdown command. @return process exit code. */
    int run();

    /** Actual HTTP port after start() (-1 when disabled). */
    int httpPort() const { return httpPort_; }

  private:
    enum class Transport { Unix, Http };

    struct Client
    {
        int fd = -1;
        std::string inBuf;
    };
    struct HttpClient
    {
        int fd = -1;
        std::string inBuf;
        bool jobPending = false; //!< response deferred to job end
    };
    struct Worker
    {
        pid_t pid = -1;
        int toFd = -1;   //!< server -> worker stdin
        int fromFd = -1; //!< worker stdout -> server
        std::string outBuf;
        bool busy = false;
        std::uint64_t jobId = 0;
        std::uint64_t busySinceUs = 0; //!< monoUs() at dispatch
        std::uint64_t busyAccumUs = 0; //!< total busy time, past jobs
    };
    struct Job
    {
        std::uint64_t id = 0;
        Transport transport = Transport::Unix;
        int clientFd = -1;
        std::uint64_t key = 0;
        std::string workerLine;
        std::uint64_t submitUs = 0;   //!< monoUs() at submission
        std::uint64_t dispatchUs = 0; //!< monoUs() at dispatch
    };

    bool spawnWorker(Worker &w, std::string &err);
    void dispatchJobs();
    void handleClientLine(Client &c, const std::string &line);
    void handleWorkerLine(Worker &w, const std::string &line);
    void handleHttpClient(HttpClient &h);
    void handleHttpRequest(HttpClient &h, const std::string &method,
                           const std::string &path,
                           const std::string &body);
    /** Validate+enqueue one run request. Shared by socket and HTTP. */
    void submitRun(const telemetry::JsonValue &doc, Transport transport,
                   int clientFd);
    void finishHttpJob(int fd, int status, const std::string &body);
    void sendToClient(int fd, const std::string &line);
    void sendRaw(int fd, const std::string &bytes);
    void closeClient(int fd);
    void closeHttpClient(int fd);
    void killWorkers();
    void onWorkerDeath(Worker &w);

    /** Refresh point-in-time gauges before a scrape or status. */
    void refreshGauges();
    std::string statusJson();
    std::string renderMetrics();
    void enforceCkptCap();

    /** Microseconds since start() on the steady clock. */
    std::uint64_t monoUs() const;

    Options opt_;
    int listenFd_ = -1;
    int httpListenFd_ = -1;
    int httpPort_ = -1;
    std::vector<Worker> workers_;
    std::map<int, Client> clients_;
    std::map<int, HttpClient> httpClients_;
    std::deque<Job> queue_;
    /** In-flight jobs by id (owner lookup for worker events). */
    std::map<std::uint64_t, Job> inflight_;
    /** Completed results: cache key digest -> result "data" JSON. */
    std::map<std::uint64_t, std::string> cache_;
    std::uint64_t cacheBytes_ = 0;
    std::uint64_t nextJobId_ = 1;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t respawns_ = 0;
    bool shutdown_ = false;
    std::chrono::steady_clock::time_point startTp_{};

    MetricsRegistry metrics_;
    EventLog log_;
};

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_SERVER_HH
