/**
 * @file
 * Blocking client-side connection to a stacknoc_serve socket.
 *
 * Thin line-oriented wrapper over a Unix-domain stream socket: send
 * one NDJSON command per sendLine(), read one server event per
 * readLine(). Used by tools/stacknoc_client and by stacknoc_sweep's
 * --server mode.
 */

#ifndef STACKNOC_SERVER_CLIENT_HH
#define STACKNOC_SERVER_CLIENT_HH

#include <string>

namespace stacknoc::server {

class Connection
{
  public:
    Connection() = default;
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Connect to the Unix socket at @p path. */
    bool connectTo(const std::string &path, std::string &err);

    /**
     * connectTo with up to @p retries re-attempts on refusal or a
     * missing socket (exponential backoff from @p backoffMs), so
     * clients ride out a server restart instead of failing on the
     * first ECONNREFUSED. Non-transient errors fail immediately.
     */
    bool connectWithRetry(const std::string &path, int retries,
                          int backoffMs, std::string &err);

    /** Send @p line plus a trailing newline. */
    bool sendLine(const std::string &line, std::string &err);

    /**
     * Block until one full line arrives. @return false on EOF or
     * error (distinguish via @p err: empty on clean EOF).
     */
    bool readLine(std::string &line, std::string &err);

    void close();
    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    int lastErrno_ = 0; //!< errno of the last failed connectTo()
    std::string buf_;
};

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_CLIENT_HH
