#include "server/client.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace stacknoc::server {

Connection::~Connection() { close(); }

void
Connection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

bool
Connection::connectTo(const std::string &path, std::string &err)
{
    close();
    lastErrno_ = 0;
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        lastErrno_ = errno;
        err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        close();
        return false;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        lastErrno_ = errno;
        err = "connect '" + path + "': " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Connection::connectWithRetry(const std::string &path, int retries,
                             int backoffMs, std::string &err)
{
    int delayMs = backoffMs > 0 ? backoffMs : 1;
    for (int attempt = 0;; ++attempt) {
        if (connectTo(path, err))
            return true;
        // Only a server that is down or restarting is worth waiting
        // for: the socket file not yet bound (ENOENT), nobody
        // listening (ECONNREFUSED), or a backlog spike (EAGAIN).
        const bool transient = lastErrno_ == ENOENT ||
                               lastErrno_ == ECONNREFUSED ||
                               lastErrno_ == EAGAIN;
        if (!transient || attempt >= retries)
            return false;
        ::usleep(static_cast<useconds_t>(delayMs) * 1000);
        if (delayMs < 30000)
            delayMs *= 2;
    }
}

bool
Connection::sendLine(const std::string &line, std::string &err)
{
    if (fd_ < 0) {
        err = "not connected";
        return false;
    }
    const std::string msg = line + "\n";
    std::size_t off = 0;
    while (off < msg.size()) {
        const ssize_t n =
            ::write(fd_, msg.data() + off, msg.size() - off);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            err = std::string("write: ") + std::strerror(errno);
            close();
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
Connection::readLine(std::string &line, std::string &err)
{
    err.clear();
    while (true) {
        const std::size_t pos = buf_.find('\n');
        if (pos != std::string::npos) {
            line = buf_.substr(0, pos);
            buf_.erase(0, pos + 1);
            return true;
        }
        if (fd_ < 0)
            return false; // clean EOF already seen
        char chunk[65536];
        const ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0)
            err = std::string("read: ") + std::strerror(errno);
        const bool partial = !buf_.empty();
        if (partial) {
            line = buf_;
            buf_.clear();
        }
        close();
        if (partial && err.empty())
            return true;
        return false;
    }
}

} // namespace stacknoc::server
