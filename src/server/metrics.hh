/**
 * @file
 * Fleet-level metrics for the campaign server: the registry behind
 * `GET /metrics` and the `status` command.
 *
 * A MetricsRegistry is a small, ordered catalogue of named metric
 * families — monotonic counters, settable gauges, and log2-bucketed
 * histograms (stats::Histogram, the same type the simulator's
 * stats::Group uses) — each optionally split into labelled series
 * (e.g. `worker="3"`, `phase="measure"`). It renders itself as
 * Prometheus text exposition format v0.0.4.
 *
 * Lock-free single-writer by construction: the CampaignServer's one
 * poll loop is the only thread that ever touches the registry, so the
 * mutators are plain stores — no atomics, no TickLog deferral, no
 * observable cost when nobody scrapes. The simulation itself is never
 * instrumented here; workers are separate processes and the registry
 * only counts what crosses the server's file descriptors, which is
 * what keeps fleet observability observer-only with respect to
 * simulated state.
 */

#ifndef STACKNOC_SERVER_METRICS_HH
#define STACKNOC_SERVER_METRICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "sim/stats.hh"

namespace stacknoc::server {

class MetricsRegistry
{
  public:
    /** A settable instantaneous value (queue depth, cache bytes...). */
    class Gauge
    {
      public:
        void set(double v) { value_ = v; }
        void add(double d) { value_ += d; }
        double value() const { return value_; }

      private:
        double value_ = 0.0;
    };

    /**
     * Find or create the @p labels series of counter family @p name.
     * @p labels is the rendered label body without braces — `""` for an
     * unlabelled series, `worker="0"` / `phase="measure",...` otherwise
     * (values pre-escaped by the caller; series render in label order).
     * References remain valid for the registry's lifetime.
     */
    stats::Counter &counter(const std::string &name,
                            const std::string &help,
                            const std::string &labels = "");

    /** Find or create a gauge series (same contract as counter()). */
    Gauge &gauge(const std::string &name, const std::string &help,
                 const std::string &labels = "");

    /**
     * Find or create a log2 histogram series. Sample integer values
     * (the server records durations in microseconds); the exposition
     * emits cumulative `_bucket{le=...}` lines on the log2 bucket upper
     * bounds plus `_sum` and `_count`.
     */
    stats::Histogram &histogram(const std::string &name,
                                const std::string &help,
                                const std::string &labels = "");

    /** Prometheus text exposition format v0.0.4. */
    void renderPrometheus(std::ostream &os) const;

    /** Number of individual series (counters + gauges + histograms). */
    std::size_t seriesCount() const;

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Family
    {
        std::string help;
        Kind kind = Kind::Counter;
        // Keyed by the rendered label body ("" = unlabelled).
        std::map<std::string, stats::Counter> counters;
        std::map<std::string, Gauge> gauges;
        std::map<std::string, stats::Histogram> histograms;
    };

    Family &family(const std::string &name, const std::string &help,
                   Kind kind);

    /** Ordered by name so scrapes are stable line-for-line. */
    std::map<std::string, Family> families_;
};

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_METRICS_HH
