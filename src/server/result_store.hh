/**
 * @file
 * The campaign server's durable result store: an on-disk, append-only
 * journal of completed result payloads keyed by the result-cache key
 * digest (`stacknoc_serve --store-dir D`), loaded on startup so a
 * restarted server serves byte-identical cached payloads without
 * re-simulating.
 *
 * Layout on disk: a directory of sealed segments
 * `results-<NNNNNN>.seg` plus one active journal `results.wal`.
 * Records are appended to the journal and flushed per append; when the
 * journal passes the segment cap (or on clean shutdown, see seal())
 * it is published as the next sealed segment by an atomic rename, so a
 * reader never observes a half-written *segment* — only the journal
 * can have a torn tail, and the record format makes that detectable.
 *
 * Record layout (all integers little-endian):
 *
 *     offset  size  field
 *     0       4     record magic "SNRC"
 *     4       4     record schema version (kStoreVersion)
 *     8       8     cache key digest (cacheKeyDigest of the request)
 *     16      4     payload size in bytes
 *     20      8     FNV-1a of the payload
 *     28      ...   payload (the result "data" JSON, verbatim bytes)
 *
 * Recovery contract: loading NEVER fails the server. A record with an
 * unknown (future) schema version or a payload checksum mismatch is
 * skipped individually (the self-delimiting header survives, so the
 * reader re-syncs on the next record); a truncated or garbage tail
 * ends that file's scan. Every skip is counted and reported with a
 * one-line reason; a corrupt journal tail is additionally truncated
 * back to the last valid record so subsequent appends extend a clean
 * file. The version policy matches the checkpoint container: bump
 * kStoreVersion on any incompatible payload change, never migrate —
 * results are re-creatable by re-running the job.
 */

#ifndef STACKNOC_SERVER_RESULT_STORE_HH
#define STACKNOC_SERVER_RESULT_STORE_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

namespace stacknoc::server {

class ResultStore
{
  public:
    /** Bumped on any incompatible record or payload change. */
    static constexpr std::uint32_t kStoreVersion = 1;

    /** Journal size that triggers sealing into a segment. */
    static constexpr std::uint64_t kDefaultSegmentCapBytes = 8ull << 20;

    /** Load/recovery accounting, surfaced as server metrics. */
    struct Stats
    {
        std::uint64_t recoveredRecords = 0; //!< loaded on open()
        std::uint64_t skippedRecords = 0;   //!< bad version/checksum/tail
        std::uint64_t segments = 0;         //!< sealed segments on disk
        std::uint64_t appends = 0;          //!< successful append() calls
        std::uint64_t appendFailures = 0;   //!< failed append() calls
        std::uint64_t bytes = 0;            //!< journal + segment bytes
    };

    ResultStore() = default;
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Open the store rooted at @p dir (created if missing), replay
     * every sealed segment then the journal through @p onRecord
     * (oldest first; the caller deduplicates — the server's cache
     * keeps the first payload per key), and leave the journal open
     * for appends. Recovery never fails: corrupt records and torn
     * tails are skipped and counted (stats().skippedRecords) with a
     * one-line reason on stderr. @return false with @p err only when
     * the directory itself cannot be created or the journal cannot be
     * opened for writing.
     */
    bool open(const std::string &dir,
              const std::function<void(std::uint64_t key,
                                       const std::string &payload)>
                  &onRecord,
              std::string &err);

    bool enabled() const { return !dir_.empty(); }

    /**
     * Append one record and flush it. Failures (disk full, journal
     * unwritable) are counted, reported once per failure on stderr,
     * and never propagate — the in-memory cache still holds the
     * result. Rolls the journal into a sealed segment past the cap.
     * @return true when the record reached the journal.
     */
    bool append(std::uint64_t key, const std::string &payload);

    /**
     * Publish the active journal as a sealed segment (atomic rename)
     * and start a fresh one. Called on graceful shutdown/drain; a
     * no-op when the journal is empty or the store is disabled.
     */
    void seal();

    const Stats &stats() const { return stats_; }

    /** Segment-cap override for tests (0 keeps the default). */
    void setSegmentCapBytes(std::uint64_t cap);

  private:
    bool openJournal(std::string &err);
    /** @return bytes of valid prefix in @p path after replay. */
    std::uint64_t loadFile(const std::string &path,
                           const std::function<void(
                               std::uint64_t, const std::string &)>
                               &onRecord);

    std::string dir_;
    std::string journalPath_;
    std::ofstream journal_;
    std::uint64_t journalBytes_ = 0;
    std::uint64_t nextSegment_ = 1;
    std::uint64_t segmentCapBytes_ = kDefaultSegmentCapBytes;
    Stats stats_;
};

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_RESULT_STORE_HH
