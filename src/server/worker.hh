/**
 * @file
 * The campaign worker: one simulation job at a time, checkpoint-warmed.
 *
 * A worker is a child process of stacknoc_serve (spawned with
 * `stacknoc_serve --worker --ckpt-dir D`). It reads one job object per
 * line on stdin — a JobRequest plus the server-assigned "id", the
 * attempt number, and an optional "cold" override — runs the
 * simulation, and emits NDJSON events on stdout:
 *
 *     {"event":"interval","id":N,...}   while measuring (if requested)
 *     {"event":"note","id":N,"kind":"...","reason":"..."}  advisory
 *     {"event":"result","id":N,"data":{...}}   on success
 *     {"event":"error","id":N,"reason":"..."}  on failure
 *
 * Warm-state reuse: before warming up, the worker opens
 * `ckpt_<warm-key>.bin` in the checkpoint directory (warm key =
 * snapshot::warmConfigDigest, which excludes engine knobs and measured
 * cycles). On a hit it restores and skips warm-up entirely; on a miss
 * it warms up and writes the checkpoint via atomic rename, so later
 * sweep points sharing the warm configuration start warm. The restored
 * run is bit-identical to the uninterrupted one by the snapshot
 * contract, so reuse never changes results.
 *
 * The open is attempted directly — never gated on an exists() probe —
 * because the server's LRU eviction (`--ckpt-cap-bytes`) can unlink
 * the file between any probe and the open. ENOENT is a normal cache
 * miss; any other open failure, or a restore that fails after a
 * successful open (truncated or corrupt checkpoint), falls back to a
 * cold warm-up and reports a "warm_fallback" note so the server can
 * count it. A `"cold":true` job member (set by the server on a job's
 * final retry) skips the restore entirely and republishes a fresh
 * checkpoint, healing a poisoned warm cache entry.
 *
 * Chaos: when the server was started with `--chaos`, the spec is
 * passed to every worker and injected here — see chaos.hh. The kill
 * and stall sites sit halfway through the measured phase (after the
 * checkpoint publish), so a retried attempt can restore warm state
 * and prove digest parity.
 *
 * Workers are processes, not threads, because the packet-id streams
 * are process-global: one simulation per address space keeps job
 * results independent of scheduling.
 */

#ifndef STACKNOC_SERVER_WORKER_HH
#define STACKNOC_SERVER_WORKER_HH

#include <iosfwd>
#include <string>

#include "server/chaos.hh"

namespace stacknoc::server {

/**
 * Run the worker loop until EOF on @p in. Events go to @p out, one
 * JSON object per line, flushed per event.
 * @param ckptDir directory for warm checkpoints ("" disables reuse).
 * @param chaos failure-injection spec (defaults to no injection).
 * @return process exit code (0 on clean EOF).
 */
int runWorkerLoop(std::istream &in, std::ostream &out,
                  const std::string &ckptDir,
                  const ChaosSpec &chaos = ChaosSpec{});

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_WORKER_HH
