/**
 * @file
 * The campaign worker: one simulation job at a time, checkpoint-warmed.
 *
 * A worker is a child process of stacknoc_serve (spawned with
 * `stacknoc_serve --worker --ckpt-dir D`). It reads one job object per
 * line on stdin — a JobRequest plus the server-assigned "id" — runs the
 * simulation, and emits NDJSON events on stdout:
 *
 *     {"event":"interval","id":N,...}   while measuring (if requested)
 *     {"event":"result","id":N,"data":{...}}   on success
 *     {"event":"error","id":N,"reason":"..."}  on failure
 *
 * Warm-state reuse: before warming up, the worker looks for
 * `ckpt_<warm-key>.bin` in the checkpoint directory (warm key =
 * snapshot::warmConfigDigest, which excludes engine knobs and measured
 * cycles). On a hit it restores and skips warm-up entirely; on a miss
 * it warms up and writes the checkpoint via atomic rename, so later
 * sweep points sharing the warm configuration start warm. The restored
 * run is bit-identical to the uninterrupted one by the snapshot
 * contract, so reuse never changes results.
 *
 * Workers are processes, not threads, because the packet-id streams
 * are process-global: one simulation per address space keeps job
 * results independent of scheduling.
 */

#ifndef STACKNOC_SERVER_WORKER_HH
#define STACKNOC_SERVER_WORKER_HH

#include <iosfwd>
#include <string>

namespace stacknoc::server {

/**
 * Run the worker loop until EOF on @p in. Events go to @p out, one
 * JSON object per line, flushed per event.
 * @param ckptDir directory for warm checkpoints ("" disables reuse).
 * @return process exit code (0 on clean EOF).
 */
int runWorkerLoop(std::istream &in, std::ostream &out,
                  const std::string &ckptDir);

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_WORKER_HH
