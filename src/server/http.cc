#include "server/http.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace stacknoc::server {

namespace {

/** Header block cap; a request line + headers beyond this is hostile. */
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
/** Body cap: JobRequest JSON is tiny; 1 MiB is generous. */
constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

bool
iequalsPrefix(const std::string &line, const char *prefix)
{
    std::size_t i = 0;
    for (; prefix[i] != '\0'; ++i) {
        if (i >= line.size() ||
            std::tolower(static_cast<unsigned char>(line[i])) !=
                std::tolower(static_cast<unsigned char>(prefix[i])))
            return false;
    }
    return true;
}

} // namespace

int
parseHttpRequest(std::string &buf, HttpRequest &req, std::string &err)
{
    const std::size_t headerEnd = buf.find("\r\n\r\n");
    if (headerEnd == std::string::npos) {
        if (buf.size() > kMaxHeaderBytes) {
            err = "header block too large";
            return -1;
        }
        return 0;
    }
    const std::string head = buf.substr(0, headerEnd);
    const std::size_t bodyStart = headerEnd + 4;

    // Request line: METHOD SP TARGET SP HTTP/1.x
    const std::size_t lineEnd = head.find("\r\n");
    const std::string reqLine =
        lineEnd == std::string::npos ? head : head.substr(0, lineEnd);
    const std::size_t sp1 = reqLine.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : reqLine.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        reqLine.compare(sp2 + 1, 5, "HTTP/") != 0) {
        err = "malformed request line";
        return -1;
    }
    req.method = reqLine.substr(0, sp1);
    req.path = reqLine.substr(sp1 + 1, sp2 - sp1 - 1);

    // Headers: only Content-Length matters.
    std::size_t contentLength = 0;
    std::size_t pos = lineEnd == std::string::npos ? head.size()
                                                   : lineEnd + 2;
    while (pos < head.size()) {
        std::size_t next = head.find("\r\n", pos);
        if (next == std::string::npos)
            next = head.size();
        const std::string line = head.substr(pos, next - pos);
        if (iequalsPrefix(line, "content-length:")) {
            const char *v = line.c_str() + 15;
            contentLength = static_cast<std::size_t>(
                std::strtoull(v, nullptr, 10));
        }
        pos = next + 2;
    }
    if (contentLength > kMaxBodyBytes) {
        err = "body too large";
        return -1;
    }
    if (buf.size() - bodyStart < contentLength)
        return 0;

    req.body = buf.substr(bodyStart, contentLength);
    buf.erase(0, bodyStart + contentLength);
    return 1;
}

const char *
httpStatusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 500:
        return "Internal Server Error";
    case 503:
        return "Service Unavailable";
    default:
        return "Unknown";
    }
}

std::string
httpResponse(int status, const std::string &contentType,
             const std::string &body)
{
    char head[256];
    std::snprintf(head, sizeof head,
                  "HTTP/1.1 %d %s\r\n"
                  "Content-Type: %s\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n"
                  "\r\n",
                  status, httpStatusText(status), contentType.c_str(),
                  body.size());
    return head + body;
}

} // namespace stacknoc::server
