/**
 * @file
 * The campaign server's job-lifecycle event log (`stacknoc_serve
 * --log-json FILE`): one schema-versioned NDJSON object per line,
 * wall- and monotonically-stamped, capturing every job's path through
 * the fleet — submission, dispatch, per-phase durations, completion or
 * failure — plus worker spawns/deaths and checkpoint evictions.
 *
 * Line shape (members beyond these are event-specific):
 *
 *     {"v":1,"ts_ms":<wall ms since epoch>,"mono_us":<us since the
 *      log opened, steady clock>,"event":"<kind>", ...}
 *
 * `mono_us` is the timeline tools key on (tools/serve_trace.py renders
 * it directly as Chrome-trace microseconds); `ts_ms` is for humans and
 * cross-host correlation. The schema version `v` bumps on any
 * incompatible member change; new optional members may appear without
 * a bump.
 *
 * Rotation: when the file exceeds the byte cap after a write, it is
 * renamed to `FILE.1` (replacing any previous `FILE.1`) and a fresh
 * file is started with a `log_rotated` event, so at most two
 * generations exist on disk.
 */

#ifndef STACKNOC_SERVER_OBLOG_HH
#define STACKNOC_SERVER_OBLOG_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "telemetry/json.hh"

namespace stacknoc::server {

class EventLog
{
  public:
    /** Bumped on any incompatible change to existing line members. */
    static constexpr int kSchemaVersion = 1;

    /** Default rotation cap: 16 MiB per generation. */
    static constexpr std::uint64_t kDefaultRotateBytes = 16ull << 20;

    EventLog() = default;

    /**
     * Open (truncating) @p path. @p rotateBytes of 0 keeps the default
     * cap. @return false with a one-line @p err on failure.
     */
    bool open(const std::string &path, std::uint64_t rotateBytes,
              std::string &err);

    bool enabled() const { return out_.is_open(); }

    /**
     * Append one event line; @p fields writes the event-specific
     * members into the already-open object. No-op when disabled, so
     * call sites need no guards.
     */
    void event(const char *kind,
               const std::function<void(telemetry::JsonWriter &)>
                   &fields = {});

    /** Microseconds since open() on the steady clock. */
    std::uint64_t monoUs() const;

  private:
    void rotate();

    std::string path_;
    std::ofstream out_;
    std::uint64_t rotateBytes_ = kDefaultRotateBytes;
    std::uint64_t written_ = 0;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_OBLOG_HH
