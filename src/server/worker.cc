#include "server/worker.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "noc/packet.hh"
#include "server/protocol.hh"
#include "snapshot/checkpoint.hh"
#include "snapshot/state_io.hh"
#include "system/cmp_system.hh"

namespace stacknoc::server {

namespace {

using telemetry::JsonValue;
using telemetry::JsonWriter;

void
emit(std::ostream &out, const std::string &line)
{
    out << line << "\n";
    out.flush();
}

/** Wall microseconds between two steady-clock marks. */
std::uint64_t
usBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(b - a)
            .count());
}

void
emitError(std::ostream &out, std::uint64_t id, const std::string &reason)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("event", "error");
    w.kv("id", id);
    w.kv("reason", reason);
    w.endObject();
    emit(out, os.str());
}

void
emitNote(std::ostream &out, std::uint64_t id, const std::string &kind,
         const std::string &reason)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("event", "note");
    w.kv("id", id);
    w.kv("kind", kind);
    w.kv("reason", reason);
    w.endObject();
    emit(out, os.str());
}

/**
 * corrupt-ckpt chaos: flip one payload byte of the checkpoint at
 * @p path. Offset 44 is the first payload byte (past the container
 * header), so the flip lands under the payload FNV and a later
 * restore fails the checksum — exercising the warm-fallback path, not
 * a container-format error.
 */
void
corruptCheckpointPayload(const std::filesystem::path &path)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec || size <= 44)
        return;
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!f)
        return;
    const std::streamoff pos =
        44 + static_cast<std::streamoff>((size - 44) / 2);
    f.seekg(pos);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xff);
    f.seekp(pos);
    f.write(&b, 1);
}

/** Run one job; emits interval/note/result/error events itself. */
void
runJob(std::ostream &out, std::uint64_t id, const JobRequest &req,
       const std::string &ckptDir, const ChaosSpec &chaos, int attempt,
       bool forceCold)
{
    system::SystemConfig cfg;
    if (const std::string err = buildConfig(req, cfg); !err.empty()) {
        emitError(out, id, err);
        return;
    }

    noc::resetPacketIds();
    auto sysPtr = std::make_unique<system::CmpSystem>(cfg);

    const std::uint64_t warmKey =
        snapshot::warmConfigDigest(cfg, req.warmup);
    const std::filesystem::path ckptPath =
        ckptDir.empty()
            ? std::filesystem::path{}
            : std::filesystem::path(ckptDir) /
                  ("ckpt_" + hexKey(warmKey) + ".bin");

    // Per-phase wall timings travel in a "timing" sibling of the result
    // "data" member: the data payload stays deterministic (and cacheable
    // byte-for-byte) while the server folds the timings into its phase
    // histograms and lifecycle log.
    using Clock = std::chrono::steady_clock;
    std::uint64_t restoreUs = 0, warmUs = 0, measureUs = 0,
                  publishUs = 0;

    bool warmRestored = false;
    bool warmSaved = false;
    Cycle restoredCycle = 0;
    std::string fallbackReason;
    if (!ckptPath.empty() && !forceCold) {
        // Open directly instead of probing with exists(): LRU eviction
        // can unlink the checkpoint at any moment, and a probe would
        // only widen that race. ENOENT is an ordinary miss.
        const auto t0 = Clock::now();
        errno = 0;
        std::ifstream in(ckptPath, std::ios::binary);
        if (in) {
            const std::string err = snapshot::restoreCheckpoint(
                *sysPtr, in, warmKey, &restoredCycle);
            if (err.empty()) {
                warmRestored = true;
                // Reuse counts as recency for the server's LRU cap.
                snapshot::touchCheckpoint(ckptPath.string());
            } else {
                // A stale, truncated, or corrupt warm cache entry must
                // never fail the job — rebuild and warm up from cold.
                fallbackReason = err;
                sysPtr.reset();
                noc::resetPacketIds();
                sysPtr = std::make_unique<system::CmpSystem>(cfg);
            }
        } else if (errno != 0 && errno != ENOENT) {
            fallbackReason = std::string("checkpoint open failed: ") +
                             std::strerror(errno);
        }
        restoreUs = usBetween(t0, Clock::now());
    }
    if (!fallbackReason.empty())
        emitNote(out, id, "warm_fallback", fallbackReason);
    system::CmpSystem &sys = *sysPtr;
    if (!warmRestored) {
        const auto t0 = Clock::now();
        sys.warmupBegin();
        sys.run(req.warmup);
        sys.warmupEnd();
        warmUs = usBetween(t0, Clock::now());
        const auto tPub = Clock::now();
        if (!ckptPath.empty()) {
            const std::filesystem::path tmp =
                ckptPath.string() + ".tmp." +
                std::to_string(static_cast<long>(::getpid()));
            std::ofstream o(tmp, std::ios::binary);
            if (o) {
                snapshot::saveCheckpoint(sys, o, warmKey);
                o.close();
                std::error_code ec;
                std::filesystem::rename(tmp, ckptPath, ec);
                warmSaved = !ec;
                if (ec)
                    std::filesystem::remove(tmp, ec);
            }
            if (warmSaved &&
                chaosDraw(chaos, ChaosSite::CorruptCkpt, id, attempt,
                          chaos.corruptCkpt))
                corruptCheckpointPayload(ckptPath);
        }
        publishUs = usBetween(tPub, Clock::now());
    }

    // Chaos draws are fixed before the measured phase so the kill/stall
    // site (halfway through) is deterministic for a given attempt.
    const bool chaosKill = chaosDraw(chaos, ChaosSite::KillWorker, id,
                                     attempt, chaos.killWorker);
    const bool chaosSlow =
        !chaosKill && chaosDraw(chaos, ChaosSite::SlowWorker, id,
                                attempt, chaos.slowWorker);
    bool chaosFired = false;

    // Measured phase, chunked at the interval period so progress
    // streams out while the run is in flight. Chunked run() calls are
    // equivalent to one call — the engine has no run()-boundary state.
    const auto tMeasure = Clock::now();
    Cycle done = 0;
    const Cycle step = req.interval > 0 ? req.interval : req.cycles;
    while (done < req.cycles) {
        const Cycle n = std::min<Cycle>(step, req.cycles - done);
        sys.run(n);
        done += n;
        if (!chaosFired && done * 2 >= req.cycles) {
            chaosFired = true;
            if (chaosKill) {
                out.flush();
                ::raise(SIGKILL); // a real mid-phase crash, no cleanup
            }
            if (chaosSlow)
                ::usleep(static_cast<useconds_t>(kSlowStallMs) * 1000);
        }
        if (req.interval > 0 && done < req.cycles) {
            const auto m = sys.metrics();
            std::ostringstream os;
            JsonWriter w(os);
            w.beginObject();
            w.kv("event", "interval");
            w.kv("id", id);
            w.kv("cycle",
                 static_cast<std::uint64_t>(sys.simulator().now()));
            w.kv("measured",
                 static_cast<std::uint64_t>(done));
            w.kv("mean_ipc", m.meanIpc());
            w.kv("avg_network_latency", m.avgNetworkLatency);
            w.endObject();
            emit(out, os.str());
        }
    }
    sys.finalizeTelemetry();
    measureUs = usBetween(tMeasure, Clock::now());

    const auto m = sys.metrics();
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("event", "result");
    w.kv("id", id);
    w.key("timing");
    w.beginObject();
    w.kv("restore_us", restoreUs);
    w.kv("warm_us", warmUs);
    w.kv("measure_us", measureUs);
    w.kv("publish_us", publishUs);
    w.kv("end_cycle", static_cast<std::uint64_t>(sys.simulator().now()));
    w.endObject();
    w.key("data");
    w.beginObject();
    w.kv("scenario", cfg.scenario.name);
    {
        std::string joined;
        for (const auto &a : req.apps) {
            if (!joined.empty())
                joined += ",";
            joined += a;
        }
        w.kv("apps", joined);
    }
    w.kv("seed", req.seed);
    w.kv("warmup", static_cast<std::uint64_t>(req.warmup));
    w.kv("cycles", static_cast<std::uint64_t>(req.cycles));
    w.kv("threads", req.threads);
    w.kv("elide", req.elide);
    w.kv("mean_ipc", m.meanIpc());
    w.kv("min_ipc", m.minIpc());
    w.kv("instruction_throughput", m.instructionThroughput());
    w.kv("avg_network_latency", m.avgNetworkLatency);
    w.kv("p50_network_latency", m.p50NetworkLatency);
    w.kv("p95_network_latency", m.p95NetworkLatency);
    w.kv("p99_network_latency", m.p99NetworkLatency);
    w.kv("avg_bank_queue_latency", m.avgBankQueueLatency);
    w.kv("avg_uncore_latency", m.avgUncoreLatency);
    w.kv("total_energy_uj", m.energy.totalUJ());
    w.kv("wall_seconds", sys.wallSeconds());
    w.kv("ticks_per_sec", sys.ticksPerSecond());
    w.kv("active_fraction", sys.engineActiveFraction());
    w.kv("stats_digest", hexKey(snapshot::statsDigest(sys)));
    w.kv("warm_restored", warmRestored);
    w.kv("warm_saved", warmSaved);
    if (warmRestored)
        w.kv("restored_from_cycle",
             static_cast<std::uint64_t>(restoredCycle));
    w.endObject();
    w.endObject();
    emit(out, os.str());
}

} // namespace

int
runWorkerLoop(std::istream &in, std::ostream &out,
              const std::string &ckptDir, const ChaosSpec &chaos)
{
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string perr;
        const auto doc = JsonValue::parse(line, &perr);
        if (!doc) {
            emitError(out, 0, "bad job json: " + perr);
            continue;
        }
        std::uint64_t id = 0;
        if (const JsonValue *m = doc->find("id");
            m != nullptr && m->isNumber())
            id = static_cast<std::uint64_t>(m->asDouble());
        int attempt = 1;
        if (const JsonValue *m = doc->find("attempt");
            m != nullptr && m->isNumber())
            attempt = static_cast<int>(m->asDouble());
        bool forceCold = false;
        if (const JsonValue *m = doc->find("cold");
            m != nullptr && m->type() == JsonValue::Type::Bool)
            forceCold = m->asBool();
        JobRequest req;
        if (const std::string err = parseJobRequest(*doc, req);
            !err.empty()) {
            emitError(out, id, err);
            continue;
        }
        try {
            runJob(out, id, req, ckptDir, chaos, attempt, forceCold);
        } catch (const std::exception &e) {
            emitError(out, id, std::string("job failed: ") + e.what());
        }
    }
    return 0;
}

} // namespace stacknoc::server
