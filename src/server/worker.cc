#include "server/worker.hh"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "noc/packet.hh"
#include "server/protocol.hh"
#include "snapshot/checkpoint.hh"
#include "snapshot/state_io.hh"
#include "system/cmp_system.hh"

namespace stacknoc::server {

namespace {

using telemetry::JsonValue;
using telemetry::JsonWriter;

void
emit(std::ostream &out, const std::string &line)
{
    out << line << "\n";
    out.flush();
}

/** Wall microseconds between two steady-clock marks. */
std::uint64_t
usBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(b - a)
            .count());
}

void
emitError(std::ostream &out, std::uint64_t id, const std::string &reason)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("event", "error");
    w.kv("id", id);
    w.kv("reason", reason);
    w.endObject();
    emit(out, os.str());
}

/** Run one job; emits interval/result/error events itself. */
void
runJob(std::ostream &out, std::uint64_t id, const JobRequest &req,
       const std::string &ckptDir)
{
    system::SystemConfig cfg;
    if (const std::string err = buildConfig(req, cfg); !err.empty()) {
        emitError(out, id, err);
        return;
    }

    noc::resetPacketIds();
    auto sysPtr = std::make_unique<system::CmpSystem>(cfg);

    const std::uint64_t warmKey =
        snapshot::warmConfigDigest(cfg, req.warmup);
    const std::filesystem::path ckptPath =
        ckptDir.empty()
            ? std::filesystem::path{}
            : std::filesystem::path(ckptDir) /
                  ("ckpt_" + hexKey(warmKey) + ".bin");

    // Per-phase wall timings travel in a "timing" sibling of the result
    // "data" member: the data payload stays deterministic (and cacheable
    // byte-for-byte) while the server folds the timings into its phase
    // histograms and lifecycle log.
    using Clock = std::chrono::steady_clock;
    std::uint64_t restoreUs = 0, warmUs = 0, measureUs = 0,
                  publishUs = 0;

    bool warmRestored = false;
    bool warmSaved = false;
    Cycle restoredCycle = 0;
    if (!ckptPath.empty() && std::filesystem::exists(ckptPath)) {
        const auto t0 = Clock::now();
        std::ifstream in(ckptPath, std::ios::binary);
        if (in) {
            const std::string err = snapshot::restoreCheckpoint(
                *sysPtr, in, warmKey, &restoredCycle);
            if (err.empty()) {
                warmRestored = true;
                // Reuse counts as recency for the server's LRU cap.
                snapshot::touchCheckpoint(ckptPath.string());
            } else {
                // A stale or corrupt warm cache entry must never fail
                // the job — rebuild the system and warm up from cold.
                sysPtr.reset();
                noc::resetPacketIds();
                sysPtr = std::make_unique<system::CmpSystem>(cfg);
            }
        }
        restoreUs = usBetween(t0, Clock::now());
    }
    system::CmpSystem &sys = *sysPtr;
    if (!warmRestored) {
        const auto t0 = Clock::now();
        sys.warmupBegin();
        sys.run(req.warmup);
        sys.warmupEnd();
        warmUs = usBetween(t0, Clock::now());
        const auto tPub = Clock::now();
        if (!ckptPath.empty()) {
            const std::filesystem::path tmp =
                ckptPath.string() + ".tmp." +
                std::to_string(static_cast<long>(::getpid()));
            std::ofstream o(tmp, std::ios::binary);
            if (o) {
                snapshot::saveCheckpoint(sys, o, warmKey);
                o.close();
                std::error_code ec;
                std::filesystem::rename(tmp, ckptPath, ec);
                warmSaved = !ec;
                if (ec)
                    std::filesystem::remove(tmp, ec);
            }
        }
        publishUs = usBetween(tPub, Clock::now());
    }

    // Measured phase, chunked at the interval period so progress
    // streams out while the run is in flight. Chunked run() calls are
    // equivalent to one call — the engine has no run()-boundary state.
    const auto tMeasure = Clock::now();
    Cycle done = 0;
    const Cycle step = req.interval > 0 ? req.interval : req.cycles;
    while (done < req.cycles) {
        const Cycle n = std::min<Cycle>(step, req.cycles - done);
        sys.run(n);
        done += n;
        if (req.interval > 0 && done < req.cycles) {
            const auto m = sys.metrics();
            std::ostringstream os;
            JsonWriter w(os);
            w.beginObject();
            w.kv("event", "interval");
            w.kv("id", id);
            w.kv("cycle",
                 static_cast<std::uint64_t>(sys.simulator().now()));
            w.kv("measured",
                 static_cast<std::uint64_t>(done));
            w.kv("mean_ipc", m.meanIpc());
            w.kv("avg_network_latency", m.avgNetworkLatency);
            w.endObject();
            emit(out, os.str());
        }
    }
    sys.finalizeTelemetry();
    measureUs = usBetween(tMeasure, Clock::now());

    const auto m = sys.metrics();
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("event", "result");
    w.kv("id", id);
    w.key("timing");
    w.beginObject();
    w.kv("restore_us", restoreUs);
    w.kv("warm_us", warmUs);
    w.kv("measure_us", measureUs);
    w.kv("publish_us", publishUs);
    w.kv("end_cycle", static_cast<std::uint64_t>(sys.simulator().now()));
    w.endObject();
    w.key("data");
    w.beginObject();
    w.kv("scenario", cfg.scenario.name);
    {
        std::string joined;
        for (const auto &a : req.apps) {
            if (!joined.empty())
                joined += ",";
            joined += a;
        }
        w.kv("apps", joined);
    }
    w.kv("seed", req.seed);
    w.kv("warmup", static_cast<std::uint64_t>(req.warmup));
    w.kv("cycles", static_cast<std::uint64_t>(req.cycles));
    w.kv("threads", req.threads);
    w.kv("elide", req.elide);
    w.kv("mean_ipc", m.meanIpc());
    w.kv("min_ipc", m.minIpc());
    w.kv("instruction_throughput", m.instructionThroughput());
    w.kv("avg_network_latency", m.avgNetworkLatency);
    w.kv("p50_network_latency", m.p50NetworkLatency);
    w.kv("p95_network_latency", m.p95NetworkLatency);
    w.kv("p99_network_latency", m.p99NetworkLatency);
    w.kv("avg_bank_queue_latency", m.avgBankQueueLatency);
    w.kv("avg_uncore_latency", m.avgUncoreLatency);
    w.kv("total_energy_uj", m.energy.totalUJ());
    w.kv("wall_seconds", sys.wallSeconds());
    w.kv("ticks_per_sec", sys.ticksPerSecond());
    w.kv("active_fraction", sys.engineActiveFraction());
    w.kv("stats_digest", hexKey(snapshot::statsDigest(sys)));
    w.kv("warm_restored", warmRestored);
    w.kv("warm_saved", warmSaved);
    if (warmRestored)
        w.kv("restored_from_cycle",
             static_cast<std::uint64_t>(restoredCycle));
    w.endObject();
    w.endObject();
    emit(out, os.str());
}

} // namespace

int
runWorkerLoop(std::istream &in, std::ostream &out,
              const std::string &ckptDir)
{
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string perr;
        const auto doc = JsonValue::parse(line, &perr);
        if (!doc) {
            emitError(out, 0, "bad job json: " + perr);
            continue;
        }
        std::uint64_t id = 0;
        if (const JsonValue *m = doc->find("id");
            m != nullptr && m->isNumber())
            id = static_cast<std::uint64_t>(m->asDouble());
        JobRequest req;
        if (const std::string err = parseJobRequest(*doc, req);
            !err.empty()) {
            emitError(out, id, err);
            continue;
        }
        try {
            runJob(out, id, req, ckptDir);
        } catch (const std::exception &e) {
            emitError(out, id, std::string("job failed: ") + e.what());
        }
    }
    return 0;
}

} // namespace stacknoc::server
