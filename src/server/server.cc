#include "server/server.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "server/protocol.hh"
#include "telemetry/json.hh"

namespace stacknoc::server {

using telemetry::JsonValue;
using telemetry::JsonWriter;

namespace {

std::string
eventLine(const std::function<void(JsonWriter &)> &body)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    body(w);
    w.endObject();
    return os.str();
}

} // namespace

CampaignServer::CampaignServer(Options opt) : opt_(std::move(opt)) {}

CampaignServer::~CampaignServer()
{
    killWorkers();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (auto &[fd, c] : clients_)
        ::close(fd);
    if (!opt_.socketPath.empty())
        ::unlink(opt_.socketPath.c_str());
}

bool
CampaignServer::spawnWorker(Worker &w, std::string &err)
{
    int toPipe[2];   // server writes -> worker stdin
    int fromPipe[2]; // worker stdout -> server reads
    if (::pipe(toPipe) != 0) {
        err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    if (::pipe(fromPipe) != 0) {
        err = std::string("pipe: ") + std::strerror(errno);
        ::close(toPipe[0]);
        ::close(toPipe[1]);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        err = std::string("fork: ") + std::strerror(errno);
        ::close(toPipe[0]);
        ::close(toPipe[1]);
        ::close(fromPipe[0]);
        ::close(fromPipe[1]);
        return false;
    }
    if (pid == 0) {
        // Worker child: stdin/stdout are the job pipes; stderr passes
        // through to the server's stderr for diagnostics.
        ::dup2(toPipe[0], STDIN_FILENO);
        ::dup2(fromPipe[1], STDOUT_FILENO);
        ::close(toPipe[0]);
        ::close(toPipe[1]);
        ::close(fromPipe[0]);
        ::close(fromPipe[1]);
        if (listenFd_ >= 0)
            ::close(listenFd_);
        ::execl(opt_.workerExe.c_str(), opt_.workerExe.c_str(),
                "--worker", "--ckpt-dir", opt_.ckptDir.c_str(),
                static_cast<char *>(nullptr));
        std::fprintf(stderr, "stacknoc_serve: exec '%s' failed: %s\n",
                     opt_.workerExe.c_str(), std::strerror(errno));
        ::_exit(127);
    }
    ::close(toPipe[0]);
    ::close(fromPipe[1]);
    w.pid = pid;
    w.toFd = toPipe[1];
    w.fromFd = fromPipe[0];
    w.outBuf.clear();
    w.busy = false;
    w.jobId = 0;
    return true;
}

bool
CampaignServer::start(std::string &err)
{
    ::signal(SIGPIPE, SIG_IGN);

    if (!opt_.ckptDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt_.ckptDir, ec);
        if (ec) {
            err = "cannot create checkpoint dir '" + opt_.ckptDir +
                  "': " + ec.message();
            return false;
        }
    }

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.socketPath.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + opt_.socketPath;
        return false;
    }
    std::strncpy(addr.sun_path, opt_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(opt_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = "bind '" + opt_.socketPath +
              "': " + std::strerror(errno);
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        err = std::string("listen: ") + std::strerror(errno);
        return false;
    }

    workers_.resize(static_cast<std::size_t>(opt_.workers));
    for (auto &w : workers_)
        if (!spawnWorker(w, err))
            return false;
    return true;
}

void
CampaignServer::sendToClient(int fd, const std::string &line)
{
    if (clients_.find(fd) == clients_.end())
        return; // submitter went away; drop the event
    std::string msg = line + "\n";
    std::size_t off = 0;
    while (off < msg.size()) {
        const ssize_t n =
            ::write(fd, msg.data() + off, msg.size() - off);
        if (n <= 0) {
            closeClient(fd);
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

void
CampaignServer::closeClient(int fd)
{
    const auto it = clients_.find(fd);
    if (it == clients_.end())
        return;
    ::close(fd);
    clients_.erase(it);
    // Orphan any queued/in-flight jobs: they still run (to fill the
    // cache) but their events have nowhere to go.
    for (auto &j : queue_)
        if (j.clientFd == fd)
            j.clientFd = -1;
    for (auto &[id, j] : inflight_)
        if (j.clientFd == fd)
            j.clientFd = -1;
}

void
CampaignServer::dispatchJobs()
{
    for (auto &w : workers_) {
        if (queue_.empty())
            return;
        if (w.busy || w.pid < 0)
            continue;
        Job job = std::move(queue_.front());
        queue_.pop_front();
        const std::string line = job.workerLine + "\n";
        std::size_t off = 0;
        bool failed = false;
        while (off < line.size()) {
            const ssize_t n =
                ::write(w.toFd, line.data() + off, line.size() - off);
            if (n <= 0) {
                failed = true;
                break;
            }
            off += static_cast<std::size_t>(n);
        }
        if (failed) {
            sendToClient(job.clientFd,
                         eventLine([&](JsonWriter &jw) {
                             jw.kv("event", "error");
                             jw.kv("id", job.id);
                             jw.kv("reason", "worker pipe write failed");
                         }));
            continue;
        }
        w.busy = true;
        w.jobId = job.id;
        inflight_.emplace(job.id, std::move(job));
    }
}

void
CampaignServer::handleClientLine(Client &c, const std::string &line)
{
    std::string perr;
    const auto doc = JsonValue::parse(line, &perr);
    if (!doc || !doc->isObject()) {
        sendToClient(c.fd, eventLine([&](JsonWriter &w) {
                         w.kv("event", "error");
                         w.kv("id", std::uint64_t{0});
                         w.kv("reason", "bad command json: " + perr);
                     }));
        return;
    }
    const JsonValue *cmd = doc->find("cmd");
    const std::string cmdName =
        cmd != nullptr && cmd->isString() ? cmd->asString() : "";

    if (cmdName == "status") {
        int busy = 0;
        for (const auto &w : workers_)
            busy += w.busy ? 1 : 0;
        sendToClient(c.fd, eventLine([&](JsonWriter &w) {
                         w.kv("event", "status");
                         w.kv("workers",
                              static_cast<int>(workers_.size()));
                         w.kv("busy", busy);
                         w.kv("queued",
                              static_cast<std::uint64_t>(queue_.size()));
                         w.kv("cache_entries",
                              static_cast<std::uint64_t>(cache_.size()));
                         w.kv("cache_hits", cacheHits_);
                         w.kv("completed", completed_);
                     }));
        return;
    }
    if (cmdName == "shutdown") {
        sendToClient(c.fd, eventLine([&](JsonWriter &w) {
                         w.kv("event", "bye");
                     }));
        shutdown_ = true;
        return;
    }
    if (cmdName != "run") {
        sendToClient(c.fd, eventLine([&](JsonWriter &w) {
                         w.kv("event", "error");
                         w.kv("id", std::uint64_t{0});
                         w.kv("reason",
                              "unknown cmd '" + cmdName +
                                  "' (run|status|shutdown)");
                     }));
        return;
    }

    JobRequest req;
    if (const std::string err = parseJobRequest(*doc, req);
        !err.empty()) {
        sendToClient(c.fd, eventLine([&](JsonWriter &w) {
                         w.kv("event", "error");
                         w.kv("id", std::uint64_t{0});
                         w.kv("reason", err);
                     }));
        return;
    }
    // Resolve the config now so bad requests fail at submission, not
    // in a worker.
    {
        system::SystemConfig cfg;
        if (const std::string err = buildConfig(req, cfg);
            !err.empty()) {
            sendToClient(c.fd, eventLine([&](JsonWriter &w) {
                             w.kv("event", "error");
                             w.kv("id", std::uint64_t{0});
                             w.kv("reason", err);
                         }));
            return;
        }
    }

    const std::uint64_t id = nextJobId_++;
    const std::uint64_t key = cacheKeyDigest(req);
    const auto cached = cache_.find(key);

    sendToClient(c.fd, eventLine([&](JsonWriter &w) {
                     w.kv("event", "accepted");
                     w.kv("id", id);
                     w.kv("cache",
                          cached != cache_.end() ? "hit" : "miss");
                     w.kv("key", hexKey(key));
                 }));

    if (cached != cache_.end()) {
        ++cacheHits_;
        std::ostringstream os;
        os << "{\"event\":\"result\",\"id\":" << id
           << ",\"cached\":true,\"key\":\"" << hexKey(key)
           << "\",\"data\":" << cached->second << "}";
        sendToClient(c.fd, os.str());
        return;
    }

    Job job;
    job.id = id;
    job.clientFd = c.fd;
    job.key = key;
    {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.kv("id", id);
        writeJobRequestMembers(w, req);
        w.endObject();
        job.workerLine = os.str();
    }
    queue_.push_back(std::move(job));
    dispatchJobs();
}

void
CampaignServer::handleWorkerLine(Worker &w, const std::string &line)
{
    std::string perr;
    const auto doc = JsonValue::parse(line, &perr);
    if (!doc || !doc->isObject()) {
        std::fprintf(stderr,
                     "stacknoc_serve: bad worker line (%s): %s\n",
                     perr.c_str(), line.c_str());
        return;
    }
    const JsonValue *ev = doc->find("event");
    const std::string kind =
        ev != nullptr && ev->isString() ? ev->asString() : "";
    std::uint64_t id = 0;
    if (const JsonValue *m = doc->find("id");
        m != nullptr && m->isNumber())
        id = static_cast<std::uint64_t>(m->asDouble());

    const auto jobIt = inflight_.find(id);
    const int clientFd =
        jobIt != inflight_.end() ? jobIt->second.clientFd : -1;

    if (kind == "interval") {
        sendToClient(clientFd, line);
        return;
    }
    if (kind == "error") {
        sendToClient(clientFd, line);
        // A job-level error ends the job; free the worker.
        if (w.jobId == id) {
            w.busy = false;
            w.jobId = 0;
        }
        inflight_.erase(id);
        dispatchJobs();
        return;
    }
    if (kind == "result") {
        const JsonValue *data = doc->find("data");
        std::string dataStr =
            data != nullptr ? jsonValueToString(*data) : "null";
        std::uint64_t key = jobIt != inflight_.end()
                                ? jobIt->second.key
                                : std::uint64_t{0};
        cache_[key] = dataStr;
        ++completed_;
        {
            std::ostringstream os;
            os << "{\"event\":\"result\",\"id\":" << id
               << ",\"cached\":false,\"key\":\"" << hexKey(key)
               << "\",\"data\":" << dataStr << "}";
            sendToClient(clientFd, os.str());
        }
        if (w.jobId == id) {
            w.busy = false;
            w.jobId = 0;
        }
        inflight_.erase(id);
        dispatchJobs();
        return;
    }
    std::fprintf(stderr, "stacknoc_serve: unknown worker event: %s\n",
                 line.c_str());
}

void
CampaignServer::killWorkers()
{
    for (auto &w : workers_) {
        if (w.toFd >= 0)
            ::close(w.toFd); // EOF ends the worker loop
        if (w.fromFd >= 0)
            ::close(w.fromFd);
        w.toFd = w.fromFd = -1;
    }
    for (auto &w : workers_) {
        if (w.pid > 0) {
            int status = 0;
            ::waitpid(w.pid, &status, 0);
            w.pid = -1;
        }
    }
}

int
CampaignServer::run()
{
    while (!shutdown_) {
        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        for (const auto &w : workers_)
            if (w.fromFd >= 0)
                fds.push_back({w.fromFd, POLLIN, 0});
        for (const auto &[fd, c] : clients_)
            fds.push_back({fd, POLLIN, 0});

        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "stacknoc_serve: poll: %s\n",
                         std::strerror(errno));
            return 1;
        }

        for (const auto &p : fds) {
            if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            if (p.fd == listenFd_) {
                const int cfd = ::accept(listenFd_, nullptr, nullptr);
                if (cfd >= 0)
                    clients_[cfd] = Client{cfd, {}};
                continue;
            }
            // Worker pipe?
            bool isWorker = false;
            for (auto &w : workers_) {
                if (w.fromFd != p.fd)
                    continue;
                isWorker = true;
                char buf[65536];
                const ssize_t n = ::read(p.fd, buf, sizeof buf);
                if (n > 0) {
                    w.outBuf.append(buf, static_cast<std::size_t>(n));
                    std::size_t pos;
                    while ((pos = w.outBuf.find('\n')) !=
                           std::string::npos) {
                        const std::string line = w.outBuf.substr(0, pos);
                        w.outBuf.erase(0, pos + 1);
                        if (!line.empty())
                            handleWorkerLine(w, line);
                    }
                } else {
                    // Worker died. Fail its job, reap, respawn.
                    ::close(w.fromFd);
                    ::close(w.toFd);
                    w.fromFd = w.toFd = -1;
                    int status = 0;
                    ::waitpid(w.pid, &status, 0);
                    w.pid = -1;
                    if (w.busy) {
                        const auto it = inflight_.find(w.jobId);
                        const int cfd = it != inflight_.end()
                                            ? it->second.clientFd
                                            : -1;
                        sendToClient(
                            cfd, eventLine([&](JsonWriter &jw) {
                                jw.kv("event", "error");
                                jw.kv("id", w.jobId);
                                jw.kv("reason",
                                      "worker process died mid-job");
                            }));
                        inflight_.erase(w.jobId);
                        w.busy = false;
                        w.jobId = 0;
                    }
                    std::string err;
                    if (!spawnWorker(w, err))
                        std::fprintf(stderr,
                                     "stacknoc_serve: respawn failed: "
                                     "%s\n",
                                     err.c_str());
                    else
                        dispatchJobs();
                }
                break;
            }
            if (isWorker)
                continue;
            // Client socket.
            const auto it = clients_.find(p.fd);
            if (it == clients_.end())
                continue;
            char buf[65536];
            const ssize_t n = ::read(p.fd, buf, sizeof buf);
            if (n <= 0) {
                closeClient(p.fd);
                continue;
            }
            it->second.inBuf.append(buf, static_cast<std::size_t>(n));
            std::size_t pos;
            while ((pos = it->second.inBuf.find('\n')) !=
                   std::string::npos) {
                const std::string line = it->second.inBuf.substr(0, pos);
                it->second.inBuf.erase(0, pos + 1);
                if (!line.empty())
                    handleClientLine(it->second, line);
                if (shutdown_ ||
                    clients_.find(p.fd) == clients_.end())
                    break;
            }
            if (shutdown_)
                break;
        }
    }
    killWorkers();
    return 0;
}

} // namespace stacknoc::server
