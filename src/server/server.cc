#include "server/server.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "server/http.hh"
#include "server/protocol.hh"
#include "snapshot/checkpoint.hh"
#include "telemetry/json.hh"

namespace stacknoc::server {

using telemetry::JsonValue;
using telemetry::JsonWriter;

namespace {

std::string
eventLine(const std::function<void(JsonWriter &)> &body)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    body(w);
    w.endObject();
    return os.str();
}

std::uint64_t
memberU64(const JsonValue &obj, const char *key)
{
    const JsonValue *m = obj.find(key);
    return m != nullptr && m->isNumber()
               ? static_cast<std::uint64_t>(m->asDouble())
               : 0;
}

bool
memberBool(const JsonValue &obj, const char *key)
{
    const JsonValue *m = obj.find(key);
    return m != nullptr && m->type() == JsonValue::Type::Bool &&
           m->asBool();
}

// Metric family names and help strings, in one place so the catalogue
// in docs/SERVER.md has a single source of truth to mirror.
constexpr const char *kJobsSubmitted = "stacknoc_jobs_submitted_total";
constexpr const char *kJobsCompleted = "stacknoc_jobs_completed_total";
constexpr const char *kJobsFailed = "stacknoc_jobs_failed_total";
constexpr const char *kJobsRejected = "stacknoc_jobs_rejected_total";
constexpr const char *kJobsShed = "stacknoc_jobs_shed_total";
constexpr const char *kJobRetries = "stacknoc_job_retries_total";
constexpr const char *kJobDeadlineKills =
    "stacknoc_job_deadline_kills_total";
constexpr const char *kCacheHits = "stacknoc_cache_hits_total";
constexpr const char *kCacheMisses = "stacknoc_cache_misses_total";
constexpr const char *kCacheEntries = "stacknoc_cache_entries";
constexpr const char *kCacheBytes = "stacknoc_cache_bytes";
constexpr const char *kQueueDepth = "stacknoc_queue_depth";
constexpr const char *kQueueWait = "stacknoc_queue_wait_us";
constexpr const char *kJobPhase = "stacknoc_job_phase_us";
constexpr const char *kSimCycles = "stacknoc_sim_cycles_total";
constexpr const char *kCkptRestores = "stacknoc_ckpt_restores_total";
constexpr const char *kCkptColdWarms =
    "stacknoc_ckpt_cold_warms_total";
constexpr const char *kCkptSaves = "stacknoc_ckpt_saves_total";
constexpr const char *kCkptEvictions = "stacknoc_ckpt_evictions_total";
constexpr const char *kCkptRestoreFallbacks =
    "stacknoc_ckpt_restore_fallbacks_total";
constexpr const char *kCkptBytes = "stacknoc_ckpt_bytes";
constexpr const char *kCkptFiles = "stacknoc_ckpt_files";
constexpr const char *kWorkers = "stacknoc_workers";
constexpr const char *kWorkersBusy = "stacknoc_workers_busy";
constexpr const char *kWorkerRespawns =
    "stacknoc_worker_respawns_total";
constexpr const char *kWorkerBusyFraction =
    "stacknoc_worker_busy_fraction";
constexpr const char *kWorkerJobs = "stacknoc_worker_jobs_total";
constexpr const char *kHttpRequests = "stacknoc_http_requests_total";
constexpr const char *kStoreRecovered =
    "stacknoc_store_recovered_records";
constexpr const char *kStoreSkipped = "stacknoc_store_skipped_records";
constexpr const char *kStoreAppends = "stacknoc_store_appends_total";
constexpr const char *kStoreAppendFailures =
    "stacknoc_store_append_failures_total";
constexpr const char *kStoreSegments = "stacknoc_store_segments";
constexpr const char *kStoreBytes = "stacknoc_store_bytes";
constexpr const char *kUptime = "stacknoc_uptime_seconds";
constexpr const char *kBuildInfo = "stacknoc_build_info";

const char *
helpOf(const char *name)
{
    // One catalogue entry per family; keep alphabetised with the
    // constants above.
    if (name == kJobsSubmitted)
        return "Run requests accepted (cache hits included)";
    if (name == kJobsCompleted)
        return "Jobs completed by a worker";
    if (name == kJobsFailed)
        return "Jobs that ended in a final error (after any retries)";
    if (name == kJobsRejected)
        return "Run requests rejected at submission";
    if (name == kJobsShed)
        return "Run requests shed by admission control (queue full)";
    if (name == kJobRetries)
        return "Job attempts re-dispatched after a worker death or "
               "deadline kill";
    if (name == kJobDeadlineKills)
        return "Workers killed for exceeding the job deadline";
    if (name == kCacheHits)
        return "Submissions served from the result cache";
    if (name == kCacheMisses)
        return "Submissions that required simulation";
    if (name == kCacheEntries)
        return "Entries in the result cache";
    if (name == kCacheBytes)
        return "Bytes of cached result payloads";
    if (name == kQueueDepth)
        return "Jobs waiting for a worker";
    if (name == kQueueWait)
        return "Microseconds jobs waited in queue before dispatch";
    if (name == kJobPhase)
        return "Per-phase job durations in microseconds";
    if (name == kSimCycles)
        return "Measured simulation cycles completed by workers";
    if (name == kCkptRestores)
        return "Jobs that restored a warm checkpoint";
    if (name == kCkptColdWarms)
        return "Jobs that warmed up from cold";
    if (name == kCkptSaves)
        return "Warm checkpoints published by workers";
    if (name == kCkptEvictions)
        return "Warm checkpoints evicted by the LRU byte cap";
    if (name == kCkptRestoreFallbacks)
        return "Warm restores that fell back to a cold warm-up "
               "(evicted or corrupt checkpoint)";
    if (name == kCkptBytes)
        return "Bytes of warm checkpoints on disk";
    if (name == kCkptFiles)
        return "Warm checkpoint files on disk";
    if (name == kWorkers)
        return "Worker pool size";
    if (name == kWorkersBusy)
        return "Workers currently running a job";
    if (name == kWorkerRespawns)
        return "Worker processes respawned after dying";
    if (name == kWorkerBusyFraction)
        return "Fraction of server uptime each worker spent busy";
    if (name == kWorkerJobs)
        return "Jobs dispatched to each worker";
    if (name == kHttpRequests)
        return "HTTP requests by endpoint";
    if (name == kStoreRecovered)
        return "Result-store records recovered at startup";
    if (name == kStoreSkipped)
        return "Result-store records skipped at startup (corrupt, "
               "truncated or unknown version)";
    if (name == kStoreAppends)
        return "Results appended to the durable store";
    if (name == kStoreAppendFailures)
        return "Result-store appends that failed (disk full or "
               "journal unwritable)";
    if (name == kStoreSegments)
        return "Sealed result-store segments on disk";
    if (name == kStoreBytes)
        return "Bytes in the result store (journal + segments)";
    if (name == kUptime)
        return "Seconds since the server started";
    if (name == kBuildInfo)
        return "Constant 1, labelled with version and protocol";
    return "";
}

// SIGTERM self-pipe: the handler only writes one byte; the poll loop
// reads it and starts the graceful drain on the main thread, so no
// server state is ever touched from signal context.
int gSigWriteFd = -1;

void
onSigTerm(int)
{
    if (gSigWriteFd >= 0) {
        const char b = 't';
        [[maybe_unused]] const ssize_t n = ::write(gSigWriteFd, &b, 1);
    }
}

} // namespace

CampaignServer::CampaignServer(Options opt) : opt_(std::move(opt)) {}

CampaignServer::~CampaignServer()
{
    killWorkers();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (httpListenFd_ >= 0)
        ::close(httpListenFd_);
    if (sigFd_ >= 0) {
        ::close(sigFd_);
        if (gSigWriteFd >= 0) {
            ::close(gSigWriteFd);
            gSigWriteFd = -1;
        }
    }
    for (auto &[fd, c] : clients_)
        ::close(fd);
    for (auto &[fd, h] : httpClients_)
        ::close(fd);
    if (!opt_.socketPath.empty())
        ::unlink(opt_.socketPath.c_str());
}

std::uint64_t
CampaignServer::monoUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - startTp_)
            .count());
}

bool
CampaignServer::spawnWorker(Worker &w, std::string &err)
{
    int toPipe[2];   // server writes -> worker stdin
    int fromPipe[2]; // worker stdout -> server reads
    if (::pipe(toPipe) != 0) {
        err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    if (::pipe(fromPipe) != 0) {
        err = std::string("pipe: ") + std::strerror(errno);
        ::close(toPipe[0]);
        ::close(toPipe[1]);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        err = std::string("fork: ") + std::strerror(errno);
        ::close(toPipe[0]);
        ::close(toPipe[1]);
        ::close(fromPipe[0]);
        ::close(fromPipe[1]);
        return false;
    }
    if (pid == 0) {
        // Worker child: stdin/stdout are the job pipes; stderr passes
        // through to the server's stderr for diagnostics.
        ::dup2(toPipe[0], STDIN_FILENO);
        ::dup2(fromPipe[1], STDOUT_FILENO);
        ::close(toPipe[0]);
        ::close(toPipe[1]);
        ::close(fromPipe[0]);
        ::close(fromPipe[1]);
        if (listenFd_ >= 0)
            ::close(listenFd_);
        if (httpListenFd_ >= 0)
            ::close(httpListenFd_);
        if (sigFd_ >= 0)
            ::close(sigFd_);
        if (gSigWriteFd >= 0)
            ::close(gSigWriteFd);
        if (opt_.chaos.any()) {
            // Workers do the injecting; the spec rides the exec line.
            std::string spec;
            if (opt_.chaos.killWorker > 0.0)
                spec += "kill-worker=" +
                        std::to_string(opt_.chaos.killWorker);
            if (opt_.chaos.corruptCkpt > 0.0)
                spec += std::string(spec.empty() ? "" : ",") +
                        "corrupt-ckpt=" +
                        std::to_string(opt_.chaos.corruptCkpt);
            if (opt_.chaos.slowWorker > 0.0)
                spec += std::string(spec.empty() ? "" : ",") +
                        "slow-worker=" +
                        std::to_string(opt_.chaos.slowWorker);
            const std::string seed = std::to_string(opt_.chaos.seed);
            ::execl(opt_.workerExe.c_str(), opt_.workerExe.c_str(),
                    "--worker", "--ckpt-dir", opt_.ckptDir.c_str(),
                    "--chaos", spec.c_str(), "--chaos-seed",
                    seed.c_str(), static_cast<char *>(nullptr));
        } else {
            ::execl(opt_.workerExe.c_str(), opt_.workerExe.c_str(),
                    "--worker", "--ckpt-dir", opt_.ckptDir.c_str(),
                    static_cast<char *>(nullptr));
        }
        std::fprintf(stderr, "stacknoc_serve: exec '%s' failed: %s\n",
                     opt_.workerExe.c_str(), std::strerror(errno));
        ::_exit(127);
    }
    ::close(toPipe[0]);
    ::close(fromPipe[1]);
    w.pid = pid;
    w.toFd = toPipe[1];
    w.fromFd = fromPipe[0];
    w.outBuf.clear();
    w.busy = false;
    w.jobId = 0;
    w.busySinceUs = 0;
    w.deadlineKilled = false;
    const std::size_t idx = static_cast<std::size_t>(&w - workers_.data());
    log_.event("worker_spawned", [&](JsonWriter &jw) {
        jw.kv("worker", static_cast<std::uint64_t>(idx));
        jw.kv("pid", static_cast<std::int64_t>(pid));
    });
    return true;
}

bool
CampaignServer::start(std::string &err)
{
    ::signal(SIGPIPE, SIG_IGN);
    startTp_ = std::chrono::steady_clock::now();

    if (!opt_.ckptDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt_.ckptDir, ec);
        if (ec) {
            err = "cannot create checkpoint dir '" + opt_.ckptDir +
                  "': " + ec.message();
            return false;
        }
    }

    if (!opt_.logJsonPath.empty() &&
        !log_.open(opt_.logJsonPath, opt_.logRotateBytes, err))
        return false;

    if (!opt_.storeDir.empty()) {
        // Replay the durable store into the result cache before any
        // client connects: a restarted server serves prior results
        // byte-identically. emplace keeps the first payload per key,
        // matching the store's oldest-first replay order.
        if (!store_.open(
                opt_.storeDir,
                [&](std::uint64_t key, const std::string &payload) {
                    if (cache_.emplace(key, payload).second)
                        cacheBytes_ += payload.size();
                },
                err))
            return false;
        log_.event("store_opened", [&](JsonWriter &jw) {
            jw.kv("dir", opt_.storeDir);
            jw.kv("recovered", store_.stats().recoveredRecords);
            jw.kv("skipped", store_.stats().skippedRecords);
            jw.kv("segments", store_.stats().segments);
            jw.kv("bytes", store_.stats().bytes);
        });
    }

    // SIGTERM drains gracefully via a self-pipe in the poll set.
    {
        int sp[2];
        if (::pipe(sp) == 0) {
            sigFd_ = sp[0];
            gSigWriteFd = sp[1];
            ::signal(SIGTERM, onSigTerm);
        }
    }

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.socketPath.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + opt_.socketPath;
        return false;
    }
    std::strncpy(addr.sun_path, opt_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(opt_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = "bind '" + opt_.socketPath +
              "': " + std::strerror(errno);
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        err = std::string("listen: ") + std::strerror(errno);
        return false;
    }

    if (opt_.httpPort >= 0) {
        httpListenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (httpListenFd_ < 0) {
            err = std::string("http socket: ") + std::strerror(errno);
            return false;
        }
        const int one = 1;
        ::setsockopt(httpListenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in haddr{};
        haddr.sin_family = AF_INET;
        haddr.sin_addr.s_addr = htonl(INADDR_ANY);
        haddr.sin_port =
            htons(static_cast<std::uint16_t>(opt_.httpPort));
        if (::bind(httpListenFd_,
                   reinterpret_cast<sockaddr *>(&haddr),
                   sizeof haddr) != 0) {
            err = "http bind port " + std::to_string(opt_.httpPort) +
                  ": " + std::strerror(errno);
            return false;
        }
        if (::listen(httpListenFd_, 64) != 0) {
            err = std::string("http listen: ") + std::strerror(errno);
            return false;
        }
        sockaddr_in bound{};
        socklen_t blen = sizeof bound;
        if (::getsockname(httpListenFd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &blen) == 0)
            httpPort_ = static_cast<int>(ntohs(bound.sin_port));
    }

    // Pre-create every metric family so the first scrape already
    // exposes the full catalogue at zero.
    for (const char *name :
         {kJobsSubmitted, kJobsCompleted, kJobsFailed, kJobsRejected,
          kJobsShed, kJobRetries, kJobDeadlineKills, kCacheHits,
          kCacheMisses, kSimCycles, kCkptRestores, kCkptColdWarms,
          kCkptSaves, kCkptEvictions, kCkptRestoreFallbacks,
          kWorkerRespawns})
        metrics_.counter(name, helpOf(name));
    for (const char *name :
         {kCacheEntries, kCacheBytes, kQueueDepth, kCkptBytes,
          kCkptFiles, kWorkers, kWorkersBusy, kUptime})
        metrics_.gauge(name, helpOf(name));
    if (store_.enabled()) {
        for (const char *name : {kStoreAppends, kStoreAppendFailures})
            metrics_.counter(name, helpOf(name));
        for (const char *name : {kStoreRecovered, kStoreSkipped,
                                 kStoreSegments, kStoreBytes})
            metrics_.gauge(name, helpOf(name));
        metrics_.gauge(kStoreRecovered, helpOf(kStoreRecovered))
            .set(static_cast<double>(store_.stats().recoveredRecords));
        metrics_.gauge(kStoreSkipped, helpOf(kStoreSkipped))
            .set(static_cast<double>(store_.stats().skippedRecords));
    }
    metrics_.histogram(kQueueWait, helpOf(kQueueWait));
    for (const char *phase :
         {"restore", "warm", "measure", "publish", "total"})
        metrics_.histogram(kJobPhase, helpOf(kJobPhase),
                           std::string("phase=\"") + phase + "\"");
    for (const char *ep : {"metrics", "status", "run", "other"})
        metrics_.counter(kHttpRequests, helpOf(kHttpRequests),
                         std::string("endpoint=\"") + ep + "\"");
    metrics_
        .gauge(kBuildInfo, helpOf(kBuildInfo),
               std::string("version=\"") + kServerVersion +
                   "\",protocol=\"" +
                   std::to_string(kProtocolVersion) + "\"")
        .set(1.0);

    log_.event("server_start", [&](JsonWriter &jw) {
        jw.kv("version", kServerVersion);
        jw.kv("protocol", kProtocolVersion);
        jw.kv("socket", opt_.socketPath);
        jw.kv("http_port", httpPort_);
        jw.kv("workers", opt_.workers);
        jw.kv("ckpt_dir", opt_.ckptDir);
        jw.kv("ckpt_cap_bytes", opt_.ckptCapBytes);
        jw.kv("store_dir", opt_.storeDir);
        jw.kv("max_queue", opt_.maxQueue);
        jw.kv("job_retries", opt_.jobRetries);
        jw.kv("job_deadline_sec", opt_.jobDeadlineSec);
        jw.kv("chaos", opt_.chaos.any());
    });

    workers_.resize(static_cast<std::size_t>(opt_.workers));
    for (auto &w : workers_)
        if (!spawnWorker(w, err))
            return false;

    // A previous server's leftovers count against the cap immediately.
    enforceCkptCap();
    return true;
}

void
CampaignServer::sendRaw(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n <= 0)
            return;
        off += static_cast<std::size_t>(n);
    }
}

void
CampaignServer::sendToClient(int fd, const std::string &line)
{
    if (clients_.find(fd) == clients_.end())
        return; // submitter went away; drop the event
    std::string msg = line + "\n";
    std::size_t off = 0;
    while (off < msg.size()) {
        const ssize_t n =
            ::write(fd, msg.data() + off, msg.size() - off);
        if (n <= 0) {
            closeClient(fd);
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

void
CampaignServer::closeClient(int fd)
{
    const auto it = clients_.find(fd);
    if (it == clients_.end())
        return;
    ::close(fd);
    clients_.erase(it);
    // Orphan any queued/in-flight jobs: they still run (to fill the
    // cache) but their events have nowhere to go.
    for (auto &j : queue_)
        if (j.transport == Transport::Unix && j.clientFd == fd)
            j.clientFd = -1;
    for (auto &[id, j] : inflight_)
        if (j.transport == Transport::Unix && j.clientFd == fd)
            j.clientFd = -1;
}

void
CampaignServer::closeHttpClient(int fd)
{
    const auto it = httpClients_.find(fd);
    if (it == httpClients_.end())
        return;
    ::close(fd);
    httpClients_.erase(it);
    for (auto &j : queue_)
        if (j.transport == Transport::Http && j.clientFd == fd)
            j.clientFd = -1;
    for (auto &[id, j] : inflight_)
        if (j.transport == Transport::Http && j.clientFd == fd)
            j.clientFd = -1;
}

void
CampaignServer::finishHttpJob(int fd, int status,
                              const std::string &body)
{
    const auto it = httpClients_.find(fd);
    if (it == httpClients_.end())
        return; // requester gave up; the job still filled the cache
    sendRaw(fd, httpResponse(status, "application/json", body));
    closeHttpClient(fd);
}

std::string
CampaignServer::workerLineFor(const Job &job) const
{
    // Rebuilt per dispatch: the attempt number keys the worker's chaos
    // draws, and "cold" rides only the final retry.
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("id", job.id);
    w.kv("attempt", job.attempt);
    if (job.forceCold)
        w.kv("cold", true);
    writeJobRequestMembers(w, job.req);
    w.endObject();
    return os.str();
}

void
CampaignServer::dispatchJobs()
{
    const std::uint64_t ready = monoUs();
    for (auto &w : workers_) {
        if (w.busy || w.pid < 0)
            continue;
        // First job past its backoff gate; retries keep queue order.
        auto jit = queue_.begin();
        for (; jit != queue_.end(); ++jit)
            if (jit->notBeforeUs <= ready)
                break;
        if (jit == queue_.end())
            return;
        Job job = std::move(*jit);
        queue_.erase(jit);
        const std::string line = workerLineFor(job) + "\n";
        std::size_t off = 0;
        bool failed = false;
        while (off < line.size()) {
            const ssize_t n =
                ::write(w.toFd, line.data() + off, line.size() - off);
            if (n <= 0) {
                failed = true;
                break;
            }
            off += static_cast<std::size_t>(n);
        }
        if (failed) {
            failAttempt(std::move(job), "worker pipe write failed");
            continue;
        }
        const std::uint64_t now = monoUs();
        job.dispatchUs = now;
        if (opt_.jobDeadlineSec > 0)
            job.deadlineUs =
                now + static_cast<std::uint64_t>(opt_.jobDeadlineSec) *
                          1000000ull;
        const std::uint64_t wait = now - job.submitUs;
        metrics_.histogram(kQueueWait, helpOf(kQueueWait)).sample(wait);
        const std::size_t idx =
            static_cast<std::size_t>(&w - workers_.data());
        metrics_
            .counter(kWorkerJobs, helpOf(kWorkerJobs),
                     "worker=\"" + std::to_string(idx) + "\"")
            .inc();
        w.busy = true;
        w.jobId = job.id;
        w.busySinceUs = now;
        log_.event("job_dispatched", [&](JsonWriter &jw) {
            jw.kv("id", job.id);
            jw.kv("key", hexKey(job.key));
            jw.kv("worker", static_cast<std::uint64_t>(idx));
            jw.kv("worker_pid", static_cast<std::int64_t>(w.pid));
            jw.kv("queue_wait_us", wait);
            jw.kv("attempt", job.attempt);
            if (job.forceCold)
                jw.kv("cold", true);
        });
        inflight_.emplace(job.id, std::move(job));
    }
}

void
CampaignServer::finalFail(Job &&job, const std::string &reason)
{
    metrics_.counter(kJobsFailed, helpOf(kJobsFailed)).inc();
    ++failed_;
    log_.event("job_failed", [&](JsonWriter &jw) {
        jw.kv("id", job.id);
        jw.kv("key", hexKey(job.key));
        jw.kv("reason", reason);
        jw.kv("attempts", job.attempt);
    });
    const std::string ev = eventLine([&](JsonWriter &jw) {
        jw.kv("event", "error");
        jw.kv("id", job.id);
        jw.kv("reason", reason);
        jw.kv("attempts", job.attempt);
        jw.key("attempt_history");
        jw.beginArray();
        for (const auto &h : job.history)
            jw.value(h);
        jw.endArray();
    });
    if (job.transport == Transport::Http)
        finishHttpJob(job.clientFd, 500, ev);
    else
        sendToClient(job.clientFd, ev);
}

void
CampaignServer::failAttempt(Job &&job, const std::string &reason)
{
    job.history.push_back("attempt " + std::to_string(job.attempt) +
                          ": " + reason);
    if (job.attempt > opt_.jobRetries) {
        finalFail(std::move(job), reason);
        return;
    }
    // Exponential backoff; the poll timeout wakes the loop when the
    // gate opens. The final attempt runs cold in case the warm
    // checkpoint itself is what kills the worker.
    const std::uint64_t backoffUs =
        (static_cast<std::uint64_t>(
             opt_.jobBackoffMs > 0 ? opt_.jobBackoffMs : 1)
         << (job.attempt - 1)) *
        1000ull;
    job.attempt += 1;
    job.forceCold = job.attempt > opt_.jobRetries;
    job.notBeforeUs = monoUs() + backoffUs;
    metrics_.counter(kJobRetries, helpOf(kJobRetries)).inc();
    ++retried_;
    log_.event("job_retried", [&](JsonWriter &jw) {
        jw.kv("id", job.id);
        jw.kv("key", hexKey(job.key));
        jw.kv("attempt", job.attempt);
        jw.kv("backoff_ms", backoffUs / 1000);
        jw.kv("cold", job.forceCold);
        jw.kv("reason", reason);
    });
    queue_.push_back(std::move(job));
}

void
CampaignServer::checkDeadlines()
{
    if (opt_.jobDeadlineSec <= 0)
        return;
    const std::uint64_t now = monoUs();
    for (auto &w : workers_) {
        if (!w.busy || w.pid <= 0 || w.deadlineKilled)
            continue;
        const auto it = inflight_.find(w.jobId);
        if (it == inflight_.end() || it->second.deadlineUs == 0 ||
            now < it->second.deadlineUs)
            continue;
        // The kill surfaces as pipe EOF; onWorkerDeath routes the job
        // through failAttempt with the deadline reason.
        w.deadlineKilled = true;
        ++deadlineKills_;
        metrics_.counter(kJobDeadlineKills, helpOf(kJobDeadlineKills))
            .inc();
        log_.event("job_deadline_kill", [&](JsonWriter &jw) {
            jw.kv("id", w.jobId);
            jw.kv("key", hexKey(it->second.key));
            jw.kv("worker_pid", static_cast<std::int64_t>(w.pid));
            jw.kv("deadline_sec", opt_.jobDeadlineSec);
        });
        ::kill(w.pid, SIGKILL);
    }
}

int
CampaignServer::pollTimeoutMs() const
{
    std::uint64_t next = UINT64_MAX;
    for (const auto &j : queue_)
        if (j.notBeforeUs > 0)
            next = std::min(next, j.notBeforeUs);
    if (opt_.jobDeadlineSec > 0)
        for (const auto &[id, j] : inflight_)
            if (j.deadlineUs > 0)
                next = std::min(next, j.deadlineUs);
    if (next == UINT64_MAX)
        return -1;
    const std::uint64_t now = monoUs();
    if (next <= now)
        return 0;
    return static_cast<int>(
        std::min<std::uint64_t>((next - now) / 1000 + 1, 60000));
}

void
CampaignServer::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    log_.event("server_draining", [&](JsonWriter &jw) {
        jw.kv("queued", static_cast<std::uint64_t>(queue_.size()));
        jw.kv("inflight",
              static_cast<std::uint64_t>(inflight_.size()));
    });
}

void
CampaignServer::refreshGauges()
{
    metrics_.gauge(kQueueDepth, helpOf(kQueueDepth))
        .set(static_cast<double>(queue_.size()));
    metrics_.gauge(kCacheEntries, helpOf(kCacheEntries))
        .set(static_cast<double>(cache_.size()));
    metrics_.gauge(kCacheBytes, helpOf(kCacheBytes))
        .set(static_cast<double>(cacheBytes_));
    metrics_.gauge(kWorkers, helpOf(kWorkers))
        .set(static_cast<double>(workers_.size()));
    int busy = 0;
    for (const auto &w : workers_)
        busy += w.busy ? 1 : 0;
    metrics_.gauge(kWorkersBusy, helpOf(kWorkersBusy))
        .set(static_cast<double>(busy));
    const std::uint64_t up = monoUs();
    metrics_.gauge(kUptime, helpOf(kUptime))
        .set(static_cast<double>(up) / 1e6);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        const Worker &w = workers_[i];
        std::uint64_t busyUs = w.busyAccumUs;
        if (w.busy)
            busyUs += up - w.busySinceUs;
        metrics_
            .gauge(kWorkerBusyFraction, helpOf(kWorkerBusyFraction),
                   "worker=\"" + std::to_string(i) + "\"")
            .set(up > 0 ? static_cast<double>(busyUs) /
                              static_cast<double>(up)
                        : 0.0);
    }
    if (!opt_.ckptDir.empty()) {
        const auto usage = snapshot::ckptDirUsage(opt_.ckptDir);
        metrics_.gauge(kCkptBytes, helpOf(kCkptBytes))
            .set(static_cast<double>(usage.bytes));
        metrics_.gauge(kCkptFiles, helpOf(kCkptFiles))
            .set(static_cast<double>(usage.files));
    }
    if (store_.enabled()) {
        metrics_.gauge(kStoreSegments, helpOf(kStoreSegments))
            .set(static_cast<double>(store_.stats().segments));
        metrics_.gauge(kStoreBytes, helpOf(kStoreBytes))
            .set(static_cast<double>(store_.stats().bytes));
    }
}

std::string
CampaignServer::renderMetrics()
{
    refreshGauges();
    std::ostringstream os;
    metrics_.renderPrometheus(os);
    return os.str();
}

std::string
CampaignServer::statusJson()
{
    int busy = 0;
    for (const auto &w : workers_)
        busy += w.busy ? 1 : 0;
    return eventLine([&](JsonWriter &w) {
        w.kv("event", "status");
        w.kv("version", kServerVersion);
        w.kv("uptime_sec",
             static_cast<double>(monoUs()) / 1e6);
        w.kv("workers", static_cast<int>(workers_.size()));
        w.kv("busy", busy);
        w.kv("queued", static_cast<std::uint64_t>(queue_.size()));
        w.kv("cache_entries",
             static_cast<std::uint64_t>(cache_.size()));
        w.kv("cache_hits", cacheHits_);
        w.kv("completed", completed_);
        w.kv("jobs_failed", failed_);
        w.kv("jobs_retried", retried_);
        w.kv("jobs_shed", shed_);
        w.kv("deadline_kills", deadlineKills_);
        w.kv("worker_respawns", respawns_);
        w.kv("draining", draining_);
        if (store_.enabled()) {
            w.kv("store_recovered", store_.stats().recoveredRecords);
            w.kv("store_skipped", store_.stats().skippedRecords);
            w.kv("store_appends", store_.stats().appends);
        }
    });
}

void
CampaignServer::enforceCkptCap()
{
    if (opt_.ckptDir.empty() || opt_.ckptCapBytes == 0)
        return;
    const auto evicted =
        snapshot::evictCheckpointsLru(opt_.ckptDir, opt_.ckptCapBytes);
    for (const auto &e : evicted) {
        metrics_.counter(kCkptEvictions, helpOf(kCkptEvictions)).inc();
        log_.event("ckpt_evicted", [&](JsonWriter &jw) {
            jw.kv("file", e.file);
            jw.kv("bytes", e.bytes);
        });
    }
}

void
CampaignServer::submitRun(const JsonValue &doc, Transport transport,
                          int clientFd)
{
    const auto reject = [&](const std::string &reason) {
        metrics_.counter(kJobsRejected, helpOf(kJobsRejected)).inc();
        const std::string ev = eventLine([&](JsonWriter &w) {
            w.kv("event", "error");
            w.kv("id", std::uint64_t{0});
            w.kv("reason", reason);
        });
        if (transport == Transport::Http)
            finishHttpJob(clientFd, 400, ev);
        else
            sendToClient(clientFd, ev);
    };

    JobRequest req;
    if (const std::string err = parseJobRequest(doc, req);
        !err.empty()) {
        reject(err);
        return;
    }
    // Resolve the config now so bad requests fail at submission, not
    // in a worker.
    {
        system::SystemConfig cfg;
        if (const std::string err = buildConfig(req, cfg);
            !err.empty()) {
            reject(err);
            return;
        }
    }

    const std::uint64_t key = cacheKeyDigest(req);
    const auto cached = cache_.find(key);
    const bool hit = cached != cache_.end();

    // Admission control: cache hits always answer (no worker needed),
    // but new work is refused while draining and shed when the queue
    // is at its bound — with enough structure for the client to retry.
    if (!hit && draining_) {
        metrics_.counter(kJobsRejected, helpOf(kJobsRejected)).inc();
        const std::string ev = eventLine([&](JsonWriter &w) {
            w.kv("event", "error");
            w.kv("id", std::uint64_t{0});
            w.kv("reason", "server draining; not accepting new jobs");
            w.kv("draining", true);
        });
        if (transport == Transport::Http)
            finishHttpJob(clientFd, 503, ev);
        else
            sendToClient(clientFd, ev);
        return;
    }
    if (!hit && opt_.maxQueue > 0 &&
        queue_.size() >= static_cast<std::size_t>(opt_.maxQueue)) {
        metrics_.counter(kJobsShed, helpOf(kJobsShed)).inc();
        ++shed_;
        // Rough drain-time estimate: jobs ahead over pool width, at
        // a conservative 250 ms per job, capped so clients never park
        // for long on a transient spike.
        const std::uint64_t ahead = queue_.size() + inflight_.size();
        const std::uint64_t retryMs = std::min<std::uint64_t>(
            250 * (ahead / std::max<std::size_t>(workers_.size(), 1) +
                   1),
            10000);
        log_.event("job_shed", [&](JsonWriter &jw) {
            jw.kv("key", hexKey(key));
            jw.kv("queued", static_cast<std::uint64_t>(queue_.size()));
            jw.kv("retry_after_ms", retryMs);
        });
        const std::string ev = eventLine([&](JsonWriter &w) {
            w.kv("event", "error");
            w.kv("id", std::uint64_t{0});
            w.kv("reason", "queue full (" +
                               std::to_string(queue_.size()) +
                               " jobs waiting); retry later");
            w.kv("shed", true);
            w.kv("retry_after_ms", retryMs);
        });
        if (transport == Transport::Http)
            finishHttpJob(clientFd, 503, ev);
        else
            sendToClient(clientFd, ev);
        return;
    }

    const std::uint64_t id = nextJobId_++;
    metrics_.counter(kJobsSubmitted, helpOf(kJobsSubmitted)).inc();
    metrics_
        .counter(hit ? kCacheHits : kCacheMisses,
                 helpOf(hit ? kCacheHits : kCacheMisses))
        .inc();
    log_.event("job_submitted", [&](JsonWriter &jw) {
        jw.kv("id", id);
        jw.kv("key", hexKey(key));
        jw.kv("cache", hit ? "hit" : "miss");
        jw.kv("transport",
              transport == Transport::Http ? "http" : "unix");
    });

    if (transport == Transport::Unix)
        sendToClient(clientFd, eventLine([&](JsonWriter &w) {
                         w.kv("event", "accepted");
                         w.kv("id", id);
                         w.kv("cache", hit ? "hit" : "miss");
                         w.kv("key", hexKey(key));
                     }));

    if (hit) {
        ++cacheHits_;
        std::ostringstream os;
        os << "{\"event\":\"result\",\"id\":" << id
           << ",\"cached\":true,\"key\":\"" << hexKey(key)
           << "\",\"data\":" << cached->second << "}";
        log_.event("job_served_cached", [&](JsonWriter &jw) {
            jw.kv("id", id);
            jw.kv("key", hexKey(key));
        });
        if (transport == Transport::Http)
            finishHttpJob(clientFd, 200, os.str());
        else
            sendToClient(clientFd, os.str());
        return;
    }

    Job job;
    job.id = id;
    job.transport = transport;
    job.clientFd = clientFd;
    job.key = key;
    job.req = req;
    job.submitUs = monoUs();
    queue_.push_back(std::move(job));
    dispatchJobs();
}

void
CampaignServer::handleClientLine(Client &c, const std::string &line)
{
    std::string perr;
    const auto doc = JsonValue::parse(line, &perr);
    if (!doc || !doc->isObject()) {
        sendToClient(c.fd, eventLine([&](JsonWriter &w) {
                         w.kv("event", "error");
                         w.kv("id", std::uint64_t{0});
                         w.kv("reason", "bad command json: " + perr);
                     }));
        return;
    }
    const JsonValue *cmd = doc->find("cmd");
    const std::string cmdName =
        cmd != nullptr && cmd->isString() ? cmd->asString() : "";

    if (cmdName == "status") {
        sendToClient(c.fd, statusJson());
        return;
    }
    if (cmdName == "shutdown") {
        sendToClient(c.fd, eventLine([&](JsonWriter &w) {
                         w.kv("event", "bye");
                     }));
        shutdown_ = true;
        return;
    }
    if (cmdName != "run") {
        sendToClient(c.fd, eventLine([&](JsonWriter &w) {
                         w.kv("event", "error");
                         w.kv("id", std::uint64_t{0});
                         w.kv("reason",
                              "unknown cmd '" + cmdName +
                                  "' (run|status|shutdown)");
                     }));
        return;
    }
    submitRun(*doc, Transport::Unix, c.fd);
}

void
CampaignServer::handleHttpRequest(HttpClient &h,
                                  const std::string &method,
                                  const std::string &path,
                                  const std::string &body)
{
    const auto countEndpoint = [&](const char *ep) {
        metrics_
            .counter(kHttpRequests, helpOf(kHttpRequests),
                     std::string("endpoint=\"") + ep + "\"")
            .inc();
    };

    if (path == "/metrics" && method == "GET") {
        countEndpoint("metrics");
        sendRaw(h.fd, httpResponse(200, metricsContentType(),
                                   renderMetrics()));
        closeHttpClient(h.fd);
        return;
    }
    if (path == "/status" && method == "GET") {
        countEndpoint("status");
        sendRaw(h.fd,
                httpResponse(200, "application/json", statusJson()));
        closeHttpClient(h.fd);
        return;
    }
    if (path == "/run" && method == "POST") {
        countEndpoint("run");
        std::string perr;
        const auto doc = JsonValue::parse(body, &perr);
        if (!doc || !doc->isObject()) {
            sendRaw(h.fd,
                    httpResponse(400, "application/json",
                                 eventLine([&](JsonWriter &w) {
                                     w.kv("event", "error");
                                     w.kv("reason",
                                          "bad request json: " + perr);
                                 })));
            closeHttpClient(h.fd);
            return;
        }
        h.jobPending = true;
        submitRun(*doc, Transport::Http, h.fd);
        return;
    }
    countEndpoint("other");
    if (path == "/metrics" || path == "/status" || path == "/run") {
        sendRaw(h.fd, httpResponse(405, "text/plain",
                                   "method not allowed\n"));
    } else {
        sendRaw(h.fd,
                httpResponse(404, "text/plain",
                             "unknown path (GET /metrics, GET /status, "
                             "POST /run)\n"));
    }
    closeHttpClient(h.fd);
}

void
CampaignServer::handleHttpClient(HttpClient &h)
{
    HttpRequest req;
    std::string err;
    const int rc = parseHttpRequest(h.inBuf, req, err);
    if (rc == 0)
        return; // need more bytes
    if (rc < 0) {
        sendRaw(h.fd, httpResponse(400, "text/plain", err + "\n"));
        closeHttpClient(h.fd);
        return;
    }
    handleHttpRequest(h, req.method, req.path, req.body);
}

void
CampaignServer::handleWorkerLine(Worker &w, const std::string &line)
{
    std::string perr;
    const auto doc = JsonValue::parse(line, &perr);
    if (!doc || !doc->isObject()) {
        std::fprintf(stderr,
                     "stacknoc_serve: bad worker line (%s): %s\n",
                     perr.c_str(), line.c_str());
        return;
    }
    const JsonValue *ev = doc->find("event");
    const std::string kind =
        ev != nullptr && ev->isString() ? ev->asString() : "";
    std::uint64_t id = 0;
    if (const JsonValue *m = doc->find("id");
        m != nullptr && m->isNumber())
        id = static_cast<std::uint64_t>(m->asDouble());

    const auto jobIt = inflight_.find(id);
    const Job *job = jobIt != inflight_.end() ? &jobIt->second : nullptr;
    const int clientFd = job != nullptr ? job->clientFd : -1;
    const bool isHttp =
        job != nullptr && job->transport == Transport::Http;
    const std::size_t widx =
        static_cast<std::size_t>(&w - workers_.data());

    const auto freeWorker = [&] {
        if (w.jobId == id && w.busy) {
            w.busyAccumUs += monoUs() - w.busySinceUs;
            w.busy = false;
            w.jobId = 0;
        }
    };

    if (kind == "interval") {
        // Interval events stream to socket clients only; an HTTP run
        // gets a single response when the job ends.
        if (!isHttp)
            sendToClient(clientFd, line);
        return;
    }
    if (kind == "note") {
        // Advisory worker events; never terminal for the job.
        const JsonValue *k = doc->find("kind");
        const std::string noteKind =
            k != nullptr && k->isString() ? k->asString() : "";
        const JsonValue *r = doc->find("reason");
        if (noteKind == "warm_fallback") {
            metrics_
                .counter(kCkptRestoreFallbacks,
                         helpOf(kCkptRestoreFallbacks))
                .inc();
            log_.event("ckpt_restore_fallback", [&](JsonWriter &jw) {
                jw.kv("id", id);
                if (job != nullptr)
                    jw.kv("key", hexKey(job->key));
                jw.kv("worker", static_cast<std::uint64_t>(widx));
                jw.kv("reason", r != nullptr && r->isString()
                                    ? r->asString()
                                    : std::string());
            });
        }
        return;
    }
    if (kind == "error") {
        const JsonValue *r = doc->find("reason");
        const std::string reason = r != nullptr && r->isString()
                                       ? r->asString()
                                       : "worker error";
        freeWorker();
        if (job != nullptr) {
            Job owned = std::move(jobIt->second);
            inflight_.erase(jobIt);
            // A worker-reported error is deterministic (bad request,
            // simulation failure): a retry would only repeat it, so it
            // is final regardless of the retry budget.
            finalFail(std::move(owned), reason);
        } else {
            metrics_.counter(kJobsFailed, helpOf(kJobsFailed)).inc();
            ++failed_;
            log_.event("job_failed", [&](JsonWriter &jw) {
                jw.kv("id", id);
                jw.kv("worker", static_cast<std::uint64_t>(widx));
                jw.kv("reason", reason);
            });
        }
        dispatchJobs();
        return;
    }
    if (kind == "result") {
        const JsonValue *data = doc->find("data");
        const std::string dataStr =
            data != nullptr ? jsonValueToString(*data) : "null";
        const JsonValue *timing = doc->find("timing");
        const std::string timingStr =
            timing != nullptr && timing->isObject()
                ? jsonValueToString(*timing)
                : "";
        const std::uint64_t key = job != nullptr ? job->key : 0;
        if (cache_.emplace(key, dataStr).second) {
            cacheBytes_ += dataStr.size();
            // First result per key also becomes durable; append
            // failures are counted, never fatal (memory still serves).
            if (store_.enabled() && job != nullptr) {
                if (store_.append(key, dataStr))
                    metrics_
                        .counter(kStoreAppends, helpOf(kStoreAppends))
                        .inc();
                else
                    metrics_
                        .counter(kStoreAppendFailures,
                                 helpOf(kStoreAppendFailures))
                        .inc();
            }
        }
        ++completed_;
        metrics_.counter(kJobsCompleted, helpOf(kJobsCompleted)).inc();

        // Fold the worker's phase timings and warm provenance into the
        // registry and the lifecycle log.
        std::uint64_t phaseTotal = 0;
        if (timing != nullptr && timing->isObject()) {
            for (const char *phase :
                 {"restore", "warm", "measure", "publish"}) {
                const std::uint64_t us = memberU64(
                    *timing, (std::string(phase) + "_us").c_str());
                phaseTotal += us;
                metrics_
                    .histogram(kJobPhase, helpOf(kJobPhase),
                               std::string("phase=\"") + phase + "\"")
                    .sample(us);
            }
            metrics_
                .histogram(kJobPhase, helpOf(kJobPhase),
                           "phase=\"total\"")
                .sample(phaseTotal);
        }
        if (data != nullptr && data->isObject()) {
            const bool restored = memberBool(*data, "warm_restored");
            metrics_
                .counter(restored ? kCkptRestores : kCkptColdWarms,
                         helpOf(restored ? kCkptRestores
                                         : kCkptColdWarms))
                .inc();
            if (memberBool(*data, "warm_saved"))
                metrics_.counter(kCkptSaves, helpOf(kCkptSaves)).inc();
            metrics_.counter(kSimCycles, helpOf(kSimCycles))
                .inc(memberU64(*data, "cycles"));
        }
        log_.event("job_completed", [&](JsonWriter &jw) {
            jw.kv("id", id);
            jw.kv("key", hexKey(key));
            jw.kv("worker", static_cast<std::uint64_t>(widx));
            jw.kv("worker_pid", static_cast<std::int64_t>(w.pid));
            if (job != nullptr) {
                jw.kv("queue_wait_us",
                      job->dispatchUs - job->submitUs);
                jw.kv("attempt", job->attempt);
            }
            if (timing != nullptr && timing->isObject()) {
                jw.kv("restore_us", memberU64(*timing, "restore_us"));
                jw.kv("warm_us", memberU64(*timing, "warm_us"));
                jw.kv("measure_us", memberU64(*timing, "measure_us"));
                jw.kv("publish_us", memberU64(*timing, "publish_us"));
                jw.kv("total_us", phaseTotal);
                jw.kv("cycle", memberU64(*timing, "end_cycle"));
            }
            if (data != nullptr && data->isObject()) {
                jw.kv("warm", memberBool(*data, "warm_restored")
                                  ? "restored"
                                  : "cold");
                if (const JsonValue *d = data->find("stats_digest");
                    d != nullptr && d->isString())
                    jw.kv("stats_digest", d->asString());
            }
        });

        {
            std::ostringstream os;
            os << "{\"event\":\"result\",\"id\":" << id
               << ",\"cached\":false,\"key\":\"" << hexKey(key)
               << "\"";
            if (job != nullptr && job->attempt > 1)
                os << ",\"attempts\":" << job->attempt;
            if (!timingStr.empty())
                os << ",\"timing\":" << timingStr;
            os << ",\"data\":" << dataStr << "}";
            if (isHttp)
                finishHttpJob(clientFd, 200, os.str());
            else
                sendToClient(clientFd, os.str());
        }
        freeWorker();
        inflight_.erase(id);
        // The worker may have just published a checkpoint; keep the
        // directory under its cap before the next dispatch adds more.
        if (data != nullptr && data->isObject() &&
            memberBool(*data, "warm_saved"))
            enforceCkptCap();
        dispatchJobs();
        return;
    }
    std::fprintf(stderr, "stacknoc_serve: unknown worker event: %s\n",
                 line.c_str());
}

void
CampaignServer::onWorkerDeath(Worker &w)
{
    const std::size_t idx =
        static_cast<std::size_t>(&w - workers_.data());
    ::close(w.fromFd);
    ::close(w.toFd);
    w.fromFd = w.toFd = -1;
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    log_.event("worker_died", [&](JsonWriter &jw) {
        jw.kv("worker", static_cast<std::uint64_t>(idx));
        jw.kv("pid", static_cast<std::int64_t>(w.pid));
        jw.kv("job", w.busy ? w.jobId : 0);
        jw.kv("deadline_kill", w.deadlineKilled);
        jw.kv("exit_status", status);
    });
    w.pid = -1;
    if (w.busy) {
        const std::string reason =
            w.deadlineKilled
                ? "job exceeded --job-deadline-sec " +
                      std::to_string(opt_.jobDeadlineSec) +
                      "; worker killed"
                : "worker process died mid-job";
        const auto it = inflight_.find(w.jobId);
        if (it != inflight_.end()) {
            Job job = std::move(it->second);
            inflight_.erase(it);
            failAttempt(std::move(job), reason);
        }
        w.busyAccumUs += monoUs() - w.busySinceUs;
        w.busy = false;
        w.jobId = 0;
    }
    w.deadlineKilled = false;
    std::string err;
    if (!spawnWorker(w, err)) {
        std::fprintf(stderr, "stacknoc_serve: respawn failed: %s\n",
                     err.c_str());
    } else {
        ++respawns_;
        metrics_.counter(kWorkerRespawns, helpOf(kWorkerRespawns))
            .inc();
        dispatchJobs();
    }
}

void
CampaignServer::killWorkers()
{
    for (auto &w : workers_) {
        if (w.toFd >= 0)
            ::close(w.toFd); // EOF ends the worker loop
        if (w.fromFd >= 0)
            ::close(w.fromFd);
        w.toFd = w.fromFd = -1;
    }
    for (auto &w : workers_) {
        if (w.pid > 0) {
            int status = 0;
            ::waitpid(w.pid, &status, 0);
            w.pid = -1;
        }
    }
}

int
CampaignServer::run()
{
    while (!shutdown_) {
        if (draining_ && queue_.empty() && inflight_.empty())
            break; // drained: every accepted job has resolved
        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        if (sigFd_ >= 0)
            fds.push_back({sigFd_, POLLIN, 0});
        if (httpListenFd_ >= 0)
            fds.push_back({httpListenFd_, POLLIN, 0});
        for (const auto &w : workers_)
            if (w.fromFd >= 0)
                fds.push_back({w.fromFd, POLLIN, 0});
        for (const auto &[fd, c] : clients_)
            fds.push_back({fd, POLLIN, 0});
        for (const auto &[fd, h] : httpClients_)
            fds.push_back({fd, POLLIN, 0});

        // Finite timeout only when a retry backoff gate or a job
        // deadline needs the loop to wake without fd traffic.
        const int rc =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   pollTimeoutMs());
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "stacknoc_serve: poll: %s\n",
                         std::strerror(errno));
            return 1;
        }
        checkDeadlines();
        dispatchJobs();

        for (const auto &p : fds) {
            if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            if (sigFd_ >= 0 && p.fd == sigFd_) {
                char buf[16];
                [[maybe_unused]] const ssize_t n =
                    ::read(sigFd_, buf, sizeof buf);
                beginDrain();
                continue;
            }
            if (p.fd == listenFd_) {
                const int cfd = ::accept(listenFd_, nullptr, nullptr);
                if (cfd >= 0)
                    clients_[cfd] = Client{cfd, {}};
                continue;
            }
            if (httpListenFd_ >= 0 && p.fd == httpListenFd_) {
                const int cfd =
                    ::accept(httpListenFd_, nullptr, nullptr);
                if (cfd >= 0)
                    httpClients_[cfd] = HttpClient{cfd, {}, false};
                continue;
            }
            // Worker pipe?
            bool isWorker = false;
            for (auto &w : workers_) {
                if (w.fromFd != p.fd)
                    continue;
                isWorker = true;
                char buf[65536];
                const ssize_t n = ::read(p.fd, buf, sizeof buf);
                if (n > 0) {
                    w.outBuf.append(buf, static_cast<std::size_t>(n));
                    std::size_t pos;
                    while ((pos = w.outBuf.find('\n')) !=
                           std::string::npos) {
                        const std::string line = w.outBuf.substr(0, pos);
                        w.outBuf.erase(0, pos + 1);
                        if (!line.empty())
                            handleWorkerLine(w, line);
                    }
                } else {
                    onWorkerDeath(w);
                }
                break;
            }
            if (isWorker)
                continue;
            // HTTP client?
            if (const auto hit = httpClients_.find(p.fd);
                hit != httpClients_.end()) {
                char buf[65536];
                const ssize_t n = ::read(p.fd, buf, sizeof buf);
                if (n <= 0) {
                    closeHttpClient(p.fd);
                    continue;
                }
                hit->second.inBuf.append(buf,
                                         static_cast<std::size_t>(n));
                if (!hit->second.jobPending)
                    handleHttpClient(hit->second);
                continue;
            }
            // Client socket.
            const auto it = clients_.find(p.fd);
            if (it == clients_.end())
                continue;
            char buf[65536];
            const ssize_t n = ::read(p.fd, buf, sizeof buf);
            if (n <= 0) {
                closeClient(p.fd);
                continue;
            }
            it->second.inBuf.append(buf, static_cast<std::size_t>(n));
            std::size_t pos;
            while ((pos = it->second.inBuf.find('\n')) !=
                   std::string::npos) {
                const std::string line = it->second.inBuf.substr(0, pos);
                it->second.inBuf.erase(0, pos + 1);
                if (!line.empty())
                    handleClientLine(it->second, line);
                if (shutdown_ ||
                    clients_.find(p.fd) == clients_.end())
                    break;
            }
            if (shutdown_)
                break;
        }
    }
    store_.seal(); // publish the journal before the process can exit
    log_.event("server_stop", [&](JsonWriter &jw) {
        jw.kv("uptime_sec", static_cast<double>(monoUs()) / 1e6);
        jw.kv("completed", completed_);
        jw.kv("failed", failed_);
        jw.kv("drained", draining_);
    });
    killWorkers();
    return 0;
}

} // namespace stacknoc::server
