#include "server/protocol.hh"

#include <cstdio>
#include <sstream>

#include "fault/fault_spec.hh"
#include "snapshot/checkpoint.hh"
#include "snapshot/serialize.hh"

namespace stacknoc::server {

using telemetry::JsonValue;
using telemetry::JsonWriter;

std::string
parseJobRequest(const JsonValue &v, JobRequest &out)
{
    if (!v.isObject())
        return "request is not a JSON object";

    const auto str = [&](const char *key, std::string &dst) {
        if (const JsonValue *m = v.find(key); m != nullptr) {
            if (!m->isString())
                return false;
            dst = m->asString();
        }
        return true;
    };
    const auto u64 = [&](const char *key, auto &dst) {
        if (const JsonValue *m = v.find(key); m != nullptr) {
            if (!m->isNumber() || m->asDouble() < 0)
                return false;
            dst = static_cast<std::decay_t<decltype(dst)>>(m->asDouble());
        }
        return true;
    };
    const auto boolean = [&](const char *key, bool &dst) {
        if (const JsonValue *m = v.find(key); m != nullptr) {
            if (m->type() != JsonValue::Type::Bool)
                return false;
            dst = m->asBool();
        }
        return true;
    };

    if (!str("scenario", out.scenario))
        return "scenario must be a string";
    if (const JsonValue *m = v.find("regions"); m != nullptr) {
        if (!m->isNumber())
            return "regions must be a number";
        out.regions = static_cast<int>(m->asDouble());
    }
    if (const JsonValue *m = v.find("apps"); m != nullptr) {
        if (!m->isArray() || m->size() == 0)
            return "apps must be a non-empty array of strings";
        out.apps.clear();
        for (std::size_t i = 0; i < m->size(); ++i) {
            const JsonValue *a = m->at(i);
            if (a == nullptr || !a->isString())
                return "apps must be a non-empty array of strings";
            out.apps.push_back(a->asString());
        }
    }
    if (!u64("seed", out.seed))
        return "seed must be a non-negative number";
    if (!u64("warmup", out.warmup))
        return "warmup must be a non-negative number";
    if (!u64("cycles", out.cycles))
        return "cycles must be a non-negative number";
    if (out.cycles == 0)
        return "cycles must be >= 1";
    int mesh[2] = {out.meshWidth, out.meshHeight};
    if (!u64("mesh_width", mesh[0]) || !u64("mesh_height", mesh[1]))
        return "mesh_width/mesh_height must be non-negative numbers";
    out.meshWidth = mesh[0];
    out.meshHeight = mesh[1];
    if (out.meshWidth < 1 || out.meshHeight < 1)
        return "mesh dimensions must be >= 1";
    if (!u64("threads", out.threads))
        return "threads must be a non-negative number";
    if (out.threads < 1)
        return "threads must be >= 1";
    if (!boolean("elide", out.elide))
        return "elide must be a bool";
    if (!u64("interval", out.interval))
        return "interval must be a non-negative number";
    if (!str("fault_spec", out.faultSpec))
        return "fault_spec must be a string";
    if (!boolean("real_tags", out.realTags))
        return "real_tags must be a bool";
    return {};
}

void
writeJobRequestMembers(JsonWriter &w, const JobRequest &req)
{
    w.kv("scenario", req.scenario);
    if (req.regions >= 0)
        w.kv("regions", req.regions);
    w.key("apps");
    w.beginArray();
    for (const auto &a : req.apps)
        w.value(a);
    w.endArray();
    w.kv("seed", req.seed);
    w.kv("warmup", static_cast<std::uint64_t>(req.warmup));
    w.kv("cycles", static_cast<std::uint64_t>(req.cycles));
    w.kv("mesh_width", req.meshWidth);
    w.kv("mesh_height", req.meshHeight);
    w.kv("threads", req.threads);
    w.kv("elide", req.elide);
    w.kv("interval", static_cast<std::uint64_t>(req.interval));
    if (!req.faultSpec.empty())
        w.kv("fault_spec", req.faultSpec);
    w.kv("real_tags", req.realTags);
}

std::string
buildConfig(const JobRequest &req, system::SystemConfig &cfg)
{
    cfg = system::SystemConfig{};
    if (!system::scenarios::byName(req.scenario, cfg.scenario))
        return "unknown scenario '" + req.scenario + "' (known: " +
               system::scenarios::knownNames() + ")";
    if (req.regions >= 0)
        cfg.scenario.tsbRegions = req.regions;
    cfg.meshWidth = req.meshWidth;
    cfg.meshHeight = req.meshHeight;
    cfg.seed = req.seed;
    cfg.threads = req.threads;
    cfg.elide = req.elide;
    cfg.realTags = req.realTags;

    if (req.apps.empty())
        return "apps must be non-empty";
    if (req.apps.size() == 1) {
        cfg.apps = req.apps;
    } else {
        cfg.apps.clear();
        const int cores = cfg.meshWidth * cfg.meshHeight;
        for (int c = 0; c < cores; ++c)
            cfg.apps.push_back(
                req.apps[static_cast<std::size_t>(c) % req.apps.size()]);
    }

    if (!req.faultSpec.empty()) {
        std::string err;
        if (!fault::parseFaultSpec(req.faultSpec, cfg.faults, err))
            return "bad fault_spec: " + err;
        cfg.faultsEnabled = cfg.faults.any();
        // Fault campaigns run under the liveness guard, like
        // stacknoc_run does by default.
        cfg.watchdogEnabled = cfg.faultsEnabled;
    }
    return {};
}

std::string
cacheKeyString(const JobRequest &req)
{
    system::SystemConfig cfg;
    const std::string err = buildConfig(req, cfg);
    if (!err.empty())
        return "invalid:" + err;
    std::ostringstream os;
    os << snapshot::canonicalWarmSpec(cfg, req.warmup);
    os << "|cycles=" << req.cycles;
    os << "|interval=" << req.interval;
    os << "|threads=" << req.threads;
    os << "|elide=" << (req.elide ? 1 : 0);
    os << "|proto=" << kProtocolVersion;
    return os.str();
}

std::uint64_t
cacheKeyDigest(const JobRequest &req)
{
    return snapshot::fnv1a(cacheKeyString(req));
}

void
writeJsonValue(JsonWriter &w, const JsonValue &v)
{
    switch (v.type()) {
    case JsonValue::Type::Null:
        w.null();
        break;
    case JsonValue::Type::Bool:
        w.value(v.asBool());
        break;
    case JsonValue::Type::Number:
        w.value(v.asDouble());
        break;
    case JsonValue::Type::String:
        w.value(v.asString());
        break;
    case JsonValue::Type::Array:
        w.beginArray();
        for (const JsonValue &e : v.elements())
            writeJsonValue(w, e);
        w.endArray();
        break;
    case JsonValue::Type::Object:
        w.beginObject();
        for (const auto &[k, m] : v.members()) {
            w.key(k);
            writeJsonValue(w, m);
        }
        w.endObject();
        break;
    }
}

std::string
jsonValueToString(const JsonValue &v)
{
    std::ostringstream os;
    JsonWriter w(os);
    writeJsonValue(w, v);
    return os.str();
}

std::string
hexKey(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace stacknoc::server
