#include "server/metrics.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace stacknoc::server {

namespace {

/** Compact number rendering: integers without a decimal point. */
std::string
renderNumber(double v)
{
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRId64,
                      static_cast<std::int64_t>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** `name` or `name{labels}` or `name{labels,extra}`. */
std::string
seriesName(const std::string &name, const std::string &labels,
           const std::string &extra = "")
{
    std::string body = labels;
    if (!extra.empty())
        body += body.empty() ? extra : ("," + extra);
    if (body.empty())
        return name;
    return name + "{" + body + "}";
}

void
renderHistogram(std::ostream &os, const std::string &name,
                const std::string &labels, const stats::Histogram &h)
{
    // Cumulative counts on the log2 bucket upper bounds. Empty
    // histograms still expose {le="+Inf"} 0 / _sum 0 / _count 0, which
    // scrapers require for a well-formed histogram family.
    std::size_t top = 0;
    for (std::size_t i = 0; i < stats::Histogram::kNumBuckets; ++i)
        if (h.bucketCount(i) > 0)
            top = i;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= top; ++i) {
        cum += h.bucketCount(i);
        if (h.bucketCount(i) == 0 && i != top)
            continue; // only emit informative bounds
        char le[32];
        std::snprintf(le, sizeof le, "le=\"%llu\"",
                      static_cast<unsigned long long>(
                          stats::Histogram::bucketHi(i)));
        os << seriesName(name + "_bucket", labels, le) << " " << cum
           << "\n";
    }
    os << seriesName(name + "_bucket", labels, "le=\"+Inf\"") << " "
       << h.count() << "\n";
    os << seriesName(name + "_sum", labels) << " " << h.sum() << "\n";
    os << seriesName(name + "_count", labels) << " " << h.count()
       << "\n";
}

} // namespace

MetricsRegistry::Family &
MetricsRegistry::family(const std::string &name, const std::string &help,
                        Kind kind)
{
    auto [it, inserted] = families_.try_emplace(name);
    if (inserted) {
        it->second.help = help;
        it->second.kind = kind;
    }
    return it->second;
}

stats::Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         const std::string &labels)
{
    return family(name, help, Kind::Counter).counters[labels];
}

MetricsRegistry::Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       const std::string &labels)
{
    return family(name, help, Kind::Gauge).gauges[labels];
}

stats::Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           const std::string &labels)
{
    return family(name, help, Kind::Histogram).histograms[labels];
}

void
MetricsRegistry::renderPrometheus(std::ostream &os) const
{
    for (const auto &[name, fam] : families_) {
        os << "# HELP " << name << " " << fam.help << "\n";
        os << "# TYPE " << name << " ";
        switch (fam.kind) {
        case Kind::Counter:
            os << "counter\n";
            for (const auto &[labels, c] : fam.counters)
                os << seriesName(name, labels) << " " << c.value()
                   << "\n";
            break;
        case Kind::Gauge:
            os << "gauge\n";
            for (const auto &[labels, g] : fam.gauges)
                os << seriesName(name, labels) << " "
                   << renderNumber(g.value()) << "\n";
            break;
        case Kind::Histogram:
            os << "histogram\n";
            for (const auto &[labels, h] : fam.histograms)
                renderHistogram(os, name, labels, h);
            break;
        }
    }
}

std::size_t
MetricsRegistry::seriesCount() const
{
    std::size_t n = 0;
    for (const auto &[name, fam] : families_)
        n += fam.counters.size() + fam.gauges.size() +
             fam.histograms.size();
    return n;
}

} // namespace stacknoc::server
