#include "server/oblog.hh"

#include <filesystem>
#include <sstream>

namespace stacknoc::server {

bool
EventLog::open(const std::string &path, std::uint64_t rotateBytes,
               std::string &err)
{
    path_ = path;
    if (rotateBytes > 0)
        rotateBytes_ = rotateBytes;
    out_.open(path, std::ios::trunc);
    if (!out_) {
        err = "cannot open log file '" + path + "'";
        return false;
    }
    written_ = 0;
    start_ = std::chrono::steady_clock::now();
    return true;
}

std::uint64_t
EventLog::monoUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
}

void
EventLog::event(const char *kind,
                const std::function<void(telemetry::JsonWriter &)>
                    &fields)
{
    if (!enabled())
        return;
    const std::uint64_t wallMs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    std::ostringstream os;
    telemetry::JsonWriter w(os);
    w.beginObject();
    w.kv("v", kSchemaVersion);
    w.kv("ts_ms", wallMs);
    w.kv("mono_us", monoUs());
    w.kv("event", kind);
    if (fields)
        fields(w);
    w.endObject();
    const std::string line = os.str();
    out_ << line << "\n";
    out_.flush();
    written_ += line.size() + 1;
    if (written_ > rotateBytes_)
        rotate();
}

void
EventLog::rotate()
{
    out_.close();
    std::error_code ec;
    std::filesystem::rename(path_, path_ + ".1", ec);
    // A failed rename (e.g. cross-device log path) truncates in place
    // rather than growing without bound.
    out_.open(path_, std::ios::trunc);
    written_ = 0;
    if (out_.is_open())
        event("log_rotated", [&](telemetry::JsonWriter &w) {
            w.kv("previous", ec ? "" : (path_ + ".1"));
        });
}

} // namespace stacknoc::server
