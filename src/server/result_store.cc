#include "server/result_store.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "snapshot/serialize.hh"

namespace stacknoc::server {

namespace {

const char kRecordMagic[4] = {'S', 'N', 'R', 'C'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4 + 8;

/** Guard against absurd sizes from a corrupt length field. */
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(p[i]) << (8 * i);
    return v;
}

std::string
segmentName(std::uint64_t n)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "results-%06llu.seg",
                  static_cast<unsigned long long>(n));
    return buf;
}

} // namespace

ResultStore::~ResultStore()
{
    if (journal_.is_open())
        journal_.close();
}

void
ResultStore::setSegmentCapBytes(std::uint64_t cap)
{
    if (cap > 0)
        segmentCapBytes_ = cap;
}

std::uint64_t
ResultStore::loadFile(
    const std::string &path,
    const std::function<void(std::uint64_t, const std::string &)>
        &onRecord)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0;
    std::uint64_t validPrefix = 0;
    std::string payload;
    unsigned char hdr[kHeaderBytes];
    const std::string name =
        std::filesystem::path(path).filename().string();
    while (true) {
        in.read(reinterpret_cast<char *>(hdr), sizeof hdr);
        const std::streamsize got = in.gcount();
        if (got == 0)
            break; // clean end of file
        if (got < static_cast<std::streamsize>(sizeof hdr)) {
            ++stats_.skippedRecords;
            std::fprintf(stderr,
                         "stacknoc_serve: result store: %s: truncated "
                         "record header at offset %llu; tail skipped\n",
                         name.c_str(),
                         static_cast<unsigned long long>(validPrefix));
            break;
        }
        if (std::memcmp(hdr, kRecordMagic, sizeof kRecordMagic) != 0) {
            ++stats_.skippedRecords;
            std::fprintf(stderr,
                         "stacknoc_serve: result store: %s: bad record "
                         "magic at offset %llu; tail skipped\n",
                         name.c_str(),
                         static_cast<unsigned long long>(validPrefix));
            break; // cannot re-sync without a trusted length
        }
        const std::uint32_t version = getU32(hdr + 4);
        const std::uint64_t key = getU64(hdr + 8);
        const std::uint32_t size = getU32(hdr + 16);
        const std::uint64_t fnv = getU64(hdr + 20);
        if (size > kMaxPayloadBytes) {
            ++stats_.skippedRecords;
            std::fprintf(stderr,
                         "stacknoc_serve: result store: %s: implausible "
                         "payload size %u at offset %llu; tail skipped\n",
                         name.c_str(), size,
                         static_cast<unsigned long long>(validPrefix));
            break;
        }
        payload.resize(size);
        in.read(payload.data(), size);
        if (in.gcount() < static_cast<std::streamsize>(size)) {
            ++stats_.skippedRecords;
            std::fprintf(stderr,
                         "stacknoc_serve: result store: %s: truncated "
                         "payload at offset %llu; tail skipped\n",
                         name.c_str(),
                         static_cast<unsigned long long>(validPrefix));
            break;
        }
        // The header is intact, so the record is self-delimiting:
        // version and checksum problems skip THIS record and re-sync
        // on the next one.
        if (version != kStoreVersion) {
            ++stats_.skippedRecords;
            std::fprintf(stderr,
                         "stacknoc_serve: result store: %s: record "
                         "schema version %u unsupported (this build "
                         "reads %u); record skipped\n",
                         name.c_str(), version, kStoreVersion);
        } else if (snapshot::fnv1a(payload.data(), payload.size()) !=
                   fnv) {
            ++stats_.skippedRecords;
            std::fprintf(stderr,
                         "stacknoc_serve: result store: %s: payload "
                         "checksum mismatch for key 0x%016llx; record "
                         "skipped\n",
                         name.c_str(),
                         static_cast<unsigned long long>(key));
        } else {
            ++stats_.recoveredRecords;
            if (onRecord)
                onRecord(key, payload);
        }
        validPrefix += sizeof hdr + size;
    }
    return validPrefix;
}

bool
ResultStore::openJournal(std::string &err)
{
    journal_.open(journalPath_,
                  std::ios::binary | std::ios::out | std::ios::app);
    if (!journal_) {
        err = "cannot open result journal '" + journalPath_ +
              "' for append";
        return false;
    }
    return true;
}

bool
ResultStore::open(
    const std::string &dir,
    const std::function<void(std::uint64_t, const std::string &)>
        &onRecord,
    std::string &err)
{
    dir_ = dir;
    if (dir_.empty())
        return true;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        err = "cannot create result store dir '" + dir_ +
              "': " + ec.message();
        dir_.clear();
        return false;
    }

    // Sealed segments replay oldest-first (names sort by sequence
    // number), then the journal; duplicate keys keep the first payload
    // because the server's cache inserts with emplace.
    std::vector<std::filesystem::path> segments;
    for (const auto &e : std::filesystem::directory_iterator(dir_, ec)) {
        if (!e.is_regular_file())
            continue;
        const std::string name = e.path().filename().string();
        if (name.rfind("results-", 0) == 0 && name.size() > 12 &&
            name.compare(name.size() - 4, 4, ".seg") == 0) {
            segments.push_back(e.path());
            const std::uint64_t n = std::strtoull(
                name.c_str() + std::strlen("results-"), nullptr, 10);
            nextSegment_ = std::max(nextSegment_, n + 1);
        }
    }
    std::sort(segments.begin(), segments.end());
    for (const auto &seg : segments) {
        loadFile(seg.string(), onRecord);
        ++stats_.segments;
        std::error_code sec;
        stats_.bytes += std::filesystem::file_size(seg, sec);
    }

    journalPath_ =
        (std::filesystem::path(dir_) / "results.wal").string();
    if (std::filesystem::exists(journalPath_, ec)) {
        const std::uint64_t valid = loadFile(journalPath_, onRecord);
        std::error_code sec;
        const std::uint64_t size =
            std::filesystem::file_size(journalPath_, sec);
        if (!sec && valid < size) {
            // Trim the torn tail so future appends extend a clean
            // prefix rather than burying records behind garbage.
            std::filesystem::resize_file(journalPath_, valid, sec);
            std::fprintf(stderr,
                         "stacknoc_serve: result store: journal "
                         "truncated from %llu to %llu bytes after "
                         "recovery\n",
                         static_cast<unsigned long long>(size),
                         static_cast<unsigned long long>(valid));
        }
        journalBytes_ = valid;
        stats_.bytes += valid;
    }
    return openJournal(err);
}

bool
ResultStore::append(std::uint64_t key, const std::string &payload)
{
    if (dir_.empty())
        return false;
    std::string rec;
    rec.reserve(kHeaderBytes + payload.size());
    rec.append(kRecordMagic, sizeof kRecordMagic);
    putU32(rec, kStoreVersion);
    putU64(rec, key);
    putU32(rec, static_cast<std::uint32_t>(payload.size()));
    putU64(rec, snapshot::fnv1a(payload.data(), payload.size()));
    rec += payload;

    if (!journal_.is_open()) {
        std::string err;
        if (!openJournal(err)) {
            ++stats_.appendFailures;
            return false;
        }
    }
    journal_.write(rec.data(),
                   static_cast<std::streamsize>(rec.size()));
    journal_.flush();
    if (!journal_) {
        // Disk full or journal gone: report once per failure, clear
        // the stream so a later append can try again, never crash.
        ++stats_.appendFailures;
        std::fprintf(stderr,
                     "stacknoc_serve: result store: append of key "
                     "0x%016llx failed (disk full or journal "
                     "unwritable); result kept in memory only\n",
                     static_cast<unsigned long long>(key));
        journal_.clear();
        return false;
    }
    ++stats_.appends;
    journalBytes_ += rec.size();
    stats_.bytes += rec.size();
    if (journalBytes_ >= segmentCapBytes_)
        seal();
    return true;
}

void
ResultStore::seal()
{
    if (dir_.empty() || journalBytes_ == 0)
        return;
    journal_.flush();
    journal_.close();
    const std::string seg =
        (std::filesystem::path(dir_) / segmentName(nextSegment_))
            .string();
    std::error_code ec;
    std::filesystem::rename(journalPath_, seg, ec);
    if (ec) {
        // Keep appending to the journal; sealing is an optimisation.
        std::fprintf(stderr,
                     "stacknoc_serve: result store: seal rename to %s "
                     "failed: %s\n",
                     seg.c_str(), ec.message().c_str());
    } else {
        ++nextSegment_;
        ++stats_.segments;
        journalBytes_ = 0;
    }
    std::string err;
    if (!openJournal(err))
        std::fprintf(stderr, "stacknoc_serve: result store: %s\n",
                     err.c_str());
}

} // namespace stacknoc::server
