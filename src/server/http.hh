/**
 * @file
 * Minimal HTTP/1.1 request parsing and response rendering for the
 * campaign server's TCP front end (`stacknoc_serve --http PORT`).
 *
 * Deliberately tiny: enough of HTTP to serve `GET /metrics`,
 * `GET /status` and `POST /run` to curl, Prometheus scrapers and
 * off-host scripts. One request per connection (every response sends
 * `Connection: close`), bodies are delimited by `Content-Length` only
 * (no chunked encoding), headers beyond Content-Length are ignored.
 * The CampaignServer owns the sockets; this file is pure
 * byte-in/byte-out so it is unit-testable without a socket.
 */

#ifndef STACKNOC_SERVER_HTTP_HH
#define STACKNOC_SERVER_HTTP_HH

#include <string>

namespace stacknoc::server {

struct HttpRequest
{
    std::string method; //!< "GET", "POST", ... (upper-case as sent)
    std::string path;   //!< request target, e.g. "/metrics"
    std::string body;   //!< Content-Length bytes (may be empty)
};

/**
 * Try to parse one complete request from the front of @p buf,
 * consuming it on success.
 *
 * @return 1 and fill @p req when a full request was consumed; 0 when
 *         more bytes are needed; -1 (with a one-line @p err) on a
 *         malformed or oversized request — the caller should answer
 *         400 and close.
 */
int parseHttpRequest(std::string &buf, HttpRequest &req,
                     std::string &err);

/** Render a full response with Content-Length and Connection: close. */
std::string httpResponse(int status, const std::string &contentType,
                         const std::string &body);

/** Canonical reason phrase ("OK", "Not Found", ...). */
const char *httpStatusText(int status);

/** The Prometheus text exposition content type. */
inline const char *
metricsContentType()
{
    return "text/plain; version=0.0.4; charset=utf-8";
}

} // namespace stacknoc::server

#endif // STACKNOC_SERVER_HTTP_HH
