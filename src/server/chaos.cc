#include "server/chaos.hh"

#include <cstdlib>

namespace stacknoc::server {

namespace {

/** SplitMix64 step; the standard finalizer gives a full avalanche, so
 *  consecutive (jobId, attempt) keys draw independently. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

const char *
chaosGrammar()
{
    return "kill-worker=P,corrupt-ckpt=P,slow-worker=P  (each term "
           "optional, P in [0,1])";
}

std::string
parseChaosSpec(const std::string &spec, ChaosSpec &out)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string term = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (term.empty())
            return "empty chaos term";
        const std::size_t eq = term.find('=');
        if (eq == std::string::npos)
            return "chaos term '" + term + "' has no '=P'";
        const std::string key = term.substr(0, eq);
        const std::string val = term.substr(eq + 1);
        char *end = nullptr;
        const double p = std::strtod(val.c_str(), &end);
        if (val.empty() || end == nullptr || *end != '\0')
            return "chaos probability '" + val + "' is not a number";
        if (p < 0.0 || p > 1.0)
            return "chaos probability " + val + " outside [0,1]";
        if (key == "kill-worker")
            out.killWorker = p;
        else if (key == "corrupt-ckpt")
            out.corruptCkpt = p;
        else if (key == "slow-worker")
            out.slowWorker = p;
        else
            return "unknown chaos key '" + key + "'";
    }
    return "";
}

bool
chaosDraw(const ChaosSpec &spec, ChaosSite site, std::uint64_t jobId,
          int attempt, double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    std::uint64_t x = spec.seed;
    x = splitmix64(x ^ (jobId * 0x100000001b3ull));
    x = splitmix64(x ^ (static_cast<std::uint64_t>(attempt) << 32) ^
                   static_cast<std::uint64_t>(site));
    // 53-bit mantissa → uniform double in [0,1).
    const double u =
        static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
    return u < p;
}

} // namespace stacknoc::server
