/**
 * @file
 * Fundamental scalar types shared by every stacknoc module.
 */

#ifndef STACKNOC_COMMON_TYPES_HH
#define STACKNOC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace stacknoc {

/** Simulation time in clock cycles (3 GHz core clock in the paper). */
using Cycle = std::uint64_t;

/** Sentinel for "never" / "not scheduled". */
constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/**
 * Flat node identifier. In the two-layer 8x8 configuration of the paper,
 * nodes 0..63 form the core layer and 64..127 the cache layer, row-major
 * within each layer.
 */
using NodeId = std::int32_t;

/** Sentinel for an invalid node. */
constexpr NodeId kInvalidNode = -1;

/** Cache-block address (already shifted right by log2(block size)). */
using BlockAddr = std::uint64_t;

/** Index of a core (0..numCores-1). */
using CoreId = std::int32_t;

/** Index of an L2 cache bank (0..numBanks-1). */
using BankId = std::int32_t;

/** Sentinel for an invalid bank. */
constexpr BankId kInvalidBank = -1;

} // namespace stacknoc

#endif // STACKNOC_COMMON_TYPES_HH
