/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  - an internal invariant was violated (a stacknoc bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something works but not as well as it should.
 * inform() - plain status output.
 * debug()  - diagnostic detail, off unless STACKNOC_LOG=debug|trace.
 * trace()  - per-event firehose, off unless STACKNOC_LOG=trace.
 */

#ifndef STACKNOC_COMMON_LOGGING_HH
#define STACKNOC_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace stacknoc {

namespace detail {

/** Formats printf-style arguments into a std::string. */
std::string vformat(const char *fmt, std::va_list args);

/** printf-style convenience wrapper around vformat(). */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);
void traceImpl(const std::string &msg);

} // namespace detail

/** Global verbosity switch; when false, inform() output is suppressed. */
void setVerbose(bool verbose);

/** @return current verbosity. */
bool verbose();

/**
 * Diagnostic log levels beyond inform(), for telemetry and other
 * subsystem internals. Off by default; enabled by the STACKNOC_LOG
 * environment variable ("debug" or "trace", case-sensitive), read once
 * at first use. setLogLevel() overrides the environment (tests).
 */
enum class LogLevel : int { Off = 0, Debug = 1, Trace = 2 };

/** @return the active diagnostic level. */
LogLevel logLevel();

/** Override the environment-configured level. */
void setLogLevel(LogLevel level);

/** @return whether messages at @p level are emitted. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(logLevel()) >= static_cast<int>(level);
}

} // namespace stacknoc

/** Abort on a simulator bug. Never use for user errors. */
#define panic(...) \
    ::stacknoc::detail::panicImpl(__FILE__, __LINE__, \
                                  ::stacknoc::detail::format(__VA_ARGS__))

/** Exit(1) on a user/configuration error. */
#define fatal(...) \
    ::stacknoc::detail::fatalImpl(__FILE__, __LINE__, \
                                  ::stacknoc::detail::format(__VA_ARGS__))

/** Warn about degraded but survivable behaviour. */
#define warn(...) \
    ::stacknoc::detail::warnImpl(::stacknoc::detail::format(__VA_ARGS__))

/** Informational message (suppressed when not verbose). */
#define inform(...) \
    ::stacknoc::detail::informImpl(::stacknoc::detail::format(__VA_ARGS__))

/** Diagnostic message, gated by STACKNOC_LOG=debug (or trace). */
#define debug(...)                                                        \
    do {                                                                  \
        if (::stacknoc::logEnabled(::stacknoc::LogLevel::Debug)) {        \
            ::stacknoc::detail::debugImpl(                                \
                ::stacknoc::detail::format(__VA_ARGS__));                 \
        }                                                                 \
    } while (0)

/** Per-event diagnostic message, gated by STACKNOC_LOG=trace. */
#define trace(...)                                                        \
    do {                                                                  \
        if (::stacknoc::logEnabled(::stacknoc::LogLevel::Trace)) {        \
            ::stacknoc::detail::traceImpl(                                \
                ::stacknoc::detail::format(__VA_ARGS__));                 \
        }                                                                 \
    } while (0)

/** panic() unless the given invariant holds. */
#define panic_if(cond, ...)            \
    do {                               \
        if (cond) {                    \
            panic(__VA_ARGS__);        \
        }                              \
    } while (0)

/** fatal() unless the given user-facing requirement holds. */
#define fatal_if(cond, ...)            \
    do {                               \
        if (cond) {                    \
            fatal(__VA_ARGS__);        \
        }                              \
    } while (0)

#endif // STACKNOC_COMMON_LOGGING_HH
