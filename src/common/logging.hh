/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  - an internal invariant was violated (a stacknoc bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something works but not as well as it should.
 * inform() - plain status output.
 */

#ifndef STACKNOC_COMMON_LOGGING_HH
#define STACKNOC_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace stacknoc {

namespace detail {

/** Formats printf-style arguments into a std::string. */
std::string vformat(const char *fmt, std::va_list args);

/** printf-style convenience wrapper around vformat(). */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Global verbosity switch; when false, inform() output is suppressed. */
void setVerbose(bool verbose);

/** @return current verbosity. */
bool verbose();

} // namespace stacknoc

/** Abort on a simulator bug. Never use for user errors. */
#define panic(...) \
    ::stacknoc::detail::panicImpl(__FILE__, __LINE__, \
                                  ::stacknoc::detail::format(__VA_ARGS__))

/** Exit(1) on a user/configuration error. */
#define fatal(...) \
    ::stacknoc::detail::fatalImpl(__FILE__, __LINE__, \
                                  ::stacknoc::detail::format(__VA_ARGS__))

/** Warn about degraded but survivable behaviour. */
#define warn(...) \
    ::stacknoc::detail::warnImpl(::stacknoc::detail::format(__VA_ARGS__))

/** Informational message (suppressed when not verbose). */
#define inform(...) \
    ::stacknoc::detail::informImpl(::stacknoc::detail::format(__VA_ARGS__))

/** panic() unless the given invariant holds. */
#define panic_if(cond, ...)            \
    do {                               \
        if (cond) {                    \
            panic(__VA_ARGS__);        \
        }                              \
    } while (0)

/** fatal() unless the given user-facing requirement holds. */
#define fatal_if(cond, ...)            \
    do {                               \
        if (cond) {                    \
            fatal(__VA_ARGS__);        \
        }                              \
    } while (0)

#endif // STACKNOC_COMMON_LOGGING_HH
