#include "common/cli.hh"

#include <algorithm>
#include <cstdio>

namespace stacknoc::cli {

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    const std::size_t n = a.size(), m = b.size();
    std::vector<std::size_t> row(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        std::size_t prev_diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t del = row[j] + 1;
            const std::size_t ins = row[j - 1] + 1;
            const std::size_t sub =
                prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            prev_diag = row[j];
            row[j] = std::min({del, ins, sub});
        }
    }
    return row[m];
}

std::string
closestOption(const std::string &arg,
              const std::vector<std::string> &options)
{
    std::string best;
    std::size_t best_dist = arg.size() / 2 + 1; // plausibility cutoff
    for (const auto &opt : options) {
        const std::size_t d = editDistance(arg, opt);
        if (d < best_dist) {
            best_dist = d;
            best = opt;
        }
    }
    return best;
}

void
reportUnknownOption(const char *tool, const std::string &arg,
                    const std::vector<std::string> &options)
{
    std::fprintf(stderr, "%s: unknown option '%s'", tool, arg.c_str());
    const std::string hint = closestOption(arg, options);
    if (!hint.empty())
        std::fprintf(stderr, " (did you mean '%s'?)", hint.c_str());
    std::fprintf(stderr, "\n");
}

} // namespace stacknoc::cli
