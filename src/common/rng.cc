#include "common/rng.hh"

namespace stacknoc {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    // Avoid the all-zero state (astronomically unlikely, but cheap to fix).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    // Lemire-style rejection-free mapping is fine for simulation purposes;
    // modulo bias is negligible for the bounds we use (<= 2^32).
    return next() % bound;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double probability)
{
    if (probability <= 0.0)
        return false;
    if (probability >= 1.0)
        return true;
    return uniform() < probability;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo + 1)));
}

std::uint32_t
Rng::burstLength(double continue_prob, std::uint32_t max_len)
{
    std::uint32_t len = 1;
    while (len < max_len && chance(continue_prob))
        ++len;
    return len;
}

} // namespace stacknoc
