/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic component in stacknoc owns its own Rng seeded from the
 * experiment seed, so results are bit-identical across runs and do not
 * depend on component tick order.
 */

#ifndef STACKNOC_COMMON_RNG_HH
#define STACKNOC_COMMON_RNG_HH

#include <cstdint>

namespace stacknoc {

namespace snapshot {
class StateIO;
} // namespace snapshot

/**
 * xoshiro256** generator (Blackman & Vigna). Small, fast, and good enough
 * statistical quality for workload synthesis.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion so any 64-bit seed is acceptable. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound) (bound must be > 0). */
    std::uint64_t below(std::uint64_t bound);

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return true with the given probability (clamped to [0,1]). */
    bool chance(double probability);

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Geometric-ish bounded burst length in [1, max_len]. */
    std::uint32_t burstLength(double continue_prob, std::uint32_t max_len);

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore of s_
    std::uint64_t s_[4];
};

} // namespace stacknoc

#endif // STACKNOC_COMMON_RNG_HH
