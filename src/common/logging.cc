#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace stacknoc {

namespace {

bool g_verbose = true;

LogLevel
levelFromEnv()
{
    const char *v = std::getenv("STACKNOC_LOG");
    if (!v || !*v)
        return LogLevel::Off;
    const std::string s(v);
    if (s == "trace")
        return LogLevel::Trace;
    if (s == "debug")
        return LogLevel::Debug;
    if (s != "off" && s != "0") {
        std::fprintf(stderr,
                     "warn: STACKNOC_LOG='%s' not recognised "
                     "(use debug|trace)\n", v);
    }
    return LogLevel::Off;
}

LogLevel g_log_level = LogLevel::Off;
bool g_log_level_set = false;

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

LogLevel
logLevel()
{
    if (!g_log_level_set) {
        g_log_level = levelFromEnv();
        g_log_level_set = true;
    }
    return g_log_level;
}

void
setLogLevel(LogLevel level)
{
    g_log_level = level;
    g_log_level_set = true;
}

namespace detail {

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (n < 0)
        return std::string(fmt);
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
format(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_verbose)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
traceImpl(const std::string &msg)
{
    std::fprintf(stderr, "trace: %s\n", msg.c_str());
}

} // namespace detail

} // namespace stacknoc
