/**
 * @file
 * Coordinates for the two-layer 3D mesh used throughout the paper.
 *
 * Node numbering is row-major within a layer; layer 0 is the core layer,
 * layer 1 the stacked cache layer. For the paper's 8x8x2 configuration,
 * core nodes are 0..63 and cache nodes 64..127, matching Figure 4.
 */

#ifndef STACKNOC_COMMON_GEOMETRY_HH
#define STACKNOC_COMMON_GEOMETRY_HH

#include <cstdlib>

#include "common/types.hh"

namespace stacknoc {

/** A position in the two-layer mesh. */
struct Coord
{
    int x = 0;     //!< column, 0..width-1
    int y = 0;     //!< row, 0..height-1
    int layer = 0; //!< 0 = core layer, 1 = cache layer

    bool operator==(const Coord &o) const = default;
};

/**
 * Dimensions of the stacked mesh and the node<->coordinate mapping.
 * Immutable after construction.
 */
class MeshShape
{
  public:
    MeshShape(int width, int height, int layers)
        : width_(width), height_(height), layers_(layers)
    {}

    int width() const { return width_; }
    int height() const { return height_; }
    int layers() const { return layers_; }
    int nodesPerLayer() const { return width_ * height_; }
    int totalNodes() const { return nodesPerLayer() * layers_; }

    /** @return flat node id of a coordinate. */
    NodeId
    node(const Coord &c) const
    {
        return static_cast<NodeId>(
            c.layer * nodesPerLayer() + c.y * width_ + c.x);
    }

    NodeId node(int x, int y, int layer) const { return node({x, y, layer}); }

    /** @return coordinate of a flat node id. */
    Coord
    coord(NodeId n) const
    {
        const int per = nodesPerLayer();
        Coord c;
        c.layer = static_cast<int>(n) / per;
        const int rem = static_cast<int>(n) % per;
        c.y = rem / width_;
        c.x = rem % width_;
        return c;
    }

    bool
    contains(const Coord &c) const
    {
        return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_ &&
               c.layer >= 0 && c.layer < layers_;
    }

    /** Manhattan distance counting the inter-layer hop as one hop. */
    int
    hopDistance(NodeId a, NodeId b) const
    {
        const Coord ca = coord(a);
        const Coord cb = coord(b);
        return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y) +
               std::abs(ca.layer - cb.layer);
    }

    /** In-layer Manhattan distance (ignores the layer coordinate). */
    int
    planarDistance(NodeId a, NodeId b) const
    {
        const Coord ca = coord(a);
        const Coord cb = coord(b);
        return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
    }

  private:
    int width_;
    int height_;
    int layers_;
};

} // namespace stacknoc

#endif // STACKNOC_COMMON_GEOMETRY_HH
