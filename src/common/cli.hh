/**
 * @file
 * Small command-line helpers shared by the tools: unknown-flag
 * suggestions ("did you mean --cycles?") so typos fail loudly instead
 * of being silently ignored.
 */

#ifndef STACKNOC_COMMON_CLI_HH
#define STACKNOC_COMMON_CLI_HH

#include <string>
#include <vector>

namespace stacknoc::cli {

/**
 * Case-sensitive Levenshtein edit distance between @p a and @p b.
 * O(|a|*|b|) time, O(min) memory — fine for option names.
 */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * @return the option in @p options closest to @p arg by edit distance,
 * or an empty string when nothing is plausibly close (distance greater
 * than half the typed flag's length, so "--frobnicate" suggests
 * nothing rather than something absurd).
 */
std::string closestOption(const std::string &arg,
                          const std::vector<std::string> &options);

/**
 * Print "unknown option 'X'" plus a "did you mean" hint (when one is
 * plausible) to stderr. The caller decides the exit path.
 */
void reportUnknownOption(const char *tool, const std::string &arg,
                         const std::vector<std::string> &options);

} // namespace stacknoc::cli

#endif // STACKNOC_COMMON_CLI_HH
