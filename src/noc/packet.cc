#include "noc/packet.hh"

#include <array>

#include "common/logging.hh"

namespace stacknoc::noc {

int
vnetOf(PacketClass cls)
{
    switch (cls) {
      case PacketClass::ReadReq:
      case PacketClass::WriteReq:
      case PacketClass::MemReq:
        return kVnetReq;
      case PacketClass::StoreWrite:
      case PacketClass::WritebackReq:
      case PacketClass::MemWrite:
        return kVnetWb;
      case PacketClass::DataResp:
      case PacketClass::Ack:
      case PacketClass::MemResp:
      case PacketClass::ProbeAck:
      case PacketClass::BusyNack:
        return kVnetResp;
      case PacketClass::CohCtrl:
      case PacketClass::CohData:
        return kVnetCoh;
      default:
        panic("vnetOf: bad packet class %d", static_cast<int>(cls));
    }
}

const char *
packetClassName(PacketClass cls)
{
    switch (cls) {
      case PacketClass::ReadReq: return "ReadReq";
      case PacketClass::WriteReq: return "WriteReq";
      case PacketClass::StoreWrite: return "StoreWrite";
      case PacketClass::WritebackReq: return "WritebackReq";
      case PacketClass::CohCtrl: return "CohCtrl";
      case PacketClass::CohData: return "CohData";
      case PacketClass::DataResp: return "DataResp";
      case PacketClass::Ack: return "Ack";
      case PacketClass::MemReq: return "MemReq";
      case PacketClass::MemWrite: return "MemWrite";
      case PacketClass::MemResp: return "MemResp";
      case PacketClass::ProbeAck: return "ProbeAck";
      case PacketClass::BusyNack: return "BusyNack";
      default: return "Unknown";
    }
}

bool
isRestrictedRequest(PacketClass cls)
{
    return cls == PacketClass::ReadReq || cls == PacketClass::WriteReq ||
           cls == PacketClass::StoreWrite ||
           cls == PacketClass::WritebackReq;
}

bool
isLongBankWrite(PacketClass cls)
{
    return cls == PacketClass::StoreWrite ||
           cls == PacketClass::WritebackReq;
}

std::string
Packet::toString() const
{
    return detail::format("pkt%llu %s %d->%d flits=%d addr=%llx",
                          static_cast<unsigned long long>(id),
                          packetClassName(cls), src, dest, numFlits,
                          static_cast<unsigned long long>(addr));
}

namespace {

bool
isLineTransfer(PacketClass cls)
{
    switch (cls) {
      case PacketClass::CohData:
      case PacketClass::DataResp:
      case PacketClass::MemWrite:
      case PacketClass::MemResp:
        return true;
      default:
        return false;
    }
}

// One id stream per source node: slot 0 is kInvalidNode (tests may mint
// packets with no source), slots 1..4096 are nodes 0..4095. Streams are
// plain (non-atomic) because each is only ever advanced by components at
// its node, which all tick on the same shard; distinct streams are
// distinct memory locations, so no two threads touch the same counter.
constexpr std::size_t kMaxIdStreams = 4097;
constexpr int kIdStreamShift = 40;
std::array<std::uint64_t, kMaxIdStreams> next_seq{};

} // namespace

void
resetPacketIds()
{
    next_seq.fill(0);
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
savePacketIdStreams()
{
    std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
    for (std::size_t i = 0; i < kMaxIdStreams; ++i) {
        if (next_seq[i] != 0)
            out.emplace_back(static_cast<std::uint32_t>(i), next_seq[i]);
    }
    return out;
}

void
restorePacketIdStreams(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>> &streams)
{
    next_seq.fill(0);
    for (const auto &[idx, seq] : streams) {
        panic_if(idx >= kMaxIdStreams,
                 "restorePacketIdStreams: stream %u out of range", idx);
        next_seq[idx] = seq;
    }
}

PacketPtr
makePacket(PacketClass cls, NodeId src, NodeId dest, BlockAddr addr,
           int data_flits)
{
    const auto stream = static_cast<std::size_t>(src + 1);
    panic_if(src < -1 || stream >= kMaxIdStreams,
             "makePacket: source node %d outside the id-stream range",
             src);
    const std::uint64_t seq = ++next_seq[stream];
    panic_if(seq >= (1ULL << kIdStreamShift),
             "makePacket: id stream for node %d overflowed", src);
    auto pkt = std::make_shared<Packet>();
    pkt->id = (static_cast<std::uint64_t>(stream) << kIdStreamShift) | seq;
    pkt->cls = cls;
    pkt->src = src;
    pkt->dest = dest;
    pkt->addr = addr;
    pkt->numFlits = cls == PacketClass::WritebackReq
                        ? kWritebackFlits
                        : cls == PacketClass::StoreWrite
                              ? kStoreWriteFlits
                              : (isLineTransfer(cls) ? data_flits : 1);
    return pkt;
}

} // namespace stacknoc::noc
