#include "noc/packet.hh"

#include <atomic>

#include "common/logging.hh"

namespace stacknoc::noc {

int
vnetOf(PacketClass cls)
{
    switch (cls) {
      case PacketClass::ReadReq:
      case PacketClass::WriteReq:
      case PacketClass::MemReq:
        return kVnetReq;
      case PacketClass::StoreWrite:
      case PacketClass::WritebackReq:
      case PacketClass::MemWrite:
        return kVnetWb;
      case PacketClass::DataResp:
      case PacketClass::Ack:
      case PacketClass::MemResp:
      case PacketClass::ProbeAck:
        return kVnetResp;
      case PacketClass::CohCtrl:
      case PacketClass::CohData:
        return kVnetCoh;
      default:
        panic("vnetOf: bad packet class %d", static_cast<int>(cls));
    }
}

const char *
packetClassName(PacketClass cls)
{
    switch (cls) {
      case PacketClass::ReadReq: return "ReadReq";
      case PacketClass::WriteReq: return "WriteReq";
      case PacketClass::StoreWrite: return "StoreWrite";
      case PacketClass::WritebackReq: return "WritebackReq";
      case PacketClass::CohCtrl: return "CohCtrl";
      case PacketClass::CohData: return "CohData";
      case PacketClass::DataResp: return "DataResp";
      case PacketClass::Ack: return "Ack";
      case PacketClass::MemReq: return "MemReq";
      case PacketClass::MemWrite: return "MemWrite";
      case PacketClass::MemResp: return "MemResp";
      case PacketClass::ProbeAck: return "ProbeAck";
      default: return "Unknown";
    }
}

bool
isRestrictedRequest(PacketClass cls)
{
    return cls == PacketClass::ReadReq || cls == PacketClass::WriteReq ||
           cls == PacketClass::StoreWrite ||
           cls == PacketClass::WritebackReq;
}

bool
isLongBankWrite(PacketClass cls)
{
    return cls == PacketClass::StoreWrite ||
           cls == PacketClass::WritebackReq;
}

std::string
Packet::toString() const
{
    return detail::format("pkt%llu %s %d->%d flits=%d addr=%llx",
                          static_cast<unsigned long long>(id),
                          packetClassName(cls), src, dest, numFlits,
                          static_cast<unsigned long long>(addr));
}

namespace {

bool
isLineTransfer(PacketClass cls)
{
    switch (cls) {
      case PacketClass::CohData:
      case PacketClass::DataResp:
      case PacketClass::MemWrite:
      case PacketClass::MemResp:
        return true;
      default:
        return false;
    }
}

} // namespace

PacketPtr
makePacket(PacketClass cls, NodeId src, NodeId dest, BlockAddr addr,
           int data_flits)
{
    static std::atomic<std::uint64_t> next_id{1};
    auto pkt = std::make_shared<Packet>();
    pkt->id = next_id.fetch_add(1, std::memory_order_relaxed);
    pkt->cls = cls;
    pkt->src = src;
    pkt->dest = dest;
    pkt->addr = addr;
    pkt->numFlits = cls == PacketClass::WritebackReq
                        ? kWritebackFlits
                        : cls == PacketClass::StoreWrite
                              ? kStoreWriteFlits
                              : (isLineTransfer(cls) ? data_flits : 1);
    return pkt;
}

} // namespace stacknoc::noc
