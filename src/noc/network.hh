/**
 * @file
 * The assembled 3D network: topology, routers, NIs, and their wiring.
 */

#ifndef STACKNOC_NOC_NETWORK_HH
#define STACKNOC_NOC_NETWORK_HH

#include <memory>
#include <vector>

#include "common/geometry.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "noc/network_interface.hh"
#include "noc/params.hh"
#include "noc/policy.hh"
#include "noc/router.hh"
#include "noc/routing.hh"
#include "noc/topology.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::noc {

/**
 * Builds a complete two-layer mesh network and registers every router and
 * NI with the Simulator. The Network owns the topology, the routing
 * function, the routers, the NIs, and the NI-router links; the arbitration
 * policy is owned by the caller (it usually needs wider system knowledge).
 */
class Network
{
  public:
    /**
     * @param sim simulator to register components with.
     * @param shape mesh dimensions.
     * @param params network parameters.
     * @param routing routing function (ownership transferred).
     * @param policy arbitration policy; must outlive the Network.
     */
    Network(Simulator &sim, const MeshShape &shape, const NocParams &params,
            std::unique_ptr<RoutingFunction> routing,
            ArbitrationPolicy &policy);

    Router &router(NodeId n) { return *routers_.at(std::size_t(n)); }
    const Router &router(NodeId n) const
    {
        return *routers_.at(std::size_t(n));
    }

    NetworkInterface &ni(NodeId n) { return *nis_.at(std::size_t(n)); }

    /** Attach @p fi to every router (stuck windows) and NI (link CRC +
     *  retransmission). Null detaches. */
    void
    setFaultInjector(fault::FaultInjector *fi)
    {
        for (auto &r : routers_)
            r->setFaultInjector(fi);
        for (auto &ni : nis_)
            ni->setFaultInjector(fi);
    }

    Topology &topology() { return topo_; }
    const Topology &topology() const { return topo_; }

    const MeshShape &shape() const { return topo_.shape(); }
    const NocParams &params() const { return params_; }
    const RoutingFunction &routing() const { return *routing_; }

    stats::Group &stats() { return stats_; }
    const stats::Group &stats() const { return stats_; }

    /** Sum of flits buffered in every router (for drain checks). */
    int totalBufferedFlits() const;

    /** The NI -> router Local-port link of node @p n (validation). */
    const Link &niToRouterLink(NodeId n) const
    {
        return *niLinks_.at(2 * std::size_t(n));
    }

    /** The router -> NI Local-port link of node @p n (validation). */
    const Link &routerToNiLink(NodeId n) const
    {
        return *niLinks_.at(2 * std::size_t(n) + 1);
    }

    const NetworkInterface &ni(NodeId n) const
    {
        return *nis_.at(std::size_t(n));
    }

  private:
    friend class snapshot::StateIO; //!< checkpoints the NI-router links
    NocParams params_;
    stats::Group stats_;
    Topology topo_;
    std::unique_ptr<RoutingFunction> routing_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;
    std::vector<std::unique_ptr<Link>> niLinks_;
};

} // namespace stacknoc::noc

#endif // STACKNOC_NOC_NETWORK_HH
