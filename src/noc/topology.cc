#include "noc/topology.hh"

#include "common/logging.hh"

namespace stacknoc::noc {

const char *
dirName(Dir d)
{
    switch (d) {
      case Dir::Local: return "L";
      case Dir::East: return "E";
      case Dir::West: return "W";
      case Dir::North: return "N";
      case Dir::South: return "S";
      case Dir::Up: return "U";
      case Dir::Down: return "D";
      default: return "?";
    }
}

Dir
opposite(Dir d)
{
    switch (d) {
      case Dir::East: return Dir::West;
      case Dir::West: return Dir::East;
      case Dir::North: return Dir::South;
      case Dir::South: return Dir::North;
      case Dir::Up: return Dir::Down;
      case Dir::Down: return Dir::Up;
      default: return Dir::Local;
    }
}

Topology::Topology(const MeshShape &shape, Cycle link_latency,
                   int link_bandwidth)
    : shape_(shape), linkLatency_(link_latency),
      linkBandwidth_(link_bandwidth),
      links_(static_cast<std::size_t>(shape.totalNodes()))
{
    for (NodeId n = 0; n < shape_.totalNodes(); ++n) {
        for (int d = 1; d < kNumDirs; ++d) {
            const Dir dir = static_cast<Dir>(d);
            if (neighbor(n, dir) != kInvalidNode) {
                links_[static_cast<std::size_t>(n)][static_cast<std::size_t>(
                    d)] = std::make_unique<Link>(linkLatency_,
                                                 linkBandwidth_);
            }
        }
    }
}

NodeId
Topology::neighbor(NodeId n, Dir d) const
{
    Coord c = shape_.coord(n);
    switch (d) {
      case Dir::East: c.x += 1; break;
      case Dir::West: c.x -= 1; break;
      // Rows grow southward: North decreases y, South increases y.
      case Dir::North: c.y -= 1; break;
      case Dir::South: c.y += 1; break;
      case Dir::Up: c.layer -= 1; break;
      case Dir::Down: c.layer += 1; break;
      default: return kInvalidNode;
    }
    if (!shape_.contains(c))
        return kInvalidNode;
    return shape_.node(c);
}

Link *
Topology::linkOut(NodeId n, Dir d)
{
    return links_.at(static_cast<std::size_t>(n))[static_cast<std::size_t>(
        static_cast<int>(d))].get();
}

const Link *
Topology::linkOut(NodeId n, Dir d) const
{
    return links_.at(static_cast<std::size_t>(n))[static_cast<std::size_t>(
        static_cast<int>(d))].get();
}

void
Topology::widenDownLink(NodeId core_node, int bandwidth)
{
    Link *link = linkOut(core_node, Dir::Down);
    panic_if(link == nullptr, "node %d has no Down link", core_node);
    link->bandwidth = bandwidth;
}

} // namespace stacknoc::noc
