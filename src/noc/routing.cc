#include "noc/routing.hh"

#include "common/logging.hh"

namespace stacknoc::noc {

int
RoutingFunction::pathLength(NodeId from, const Packet &pkt,
                            const Topology &topo) const
{
    int hops = 0;
    NodeId here = from;
    while (here != pkt.dest) {
        const Dir d = route(here, pkt);
        panic_if(d == Dir::Local, "routing stalled at node %d for %s",
                 here, pkt.toString().c_str());
        here = topo.neighbor(here, d);
        panic_if(here == kInvalidNode, "routing walked off the mesh");
        ++hops;
        panic_if(hops > topo.shape().totalNodes(),
                 "routing loop detected for %s", pkt.toString().c_str());
    }
    return hops;
}

Dir
ZxyRouting::xyStep(const Coord &here, const Coord &to)
{
    if (here.x < to.x)
        return Dir::East;
    if (here.x > to.x)
        return Dir::West;
    if (here.y < to.y)
        return Dir::South;
    if (here.y > to.y)
        return Dir::North;
    return Dir::Local;
}

Dir
ZxyRouting::route(NodeId here, const Packet &pkt) const
{
    const Coord c = shape_.coord(here);
    const Coord d = shape_.coord(pkt.dest);
    if (c.layer < d.layer)
        return Dir::Down;
    if (c.layer > d.layer)
        return Dir::Up;
    return xyStep(c, d);
}

} // namespace stacknoc::noc
