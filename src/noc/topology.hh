/**
 * @file
 * The two-layer stacked mesh topology: port directions, link objects, and
 * the wiring between routers.
 */

#ifndef STACKNOC_NOC_TOPOLOGY_HH
#define STACKNOC_NOC_TOPOLOGY_HH

#include <array>
#include <memory>
#include <vector>

#include "common/geometry.hh"
#include "common/types.hh"
#include "sim/channel.hh"
#include "noc/packet.hh"

namespace stacknoc::noc {

/** Router port directions for the 3D mesh (plus the local NI port). */
enum class Dir : int {
    Local = 0,
    East,
    West,
    North,
    South,
    Up,   //!< toward layer-1 (core layer); used by cache-layer routers
    Down, //!< toward layer+1 (cache layer); used by core-layer routers
    NumDirs
};

constexpr int kNumDirs = static_cast<int>(Dir::NumDirs);

/** @return short name of a direction ("L", "E", ...). */
const char *dirName(Dir d);

/** @return the direction opposite to @p d (Local maps to Local). */
Dir opposite(Dir d);

/**
 * A unidirectional physical link: a forward flit pipe and a backward
 * credit pipe, plus a bandwidth in flits per cycle.
 */
struct Link
{
    Link(Cycle latency, int bandwidth_)
        : data(latency), credit(latency), bandwidth(bandwidth_)
    {}

    Channel<LinkFlit> data;
    Channel<Credit> credit;
    int bandwidth;
};

/**
 * Builds and owns all links of a two-layer mesh. Vertical links exist at
 * every node (the 64 TSVs); the subset playing the role of wide region
 * TSBs is a policy choice applied by widening their bandwidth.
 */
class Topology
{
  public:
    /**
     * @param shape mesh dimensions (layers must be 2 for TSV wiring).
     * @param link_latency per-hop link latency in cycles.
     * @param link_bandwidth flits/cycle on regular links.
     */
    Topology(const MeshShape &shape, Cycle link_latency, int link_bandwidth);

    const MeshShape &shape() const { return shape_; }

    /** @return neighbour of @p n in direction @p d, or kInvalidNode. */
    NodeId neighbor(NodeId n, Dir d) const;

    /** @return the router-to-router link leaving @p n through @p d. */
    Link *linkOut(NodeId n, Dir d);
    const Link *linkOut(NodeId n, Dir d) const;

    /**
     * Widen the core-to-cache (Down) vertical link of @p core_node to
     * @p bandwidth flits per cycle — models a 256-bit region TSB.
     */
    void widenDownLink(NodeId core_node, int bandwidth);

  private:
    MeshShape shape_;
    Cycle linkLatency_;
    int linkBandwidth_;
    /** links_[node][dir] = outgoing link, nullptr when no neighbour. */
    std::vector<std::array<std::unique_ptr<Link>, kNumDirs>> links_;
};

} // namespace stacknoc::noc

#endif // STACKNOC_NOC_TOPOLOGY_HH
