#include "noc/network.hh"

#include "common/logging.hh"

namespace stacknoc::noc {

Network::Network(Simulator &sim, const MeshShape &shape,
                 const NocParams &params,
                 std::unique_ptr<RoutingFunction> routing,
                 ArbitrationPolicy &policy)
    // Router-to-router channels deliver linkLatency+1 cycles after the
    // SA/ST push: the crossbar-traversal cycle and the wire cycle are
    // distinct, giving the paper's 3-cycle hop (2 router + 1 link).
    : params_(params), stats_("net"),
      topo_(shape, params.linkLatency + 1, params.linkBandwidth),
      routing_(std::move(routing))
{
    fatal_if(routing_ == nullptr, "Network requires a routing function");

    const int n = shape.totalNodes();
    routers_.reserve(static_cast<std::size_t>(n));
    nis_.reserve(static_cast<std::size_t>(n));

    for (NodeId id = 0; id < n; ++id) {
        routers_.push_back(std::make_unique<Router>(
            detail::format("net.router%d", id), id, params_, *routing_,
            policy, stats_));
        nis_.push_back(std::make_unique<NetworkInterface>(
            detail::format("net.ni%d", id), id, params_, stats_));
    }

    // Router-to-router wiring through the topology's links.
    for (NodeId id = 0; id < n; ++id) {
        for (int d = 1; d < kNumDirs; ++d) {
            const Dir dir = static_cast<Dir>(d);
            Link *out = topo_.linkOut(id, dir);
            if (!out)
                continue;
            const NodeId nb = topo_.neighbor(id, dir);
            routers_[std::size_t(id)]->connectOut(dir, out);
            routers_[std::size_t(nb)]->connectIn(opposite(dir), out);
            // Idle-elision wakes: a flit wakes the downstream router.
            // Returning credits deliberately do NOT wake the upstream
            // router — it drains them lazily at its next data-driven
            // wake (see Router::quiescent), which keeps pure
            // credit-return traffic from defeating elision.
            out->data.setWakeTarget(routers_[std::size_t(nb)].get());
        }
    }

    // NI <-> router local links.
    for (NodeId id = 0; id < n; ++id) {
        auto to_router = std::make_unique<Link>(params_.linkLatency,
                                                params_.linkBandwidth);
        auto from_router = std::make_unique<Link>(params_.linkLatency,
                                                  params_.linkBandwidth);
        routers_[std::size_t(id)]->connectIn(Dir::Local, to_router.get());
        routers_[std::size_t(id)]->connectOut(Dir::Local,
                                              from_router.get());
        nis_[std::size_t(id)]->connect(to_router.get(), from_router.get());
        to_router->data.setWakeTarget(routers_[std::size_t(id)].get());
        from_router->data.setWakeTarget(nis_[std::size_t(id)].get());
        niLinks_.push_back(std::move(to_router));
        niLinks_.push_back(std::move(from_router));
    }

    // Affinity = mesh column (node id modulo layer size): both layers'
    // router and NI at an (x, y) coordinate tick on the same shard of
    // the parallel engine, so cross-layer TSB pairs never straddle a
    // shard boundary.
    for (auto &r : routers_)
        sim.add(r.get(), r->nodeId() % shape.nodesPerLayer());
    for (auto &ni : nis_)
        sim.add(ni.get(), ni->nodeId() % shape.nodesPerLayer());
}

int
Network::totalBufferedFlits() const
{
    int total = 0;
    for (const auto &r : routers_)
        total += r->bufferedFlits();
    return total;
}

} // namespace stacknoc::noc
