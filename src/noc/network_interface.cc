#include "noc/network_interface.hh"

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "telemetry/trace.hh"

namespace stacknoc::noc {

NetworkInterface::NetworkInterface(std::string niname, NodeId id,
                                   const NocParams &params,
                                   stats::Group &net_stats)
    : Ticking(std::move(niname)), id_(id), params_(params),
      injVcs_(static_cast<std::size_t>(params.totalVcs())),
      ejectVcs_(static_cast<std::size_t>(params.totalVcs())),
      packetsInjected_(net_stats.counter("packets_injected")),
      packetsEjected_(net_stats.counter("packets_ejected")),
      packetsDropped_(net_stats.counter("packets_dropped")),
      netLatency_(net_stats.average("packet_network_latency")),
      totalLatency_(net_stats.average("packet_total_latency")),
      niQueueLatency_(net_stats.average("packet_ni_queue_latency")),
      netLatencyHist_(net_stats.histogram("packet_network_latency_hist")),
      totalLatencyHist_(net_stats.histogram("packet_total_latency_hist"))
{
}

void
NetworkInterface::connect(Link *to_router, Link *from_router)
{
    toRouter_ = to_router;
    fromRouter_ = from_router;
    if (toRouter_ != nullptr)
        toRouter_->credit.setSignalFlag(&creditPending_);
    if (fromRouter_ != nullptr)
        fromRouter_->data.setSignalFlag(&dataPending_);
    for (auto &vc : injVcs_)
        vc.credits = params_.vcDepth;
}

void
NetworkInterface::send(PacketPtr pkt, Cycle now)
{
    panic_if(pkt == nullptr, "NI %d: null packet", id_);
    panic_if(pkt->src != id_, "NI %d: packet source mismatch (%s)", id_,
             pkt->toString().c_str());
    pkt->createdAt = now;
    injectQueue_.push_back(std::move(pkt));
    wake();
}

bool
NetworkInterface::quiescent(Cycle) const
{
    if (!idle())
        return false;
    if (fromRouter_ && fromRouter_->data.inFlight() != 0)
        return false;
    // Injection credits in flight don't block quiescence: tick()
    // drains them before inject() reads the counters, and an idle NI
    // has nothing to inject, so a lazy drain on the next send()-driven
    // wake is bit-identical (see Router::quiescent).
    return true;
}

void
NetworkInterface::tick(Cycle now)
{
    // Credits returned by the router's Local input port. The pending
    // byte is set by every push and re-armed while credits are still
    // inside the link latency, so the poll is skipped only when the
    // channel is provably empty.
    if (toRouter_ && creditPending_ != 0) {
        creditPending_ = 0;
        while (auto c = toRouter_->credit.receive(now)) {
            auto &vc = injVcs_[static_cast<std::size_t>(c->vc)];
            ++vc.credits;
            panic_if(vc.credits > params_.vcDepth,
                     "NI %d: credit overflow", id_);
        }
        if (toRouter_->credit.inFlight() != 0)
            creditPending_ = 1;
    }
    receive(now);
    inject(now);
}

void
NetworkInterface::receive(Cycle now)
{
    if (!fromRouter_)
        return;
    // Arriving flits land in per-VC ejection buffers. Credits return
    // only when a flit is consumed, so a client refusing admission backs
    // traffic up into the router and onward through the network.
    if (dataPending_ != 0) {
        dataPending_ = 0;
        while (auto lf = fromRouter_->data.receive(now)) {
            auto &vc = ejectVcs_[static_cast<std::size_t>(lf->vc)];
            panic_if(static_cast<int>(vc.buffer.size()) >=
                         params_.vcDepth,
                     "NI %d: ejection buffer overflow", id_);
            vc.buffer.push_back(std::move(lf->flit));
        }
        if (fromRouter_->data.inFlight() != 0)
            dataPending_ = 1;
    }
    drainEjectBuffers(now);
}

NetworkClient *
NetworkInterface::targetFor(const Packet &pkt) const
{
    if ((pkt.cls == PacketClass::MemReq ||
         pkt.cls == PacketClass::MemWrite) && memClient_) {
        return memClient_;
    }
    return client_;
}

void
NetworkInterface::drainEjectBuffers(Cycle now)
{
    for (std::size_t v = 0; v < ejectVcs_.size(); ++v) {
        auto &vc = ejectVcs_[v];
        while (!vc.buffer.empty()) {
            Flit &front = vc.buffer.front();
            if (front.head() && !vc.committed && !vc.dropping) {
                // CRC check of the reassembled packet. A corrupted
                // packet is NACKed to its sender and the retransmission
                // occupies the ejector for a fixed round trip; past the
                // retransmit budget the packet is dropped (accounted,
                // never hung).
                if (faults_ && !vc.crcClean) {
                    if (now < vc.retxHoldUntil)
                        break; // retransmission still in flight
                    if (faults_->drawPacketCorruption(front.pkt->src, id_,
                                                      front.pkt->numFlits)) {
                        if (vc.retxAttempts == 0)
                            faults_->notePacketCorrupted();
                        ++vc.retxAttempts;
                        if (vc.retxAttempts
                            > faults_->spec().flitRetries) {
                            faults_->notePacketDropped();
                            vc.dropping = true;
                            // fall through: consume flits, return
                            // credits, never dispatch
                        } else {
                            faults_->noteRetransmit(
                                front.pkt->numFlits);
                            flitsRetransmittedTotal_ +=
                                static_cast<std::uint64_t>(
                                    front.pkt->numFlits);
                            vc.retxHoldUntil =
                                now + faults_->spec().flitRetryPenalty;
                            break;
                        }
                    } else {
                        if (vc.retxAttempts > 0) {
                            faults_->notePacketRecovered(
                                vc.retxAttempts,
                                static_cast<Cycle>(vc.retxAttempts)
                                    * faults_->spec().flitRetryPenalty);
                        }
                        vc.crcClean = true;
                    }
                }
                if (!vc.dropping) {
                    // Admission control happens once, at the head.
                    // ProbeAck, BusyNack and unknown-client packets are
                    // always sunk.
                    NetworkClient *target =
                        front.pkt->cls == PacketClass::ProbeAck
                                || front.pkt->cls == PacketClass::BusyNack
                            ? nullptr
                            : targetFor(*front.pkt);
                    if (target && !target->tryAccept(*front.pkt))
                        break; // hold; no credit returned
                    vc.committed = true;
                    vc.committedPkt = front.pkt;
                }
            }
            fromRouter_->credit.push(now, Credit{static_cast<int>(v)});
            const bool is_tail = front.tail();
            PacketPtr pkt = front.pkt;
            vc.buffer.pop_front();
            if (is_tail && vc.dropping) {
                vc.dropping = false;
                vc.crcClean = false;
                vc.retxAttempts = 0;
                vc.retxHoldUntil = 0;
                packetsDropped_.inc();
                continue;
            }
            if (is_tail) {
                vc.committed = false;
                vc.committedPkt = nullptr;
                vc.crcClean = false;
                vc.retxAttempts = 0;
                vc.retxHoldUntil = 0;
                pkt->ejectedAt = now;
                packetsEjected_.inc();
                if (pkt->injectedAt != kCycleNever) {
                    netLatency_.sample(
                        static_cast<double>(now - pkt->injectedAt));
                    totalLatency_.sample(
                        static_cast<double>(now - pkt->createdAt));
                    netLatencyHist_.sample(now - pkt->injectedAt);
                    totalLatencyHist_.sample(now - pkt->createdAt);
                    if (auto *t = telemetry::tracer();
                        t && t->tracked(pkt->id)) {
                        t->record(telemetry::TraceEvent::Eject, pkt->id,
                                  static_cast<std::uint8_t>(pkt->cls),
                                  id_, now,
                                  static_cast<std::int64_t>(
                                      now - pkt->injectedAt));
                    }
                }
                dispatch(std::move(pkt), now);
            }
        }
    }
}

int
NetworkInterface::ejectBufferedFlits() const
{
    int n = 0;
    for (const auto &vc : ejectVcs_)
        n += static_cast<int>(vc.buffer.size());
    return n;
}

void
NetworkInterface::forEachPendingPacket(
    const std::function<void(const Packet &, bool)> &fn) const
{
    for (const auto &pkt : injectQueue_)
        fn(*pkt, false);
    for (const auto &vc : injVcs_) {
        if (vc.pkt)
            fn(*vc.pkt, vc.nextSeq > 0);
    }
}

void
NetworkInterface::forEachEjectFlit(
    const std::function<void(int, const Flit &, bool)> &fn) const
{
    for (std::size_t v = 0; v < ejectVcs_.size(); ++v) {
        const auto &vc = ejectVcs_[v];
        for (const auto &flit : vc.buffer) {
            fn(static_cast<int>(v), flit,
               vc.committed && flit.pkt == vc.committedPkt);
        }
    }
}

void
NetworkInterface::forEachCommittedPacket(
    const std::function<void(int, const Packet &)> &fn) const
{
    for (std::size_t v = 0; v < ejectVcs_.size(); ++v) {
        const auto &vc = ejectVcs_[v];
        if (vc.committed && vc.committedPkt)
            fn(static_cast<int>(v), *vc.committedPkt);
    }
}

void
NetworkInterface::dispatch(PacketPtr pkt, Cycle now)
{
    if (pkt->cls == PacketClass::ProbeAck) {
        if (probeSink_)
            probeSink_->onProbeAck(*pkt, now);
        return;
    }

    // A bank reporting itself busy past the predicted window (write
    // verify-retry in flight); the parent policy widens its horizon.
    if (pkt->cls == PacketClass::BusyNack) {
        if (probeSink_)
            probeSink_->onBusyNack(*pkt, now);
        return;
    }

    // Echo a window-based-estimator probe back to the parent router node.
    if (pkt->probeStamp >= 0 && pkt->probeParent != kInvalidNode &&
        isRestrictedRequest(pkt->cls)) {
        auto ack = makePacket(PacketClass::ProbeAck, id_, pkt->probeParent);
        ack->info.aux = static_cast<std::uint16_t>(pkt->probeStamp);
        ack->info.origin = static_cast<std::uint32_t>(pkt->destBank);
        send(std::move(ack), now);
    }

    if (NetworkClient *target = targetFor(*pkt))
        target->deliver(std::move(pkt), now);
}

void
NetworkInterface::inject(Cycle now)
{
    if (!toRouter_)
        return;

    // Assign queued packets to free VCs of their virtual network.
    for (auto it = injectQueue_.begin(); it != injectQueue_.end();) {
        const int vn = vnetOf((*it)->cls);
        const int base = params_.vnetBase(vn);
        int free_vc = -1;
        for (int v = base;
             v < base + params_.vcsPerVnet[static_cast<std::size_t>(vn)];
             ++v) {
            if (!injVcs_[static_cast<std::size_t>(v)].pkt) {
                free_vc = v;
                break;
            }
        }
        if (free_vc < 0) {
            ++it;
            continue;
        }
        auto &vc = injVcs_[static_cast<std::size_t>(free_vc)];
        vc.pkt = std::move(*it);
        vc.nextSeq = 0;
        it = injectQueue_.erase(it);
    }

    // Send one flit per cycle (the NI-router link is a regular link).
    const int vcs = static_cast<int>(injVcs_.size());
    for (int off = 0; off < vcs; ++off) {
        const int vi = (rrInjVc_ + off) % vcs;
        auto &vc = injVcs_[static_cast<std::size_t>(vi)];
        if (!vc.pkt || vc.credits <= 0)
            continue;
        Flit flit;
        flit.pkt = vc.pkt;
        flit.seq = vc.nextSeq;
        toRouter_->data.push(now, LinkFlit{flit, vi});
        --vc.credits;
        if (flit.head()) {
            vc.pkt->injectedAt = now;
            packetsInjected_.inc();
            niQueueLatency_.sample(
                static_cast<double>(now - vc.pkt->createdAt));
            if (auto *t = telemetry::tracer();
                t && t->tracked(vc.pkt->id)) {
                t->record(telemetry::TraceEvent::Inject, vc.pkt->id,
                          static_cast<std::uint8_t>(vc.pkt->cls), id_,
                          now,
                          static_cast<std::int64_t>(
                              now - vc.pkt->createdAt));
            }
        }
        ++vc.nextSeq;
        if (vc.nextSeq >= vc.pkt->numFlits)
            vc.pkt = nullptr; // tail sent; free the injection VC
        rrInjVc_ = (vi + 1) % vcs;
        break;
    }
}

} // namespace stacknoc::noc
