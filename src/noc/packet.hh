/**
 * @file
 * Packets and flits: the units of transport in the stacknoc network.
 *
 * Following the paper's configuration, a data-carrying message is eight
 * 128-bit flits plus one header flit (9 flits total) and an address-only
 * message is a single header flit.
 */

#ifndef STACKNOC_NOC_PACKET_HH
#define STACKNOC_NOC_PACKET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace stacknoc::noc {

/**
 * Semantic class of a packet. The class determines the virtual network,
 * the size, whether TSB path restriction applies, and whether the
 * STT-RAM-aware arbiter treats the packet as a long bank write.
 */
enum class PacketClass : std::uint8_t {
    ReadReq,      //!< L1 GetS to an L2 bank (1 flit)
    WriteReq,     //!< L1 GetM / upgrade to an L2 bank (1 flit)
    StoreWrite,   //!< no-allocate store miss written to L2 (2 flits)
    WritebackReq, //!< L1 PutM dirty writeback (2 flits, long bank write)
    CohCtrl,      //!< Inv / Recall / InvAck and friends (1 flit)
    CohData,      //!< Recall data from an L1 owner (9 flits)
    DataResp,     //!< L2 -> L1 fill data (9 flits)
    Ack,          //!< short response, e.g. writeback ack (1 flit)
    MemReq,       //!< L2 bank -> memory controller read (1 flit)
    MemWrite,     //!< L2 bank -> memory controller writeback (9 flits)
    MemResp,      //!< memory controller -> L2 bank fill (9 flits)
    ProbeAck,     //!< window-based estimator timestamp echo (1 flit)
    BusyNack,     //!< bank busy past predicted window; retry later (1 flit)
    NumClasses
};

/**
 * Number of virtual networks (message classes) for deadlock avoidance.
 * Writebacks ride their own virtual network so that a bank refusing new
 * read/write requests (bounded request queue) can never strand the
 * dirty data it needs to make progress.
 */
constexpr int kNumVnets = 4;

/** Virtual network indices. */
enum Vnet : int { kVnetReq = 0, kVnetWb = 1, kVnetResp = 2, kVnetCoh = 3 };

/** @return the virtual network a packet class travels on. */
int vnetOf(PacketClass cls);

/** @return human-readable class name. */
const char *packetClassName(PacketClass cls);

/**
 * @return whether the class is a core-layer-to-cache-layer request that is
 * (a) restricted to the per-region TSBs and (b) subject to STT-RAM-aware
 * re-ordering at parent routers.
 */
bool isRestrictedRequest(PacketClass cls);

/** @return whether servicing this packet occupies the bank's write port. */
bool isLongBankWrite(PacketClass cls);

/**
 * Protocol payload carried by a packet. The network treats this as opaque;
 * the coherence and memory layers define the meaning of each field.
 */
struct ProtoInfo
{
    std::uint8_t kind = 0;   //!< protocol opcode
    std::uint8_t flags = 0;  //!< protocol flag bits
    std::uint16_t aux = 0;   //!< e.g. expected ack count
    std::uint32_t origin = 0; //!< requesting core / unit id
};

/**
 * A network packet. Created by a NetworkInterface client, serialised into
 * flits for transport, reassembled and delivered at the destination NI.
 */
struct Packet
{
    std::uint64_t id = 0;          //!< globally unique, for debug/probes
    PacketClass cls = PacketClass::ReadReq;
    NodeId src = kInvalidNode;     //!< source node
    NodeId dest = kInvalidNode;    //!< destination node
    int numFlits = 1;

    BlockAddr addr = 0;            //!< block address (protocol use)
    BankId destBank = kInvalidBank; //!< bank targeted, for cache requests
    ProtoInfo info;                //!< opaque protocol payload

    Cycle createdAt = 0;           //!< handed to the source NI
    Cycle injectedAt = kCycleNever; //!< head flit entered the network
    Cycle ejectedAt = kCycleNever;  //!< tail flit left the network

    /** Window-based estimator: timestamp (< 0 when untagged). */
    std::int16_t probeStamp = -1;
    /** Window-based estimator: parent node expecting the echo. */
    NodeId probeParent = kInvalidNode;
    /** First cycle an STT-RAM-aware parent router held this packet. */
    Cycle firstHeldAt = kCycleNever;

    std::string toString() const;
};

using PacketPtr = std::shared_ptr<Packet>;

/** One flow-control unit of a packet. */
struct Flit
{
    PacketPtr pkt;
    int seq = 0;          //!< 0 = head
    Cycle arrivedAt = 0;  //!< written into the current input buffer at

    bool head() const { return seq == 0; }
    bool tail() const { return seq == pkt->numFlits - 1; }
};

/** What travels on a physical link: a flit plus its virtual channel. */
struct LinkFlit
{
    Flit flit;
    int vc = 0;
};

/** Backward flow-control token freeing one buffer slot of a VC. */
struct Credit
{
    int vc = 0;
};

/**
 * Writeback size in flits: header plus the dirty words. The baseline
 * system (like the paper's, which builds on redundant-write elimination
 * at the cell level) tracks dirty words and writes back only those, so
 * a PutM is far smaller than a full-line transfer — while the STT-RAM
 * bank is still occupied for the full 33-cycle write.
 */
constexpr int kWritebackFlits = 2;

/** Store-write size: header plus the stored word(s). */
constexpr int kStoreWriteFlits = 2;

/**
 * Convenience factory. Sizes the packet from its class (1, 2 or 9
 * flits) and assigns a fresh id.
 *
 * Ids are drawn from per-source-node streams
 * (id = (src + 1) << 40 | sequence), not one global counter. All
 * components that create packets with a given src are co-located at
 * that node — and therefore co-sharded by the parallel execution
 * engine — so each stream advances in a deterministic order and packet
 * ids are bit-identical between the sequential and sharded engines.
 *
 * @param data_flits total flits of a line-transfer packet (default 9).
 */
PacketPtr makePacket(PacketClass cls, NodeId src, NodeId dest,
                     BlockAddr addr = 0, int data_flits = 9);

/**
 * Rewind every per-source id stream to zero, so consecutive in-process
 * simulations mint identical packet ids. Test/tool use only, between
 * runs; never while a simulation is live.
 */
void resetPacketIds();

/**
 * Snapshot the per-source id streams as (stream index, next sequence)
 * pairs for the non-zero streams. Checkpoint use only, between runs.
 */
std::vector<std::pair<std::uint32_t, std::uint64_t>> savePacketIdStreams();

/**
 * Restore the id streams saved by savePacketIdStreams(). Streams not
 * listed are rewound to zero, so a restored process mints exactly the
 * ids the checkpointed run would have.
 */
void restorePacketIdStreams(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>> &streams);

} // namespace stacknoc::noc

#endif // STACKNOC_NOC_PACKET_HH
