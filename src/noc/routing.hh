/**
 * @file
 * Deterministic routing functions for the two-layer mesh.
 */

#ifndef STACKNOC_NOC_ROUTING_HH
#define STACKNOC_NOC_ROUTING_HH

#include "common/geometry.hh"
#include "noc/packet.hh"
#include "noc/topology.hh"

namespace stacknoc::noc {

/**
 * A routing function maps (current node, packet) to the output direction.
 * Implementations must be deterministic and deadlock-free on the mesh.
 */
class RoutingFunction
{
  public:
    virtual ~RoutingFunction() = default;

    /**
     * @return direction the packet must take from @p here; Dir::Local when
     * @p here is the destination.
     */
    virtual Dir route(NodeId here, const Packet &pkt) const = 0;

    /** @return total hop count from @p from to the packet's destination. */
    int pathLength(NodeId from, const Packet &pkt,
                   const Topology &topo) const;
};

/**
 * Z-X-Y dimension-ordered routing: change layer first (at the source
 * column), then X, then Y. This is the paper's unrestricted baseline where
 * all 64 TSVs carry traffic in both directions.
 */
class ZxyRouting : public RoutingFunction
{
  public:
    explicit ZxyRouting(const MeshShape &shape) : shape_(shape) {}

    Dir route(NodeId here, const Packet &pkt) const override;

    /** X-then-Y step within a layer toward (x,y) of @p to. */
    static Dir xyStep(const Coord &here, const Coord &to);

  private:
    MeshShape shape_;
};

} // namespace stacknoc::noc

#endif // STACKNOC_NOC_ROUTING_HH
