/**
 * @file
 * Pluggable arbitration policy — the hook through which the paper's
 * STT-RAM-aware re-ordering modifies VC and switch allocation.
 */

#ifndef STACKNOC_NOC_POLICY_HH
#define STACKNOC_NOC_POLICY_HH

#include "common/types.hh"
#include "noc/packet.hh"

namespace stacknoc::noc {

/**
 * Consulted by every router during VC allocation and switch allocation.
 *
 * The default implementation reproduces a conventional, architecture-
 * oblivious round-robin router: every packet is eligible and all packets
 * share one priority class.
 */
class ArbitrationPolicy
{
  public:
    virtual ~ArbitrationPolicy() = default;

    /**
     * May router @p router forward the head flit of @p pkt this cycle?
     * Returning false holds the packet in its input VC (the paper's
     * "delaying accesses to busy banks").
     */
    virtual bool
    eligible(NodeId router, Packet &pkt, Cycle now)
    {
        (void)router; (void)pkt; (void)now;
        return true;
    }

    /**
     * Priority class of @p pkt at router @p router; smaller wins.
     * Ties are broken round-robin.
     */
    virtual int
    priorityClass(NodeId router, const Packet &pkt, Cycle now)
    {
        (void)router; (void)pkt; (void)now;
        return 0;
    }

    /**
     * Notification that router @p router granted switch traversal to the
     * head flit of @p pkt. This is where the STT-RAM-aware policy starts
     * busy counters and tags estimation probes.
     */
    virtual void
    onForward(NodeId router, Packet &pkt, Cycle now)
    {
        (void)router; (void)pkt; (void)now;
    }
};

} // namespace stacknoc::noc

#endif // STACKNOC_NOC_POLICY_HH
