/**
 * @file
 * Network interfaces: packetisation, injection, ejection, and delivery to
 * the attached protocol agent.
 */

#ifndef STACKNOC_NOC_NETWORK_INTERFACE_HH
#define STACKNOC_NOC_NETWORK_INTERFACE_HH

#include <deque>
#include <functional>
#include <vector>

#include "sim/stats.hh"
#include "sim/ticking.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "noc/topology.hh"

namespace stacknoc::fault {
class FaultInjector;
} // namespace stacknoc::fault

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::noc {

/** Anything that can receive packets from its local NI. */
class NetworkClient
{
  public:
    virtual ~NetworkClient() = default;

    /**
     * Admission control, consulted once per packet when its head flit
     * reaches the front of an NI ejection buffer. Returning false holds
     * the packet in the NI (and, through withheld credits, backs traffic
     * up into the network — the paper's "queued at the network
     * interface"). Returning true may reserve client resources; the
     * packet is then guaranteed to be deliver()ed.
     */
    virtual bool
    tryAccept(const Packet &pkt)
    {
        (void)pkt;
        return true;
    }

    /** A fully reassembled packet has arrived at this node. */
    virtual void deliver(PacketPtr pkt, Cycle now) = 0;
};

/**
 * Anything that can inject packets. NetworkInterface is the production
 * implementation; protocol unit tests substitute recording fakes.
 */
class PacketSender
{
  public:
    virtual ~PacketSender() = default;

    /** Queue @p pkt for injection at cycle @p now. */
    virtual void send(PacketPtr pkt, Cycle now) = 0;

    /** Packets waiting behind this sender (store-buffer backpressure). */
    virtual std::size_t backlog() const { return 0; }
};

/** Receiver of window-based-estimator timestamp echoes. */
class ProbeSink
{
  public:
    virtual ~ProbeSink() = default;

    /**
     * A ProbeAck reached the node it addresses. @p pkt carries the child
     * bank in info.origin and the 8-bit timestamp in info.aux.
     */
    virtual void onProbeAck(const Packet &pkt, Cycle now) = 0;

    /**
     * A BusyNack reached the node it addresses: the child bank in
     * info.origin is still busy (write-verify-retry) for another
     * info.aux cycles past its predicted window.
     */
    virtual void
    onBusyNack(const Packet &pkt, Cycle now)
    {
        (void)pkt;
        (void)now;
    }
};

/**
 * The per-node network interface. Serialises packets into flits toward
 * the router's Local input port (respecting credits), reassembles arriving
 * flits, and dispatches completed packets to the attached client(s).
 *
 * Ejection is an infinite sink: every received flit is credited back
 * immediately, so the network always drains at its destinations.
 */
class NetworkInterface final : public Ticking, public PacketSender
{
  public:
    NetworkInterface(std::string name, NodeId id, const NocParams &params,
                     stats::Group &net_stats);

    /**
     * @param to_router link from this NI into the router's Local port.
     * @param from_router link from the router's Local port to this NI.
     */
    void connect(Link *to_router, Link *from_router);

    /** Primary protocol agent at this node (L1 controller or L2 bank). */
    void setClient(NetworkClient *client) { client_ = client; }

    /** Memory controller co-located at this node, if any. */
    void setMemClient(NetworkClient *client) { memClient_ = client; }

    /** Estimator hub receiving ProbeAck packets addressed to this node. */
    void setProbeSink(ProbeSink *sink) { probeSink_ = sink; }

    /**
     * Enable link/TSB fault injection at this NI's ejection side (CRC
     * check + retransmission). Null (the default) skips the CRC gate
     * entirely; an injector whose link BERs are zero never draws, so
     * behaviour is bit-identical either way.
     */
    void setFaultInjector(fault::FaultInjector *fi) { faults_ = fi; }

    /**
     * Queue @p pkt for injection. Always succeeds (the injection queue is
     * unbounded; the network applies backpressure through credits).
     */
    void send(PacketPtr pkt, Cycle now) override;

    void tick(Cycle now) override;

    /**
     * Idle iff nothing is queued, serialising, or parked in ejection
     * buffers (which covers CRC/retransmission holds and admission
     * stalls), and no flit or credit is still in flight on the local
     * links. send() wakes the NI, so a sleeping NI cannot strand a
     * freshly queued packet.
     */
    bool quiescent(Cycle now) const override;

    TickKind tickKind() const override
    {
        return TickKind::NetworkInterface;
    }

    NodeId nodeId() const { return id_; }

    /** Packets waiting to start serialisation. */
    std::size_t injectQueueDepth() const { return injectQueue_.size(); }

    std::size_t backlog() const override { return injectQueue_.size(); }

    /** @return true when nothing is queued or being serialised. */
    bool
    idle() const
    {
        if (!injectQueue_.empty())
            return false;
        for (const auto &vc : injVcs_)
            if (vc.pkt)
                return false;
        for (const auto &vc : ejectVcs_)
            if (!vc.buffer.empty())
                return false;
        return true;
    }

    /** Flits parked in ejection buffers (for drain checks). */
    int ejectBufferedFlits() const;

    /**
     * Invoke @p fn(pkt, injected) for every packet waiting at this NI:
     * queued packets (injected = false) and packets currently being
     * serialised into the network (injected = true once the head flit
     * has left). Observer use only (validation census).
     */
    void forEachPendingPacket(
        const std::function<void(const Packet &, bool)> &fn) const;

    /**
     * Invoke @p fn(vc, flit, committed) for every flit parked in an
     * ejection buffer; @p committed is true when the flit belongs to the
     * front packet of a VC whose head the client already accepted.
     * Observer use only (validation census).
     */
    void forEachEjectFlit(
        const std::function<void(int, const Flit &, bool)> &fn) const;

    /**
     * Invoke @p fn(vc, pkt) for every packet the client has accepted
     * (tryAccept succeeded) whose tail flit has not yet been delivered.
     * Observer use only (validation census).
     */
    void forEachCommittedPacket(
        const std::function<void(int, const Packet &)> &fn) const;

    /** Injection credits available on VC @p vc. */
    int injCredits(int vc) const
    {
        return injVcs_.at(static_cast<std::size_t>(vc)).credits;
    }

    /**
     * Flits re-sent over the link because a reassembled packet failed
     * its CRC check at this NI, since construction. Plain counter for
     * cycle-end probes (the EnergyProbe's retransmit-flit energy
     * term); written only by the owning tick.
     */
    std::uint64_t flitsRetransmittedTotal() const
    {
        return flitsRetransmittedTotal_;
    }

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    struct InjVc
    {
        PacketPtr pkt;   //!< packet being serialised (null when free)
        int nextSeq = 0;
        int credits = 0;
    };

    struct EjectVc
    {
        std::deque<Flit> buffer;
        bool committed = false; //!< current packet accepted by client
        /** The accepted packet; its consumed flits leave no trace in
         *  @c buffer, so observers need the identity kept explicitly. */
        PacketPtr committedPkt;

        // CRC/retransmission state of the packet at the buffer front
        // (only used when a fault injector is attached).
        bool crcClean = false;   //!< current head passed the CRC check
        bool dropping = false;   //!< consuming a dropped packet's flits
        int retxAttempts = 0;    //!< retransmissions requested so far
        Cycle retxHoldUntil = 0; //!< retransmission in flight until then
    };

    void receive(Cycle now);
    void drainEjectBuffers(Cycle now);
    void inject(Cycle now);
    void dispatch(PacketPtr pkt, Cycle now);

    /** @return the client a packet of this class is destined for. */
    NetworkClient *targetFor(const Packet &pkt) const;

    NodeId id_;
    NocParams params_;
    Link *toRouter_ = nullptr;
    Link *fromRouter_ = nullptr;
    NetworkClient *client_ = nullptr;
    NetworkClient *memClient_ = nullptr;
    ProbeSink *probeSink_ = nullptr;
    fault::FaultInjector *faults_ = nullptr;

    std::deque<PacketPtr> injectQueue_;
    std::vector<InjVc> injVcs_;
    std::vector<EjectVc> ejectVcs_;
    int rrInjVc_ = 0;

    /** Push-notification bytes for the local links (bound to the
     *  channels by connect() via Channel::setSignalFlag): set on every
     *  push, cleared by the drains once the channel is empty, so the
     *  tick touches the link queues only when something arrived. */
    std::uint8_t dataPending_ = 0;
    std::uint8_t creditPending_ = 0;

    stats::Counter &packetsInjected_;
    stats::Counter &packetsEjected_;
    stats::Counter &packetsDropped_;
    stats::Average &netLatency_;
    stats::Average &totalLatency_;
    stats::Average &niQueueLatency_;
    stats::Histogram &netLatencyHist_;
    stats::Histogram &totalLatencyHist_;

    std::uint64_t flitsRetransmittedTotal_ = 0;
};

} // namespace stacknoc::noc

#endif // STACKNOC_NOC_NETWORK_INTERFACE_HH
