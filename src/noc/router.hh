/**
 * @file
 * A two-stage wormhole-switched virtual-channel router.
 *
 * Pipeline (matching the paper's Table 1 router): a head flit arriving in
 * cycle t performs route computation and VC allocation in t, switch
 * allocation and crossbar traversal in t+1, and link traversal in t+2 —
 * three cycles per hop.
 */

#ifndef STACKNOC_NOC_ROUTER_HH
#define STACKNOC_NOC_ROUTER_HH

#include <deque>
#include <functional>
#include <vector>

#include "sim/stats.hh"
#include "sim/ticking.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "noc/policy.hh"
#include "noc/routing.hh"
#include "noc/topology.hh"

namespace stacknoc::fault {
class FaultInjector;
} // namespace stacknoc::fault

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::noc {

/**
 * An input-queued VC router with credit-based flow control and a
 * separable (input-first) switch allocator. VC allocation and switch
 * eligibility consult an ArbitrationPolicy, which is how the STT-RAM-aware
 * scheme re-orders packets.
 */
class Router final : public Ticking
{
  public:
    Router(std::string name, NodeId id, const NocParams &params,
           const RoutingFunction &routing, ArbitrationPolicy &policy,
           stats::Group &net_stats);

    /** Attach the link arriving at this router through direction @p d. */
    void connectIn(Dir d, Link *link);

    /** Attach the link leaving this router through direction @p d. */
    void connectOut(Dir d, Link *link);

    void tick(Cycle now) override;

    /**
     * Idle iff no flit is buffered, no VC is mid-pipeline, and nothing
     * is in flight on the incoming data or credit pipes. A router
     * designated as a stuck-fault site never sleeps: the injector
     * samples (and counts) the wedge window at every tick.
     */
    bool quiescent(Cycle now) const override;

    TickKind tickKind() const override { return TickKind::Router; }

    /**
     * Enable fault injection (stuck-router windows). While the
     * injector reports this router wedged, tick() does nothing: no
     * flits or credits are received, switched, or sent — buffered and
     * in-link state is frozen in place until the window closes.
     */
    void setFaultInjector(fault::FaultInjector *fi) { faults_ = fi; }

    NodeId nodeId() const { return id_; }

    /** Total flits currently buffered in all input VCs. */
    int bufferedFlits() const;

    /** Flits buffered in the input VCs of one port. */
    int bufferedFlits(Dir d) const;

    /**
     * Congestion metric used by the RCA estimator: occupied input buffer
     * slots, excluding the local injection port.
     */
    int localCongestion() const;

    /** Invoke @p fn for every packet whose head flit is buffered here. */
    void forEachBufferedPacket(
        const std::function<void(const Packet &)> &fn) const;

    /**
     * Invoke @p fn(dir, vc, flit) for every buffered flit (head or not).
     * Observer use only (validation census).
     */
    void forEachBufferedFlit(
        const std::function<void(Dir, int, const Flit &)> &fn) const;

    /** Credits available on output VC @p vc of port @p d (-1: no link). */
    int outCredits(Dir d, int vc) const;

    /**
     * Flits this router has pushed into its crossbar since
     * construction. A plain (non-Group) counter so spatial exporters
     * can read per-router values: written only by this router's own
     * tick, read from cycle-end probes after the phase barrier.
     */
    std::uint64_t flitsSwitchedTotal() const { return flitsSwitchedTotal_; }

    /**
     * Flits this router has accepted into its input buffers since
     * construction. Same contract as flitsSwitchedTotal(): written
     * only by the owning tick, read from cycle-end probes (the
     * per-router buffer-write energy term of the EnergyProbe).
     */
    std::uint64_t flitsBufferedTotal() const { return flitsBufferedTotal_; }

    const NocParams &params() const { return params_; }


  private:
    /** Checkpointing serialises VC buffers/pipeline state and pending
     *  bytes, and recomputes the derived masks/counts on load. */
    friend class snapshot::StateIO;

    enum class VcStatus { Idle, Routing, WaitVa, Active };

    struct VirtualChannel
    {
        std::deque<Flit> buffer;
        VcStatus status = VcStatus::Idle;
        Dir outDir = Dir::Local;
        int outVc = -1;
        Cycle vaDoneAt = kCycleNever;
        std::uint8_t port = 0; //!< owning input port (for mask upkeep)
        std::uint8_t idx = 0;  //!< VC index within the port
    };

    struct InPort
    {
        Link *link = nullptr;
        std::vector<VirtualChannel> vcs;
        int rrSaVc = 0; //!< round-robin pointer for the SA input stage
        /** One bit per VC in each pipeline state, indexed by VcStatus,
         *  so the allocation stages iterate only occupied VCs instead
         *  of scanning the whole array. Kept in lockstep with
         *  VirtualChannel::status by changeStatus(); the Idle slot is
         *  maintained but never read. */
        std::array<std::uint64_t, 4> stateMask{};
    };

    struct OutPort
    {
        Link *link = nullptr;
        std::vector<int> credits;   //!< per out-VC credits
        std::vector<bool> vcBusy;   //!< out-VC allocated to some input VC
        int rrVa = 0;               //!< round-robin pointer for VA
        int rrSa = 0;               //!< round-robin pointer for SA output
    };

    void receiveCredits(Cycle now);
    void receiveFlits(Cycle now);
    void routeCompute(Cycle now);
    void vcAllocate(Cycle now);
    void switchAllocateAndTraverse(Cycle now);

    /** Bookkeeping for the fast-path skips of empty pipeline stages. */
    void changeStatus(VirtualChannel &vc, VcStatus to);

    /** Release bookkeeping after the tail flit of a packet departs. */
    void finishPacket(InPort &ip, VirtualChannel &vc);

    NodeId id_;
    NocParams params_;
    const RoutingFunction &routing_;
    ArbitrationPolicy &policy_;
    fault::FaultInjector *faults_ = nullptr;

    std::array<InPort, kNumDirs> in_;
    std::array<OutPort, kNumDirs> out_;

    /** Input VCs per pipeline state (indexed by VcStatus; the Idle
     *  slot is maintained but never read), for O(1) idle-stage
     *  skips. */
    std::array<int, 4> stateCount_{};

    /** Incremental mirrors of the buffer-occupancy sums, so the RCA
     * sideband snapshot and the quiescence predicate are O(1). */
    int bufferedTotal_ = 0;
    int localCongestion_ = 0; //!< buffered flits excluding the Local port

    /**
     * Per-port push-notification bytes (Channel::setSignalFlag): set
     * by every push on the port's channel, cleared by the drains once
     * the channel is empty, so receiveFlits/receiveCredits touch only
     * ports something was actually pushed on.
     */
    std::array<std::uint8_t, kNumDirs> dataPending_{};
    std::array<std::uint8_t, kNumDirs> creditPending_{};

    stats::Counter &flitsIn_;
    stats::Counter &flitsOut_;
    stats::Counter &packetsForwarded_;
    std::uint64_t flitsSwitchedTotal_ = 0;
    std::uint64_t flitsBufferedTotal_ = 0;
};

} // namespace stacknoc::noc

#endif // STACKNOC_NOC_ROUTER_HH
