/**
 * @file
 * Tunable parameters of the on-chip network (Table 1 of the paper).
 */

#ifndef STACKNOC_NOC_PARAMS_HH
#define STACKNOC_NOC_PARAMS_HH

#include <array>
#include <numeric>

#include "common/types.hh"
#include "noc/packet.hh"

namespace stacknoc::noc {

/**
 * Network configuration. Defaults reproduce the paper's Table 1:
 * 2-stage wormhole routers, 6 VCs per port (2 per virtual network),
 * 5-flit buffers, 9-flit data packets, 1-flit address packets, 128-bit
 * links, and 256-bit region TSBs carrying two flits per cycle.
 */
struct NocParams
{
    /** VCs per virtual network (REQ, WB, RESP, COH); the sum is the
     *  paper's 6 VCs per port. Writes get two lanes: they are the class
     *  the STT-RAM-aware scheme parks in input VCs. */
    std::array<int, kNumVnets> vcsPerVnet{2, 2, 1, 1};

    /** Flit buffer depth per VC. */
    int vcDepth = 5;

    /** Flits in a data-bearing packet (8 data + 1 header). */
    int dataPacketFlits = 9;

    /** Link traversal latency in cycles. */
    Cycle linkLatency = 1;

    /**
     * Flits per cycle on a 256-bit region TSB (the paper's XShare-style
     * flit combining doubles vertical request bandwidth).
     */
    int tsbBandwidth = 2;

    /** Flits per cycle on regular 128-bit links and plain TSVs. */
    int linkBandwidth = 1;

    /** @return total VCs per port. */
    int
    totalVcs() const
    {
        return std::accumulate(vcsPerVnet.begin(), vcsPerVnet.end(), 0);
    }

    /** @return first VC index of a virtual network. */
    int
    vnetBase(int vnet) const
    {
        int base = 0;
        for (int v = 0; v < vnet; ++v)
            base += vcsPerVnet[static_cast<std::size_t>(v)];
        return base;
    }

    /** @return the virtual network that VC index @p vc belongs to. */
    int
    vnetOfVc(int vc) const
    {
        int base = 0;
        for (int v = 0; v < kNumVnets; ++v) {
            base += vcsPerVnet[static_cast<std::size_t>(v)];
            if (vc < base)
                return v;
        }
        return kNumVnets - 1;
    }
};

} // namespace stacknoc::noc

#endif // STACKNOC_NOC_PARAMS_HH
