#include "noc/router.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "telemetry/trace.hh"

namespace stacknoc::noc {

Router::Router(std::string rname, NodeId id, const NocParams &params,
               const RoutingFunction &routing, ArbitrationPolicy &policy,
               stats::Group &net_stats)
    : Ticking(std::move(rname)), id_(id), params_(params),
      routing_(routing), policy_(policy),
      flitsIn_(net_stats.counter("flits_buffered")),
      flitsOut_(net_stats.counter("flits_switched")),
      packetsForwarded_(net_stats.counter("packets_forwarded"))
{
    const int vcs = params_.totalVcs();
    for (auto &ip : in_)
        ip.vcs.resize(static_cast<std::size_t>(vcs));
    for (auto &op : out_) {
        op.credits.assign(static_cast<std::size_t>(vcs), params_.vcDepth);
        op.vcBusy.assign(static_cast<std::size_t>(vcs), false);
    }
}

void
Router::connectIn(Dir d, Link *link)
{
    in_[static_cast<std::size_t>(static_cast<int>(d))].link = link;
}

void
Router::connectOut(Dir d, Link *link)
{
    out_[static_cast<std::size_t>(static_cast<int>(d))].link = link;
}

void
Router::tick(Cycle now)
{
    if (faults_ && faults_->routerStuckNow(id_, now))
        return; // wedged: the whole pipeline freezes this cycle
    receiveCredits(now);
    receiveFlits(now);
    routeCompute(now);
    vcAllocate(now);
    switchAllocateAndTraverse(now);
}

void
Router::receiveCredits(Cycle now)
{
    for (auto &op : out_) {
        if (!op.link)
            continue;
        while (auto c = op.link->credit.receive(now)) {
            auto &credit = op.credits[static_cast<std::size_t>(c->vc)];
            ++credit;
            panic_if(credit > params_.vcDepth,
                     "router %d: credit overflow on vc %d", id_, c->vc);
        }
    }
}

void
Router::receiveFlits(Cycle now)
{
    for (auto &ip : in_) {
        if (!ip.link)
            continue;
        while (auto lf = ip.link->data.receive(now)) {
            auto &vc = ip.vcs[static_cast<std::size_t>(lf->vc)];
            panic_if(static_cast<int>(vc.buffer.size()) >= params_.vcDepth,
                     "router %d: input buffer overflow on vc %d", id_,
                     lf->vc);
            Flit flit = lf->flit;
            flit.arrivedAt = now;
            if (flit.head()) {
                const Packet &pkt = *flit.pkt;
                if (auto *t = telemetry::tracer();
                    t && t->tracked(pkt.id)) {
                    t->record(telemetry::TraceEvent::RouterArrive, pkt.id,
                              static_cast<std::uint8_t>(pkt.cls), id_,
                              now);
                }
            }
            const bool was_empty = vc.buffer.empty();
            vc.buffer.push_back(std::move(flit));
            flitsIn_.inc();
            ++flitsBufferedTotal_;
            if (vc.buffer.back().head() && was_empty &&
                vc.status == VcStatus::Idle) {
                changeStatus(vc, VcStatus::Routing);
            }
        }
    }
}

void
Router::routeCompute(Cycle)
{
    if (routingCount_ == 0)
        return;
    for (auto &ip : in_) {
        for (auto &vc : ip.vcs) {
            if (vc.status != VcStatus::Routing || vc.buffer.empty())
                continue;
            const Flit &front = vc.buffer.front();
            panic_if(!front.head(),
                     "router %d: routing a non-head flit of %s", id_,
                     front.pkt->toString().c_str());
            vc.outDir = front.pkt->dest == id_
                            ? Dir::Local
                            : routing_.route(id_, *front.pkt);
            changeStatus(vc, VcStatus::WaitVa);
        }
    }
}

void
Router::vcAllocate(Cycle now)
{
    if (waitVaCount_ == 0)
        return;

    // Collect every waiting candidate in one pass over the input VCs.
    struct Cand
    {
        int flat;
        VirtualChannel *vc;
        int dir;
        int vnet;
        int cls;
    };
    static thread_local std::vector<Cand> cands;
    cands.clear();
    int flat = 0;
    for (auto &ip : in_) {
        for (auto &vc : ip.vcs) {
            ++flat;
            if (vc.status != VcStatus::WaitVa || vc.buffer.empty())
                continue;
            Packet &pkt = *vc.buffer.front().pkt;
            if (!policy_.eligible(id_, pkt, now))
                continue;
            cands.push_back({flat - 1, &vc,
                             static_cast<int>(vc.outDir),
                             vnetOf(pkt.cls),
                             policy_.priorityClass(id_, pkt, now)});
        }
    }
    if (cands.empty())
        return;

    // Hand each free output VC of each (port, vnet) to the highest-
    // priority candidate; ties break round-robin on the flat VC index.
    for (int d = 0; d < kNumDirs; ++d) {
        OutPort &op = out_[static_cast<std::size_t>(d)];
        if (!op.link)
            continue;
        for (int vn = 0; vn < kNumVnets; ++vn) {
            static thread_local std::vector<Cand *> group;
            group.clear();
            for (auto &c : cands) {
                if (c.dir == d && c.vnet == vn && c.vc)
                    group.push_back(&c);
            }
            if (group.empty())
                continue;

            std::vector<int> free_vcs;
            const int base = params_.vnetBase(vn);
            for (int v = base; v < base + params_.vcsPerVnet[
                     static_cast<std::size_t>(vn)]; ++v) {
                if (!op.vcBusy[static_cast<std::size_t>(v)])
                    free_vcs.push_back(v);
            }
            if (free_vcs.empty())
                continue;

            if (group.size() > 1) {
                std::stable_sort(group.begin(), group.end(),
                    [&](const Cand *a, const Cand *b) {
                        if (a->cls != b->cls)
                            return a->cls < b->cls;
                        const int ra =
                            (a->flat - op.rrVa + 1000000) % 1000000;
                        const int rb =
                            (b->flat - op.rrVa + 1000000) % 1000000;
                        return ra < rb;
                    });
            }

            std::size_t granted = 0;
            for (Cand *c : group) {
                if (granted >= free_vcs.size())
                    break;
                const int out_vc = free_vcs[granted++];
                changeStatus(*c->vc, VcStatus::Active);
                c->vc->outVc = out_vc;
                c->vc->vaDoneAt = now;
                op.vcBusy[static_cast<std::size_t>(out_vc)] = true;
                op.rrVa = c->flat + 1;
                c->vc = nullptr; // consumed
            }
        }
    }
}

void
Router::switchAllocateAndTraverse(Cycle now)
{
    struct Request
    {
        InPort *ip;
        VirtualChannel *vc;
        int inPortIdx;
        int vcIdx;
        int cls;
    };

    if (activeCount_ == 0)
        return;
    // Input stage: each input port nominates up to as many VCs as its
    // incoming link delivers per cycle (a 256-bit TSB keeps its doubled
    // datapath through the entry router's switch).
    static thread_local std::vector<Request> nominees;
    nominees.clear();
    for (int pi = 0; pi < kNumDirs; ++pi) {
        InPort &ip = in_[static_cast<std::size_t>(pi)];
        const int vcs = static_cast<int>(ip.vcs.size());
        const int speedup = ip.link ? ip.link->bandwidth : 1;

        static thread_local std::vector<Request> ready;
        ready.clear();
        for (int off = 0; off < vcs; ++off) {
            const int vi = (ip.rrSaVc + off) % vcs;
            VirtualChannel &vc = ip.vcs[static_cast<std::size_t>(vi)];
            if (vc.status != VcStatus::Active || vc.buffer.empty())
                continue;
            const Flit &front = vc.buffer.front();
            if (front.arrivedAt >= now || vc.vaDoneAt >= now)
                continue;
            OutPort &op = out_[static_cast<std::size_t>(
                static_cast<int>(vc.outDir))];
            if (op.credits[static_cast<std::size_t>(vc.outVc)] <= 0)
                continue;
            Packet &pkt = *front.pkt;
            if (front.head() && !policy_.eligible(id_, pkt, now))
                continue;
            const int cls = policy_.priorityClass(id_, pkt, now);
            ready.push_back(Request{&ip, &vc, pi, vi, cls});
        }
        if (ready.empty())
            continue;
        std::stable_sort(ready.begin(), ready.end(),
            [](const Request &a, const Request &b) {
                return a.cls < b.cls; // stable: keeps rr order within class
            });
        const int grants = std::min<int>(speedup,
                                         static_cast<int>(ready.size()));
        for (int g = 0; g < grants; ++g)
            nominees.push_back(ready[static_cast<std::size_t>(g)]);
        ip.rrSaVc = (ready.front().vcIdx + 1) % vcs;
    }

    // Output stage: each output port grants up to its link bandwidth.
    for (int d = 0; d < kNumDirs; ++d) {
        OutPort &op = out_[static_cast<std::size_t>(d)];
        if (!op.link)
            continue;
        static thread_local std::vector<Request *> wants;
        wants.clear();
        for (auto &r : nominees) {
            if (static_cast<int>(r.vc->outDir) == d)
                wants.push_back(&r);
        }
        if (wants.empty())
            continue;
        std::stable_sort(wants.begin(), wants.end(),
            [&](const Request *a, const Request *b) {
                if (a->cls != b->cls)
                    return a->cls < b->cls;
                const int ra = (a->inPortIdx - op.rrSa + kNumDirs) %
                               kNumDirs;
                const int rb = (b->inPortIdx - op.rrSa + kNumDirs) %
                               kNumDirs;
                return ra < rb;
            });

        int sent = 0;
        for (Request *r : wants) {
            if (sent >= op.link->bandwidth)
                break;
            VirtualChannel &vc = *r->vc;
            Flit flit = vc.buffer.front();
            vc.buffer.pop_front();
            ++sent;
            op.rrSa = r->inPortIdx + 1;

            op.link->data.push(now, LinkFlit{flit, vc.outVc});
            --op.credits[static_cast<std::size_t>(vc.outVc)];
            flitsOut_.inc();
            ++flitsSwitchedTotal_;

            // Return the freed buffer slot upstream.
            if (r->ip->link)
                r->ip->link->credit.push(now, Credit{r->vcIdx});

            if (flit.head()) {
                policy_.onForward(id_, *flit.pkt, now);
                packetsForwarded_.inc();
            }
            if (flit.tail()) {
                op.vcBusy[static_cast<std::size_t>(vc.outVc)] = false;
                finishPacket(*r->ip, vc);
            }
        }
    }
}

void
Router::changeStatus(VirtualChannel &vc, VcStatus to)
{
    auto delta = [this](VcStatus st, int d) {
        switch (st) {
          case VcStatus::Routing: routingCount_ += d; break;
          case VcStatus::WaitVa: waitVaCount_ += d; break;
          case VcStatus::Active: activeCount_ += d; break;
          default: break;
        }
    };
    delta(vc.status, -1);
    vc.status = to;
    delta(to, +1);
}

void
Router::finishPacket(InPort &, VirtualChannel &vc)
{
    vc.outVc = -1;
    vc.vaDoneAt = kCycleNever;
    if (vc.buffer.empty()) {
        changeStatus(vc, VcStatus::Idle);
    } else {
        panic_if(!vc.buffer.front().head(),
                 "router %d: packet boundary corrupted", id_);
        changeStatus(vc, VcStatus::Routing);
    }
}

int
Router::bufferedFlits() const
{
    int n = 0;
    for (const auto &ip : in_)
        for (const auto &vc : ip.vcs)
            n += static_cast<int>(vc.buffer.size());
    return n;
}

int
Router::bufferedFlits(Dir d) const
{
    int n = 0;
    const auto &ip = in_[static_cast<std::size_t>(static_cast<int>(d))];
    for (const auto &vc : ip.vcs)
        n += static_cast<int>(vc.buffer.size());
    return n;
}

int
Router::localCongestion() const
{
    int n = 0;
    for (int d = 1; d < kNumDirs; ++d) {
        const auto &ip = in_[static_cast<std::size_t>(d)];
        for (const auto &vc : ip.vcs)
            n += static_cast<int>(vc.buffer.size());
    }
    return n;
}

void
Router::forEachBufferedFlit(
    const std::function<void(Dir, int, const Flit &)> &fn) const
{
    for (int d = 0; d < kNumDirs; ++d) {
        const auto &ip = in_[static_cast<std::size_t>(d)];
        for (std::size_t v = 0; v < ip.vcs.size(); ++v) {
            for (const auto &flit : ip.vcs[v].buffer)
                fn(static_cast<Dir>(d), static_cast<int>(v), flit);
        }
    }
}

int
Router::outCredits(Dir d, int vc) const
{
    const auto &op = out_[static_cast<std::size_t>(static_cast<int>(d))];
    if (!op.link)
        return -1;
    return op.credits.at(static_cast<std::size_t>(vc));
}

void
Router::forEachBufferedPacket(
    const std::function<void(const Packet &)> &fn) const
{
    for (const auto &ip : in_) {
        for (const auto &vc : ip.vcs) {
            for (const auto &flit : vc.buffer) {
                if (flit.head())
                    fn(*flit.pkt);
            }
        }
    }
}

} // namespace stacknoc::noc
