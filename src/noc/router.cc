#include "noc/router.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "telemetry/trace.hh"

namespace stacknoc::noc {

namespace {

/**
 * Stable insertion sort for the tiny (typically 1-3 element) candidate
 * lists of the allocation stages. Produces the exact ordering of
 * std::stable_sort without its per-call temporary-buffer allocation,
 * which dominated the switch-allocation profile.
 */
template <typename T, typename Less>
void
stableSortSmall(std::vector<T> &v, Less less)
{
    for (std::size_t i = 1; i < v.size(); ++i) {
        T x = v[i];
        std::size_t j = i;
        for (; j > 0 && less(x, v[j - 1]); --j)
            v[j] = v[j - 1];
        v[j] = x;
    }
}

} // namespace

Router::Router(std::string rname, NodeId id, const NocParams &params,
               const RoutingFunction &routing, ArbitrationPolicy &policy,
               stats::Group &net_stats)
    : Ticking(std::move(rname)), id_(id), params_(params),
      routing_(routing), policy_(policy),
      flitsIn_(net_stats.counter("flits_buffered")),
      flitsOut_(net_stats.counter("flits_switched")),
      packetsForwarded_(net_stats.counter("packets_forwarded"))
{
    const int vcs = params_.totalVcs();
    panic_if(vcs > 64, "router %d: %d VCs exceed the 64-bit status masks",
             id_, vcs);
    for (int pi = 0; pi < kNumDirs; ++pi) {
        InPort &ip = in_[static_cast<std::size_t>(pi)];
        ip.vcs.resize(static_cast<std::size_t>(vcs));
        for (int vi = 0; vi < vcs; ++vi) {
            ip.vcs[static_cast<std::size_t>(vi)].port =
                static_cast<std::uint8_t>(pi);
            ip.vcs[static_cast<std::size_t>(vi)].idx =
                static_cast<std::uint8_t>(vi);
        }
    }
    for (auto &op : out_) {
        op.credits.assign(static_cast<std::size_t>(vcs), params_.vcDepth);
        op.vcBusy.assign(static_cast<std::size_t>(vcs), false);
    }
}

void
Router::connectIn(Dir d, Link *link)
{
    in_[static_cast<std::size_t>(static_cast<int>(d))].link = link;
    // Pending bytes let the per-tick drains skip polling channels
    // nothing was pushed on; bound here so every wiring (full systems
    // and single-router tests alike) gets them.
    link->data.setSignalFlag(
        &dataPending_[static_cast<std::size_t>(static_cast<int>(d))]);
}

void
Router::connectOut(Dir d, Link *link)
{
    out_[static_cast<std::size_t>(static_cast<int>(d))].link = link;
    link->credit.setSignalFlag(
        &creditPending_[static_cast<std::size_t>(static_cast<int>(d))]);
}

void
Router::tick(Cycle now)
{
    if (faults_ && faults_->routerStuckNow(id_, now))
        return; // wedged: the whole pipeline freezes this cycle
    receiveCredits(now);
    receiveFlits(now);
    routeCompute(now);
    vcAllocate(now);
    switchAllocateAndTraverse(now);
}

void
Router::receiveCredits(Cycle now)
{
    // A port's pending byte is re-armed while credits remain in
    // flight (pushed but not yet past the link latency), so no
    // arrival can be missed.
    for (int pi = 0; pi < kNumDirs; ++pi) {
        if (creditPending_[static_cast<std::size_t>(pi)] == 0)
            continue;
        creditPending_[static_cast<std::size_t>(pi)] = 0;
        OutPort &op = out_[static_cast<std::size_t>(pi)];
        while (auto c = op.link->credit.receive(now)) {
            auto &credit = op.credits[static_cast<std::size_t>(c->vc)];
            ++credit;
            panic_if(credit > params_.vcDepth,
                     "router %d: credit overflow on vc %d", id_, c->vc);
        }
        if (op.link->credit.inFlight() != 0)
            creditPending_[static_cast<std::size_t>(pi)] = 1;
    }
}

void
Router::receiveFlits(Cycle now)
{
    for (int pi = 0; pi < kNumDirs; ++pi) {
        if (dataPending_[static_cast<std::size_t>(pi)] == 0)
            continue;
        dataPending_[static_cast<std::size_t>(pi)] = 0;
        InPort &ip = in_[static_cast<std::size_t>(pi)];
        while (auto lf = ip.link->data.receive(now)) {
            auto &vc = ip.vcs[static_cast<std::size_t>(lf->vc)];
            panic_if(static_cast<int>(vc.buffer.size()) >= params_.vcDepth,
                     "router %d: input buffer overflow on vc %d", id_,
                     lf->vc);
            Flit flit = std::move(lf->flit);
            flit.arrivedAt = now;
            if (flit.head()) {
                const Packet &pkt = *flit.pkt;
                if (auto *t = telemetry::tracer();
                    t && t->tracked(pkt.id)) {
                    t->record(telemetry::TraceEvent::RouterArrive, pkt.id,
                              static_cast<std::uint8_t>(pkt.cls), id_,
                              now);
                }
            }
            const bool was_empty = vc.buffer.empty();
            vc.buffer.push_back(std::move(flit));
            flitsIn_.inc();
            ++flitsBufferedTotal_;
            ++bufferedTotal_;
            if (pi != static_cast<int>(Dir::Local))
                ++localCongestion_;
            if (vc.buffer.back().head() && was_empty &&
                vc.status == VcStatus::Idle) {
                changeStatus(vc, VcStatus::Routing);
            }
        }
        if (ip.link->data.inFlight() != 0)
            dataPending_[static_cast<std::size_t>(pi)] = 1;
    }
}

void
Router::routeCompute(Cycle)
{
    if (stateCount_[static_cast<std::size_t>(VcStatus::Routing)] == 0)
        return;
    for (auto &ip : in_) {
        for (std::uint64_t m = ip.stateMask[
                 static_cast<std::size_t>(VcStatus::Routing)];
             m != 0; m &= m - 1) {
            auto &vc = ip.vcs[static_cast<std::size_t>(
                std::countr_zero(m))];
            if (vc.buffer.empty())
                continue;
            const Flit &front = vc.buffer.front();
            panic_if(!front.head(),
                     "router %d: routing a non-head flit of %s", id_,
                     front.pkt->toString().c_str());
            vc.outDir = front.pkt->dest == id_
                            ? Dir::Local
                            : routing_.route(id_, *front.pkt);
            changeStatus(vc, VcStatus::WaitVa);
        }
    }
}

void
Router::vcAllocate(Cycle now)
{
    if (stateCount_[static_cast<std::size_t>(VcStatus::WaitVa)] == 0)
        return;

    // Collect every waiting candidate in one pass over the input VCs.
    struct Cand
    {
        int flat;
        VirtualChannel *vc;
        int dir;
        int vnet;
        int cls;
    };
    static thread_local std::vector<Cand> cands;
    cands.clear();
    int base = 0;
    for (auto &ip : in_) {
        for (std::uint64_t m = ip.stateMask[
                 static_cast<std::size_t>(VcStatus::WaitVa)];
             m != 0; m &= m - 1) {
            const int vi = std::countr_zero(m);
            auto &vc = ip.vcs[static_cast<std::size_t>(vi)];
            if (vc.buffer.empty())
                continue;
            Packet &pkt = *vc.buffer.front().pkt;
            if (!policy_.eligible(id_, pkt, now))
                continue;
            cands.push_back({base + vi, &vc,
                             static_cast<int>(vc.outDir),
                             vnetOf(pkt.cls),
                             policy_.priorityClass(id_, pkt, now)});
        }
        base += static_cast<int>(ip.vcs.size());
    }
    if (cands.empty())
        return;

    // Hand each free output VC of each (port, vnet) to the highest-
    // priority candidate; ties break round-robin on the flat VC index.
    // Only (port, vnet) pairs that actually have a candidate are
    // visited, in the same port-major ascending order a full sweep
    // would use.
    static thread_local std::vector<int> keys;
    keys.clear();
    for (const auto &c : cands) {
        const int k = c.dir * kNumVnets + c.vnet;
        if (std::find(keys.begin(), keys.end(), k) == keys.end())
            keys.push_back(k);
    }
    stableSortSmall(keys, [](int a, int b) { return a < b; });
    for (const int key : keys) {
        const int d = key / kNumVnets;
        const int vn = key % kNumVnets;
        OutPort &op = out_[static_cast<std::size_t>(d)];
        if (!op.link)
            continue;
        {
            static thread_local std::vector<Cand *> group;
            group.clear();
            for (auto &c : cands) {
                if (c.dir == d && c.vnet == vn && c.vc)
                    group.push_back(&c);
            }
            if (group.empty())
                continue;

            static thread_local std::vector<int> free_vcs;
            free_vcs.clear();
            const int vn_base = params_.vnetBase(vn);
            for (int v = vn_base; v < vn_base + params_.vcsPerVnet[
                     static_cast<std::size_t>(vn)]; ++v) {
                if (!op.vcBusy[static_cast<std::size_t>(v)])
                    free_vcs.push_back(v);
            }
            if (free_vcs.empty())
                continue;

            if (group.size() > 1) {
                stableSortSmall(group,
                    [&](const Cand *a, const Cand *b) {
                        if (a->cls != b->cls)
                            return a->cls < b->cls;
                        const int ra =
                            (a->flat - op.rrVa + 1000000) % 1000000;
                        const int rb =
                            (b->flat - op.rrVa + 1000000) % 1000000;
                        return ra < rb;
                    });
            }

            std::size_t granted = 0;
            for (Cand *c : group) {
                if (granted >= free_vcs.size())
                    break;
                const int out_vc = free_vcs[granted++];
                changeStatus(*c->vc, VcStatus::Active);
                c->vc->outVc = out_vc;
                c->vc->vaDoneAt = now;
                op.vcBusy[static_cast<std::size_t>(out_vc)] = true;
                op.rrVa = c->flat + 1;
                c->vc = nullptr; // consumed
            }
        }
    }
}

void
Router::switchAllocateAndTraverse(Cycle now)
{
    struct Request
    {
        InPort *ip;
        VirtualChannel *vc;
        int inPortIdx;
        int vcIdx;
        int cls;
    };

    if (stateCount_[static_cast<std::size_t>(VcStatus::Active)] == 0)
        return;
    // Input stage: each input port nominates up to as many VCs as its
    // incoming link delivers per cycle (a 256-bit TSB keeps its doubled
    // datapath through the entry router's switch).
    static thread_local std::vector<Request> nominees;
    nominees.clear();
    for (int pi = 0; pi < kNumDirs; ++pi) {
        InPort &ip = in_[static_cast<std::size_t>(pi)];
        if (ip.stateMask[static_cast<std::size_t>(VcStatus::Active)] == 0)
            continue;
        const int vcs = static_cast<int>(ip.vcs.size());
        const int speedup = ip.link ? ip.link->bandwidth : 1;

        static thread_local std::vector<Request> ready;
        ready.clear();
        // Visit active VCs in the round-robin order rrSaVc, rrSaVc+1,
        // ..., vcs-1, 0, ..., rrSaVc-1: the bits at or above the
        // pointer in ascending order, then the bits below it.
        const std::uint64_t below =
            (std::uint64_t{1} << ip.rrSaVc) - 1;
        const std::uint64_t active = ip.stateMask[
            static_cast<std::size_t>(VcStatus::Active)];
        std::uint64_t rot[2] = {active & ~below, active & below};
        for (std::uint64_t &half : rot)
        for (; half != 0; half &= half - 1) {
            const int vi = std::countr_zero(half);
            VirtualChannel &vc = ip.vcs[static_cast<std::size_t>(vi)];
            if (vc.buffer.empty())
                continue;
            const Flit &front = vc.buffer.front();
            if (front.arrivedAt >= now || vc.vaDoneAt >= now)
                continue;
            OutPort &op = out_[static_cast<std::size_t>(
                static_cast<int>(vc.outDir))];
            if (op.credits[static_cast<std::size_t>(vc.outVc)] <= 0)
                continue;
            Packet &pkt = *front.pkt;
            if (front.head() && !policy_.eligible(id_, pkt, now))
                continue;
            const int cls = policy_.priorityClass(id_, pkt, now);
            ready.push_back(Request{&ip, &vc, pi, vi, cls});
        }
        if (ready.empty())
            continue;
        stableSortSmall(ready,
            [](const Request &a, const Request &b) {
                return a.cls < b.cls; // stable: keeps rr order within class
            });
        const int grants = std::min<int>(speedup,
                                         static_cast<int>(ready.size()));
        for (int g = 0; g < grants; ++g)
            nominees.push_back(ready[static_cast<std::size_t>(g)]);
        ip.rrSaVc = (ready.front().vcIdx + 1) % vcs;
    }
    if (nominees.empty())
        return;

    // Output stage: each output port grants up to its link bandwidth.
    // Visit only the ports some nominee wants, in ascending port order
    // as a full sweep would.
    static thread_local std::vector<int> out_dirs;
    out_dirs.clear();
    for (const auto &r : nominees) {
        const int d = static_cast<int>(r.vc->outDir);
        if (std::find(out_dirs.begin(), out_dirs.end(), d) ==
            out_dirs.end()) {
            out_dirs.push_back(d);
        }
    }
    stableSortSmall(out_dirs, [](int a, int b) { return a < b; });
    for (const int d : out_dirs) {
        OutPort &op = out_[static_cast<std::size_t>(d)];
        if (!op.link)
            continue;
        static thread_local std::vector<Request *> wants;
        wants.clear();
        for (auto &r : nominees) {
            if (static_cast<int>(r.vc->outDir) == d)
                wants.push_back(&r);
        }
        if (wants.empty())
            continue;
        stableSortSmall(wants,
            [&](const Request *a, const Request *b) {
                if (a->cls != b->cls)
                    return a->cls < b->cls;
                const int ra = (a->inPortIdx - op.rrSa + kNumDirs) %
                               kNumDirs;
                const int rb = (b->inPortIdx - op.rrSa + kNumDirs) %
                               kNumDirs;
                return ra < rb;
            });

        int sent = 0;
        for (Request *r : wants) {
            if (sent >= op.link->bandwidth)
                break;
            VirtualChannel &vc = *r->vc;
            Flit flit = std::move(vc.buffer.front());
            vc.buffer.pop_front();
            --bufferedTotal_;
            if (r->inPortIdx != static_cast<int>(Dir::Local))
                --localCongestion_;
            ++sent;
            op.rrSa = r->inPortIdx + 1;

            const bool is_head = flit.head();
            const bool is_tail = flit.tail();
            // The channel queue keeps the packet alive past the move.
            Packet *pkt = flit.pkt.get();
            op.link->data.push(now, LinkFlit{std::move(flit), vc.outVc});
            --op.credits[static_cast<std::size_t>(vc.outVc)];
            flitsOut_.inc();
            ++flitsSwitchedTotal_;

            // Return the freed buffer slot upstream.
            if (r->ip->link)
                r->ip->link->credit.push(now, Credit{r->vcIdx});

            if (is_head) {
                policy_.onForward(id_, *pkt, now);
                packetsForwarded_.inc();
            }
            if (is_tail) {
                op.vcBusy[static_cast<std::size_t>(vc.outVc)] = false;
                finishPacket(*r->ip, vc);
            }
        }
    }
}

void
Router::changeStatus(VirtualChannel &vc, VcStatus to)
{
    InPort &ip = in_[vc.port];
    const std::uint64_t bit = std::uint64_t{1} << vc.idx;
    const auto from = static_cast<std::size_t>(vc.status);
    const auto dest = static_cast<std::size_t>(to);
    ip.stateMask[from] &= ~bit;
    --stateCount_[from];
    vc.status = to;
    ip.stateMask[dest] |= bit;
    ++stateCount_[dest];
}

void
Router::finishPacket(InPort &, VirtualChannel &vc)
{
    vc.outVc = -1;
    vc.vaDoneAt = kCycleNever;
    if (vc.buffer.empty()) {
        changeStatus(vc, VcStatus::Idle);
    } else {
        panic_if(!vc.buffer.front().head(),
                 "router %d: packet boundary corrupted", id_);
        changeStatus(vc, VcStatus::Routing);
    }
}

int
Router::bufferedFlits() const
{
    return bufferedTotal_;
}

int
Router::bufferedFlits(Dir d) const
{
    int n = 0;
    const auto &ip = in_[static_cast<std::size_t>(static_cast<int>(d))];
    for (const auto &vc : ip.vcs)
        n += static_cast<int>(vc.buffer.size());
    return n;
}

int
Router::localCongestion() const
{
    return localCongestion_;
}

bool
Router::quiescent(Cycle) const
{
    if (faults_ != nullptr && faults_->spec().stuckRouter == id_)
        return false;
    if (bufferedTotal_ != 0 ||
        stateCount_[static_cast<std::size_t>(VcStatus::Routing)] != 0 ||
        stateCount_[static_cast<std::size_t>(VcStatus::WaitVa)] != 0 ||
        stateCount_[static_cast<std::size_t>(VcStatus::Active)] != 0) {
        return false;
    }
    for (const auto &ip : in_) {
        if (ip.link && ip.link->data.inFlight() != 0)
            return false;
    }
    // Credits in flight on the output links do NOT block quiescence:
    // an empty router makes no decision that reads its credit
    // counters, and receiveCredits() drains every arrived credit at
    // the top of the next tick, before any allocation stage looks at
    // them. Deferring the drain to the next data-driven wake therefore
    // yields bit-identical state while letting the router sleep
    // through pure credit-return traffic.
    return true;
}

void
Router::forEachBufferedFlit(
    const std::function<void(Dir, int, const Flit &)> &fn) const
{
    for (int d = 0; d < kNumDirs; ++d) {
        const auto &ip = in_[static_cast<std::size_t>(d)];
        for (std::size_t v = 0; v < ip.vcs.size(); ++v) {
            for (const auto &flit : ip.vcs[v].buffer)
                fn(static_cast<Dir>(d), static_cast<int>(v), flit);
        }
    }
}

int
Router::outCredits(Dir d, int vc) const
{
    const auto &op = out_[static_cast<std::size_t>(static_cast<int>(d))];
    if (!op.link)
        return -1;
    return op.credits.at(static_cast<std::size_t>(vc));
}

void
Router::forEachBufferedPacket(
    const std::function<void(const Packet &)> &fn) const
{
    for (const auto &ip : in_) {
        for (const auto &vc : ip.vcs) {
            for (const auto &flit : vc.buffer) {
                if (flit.head())
                    fn(*flit.pkt);
            }
        }
    }
}

} // namespace stacknoc::noc
