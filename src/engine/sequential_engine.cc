#include "engine/sequential_engine.hh"

#include <string>

#include "engine/tick_dispatch.hh"
#include "telemetry/profile.hh"

namespace stacknoc::engine {

namespace {

/** Kind buckets for the profiler's compute attribution, in TickKind
 *  order (== the batched schedule order). */
const std::vector<std::string> kKindNames = {
    "router", "ni", "rca", "l2bank", "mc", "l1", "core", "other",
};

} // namespace

SequentialEngine::~SequentialEngine()
{
    unbindFlags();
}

void
SequentialEngine::unbindFlags()
{
    for (std::size_t i = 0; i < order_.size(); ++i)
        order_[i].component->unbindWakeFlag(&active_[i]);
}

void
SequentialEngine::ensureSchedule()
{
    if (scheduleBuilt_ && scheduleVersion_ == sim_.registryVersion())
        return;
    unbindFlags();

    // One shard holds every parallel component in schedule order; the
    // serial list follows, mirroring the sharded engine's phase order.
    ShardPlan plan = buildShardPlan(sim_, 1);
    order_.clear();
    for (auto &shard : plan.shards)
        for (const ShardItem &item : shard)
            order_.push_back(item);
    for (const ShardItem &item : plan.serial)
        order_.push_back(item);

    // Everything starts awake; the first tick establishes quiescence.
    active_.assign(order_.size(), 1);
    if (elide_) {
        for (std::size_t i = 0; i < order_.size(); ++i)
            order_[i].component->bindWakeFlag(&active_[i]);
    }

    scheduleVersion_ = sim_.registryVersion();
    scheduleBuilt_ = true;
}

void
SequentialEngine::run(Cycle cycles)
{
    ensureSchedule();
    if (profiler_ == nullptr) {
        runPlain(cycles);
        return;
    }
    if (!kindsSet_) {
        profiler_->setKinds(kKindNames);
        kindsSet_ = true;
    }
    runProfiled(cycles);
}

void
SequentialEngine::runPlain(Cycle cycles)
{
    const std::size_t n = order_.size();
    for (Cycle i = 0; i < cycles; ++i) {
        const Cycle now = sim_.now();
        if (elide_) {
            std::uint64_t ticked = 0;
            for (std::size_t s = 0; s < n; ++s) {
                if (!active_[s])
                    continue;
                const ShardItem &item = order_[s];
                tickByKind(item, now);
                ++ticked;
                if (quiescentByKind(item, now))
                    active_[s] = 0;
            }
            ticked_ += ticked;
        } else {
            for (std::size_t s = 0; s < n; ++s)
                tickByKind(order_[s], now);
            ticked_ += n;
        }
        slots_ += n;
        sim_.completeCycle();
    }
}

void
SequentialEngine::runProfiled(Cycle cycles)
{
    telemetry::CycleProfiler &prof = *profiler_;
    const std::size_t n = order_.size();

    for (Cycle i = 0; i < cycles; ++i) {
        const Cycle now = sim_.now();
        // Chained timestamps: each clock read ends one measurement and
        // starts the next, so the phase durations tile the loop and
        // their sum tracks wall time.
        const double cycle_start = prof.nowSeconds();
        double t_prev = cycle_start;
        std::uint64_t ticked = 0;
        for (std::size_t s = 0; s < n; ++s) {
            if (elide_ && !active_[s])
                continue;
            const ShardItem &item = order_[s];
            tickByKind(item, now);
            ++ticked;
            if (elide_ && quiescentByKind(item, now))
                active_[s] = 0;
            const double t = prof.nowSeconds();
            prof.addKindSeconds(static_cast<std::uint8_t>(item.kind),
                                t - t_prev);
            t_prev = t;
        }
        ticked_ += ticked;
        slots_ += n;
        prof.addPhase(telemetry::EnginePhase::Compute, cycle_start,
                      t_prev);

        sim_.completeCycle();
        const double t_end = prof.nowSeconds();
        prof.addPhase(telemetry::EnginePhase::CycleEnd, t_prev, t_end);
        prof.addCycles(1);
    }
}

} // namespace stacknoc::engine
