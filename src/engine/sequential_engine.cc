#include "engine/sequential_engine.hh"

#include <string>

#include "telemetry/profile.hh"

namespace stacknoc::engine {

namespace {

/** Kind buckets for the sequential profiler's compute attribution. */
const std::vector<std::string> kKindNames = {
    "router", "ni", "l1", "l2bank", "core", "mc", "rca", "other",
};

std::uint8_t
kindOfName(const std::string &name)
{
    const auto starts = [&](const char *prefix) {
        return name.rfind(prefix, 0) == 0;
    };
    if (starts("net.router")) return 0;
    if (starts("net.ni")) return 1;
    if (starts("l1.")) return 2;
    if (starts("l2bank")) return 3;
    if (starts("core")) return 4;
    if (starts("mc")) return 5;
    if (starts("sttnoc.rca")) return 6;
    return 7;
}

} // namespace

void
SequentialEngine::run(Cycle cycles)
{
    if (profiler_ == nullptr) {
        sim_.run(cycles);
        return;
    }
    runProfiled(cycles);
}

void
SequentialEngine::buildKindMap()
{
    kindOf_.clear();
    kindOf_.reserve(sim_.componentCount());
    for (const Ticking *c : sim_.components())
        kindOf_.push_back(kindOfName(c->name()));
    kindMapVersion_ = sim_.registryVersion();
    kindMapBuilt_ = true;
    profiler_->setKinds(kKindNames);
}

void
SequentialEngine::runProfiled(Cycle cycles)
{
    if (!kindMapBuilt_ || kindMapVersion_ != sim_.registryVersion())
        buildKindMap();

    telemetry::CycleProfiler &prof = *profiler_;
    const auto &components = sim_.components();

    for (Cycle i = 0; i < cycles; ++i) {
        const Cycle now = sim_.now();
        // Chained timestamps: each clock read ends one measurement and
        // starts the next, so the phase durations tile the loop and
        // their sum tracks wall time.
        const double cycle_start = prof.nowSeconds();
        double t_prev = cycle_start;
        for (std::size_t ord = 0; ord < components.size(); ++ord) {
            components[ord]->tick(now);
            const double t = prof.nowSeconds();
            prof.addKindSeconds(kindOf_[ord], t - t_prev);
            t_prev = t;
        }
        prof.addPhase(telemetry::EnginePhase::Compute, cycle_start,
                      t_prev);

        sim_.completeCycle();
        const double t_end = prof.nowSeconds();
        prof.addPhase(telemetry::EnginePhase::CycleEnd, t_prev, t_end);
        prof.addCycles(1);
    }
}

} // namespace stacknoc::engine
