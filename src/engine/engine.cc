#include "engine/engine.hh"

#include "common/logging.hh"
#include "engine/sequential_engine.hh"
#include "engine/sharded_engine.hh"

namespace stacknoc::engine {

std::unique_ptr<ExecutionEngine>
makeEngine(Simulator &sim, int threads, bool elide)
{
    panic_if(threads < 1, "engine thread count must be >= 1, got %d",
             threads);
    if (threads == 1)
        return std::make_unique<SequentialEngine>(sim, elide);
    return std::make_unique<ShardedParallelEngine>(sim, threads, elide);
}

} // namespace stacknoc::engine
