/**
 * @file
 * The historical single-threaded tick loop behind the engine interface.
 */

#ifndef STACKNOC_ENGINE_SEQUENTIAL_ENGINE_HH
#define STACKNOC_ENGINE_SEQUENTIAL_ENGINE_HH

#include "engine/engine.hh"

namespace stacknoc::engine {

/**
 * Ticks every component in registration order on the calling thread —
 * exactly Simulator::run(). This is the reference implementation the
 * sharded engine must be bit-identical to.
 */
class SequentialEngine : public ExecutionEngine
{
  public:
    explicit SequentialEngine(Simulator &sim) : ExecutionEngine(sim) {}

    void run(Cycle cycles) override { sim_.run(cycles); }
    const char *name() const override { return "sequential"; }
    int threads() const override { return 1; }
};

} // namespace stacknoc::engine

#endif // STACKNOC_ENGINE_SEQUENTIAL_ENGINE_HH
