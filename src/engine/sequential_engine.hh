/**
 * @file
 * The single-threaded tick loop behind the engine interface.
 */

#ifndef STACKNOC_ENGINE_SEQUENTIAL_ENGINE_HH
#define STACKNOC_ENGINE_SEQUENTIAL_ENGINE_HH

#include <cstdint>
#include <vector>

#include "engine/engine.hh"
#include "engine/shard_plan.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::engine {

/**
 * Ticks every active component on the calling thread, walking the
 * kind-batched schedule (engine/shard_plan.hh) in ordinal order — the
 * reference tick order the sharded engine must be bit-identical to.
 *
 * With elision on (the default) a component reporting quiescent() after
 * its tick leaves the active set and is skipped until a channel push or
 * direct call wakes it; the skipped ticks are no-ops by the quiescence
 * contract, so results match the full walk exactly. With elision off
 * every component ticks every cycle, in the same schedule order.
 *
 * With a profiler installed the engine runs an instrumented copy of
 * the same loop that additionally attributes compute time to component
 * kinds with chained timestamps, so phase durations tile the measured
 * wall time. Tick order, and therefore every simulation result, is
 * identical either way.
 */
class SequentialEngine : public ExecutionEngine
{
  public:
    explicit SequentialEngine(Simulator &sim, bool elide = true)
        : ExecutionEngine(sim, elide)
    {}
    ~SequentialEngine() override;

    void run(Cycle cycles) override;
    const char *name() const override { return "sequential"; }
    int threads() const override { return 1; }

  private:
    friend class snapshot::StateIO; //!< checkpoints the active set

    /** (Re)build the schedule when the registry changed; rebind flags. */
    void ensureSchedule();
    void unbindFlags();

    void runPlain(Cycle cycles);
    void runProfiled(Cycle cycles);

    /** The kind-batched schedule, parallel items then serial items. */
    std::vector<ShardItem> order_;
    /** Active flags, 1:1 with order_ (wake targets; elision only). */
    std::vector<std::uint8_t> active_;
    std::uint64_t scheduleVersion_ = 0;
    bool scheduleBuilt_ = false;
    bool kindsSet_ = false; //!< profiler kind names published once
};

} // namespace stacknoc::engine

#endif // STACKNOC_ENGINE_SEQUENTIAL_ENGINE_HH
