/**
 * @file
 * The historical single-threaded tick loop behind the engine interface.
 */

#ifndef STACKNOC_ENGINE_SEQUENTIAL_ENGINE_HH
#define STACKNOC_ENGINE_SEQUENTIAL_ENGINE_HH

#include <cstdint>
#include <vector>

#include "engine/engine.hh"

namespace stacknoc::engine {

/**
 * Ticks every component in registration order on the calling thread —
 * exactly Simulator::run(). This is the reference implementation the
 * sharded engine must be bit-identical to.
 *
 * With a profiler installed the engine runs an instrumented copy of
 * the same loop that additionally attributes compute time to component
 * kinds (router, ni, l1, l2bank, core, mc, rca, other — classified
 * from the component name prefix) with chained timestamps, so phase
 * durations tile the measured wall time. Tick order, and therefore
 * every simulation result, is identical either way.
 */
class SequentialEngine : public ExecutionEngine
{
  public:
    explicit SequentialEngine(Simulator &sim) : ExecutionEngine(sim) {}

    void run(Cycle cycles) override;
    const char *name() const override { return "sequential"; }
    int threads() const override { return 1; }

  private:
    void runProfiled(Cycle cycles);

    /** Build (or rebuild) the ordinal -> kind-bucket map. */
    void buildKindMap();

    std::vector<std::uint8_t> kindOf_;  //!< per component ordinal
    std::uint64_t kindMapVersion_ = 0;  //!< registry version it matches
    bool kindMapBuilt_ = false;
};

} // namespace stacknoc::engine

#endif // STACKNOC_ENGINE_SEQUENTIAL_ENGINE_HH
