/**
 * @file
 * Devirtualized per-kind tick dispatch shared by both engines.
 *
 * The shard plan groups components kind-major, so engines walk
 * contiguous batches of one concrete type. Dispatching through a
 * static_cast to the final class lets the compiler bypass the vtable
 * (and inline the quiescence predicates), which is where the batched
 * loop wins over the historical `Ticking::tick` walk.
 */

#ifndef STACKNOC_ENGINE_TICK_DISPATCH_HH
#define STACKNOC_ENGINE_TICK_DISPATCH_HH

#include "coherence/l1_cache.hh"
#include "coherence/l2_bank.hh"
#include "cpu/core.hh"
#include "engine/shard_plan.hh"
#include "mem/memory_controller.hh"
#include "noc/network_interface.hh"
#include "noc/router.hh"
#include "sttnoc/rca_fabric.hh"

namespace stacknoc::engine {

/** Tick @p item through its concrete type (only trustworthy because
 *  every kind-claiming class is final). */
inline void
tickByKind(const ShardItem &item, Cycle now)
{
    switch (item.kind) {
      case TickKind::Router:
        static_cast<noc::Router *>(item.component)->tick(now);
        break;
      case TickKind::NetworkInterface:
        static_cast<noc::NetworkInterface *>(item.component)->tick(now);
        break;
      case TickKind::RcaFabric:
        static_cast<sttnoc::RcaFabric *>(item.component)->tick(now);
        break;
      case TickKind::L2Bank:
        static_cast<coherence::L2Bank *>(item.component)->tick(now);
        break;
      case TickKind::MemoryController:
        static_cast<mem::MemoryController *>(item.component)->tick(now);
        break;
      case TickKind::L1Cache:
        static_cast<coherence::L1Cache *>(item.component)->tick(now);
        break;
      case TickKind::Core:
        static_cast<cpu::Core *>(item.component)->tick(now);
        break;
      case TickKind::Other:
        item.component->tick(now);
        break;
    }
}

/** quiescent() through the concrete type; same contract as tickByKind. */
inline bool
quiescentByKind(const ShardItem &item, Cycle now)
{
    switch (item.kind) {
      case TickKind::Router:
        return static_cast<const noc::Router *>(item.component)
            ->quiescent(now);
      case TickKind::NetworkInterface:
        return static_cast<const noc::NetworkInterface *>(item.component)
            ->quiescent(now);
      case TickKind::RcaFabric:
        return static_cast<const sttnoc::RcaFabric *>(item.component)
            ->quiescent(now);
      case TickKind::L2Bank:
        return static_cast<const coherence::L2Bank *>(item.component)
            ->quiescent(now);
      case TickKind::MemoryController:
        return static_cast<const mem::MemoryController *>(item.component)
            ->quiescent(now);
      case TickKind::L1Cache:
        return static_cast<const coherence::L1Cache *>(item.component)
            ->quiescent(now);
      case TickKind::Core:
        return false; // cores are never quiescent (see cpu/core.hh)
      case TickKind::Other:
        return item.component->quiescent(now);
    }
    return false;
}

} // namespace stacknoc::engine

#endif // STACKNOC_ENGINE_TICK_DISPATCH_HH
