#include "engine/shard_plan.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stacknoc::engine {

ShardPlan
buildShardPlan(const Simulator &sim, int nshards)
{
    panic_if(nshards < 1, "shard plan needs at least one shard");

    const auto &components = sim.components();

    std::vector<int> keys;
    for (std::size_t i = 0; i < components.size(); ++i) {
        const int a = sim.affinity(i);
        if (a != Simulator::kSerialAffinity)
            keys.push_back(a);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    const std::size_t effective =
        std::min<std::size_t>(static_cast<std::size_t>(nshards),
                              std::max<std::size_t>(keys.size(), 1));

    // The global kind-batched schedule: stable-sort every component by
    // (kind, registration index). The position in this order is the
    // schedule ordinal — the one canonical tick order shared by all
    // engines and both elision modes.
    struct Entry
    {
        Ticking *component;
        std::uint32_t reg;
        int affinity;
        TickKind kind;
    };
    std::vector<Entry> schedule;
    schedule.reserve(components.size());
    for (std::size_t i = 0; i < components.size(); ++i) {
        schedule.push_back(Entry{components[i],
                                 static_cast<std::uint32_t>(i),
                                 sim.affinity(i),
                                 components[i]->tickKind()});
    }
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const Entry &a, const Entry &b) {
                         if (a.kind != b.kind)
                             return static_cast<int>(a.kind) <
                                    static_cast<int>(b.kind);
                         return a.reg < b.reg;
                     });

    ShardPlan plan;
    plan.shards.resize(keys.empty() ? 0 : effective);

    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const Entry &e = schedule[i];
        ShardItem item;
        item.component = e.component;
        item.ordinal = static_cast<std::uint32_t>(i);
        item.affinity = e.affinity;
        item.kind = e.kind;
        if (item.affinity == Simulator::kSerialAffinity) {
            plan.serial.push_back(item);
            continue;
        }
        const auto rank = static_cast<std::size_t>(
            std::lower_bound(keys.begin(), keys.end(), item.affinity) -
            keys.begin());
        plan.shards[rank % effective].push_back(item);
    }

    // Schedule order is preserved within each list by construction
    // (single ascending pass over the sorted schedule), which is what
    // makes per-shard replay reproduce the canonical tick order.
    return plan;
}

} // namespace stacknoc::engine
