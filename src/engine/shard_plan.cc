#include "engine/shard_plan.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stacknoc::engine {

ShardPlan
buildShardPlan(const Simulator &sim, int nshards)
{
    panic_if(nshards < 1, "shard plan needs at least one shard");

    const auto &components = sim.components();

    std::vector<int> keys;
    for (std::size_t i = 0; i < components.size(); ++i) {
        const int a = sim.affinity(i);
        if (a != Simulator::kSerialAffinity)
            keys.push_back(a);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    const std::size_t effective =
        std::min<std::size_t>(static_cast<std::size_t>(nshards),
                              std::max<std::size_t>(keys.size(), 1));

    ShardPlan plan;
    plan.shards.resize(keys.empty() ? 0 : effective);

    for (std::size_t i = 0; i < components.size(); ++i) {
        ShardItem item;
        item.component = components[i];
        item.ordinal = static_cast<std::uint32_t>(i);
        item.affinity = sim.affinity(i);
        if (item.affinity == Simulator::kSerialAffinity) {
            plan.serial.push_back(item);
            continue;
        }
        const auto rank = static_cast<std::size_t>(
            std::lower_bound(keys.begin(), keys.end(), item.affinity) -
            keys.begin());
        plan.shards[rank % effective].push_back(item);
    }

    // Registration order is preserved within each list by construction
    // (single ascending pass), which is what makes per-shard replay
    // reproduce the sequential tick order.
    return plan;
}

} // namespace stacknoc::engine
