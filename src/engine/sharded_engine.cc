#include "engine/sharded_engine.hh"

#include "common/logging.hh"
#include "telemetry/profile.hh"

namespace stacknoc::engine {

namespace {

/**
 * Spin for @p spin_iters checks, then start yielding the core. A zero
 * budget yields immediately — the right behavior when shards
 * outnumber hardware threads, where spinning only steals cycles from
 * the thread being waited on.
 */
template <typename Pred>
void
spinWait(int spin_iters, Pred pred)
{
    for (int i = 0; !pred(); ++i) {
        if (i >= spin_iters)
            std::this_thread::yield();
    }
}

} // namespace

ShardedParallelEngine::ShardedParallelEngine(Simulator &sim, int threads)
    : ExecutionEngine(sim),
      plan_(buildShardPlan(sim, threads)),
      requested_threads_(threads),
      registry_version_(sim.registryVersion())
{
    panic_if(threads < 2,
             "ShardedParallelEngine needs >= 2 threads (use "
             "SequentialEngine for 1)");

    const std::size_t nshards = plan_.numShards();
    shard_state_.reserve(nshards);
    for (std::size_t s = 0; s < nshards; ++s) {
        shard_state_.push_back(std::make_unique<ShardState>());
        tick_logs_.push_back(&shard_state_.back()->tick_log);
        trace_logs_.push_back(&shard_state_.back()->trace_log);
    }

    // Spin only when every shard can own a hardware thread; otherwise
    // the barrier must yield so the preempted shard gets to run.
    const unsigned hw = std::thread::hardware_concurrency();
    spin_iters_ = (hw != 0 && nshards <= hw) ? (1 << 14) : 0;

    // The main thread runs shard 0; each remaining shard gets a
    // persistent worker parked on the epoch counter.
    for (std::size_t s = 1; s < nshards; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

ShardedParallelEngine::~ShardedParallelEngine()
{
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    for (auto &w : workers_)
        w.join();
}

void
ShardedParallelEngine::setProfiler(telemetry::CycleProfiler *profiler)
{
    ExecutionEngine::setProfiler(profiler);
    if (profiler_ != nullptr)
        profiler_->setShardCount(plan_.numShards());
}

void
ShardedParallelEngine::workerLoop(std::size_t shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        ++seen;
        spinWait(spin_iters_, [&] {
            return epoch_.load(std::memory_order_acquire) >= seen;
        });
        if (stop_.load(std::memory_order_acquire))
            return;
        // Safe to read only after the epoch acquire: setProfiler runs
        // on the main thread before the epoch publishing this cycle.
        if (telemetry::CycleProfiler *prof = profiler_) {
            const double t0 = prof->nowSeconds();
            runShard(shard, cycle_);
            prof->addShardPhase(shard, telemetry::EnginePhase::Compute,
                                t0, prof->nowSeconds());
        } else {
            runShard(shard, cycle_);
        }
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
ShardedParallelEngine::runShard(std::size_t shard, Cycle now)
{
    ShardState &st = *shard_state_[shard];
    ChannelBase::setStagingList(&st.staged_channels);
    stats::setTickLog(&st.tick_log);
    telemetry::setTraceLog(&st.trace_log);
    for (const ShardItem &item : plan_.shards[shard]) {
        st.tick_log.beginComponent(item.ordinal);
        st.trace_log.beginComponent(item.ordinal);
        item.component->tick(now);
    }
    ChannelBase::setStagingList(nullptr);
    stats::setTickLog(nullptr);
    telemetry::setTraceLog(nullptr);
}

void
ShardedParallelEngine::commitStagedState()
{
    // Commit phase: channel splices first (cheap, order-free — each
    // channel is enrolled in exactly one shard's list because channels
    // are single-sender), then the ordinal-ordered stat/trace replay.
    for (auto &st : shard_state_) {
        for (ChannelBase *ch : st->staged_channels)
            ch->commitStaged();
        st->staged_channels.clear();
    }
    if (!tick_logs_.empty()) {
        stats::TickLog::applyInOrder(tick_logs_.data(), tick_logs_.size());
        telemetry::TraceLog::applyInOrder(trace_logs_.data(),
                                          trace_logs_.size());
    }
}

void
ShardedParallelEngine::runCycle()
{
    const Cycle now = sim_.now();
    cycle_ = now;
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);

    if (!plan_.shards.empty())
        runShard(0, now);

    const std::size_t nworkers = workers_.size();
    spinWait(spin_iters_, [&] {
        return done_.load(std::memory_order_acquire) == nworkers;
    });

    commitStagedState();

    for (const ShardItem &item : plan_.serial)
        item.component->tick(now);

    sim_.completeCycle();
}

void
ShardedParallelEngine::runCycleProfiled()
{
    // Identical to runCycle() plus chained wall-clock stamps around
    // each phase, so phase durations tile the cycle. The extra clock
    // reads are observer-only: the tick/commit/serial sequence — and
    // therefore every simulation result — is byte-for-byte the same.
    using telemetry::EnginePhase;
    telemetry::CycleProfiler &prof = *profiler_;

    const Cycle now = sim_.now();
    cycle_ = now;
    done_.store(0, std::memory_order_relaxed);

    const double t0 = prof.nowSeconds();
    epoch_.fetch_add(1, std::memory_order_release);

    if (!plan_.shards.empty())
        runShard(0, now);
    const double t1 = prof.nowSeconds();
    prof.addPhase(EnginePhase::Compute, t0, t1);
    prof.addShardPhase(0, EnginePhase::Compute, t0, t1);

    const std::size_t nworkers = workers_.size();
    spinWait(spin_iters_, [&] {
        return done_.load(std::memory_order_acquire) == nworkers;
    });
    const double t2 = prof.nowSeconds();
    prof.addPhase(EnginePhase::Barrier, t1, t2);

    commitStagedState();
    const double t3 = prof.nowSeconds();
    prof.addPhase(EnginePhase::Commit, t2, t3);

    for (const ShardItem &item : plan_.serial)
        item.component->tick(now);
    const double t4 = prof.nowSeconds();
    prof.addPhase(EnginePhase::Serial, t3, t4);

    sim_.completeCycle();
    prof.addPhase(EnginePhase::CycleEnd, t4, prof.nowSeconds());
    prof.addCycles(1);
}

void
ShardedParallelEngine::run(Cycle cycles)
{
    panic_if(sim_.registryVersion() != registry_version_,
             "components were registered after the shard plan was built");
    if (profiler_ != nullptr) {
        for (Cycle i = 0; i < cycles; ++i)
            runCycleProfiled();
        return;
    }
    for (Cycle i = 0; i < cycles; ++i)
        runCycle();
}

} // namespace stacknoc::engine
