#include "engine/sharded_engine.hh"

#include "common/logging.hh"
#include "engine/tick_dispatch.hh"
#include "telemetry/profile.hh"

namespace stacknoc::engine {

namespace {

/**
 * Spin for @p spin_iters checks, then start yielding the core. A zero
 * budget yields immediately — the right behavior when shards
 * outnumber hardware threads, where spinning only steals cycles from
 * the thread being waited on.
 */
template <typename Pred>
void
spinWait(int spin_iters, Pred pred)
{
    for (int i = 0; !pred(); ++i) {
        if (i >= spin_iters)
            std::this_thread::yield();
    }
}

} // namespace

ShardedParallelEngine::ShardedParallelEngine(Simulator &sim, int threads,
                                             bool elide)
    : ExecutionEngine(sim, elide),
      plan_(buildShardPlan(sim, threads)),
      requested_threads_(threads),
      registry_version_(sim.registryVersion())
{
    panic_if(threads < 2,
             "ShardedParallelEngine needs >= 2 threads (use "
             "SequentialEngine for 1)");

    const std::size_t nshards = plan_.numShards();
    shard_state_.reserve(nshards);
    for (std::size_t s = 0; s < nshards; ++s) {
        shard_state_.push_back(std::make_unique<ShardState>());
        tick_logs_.push_back(&shard_state_.back()->tick_log);
        trace_logs_.push_back(&shard_state_.back()->trace_log);
        // Everything starts awake; the first tick proves quiescence.
        shard_state_.back()->active.assign(plan_.shards[s].size(), 1);
        if (elide_) {
            auto &st = *shard_state_.back();
            for (std::size_t i = 0; i < plan_.shards[s].size(); ++i)
                plan_.shards[s][i].component->bindWakeFlag(&st.active[i]);
        }
    }
    serial_active_.assign(plan_.serial.size(), 1);
    if (elide_) {
        for (std::size_t i = 0; i < plan_.serial.size(); ++i)
            plan_.serial[i].component->bindWakeFlag(&serial_active_[i]);
    }

    // Spin only when every shard can own a hardware thread; otherwise
    // the barrier must yield so the preempted shard gets to run.
    const unsigned hw = std::thread::hardware_concurrency();
    spin_iters_ = (hw != 0 && nshards <= hw) ? (1 << 14) : 0;

    // The main thread runs shard 0; each remaining shard gets a
    // persistent worker parked on the epoch counter.
    for (std::size_t s = 1; s < nshards; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

ShardedParallelEngine::~ShardedParallelEngine()
{
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    for (auto &w : workers_)
        w.join();

    if (elide_) {
        for (std::size_t s = 0; s < plan_.shards.size(); ++s) {
            auto &st = *shard_state_[s];
            for (std::size_t i = 0; i < plan_.shards[s].size(); ++i)
                plan_.shards[s][i].component->unbindWakeFlag(&st.active[i]);
        }
        for (std::size_t i = 0; i < plan_.serial.size(); ++i)
            plan_.serial[i].component->unbindWakeFlag(&serial_active_[i]);
    }
}

std::uint64_t
ShardedParallelEngine::tickedComponents() const
{
    std::uint64_t total = ticked_; // serial-phase ticks
    for (const auto &st : shard_state_)
        total += st->ticked;
    return total;
}

void
ShardedParallelEngine::setProfiler(telemetry::CycleProfiler *profiler)
{
    ExecutionEngine::setProfiler(profiler);
    if (profiler_ != nullptr)
        profiler_->setShardCount(plan_.numShards());
}

void
ShardedParallelEngine::workerLoop(std::size_t shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        ++seen;
        spinWait(spin_iters_, [&] {
            return epoch_.load(std::memory_order_acquire) >= seen;
        });
        if (stop_.load(std::memory_order_acquire))
            return;
        // Safe to read only after the epoch acquire: setProfiler runs
        // on the main thread before the epoch publishing this cycle.
        if (telemetry::CycleProfiler *prof = profiler_) {
            const double t0 = prof->nowSeconds();
            runShard(shard, cycle_);
            prof->addShardPhase(shard, telemetry::EnginePhase::Compute,
                                t0, prof->nowSeconds());
        } else {
            runShard(shard, cycle_);
        }
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
ShardedParallelEngine::runShard(std::size_t shard, Cycle now)
{
    ShardState &st = *shard_state_[shard];
    ChannelBase::setStagingList(&st.staged_channels);
    stats::setTickLog(&st.tick_log);
    telemetry::setTraceLog(&st.trace_log);
    const std::vector<ShardItem> &items = plan_.shards[shard];
    if (elide_) {
        std::uint64_t ticked = 0;
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (!st.active[i])
                continue;
            const ShardItem &item = items[i];
            st.tick_log.beginComponent(item.ordinal);
            st.trace_log.beginComponent(item.ordinal);
            tickByKind(item, now);
            ++ticked;
            if (quiescentByKind(item, now))
                st.active[i] = 0;
        }
        st.ticked += ticked;
    } else {
        for (const ShardItem &item : items) {
            st.tick_log.beginComponent(item.ordinal);
            st.trace_log.beginComponent(item.ordinal);
            tickByKind(item, now);
        }
        st.ticked += items.size();
    }
    ChannelBase::setStagingList(nullptr);
    stats::setTickLog(nullptr);
    telemetry::setTraceLog(nullptr);
}

void
ShardedParallelEngine::runSerial(Cycle now)
{
    const std::vector<ShardItem> &items = plan_.serial;
    if (elide_) {
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (!serial_active_[i])
                continue;
            const ShardItem &item = items[i];
            tickByKind(item, now);
            ++ticked_;
            if (quiescentByKind(item, now))
                serial_active_[i] = 0;
        }
    } else {
        for (const ShardItem &item : items)
            tickByKind(item, now);
        ticked_ += items.size();
    }
}

void
ShardedParallelEngine::commitStagedState()
{
    // Commit phase: channel splices first (cheap, order-free — each
    // channel is enrolled in exactly one shard's list because channels
    // are single-sender), then the ordinal-ordered stat/trace replay.
    for (auto &st : shard_state_) {
        for (ChannelBase *ch : st->staged_channels)
            ch->commitStaged();
        st->staged_channels.clear();
    }
    if (!tick_logs_.empty()) {
        stats::TickLog::applyInOrder(tick_logs_.data(), tick_logs_.size());
        telemetry::TraceLog::applyInOrder(trace_logs_.data(),
                                          trace_logs_.size());
    }
}

void
ShardedParallelEngine::runCycle()
{
    const Cycle now = sim_.now();
    cycle_ = now;
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);

    if (!plan_.shards.empty())
        runShard(0, now);

    const std::size_t nworkers = workers_.size();
    spinWait(spin_iters_, [&] {
        return done_.load(std::memory_order_acquire) == nworkers;
    });

    commitStagedState();

    runSerial(now);

    slots_ += plan_.parallelCount() + plan_.serial.size();
    sim_.completeCycle();
}

void
ShardedParallelEngine::runCycleProfiled()
{
    // Identical to runCycle() plus chained wall-clock stamps around
    // each phase, so phase durations tile the cycle. The extra clock
    // reads are observer-only: the tick/commit/serial sequence — and
    // therefore every simulation result — is byte-for-byte the same.
    using telemetry::EnginePhase;
    telemetry::CycleProfiler &prof = *profiler_;

    const Cycle now = sim_.now();
    cycle_ = now;
    done_.store(0, std::memory_order_relaxed);

    const double t0 = prof.nowSeconds();
    epoch_.fetch_add(1, std::memory_order_release);

    if (!plan_.shards.empty())
        runShard(0, now);
    const double t1 = prof.nowSeconds();
    prof.addPhase(EnginePhase::Compute, t0, t1);
    prof.addShardPhase(0, EnginePhase::Compute, t0, t1);

    const std::size_t nworkers = workers_.size();
    spinWait(spin_iters_, [&] {
        return done_.load(std::memory_order_acquire) == nworkers;
    });
    const double t2 = prof.nowSeconds();
    prof.addPhase(EnginePhase::Barrier, t1, t2);

    commitStagedState();
    const double t3 = prof.nowSeconds();
    prof.addPhase(EnginePhase::Commit, t2, t3);

    runSerial(now);
    const double t4 = prof.nowSeconds();
    prof.addPhase(EnginePhase::Serial, t3, t4);

    slots_ += plan_.parallelCount() + plan_.serial.size();
    sim_.completeCycle();
    prof.addPhase(EnginePhase::CycleEnd, t4, prof.nowSeconds());
    prof.addCycles(1);
}

void
ShardedParallelEngine::run(Cycle cycles)
{
    panic_if(sim_.registryVersion() != registry_version_,
             "components were registered after the shard plan was built");
    if (profiler_ != nullptr) {
        for (Cycle i = 0; i < cycles; ++i)
            runCycleProfiled();
        return;
    }
    for (Cycle i = 0; i < cycles; ++i)
        runCycle();
}

} // namespace stacknoc::engine
