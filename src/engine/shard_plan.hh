/**
 * @file
 * Spatial partitioning of a Simulator's component registry into shards.
 */

#ifndef STACKNOC_ENGINE_SHARD_PLAN_HH
#define STACKNOC_ENGINE_SHARD_PLAN_HH

#include <cstdint>
#include <vector>

#include "sim/simulator.hh"
#include "sim/ticking.hh"

namespace stacknoc::engine {

/** One component's slot in a shard plan. */
struct ShardItem
{
    Ticking *component = nullptr;
    /**
     * Position in the global kind-batched schedule: all components
     * sorted by (tickKind, registration index). This is the canonical
     * within-cycle tick order of every engine — the sequential engine
     * walks it directly, and the sharded engine's commit phase merges
     * per-shard stat/trace logs by it — so results are bit-identical
     * across engines, thread counts, and elision modes.
     */
    std::uint32_t ordinal = 0;
    /** The affinity key the component was registered with. */
    int affinity = Simulator::kSerialAffinity;
    /** Batching class, for the engines' devirtualized kind loops. */
    TickKind kind = TickKind::Other;
};

/**
 * The partition the sharded engine executes: parallel shards (each
 * ticked by one worker, components in ascending ordinal order) plus the
 * serial list (components with kSerialAffinity, ticked on the main
 * thread after the phase barrier, also in ascending ordinal order).
 *
 * Components sharing an affinity key always land in the same shard —
 * that is the co-location guarantee system builders rely on (e.g. both
 * layers' routers of one mesh column, so cross-layer TSB pairs never
 * straddle a shard boundary).
 *
 * Each list is grouped by TickKind (the schedule sort is kind-major),
 * so an engine walking a list front to back executes contiguous
 * per-kind batches. The kind order mirrors the historical registration
 * order of CmpSystem (routers, NIs, sideband, banks, memory
 * controllers, L1s, cores), preserving every direct-call ordering
 * contract between kinds.
 */
struct ShardPlan
{
    std::vector<std::vector<ShardItem>> shards;
    std::vector<ShardItem> serial;

    std::size_t numShards() const { return shards.size(); }

    std::size_t
    parallelCount() const
    {
        std::size_t n = 0;
        for (const auto &s : shards)
            n += s.size();
        return n;
    }
};

/**
 * Partition @p sim's registry into at most @p nshards shards: the
 * distinct affinity keys are sorted and dealt round-robin (key rank
 * modulo shard count), which balances mesh columns across workers. The
 * effective shard count is min(nshards, number of distinct keys) so no
 * shard is empty.
 */
ShardPlan buildShardPlan(const Simulator &sim, int nshards);

} // namespace stacknoc::engine

#endif // STACKNOC_ENGINE_SHARD_PLAN_HH
