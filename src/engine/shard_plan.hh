/**
 * @file
 * Spatial partitioning of a Simulator's component registry into shards.
 */

#ifndef STACKNOC_ENGINE_SHARD_PLAN_HH
#define STACKNOC_ENGINE_SHARD_PLAN_HH

#include <cstdint>
#include <vector>

#include "sim/simulator.hh"
#include "sim/ticking.hh"

namespace stacknoc::engine {

/** One component's slot in a shard plan. */
struct ShardItem
{
    Ticking *component = nullptr;
    /** Registration index in the Simulator — the sequential tick order. */
    std::uint32_t ordinal = 0;
    /** The affinity key the component was registered with. */
    int affinity = Simulator::kSerialAffinity;
};

/**
 * The partition the sharded engine executes: parallel shards (each
 * ticked by one worker, components in ascending ordinal order) plus the
 * serial list (components with kSerialAffinity, ticked on the main
 * thread after the phase barrier, also in ascending ordinal order).
 *
 * Components sharing an affinity key always land in the same shard —
 * that is the co-location guarantee system builders rely on (e.g. both
 * layers' routers of one mesh column, so cross-layer TSB pairs never
 * straddle a shard boundary).
 */
struct ShardPlan
{
    std::vector<std::vector<ShardItem>> shards;
    std::vector<ShardItem> serial;

    std::size_t numShards() const { return shards.size(); }

    std::size_t
    parallelCount() const
    {
        std::size_t n = 0;
        for (const auto &s : shards)
            n += s.size();
        return n;
    }
};

/**
 * Partition @p sim's registry into at most @p nshards shards: the
 * distinct affinity keys are sorted and dealt round-robin (key rank
 * modulo shard count), which balances mesh columns across workers. The
 * effective shard count is min(nshards, number of distinct keys) so no
 * shard is empty.
 */
ShardPlan buildShardPlan(const Simulator &sim, int nshards);

} // namespace stacknoc::engine

#endif // STACKNOC_ENGINE_SHARD_PLAN_HH
