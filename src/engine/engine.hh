/**
 * @file
 * Execution engines: strategies for advancing a Simulator's clock.
 *
 * The Simulator owns the component registry and the clock; an
 * ExecutionEngine owns the tick loop. SequentialEngine reproduces the
 * historical single-threaded loop exactly; ShardedParallelEngine ticks
 * spatial shards of the component registry on persistent worker threads
 * with a two-phase (compute, then commit) cycle that is bit-identical
 * to the sequential engine regardless of thread count. See
 * docs/ENGINE.md for the determinism contract.
 */

#ifndef STACKNOC_ENGINE_ENGINE_HH
#define STACKNOC_ENGINE_ENGINE_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"
#include "sim/simulator.hh"

namespace stacknoc::telemetry {
class CycleProfiler;
} // namespace stacknoc::telemetry

namespace stacknoc::engine {

/** Drives a Simulator's registered components through time. */
class ExecutionEngine
{
  public:
    explicit ExecutionEngine(Simulator &sim, bool elide = true)
        : sim_(sim), elide_(elide)
    {}
    virtual ~ExecutionEngine() = default;

    ExecutionEngine(const ExecutionEngine &) = delete;
    ExecutionEngine &operator=(const ExecutionEngine &) = delete;

    /** Advance the simulation by @p cycles. */
    virtual void run(Cycle cycles) = 0;

    /** Engine kind, for logs and stats ("sequential" / "sharded"). */
    virtual const char *name() const = 0;

    /** Number of threads ticking components (1 for sequential). */
    virtual int threads() const = 0;

    /**
     * Install a cycle-accounting profiler (nullptr = off, the
     * default). Must happen before the first run(); with no profiler
     * the engines take their historical fast paths and pay nothing.
     */
    virtual void setProfiler(telemetry::CycleProfiler *profiler)
    {
        profiler_ = profiler;
    }

    telemetry::CycleProfiler *profiler() const { return profiler_; }

    /** Whether quiescent components are skipped (idle elision). */
    bool elides() const { return elide_; }

    /**
     * Component ticks actually executed so far. With elision off this
     * equals tickSlots(); the gap is the elision win. Observer-only:
     * the counts never feed back into simulation state, so they are
     * free to differ between engines (a component another engine
     * happened to tick while quiescent is still a no-op).
     */
    virtual std::uint64_t tickedComponents() const { return ticked_; }

    /** Component-tick opportunities so far (components x cycles). */
    virtual std::uint64_t tickSlots() const { return slots_; }

  protected:
    Simulator &sim_;
    telemetry::CycleProfiler *profiler_ = nullptr;
    const bool elide_;
    std::uint64_t ticked_ = 0;
    std::uint64_t slots_ = 0;
};

/**
 * Factory: @p threads <= 1 builds a SequentialEngine, anything larger a
 * ShardedParallelEngine with that many shards. Call only after every
 * component has been registered with the Simulator. @p elide enables
 * idle elision (the default); false restores the full per-cycle walk.
 */
std::unique_ptr<ExecutionEngine> makeEngine(Simulator &sim, int threads,
                                            bool elide = true);

} // namespace stacknoc::engine

#endif // STACKNOC_ENGINE_ENGINE_HH
