/**
 * @file
 * Execution engines: strategies for advancing a Simulator's clock.
 *
 * The Simulator owns the component registry and the clock; an
 * ExecutionEngine owns the tick loop. SequentialEngine reproduces the
 * historical single-threaded loop exactly; ShardedParallelEngine ticks
 * spatial shards of the component registry on persistent worker threads
 * with a two-phase (compute, then commit) cycle that is bit-identical
 * to the sequential engine regardless of thread count. See
 * docs/ENGINE.md for the determinism contract.
 */

#ifndef STACKNOC_ENGINE_ENGINE_HH
#define STACKNOC_ENGINE_ENGINE_HH

#include <memory>

#include "common/types.hh"
#include "sim/simulator.hh"

namespace stacknoc::telemetry {
class CycleProfiler;
} // namespace stacknoc::telemetry

namespace stacknoc::engine {

/** Drives a Simulator's registered components through time. */
class ExecutionEngine
{
  public:
    explicit ExecutionEngine(Simulator &sim) : sim_(sim) {}
    virtual ~ExecutionEngine() = default;

    ExecutionEngine(const ExecutionEngine &) = delete;
    ExecutionEngine &operator=(const ExecutionEngine &) = delete;

    /** Advance the simulation by @p cycles. */
    virtual void run(Cycle cycles) = 0;

    /** Engine kind, for logs and stats ("sequential" / "sharded"). */
    virtual const char *name() const = 0;

    /** Number of threads ticking components (1 for sequential). */
    virtual int threads() const = 0;

    /**
     * Install a cycle-accounting profiler (nullptr = off, the
     * default). Must happen before the first run(); with no profiler
     * the engines take their historical fast paths and pay nothing.
     */
    virtual void setProfiler(telemetry::CycleProfiler *profiler)
    {
        profiler_ = profiler;
    }

    telemetry::CycleProfiler *profiler() const { return profiler_; }

  protected:
    Simulator &sim_;
    telemetry::CycleProfiler *profiler_ = nullptr;
};

/**
 * Factory: @p threads <= 1 builds a SequentialEngine, anything larger a
 * ShardedParallelEngine with that many shards. Call only after every
 * component has been registered with the Simulator.
 */
std::unique_ptr<ExecutionEngine> makeEngine(Simulator &sim, int threads);

} // namespace stacknoc::engine

#endif // STACKNOC_ENGINE_ENGINE_HH
