/**
 * @file
 * The deterministic sharded parallel execution engine.
 */

#ifndef STACKNOC_ENGINE_SHARDED_ENGINE_HH
#define STACKNOC_ENGINE_SHARDED_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "engine/engine.hh"
#include "engine/shard_plan.hh"
#include "sim/channel.hh"
#include "sim/stats.hh"
#include "telemetry/trace.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::engine {

/**
 * Ticks spatial shards of the component registry on persistent worker
 * threads, bit-identical to SequentialEngine. Each cycle:
 *
 *  1. Parallel compute phase: every shard ticks its active components
 *     in ascending schedule-ordinal order (kind-batched, devirtualized
 *     dispatch) with thread-local staging installed, so channel pushes,
 *     stat mutations and trace records are deferred into per-shard
 *     buffers instead of touching shared state. With elision on, a
 *     component reporting quiescent() after its tick leaves the active
 *     set until a wake re-arms it.
 *  2. Barrier (sense = epoch counter, spin with yield fallback).
 *  3. Commit phase (main thread): staged channel values are spliced
 *     into the live queues (waking each channel's receiver); stat and
 *     trace logs are merged by schedule ordinal — the exact sequential
 *     application order — and replayed.
 *  4. Serial phase (main thread): components registered with
 *     kSerialAffinity tick with staging off.
 *  5. Cycle-end callbacks and clock advance via Simulator::completeCycle.
 *
 * The main thread executes shard 0 itself, so N shards cost N-1 worker
 * threads. See docs/ENGINE.md for why each step preserves equivalence.
 */
class ShardedParallelEngine : public ExecutionEngine
{
  public:
    /**
     * @param threads requested shard count (>= 2). The effective count
     * is capped at the number of distinct affinity keys.
     * @param elide skip quiescent components (see docs/ENGINE.md).
     */
    ShardedParallelEngine(Simulator &sim, int threads, bool elide = true);
    ~ShardedParallelEngine() override;

    void run(Cycle cycles) override;
    const char *name() const override { return "sharded"; }
    int threads() const override { return requested_threads_; }

    std::uint64_t tickedComponents() const override;

    /**
     * Install the profiler and size its per-shard slots. Workers read
     * the pointer only after observing a cycle epoch published later,
     * so installation needs no extra synchronisation — but it must
     * happen before the first run().
     */
    void setProfiler(telemetry::CycleProfiler *profiler) override;

    /** The partition being executed (test/diagnostic use). */
    const ShardPlan &plan() const { return plan_; }

  private:
    /** Checkpointing maps the per-shard active flags to and from
     *  schedule ordinals between run() calls (phase barrier holds). */
    friend class snapshot::StateIO;

    /** Per-shard deferral buffers, one cache-line-separated allocation
     *  per shard to keep workers from false-sharing. */
    struct ShardState
    {
        std::vector<ChannelBase *> staged_channels;
        stats::TickLog tick_log;
        telemetry::TraceLog trace_log;
        /**
         * Active flags, 1:1 with the shard's plan items. Written by
         * the owning worker (deactivation after a quiescent tick) and,
         * through bound wake pointers, by same-shard direct calls
         * during the compute phase or by the main thread during
         * commit/serial/cycle-end — never concurrently, thanks to the
         * phase barrier.
         */
        std::vector<std::uint8_t> active;
        /** Component ticks this shard executed (occupancy telemetry). */
        std::uint64_t ticked = 0;
    };

    void runCycle();
    void runCycleProfiled();
    void runShard(std::size_t shard, Cycle now);
    void workerLoop(std::size_t shard);

    /** Commit phase body shared by the plain and profiled cycles. */
    void commitStagedState();

    /** Serial-phase body: tick (active) serial components. */
    void runSerial(Cycle now);

    ShardPlan plan_;
    int requested_threads_;
    std::uint64_t registry_version_;
    /** Active flags for the serial list (main thread only). */
    std::vector<std::uint8_t> serial_active_;
    /** Barrier spin budget before yielding (0 when oversubscribed). */
    int spin_iters_ = 0;

    std::vector<std::unique_ptr<ShardState>> shard_state_;
    std::vector<stats::TickLog *> tick_logs_;
    std::vector<telemetry::TraceLog *> trace_logs_;

    // Cycle handshake: the main thread publishes cycle_ then bumps
    // epoch_ (release); workers observe the new epoch (acquire), tick
    // their shard, and bump done_ (release). Monotonic epochs double as
    // the barrier sense, so no reinitialisation race exists.
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::size_t> done_{0};
    std::atomic<bool> stop_{false};
    Cycle cycle_ = 0;

    std::vector<std::thread> workers_;
};

} // namespace stacknoc::engine

#endif // STACKNOC_ENGINE_SHARDED_ENGINE_HH
