/**
 * @file
 * The deterministic sharded parallel execution engine.
 */

#ifndef STACKNOC_ENGINE_SHARDED_ENGINE_HH
#define STACKNOC_ENGINE_SHARDED_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "engine/engine.hh"
#include "engine/shard_plan.hh"
#include "sim/channel.hh"
#include "sim/stats.hh"
#include "telemetry/trace.hh"

namespace stacknoc::engine {

/**
 * Ticks spatial shards of the component registry on persistent worker
 * threads, bit-identical to SequentialEngine. Each cycle:
 *
 *  1. Parallel compute phase: every shard ticks its components in
 *     ascending ordinal order with thread-local staging installed, so
 *     channel pushes, stat mutations and trace records are deferred
 *     into per-shard buffers instead of touching shared state.
 *  2. Barrier (sense = epoch counter, spin with yield fallback).
 *  3. Commit phase (main thread): staged channel values are spliced
 *     into the live queues; stat and trace logs are merged by component
 *     ordinal — the exact sequential application order — and replayed.
 *  4. Serial phase (main thread): components registered with
 *     kSerialAffinity tick with staging off (e.g. the RCA fabric, which
 *     reads live router state).
 *  5. Cycle-end callbacks and clock advance via Simulator::completeCycle.
 *
 * The main thread executes shard 0 itself, so N shards cost N-1 worker
 * threads. See docs/ENGINE.md for why each step preserves equivalence.
 */
class ShardedParallelEngine : public ExecutionEngine
{
  public:
    /**
     * @param threads requested shard count (>= 2). The effective count
     * is capped at the number of distinct affinity keys.
     */
    ShardedParallelEngine(Simulator &sim, int threads);
    ~ShardedParallelEngine() override;

    void run(Cycle cycles) override;
    const char *name() const override { return "sharded"; }
    int threads() const override { return requested_threads_; }

    /**
     * Install the profiler and size its per-shard slots. Workers read
     * the pointer only after observing a cycle epoch published later,
     * so installation needs no extra synchronisation — but it must
     * happen before the first run().
     */
    void setProfiler(telemetry::CycleProfiler *profiler) override;

    /** The partition being executed (test/diagnostic use). */
    const ShardPlan &plan() const { return plan_; }

  private:
    /** Per-shard deferral buffers, one cache-line-separated allocation
     *  per shard to keep workers from false-sharing. */
    struct ShardState
    {
        std::vector<ChannelBase *> staged_channels;
        stats::TickLog tick_log;
        telemetry::TraceLog trace_log;
    };

    void runCycle();
    void runCycleProfiled();
    void runShard(std::size_t shard, Cycle now);
    void workerLoop(std::size_t shard);

    /** Commit phase body shared by the plain and profiled cycles. */
    void commitStagedState();

    ShardPlan plan_;
    int requested_threads_;
    std::uint64_t registry_version_;
    /** Barrier spin budget before yielding (0 when oversubscribed). */
    int spin_iters_ = 0;

    std::vector<std::unique_ptr<ShardState>> shard_state_;
    std::vector<stats::TickLog *> tick_logs_;
    std::vector<telemetry::TraceLog *> trace_logs_;

    // Cycle handshake: the main thread publishes cycle_ then bumps
    // epoch_ (release); workers observe the new epoch (acquire), tick
    // their shard, and bump done_ (release). Monotonic epochs double as
    // the barrier sense, so no reinitialisation race exists.
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::size_t> done_{0};
    std::atomic<bool> stop_{false};
    Cycle cycle_ = 0;

    std::vector<std::thread> workers_;
};

} // namespace stacknoc::engine

#endif // STACKNOC_ENGINE_SHARDED_ENGINE_HH
