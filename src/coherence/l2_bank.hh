/**
 * @file
 * One shared L2 bank: the timed STT-RAM/SRAM data array behind a
 * blocking MESI home directory, plus the memory-side interface.
 *
 * The directory serialises transactions per block (requests to a busy
 * block queue in the transaction's TBE) which keeps the protocol free of
 * unbounded races; the only cross-message subtlety — a PutM racing a
 * Recall — is resolved by intercepting the PutM as the recall payload.
 */

#ifndef STACKNOC_COHERENCE_L2_BANK_HH
#define STACKNOC_COHERENCE_L2_BANK_HH

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/tag_array.hh"
#include "common/rng.hh"
#include "sim/stats.hh"
#include "sim/ticking.hh"
#include "mem/bank_controller.hh"
#include "noc/network_interface.hh"
#include "coherence/messages.hh"

namespace stacknoc::fault {
class FaultInjector;
} // namespace stacknoc::fault

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::coherence {

/** L2 bank configuration. */
struct L2Config
{
    mem::CacheTech tech = mem::CacheTech::SttRam;
    mem::BankControllerConfig bankCtrl{};

    /**
     * Real-tags mode keeps an actual tag array (4 MB STT-RAM: 2048 sets
     * x 16 ways; 1 MB SRAM: 512 x 16). Annotated mode — the default for
     * the paper's trace-driven experiments — takes the hit/miss outcome
     * from the request's kFlagL2Hit hint.
     */
    bool realTags = false;
    int sets = 2048;
    int ways = 16;

    /** Annotated mode: probability a fill evicts a dirty L2 victim. */
    double victimDirtyProb = 0.3;

    /** Memory controllers (corner nodes of the cache layer). */
    std::vector<NodeId> mcNodes{64, 71, 120, 127};

    /** Seed for the victim-dirty draw (mixed with the bank id). */
    std::uint64_t seed = 1;

    /**
     * Admission bound on outstanding GetS/GetM at this bank (Table 1:
     * 32 MSHRs per L2 bank, shared here between demand classes). When
     * reached, the NI holds further requests and the congestion spills
     * into the network — the paper's motivating behaviour. Writebacks
     * are always admitted (they ride their own virtual network and are
     * the recall payloads the directory may be waiting for).
     */
    int requestCap = 8;

    /**
     * Admission bound on outstanding StoreWrite/PutM at this bank.
     * Beyond it the NI refuses write packets and the burst backs up
     * into the network — the congestion tree around a write-busy bank
     * that motivates the paper's re-ordering. Progress safety: write
     * transactions only ever wait on COH/RESP/MEM messages, never on
     * another write (see the RecallAck handling), so refusing writes
     * cannot deadlock the protocol.
     */
    int writeCap = 32;

    /**
     * Fault injector driving STT-RAM write-verify-retry at this bank
     * (null = writes always succeed). Shared, not owned.
     */
    fault::FaultInjector *faultInjector = nullptr;
};

/** Directory state of one block. */
struct DirEntry
{
    enum class State : std::uint8_t { S, E, M };
    State state = State::S;
    std::uint64_t sharers = 0; //!< bit per core (S state)
    CoreId owner = -1;         //!< valid in E/M
};

/**
 * The L2 bank protocol agent. Must be ticked every cycle (drives the
 * bank controller and delayed completions).
 */
class L2Bank final : public Ticking, public noc::NetworkClient
{
  public:
    /**
     * @param bname component name.
     * @param bank bank id.
     * @param node hosting cache-layer node.
     * @param out packet injection port.
     * @param config bank configuration.
     * @param group statistics group shared by all banks.
     */
    L2Bank(std::string bname, BankId bank, NodeId node,
           noc::PacketSender &out, const L2Config &config,
           stats::Group &group);

    bool tryAccept(const noc::Packet &pkt) override;
    void deliver(noc::PacketPtr pkt, Cycle now) override;
    void tick(Cycle now) override;

    /**
     * Idle iff no TBE is live, the bank controller has drained, and no
     * BusyNack is owed for a completed retry episode. deliver() wakes
     * the bank; tryAccept() only moves admission counters, which tick()
     * never reads, so it needs no wake.
     */
    bool quiescent(Cycle now) const override;

    TickKind tickKind() const override { return TickKind::L2Bank; }

    /**
     * Parent router node of this bank. When set (STT-RAM-aware schemes
     * with fault injection), each failed write-verify round sends one
     * BusyNack there so the parent re-opens the bank's busy window and
     * adapts its hold margin.
     */
    void setParentNode(NodeId parent) { parentNode_ = parent; }

    /** @return true when no transaction or bank work is in flight. */
    bool idle(Cycle now) const;

    /** Outstanding admitted GetS/GetM (for tests). */
    int admittedRequests() const { return admittedRequests_; }

    /** Outstanding admitted StoreWrite/PutM (for tests/validation). */
    int admittedWrites() const { return admittedWrites_; }

    /**
     * Count the transactions currently charged against the admission
     * counters: active TBEs plus requests parked in TBE blocked queues,
     * split by demand class. Validation cross-checks this census against
     * admittedRequests()/admittedWrites().
     */
    void countAdmitted(int &requests, int &writes) const;

    /**
     * Fault injection for validation tests ONLY: skew the admission
     * busy-counters without touching any transaction state, emulating a
     * lost decrement. The invariant checkers must catch the mismatch.
     */
    void corruptAdmissionCountersForTest(int request_delta,
                                         int write_delta)
    {
        admittedRequests_ += request_delta;
        admittedWrites_ += write_delta;
    }

    /** @return directory entry for @p addr, or nullptr (state I). */
    const DirEntry *dirEntry(BlockAddr addr) const;

    /** Number of transactions currently blocking. */
    std::size_t tbeCount() const { return tbes_.size(); }

    const mem::BankController &bankController() const { return ctrl_; }

  private:
    /** Checkpointing rebuilds the bank-controller completion callbacks
     *  (always respondAndFinish bound to this bank + an address). */
    friend class snapshot::StateIO;

    enum class Phase {
        BankAccess,  //!< waiting for the data array
        WaitMem,     //!< fill outstanding at a memory controller
        WaitInvAcks, //!< invalidations outstanding at sharers
        WaitRecall,  //!< recall outstanding at the owner
        WaitUnblock, //!< grant in flight; requester has not installed it
    };

    struct Tbe
    {
        CohKind kind;        //!< GetS / GetM / PutM
        CoreId requester = -1;
        bool l2Hit = true;
        bool upgrade = false; //!< GetM from a current sharer
        Phase phase = Phase::BankAccess;
        int pendingAcks = 0;
        CoreId recallOwner = -1;
        Grant grant = Grant::S;
        std::deque<noc::PacketPtr> blocked;
        /** Telemetry only: originating packet and arrival time. */
        std::uint64_t pktId = mem::kNoTracePkt;
        std::uint8_t pktCls = 0;
        Cycle arrivedAt = 0;
    };

    void handleRequest(noc::PacketPtr pkt, Cycle now);
    void startTransaction(noc::PacketPtr pkt, Cycle now);
    void startGetS(Tbe &tbe, BlockAddr addr, Cycle now);
    void startGetM(Tbe &tbe, BlockAddr addr, Cycle now);
    void startWriteL2(Tbe &tbe, BlockAddr addr, Cycle now);
    void startPutM(Tbe &tbe, BlockAddr addr, Cycle now);

    /** Serve from the L2 array or memory; on data, respond with grant. */
    void serveFromL2(BlockAddr addr, Cycle now);
    void handleMemResp(noc::PacketPtr pkt, Cycle now);
    void handleInvAck(noc::PacketPtr pkt, Cycle now);
    void handleRecallPayload(BlockAddr addr, bool dirty, Cycle now);
    void afterInvAcks(BlockAddr addr, Cycle now);

    /** Complete the transaction: respond, update directory, unblock. */
    void respondAndFinish(BlockAddr addr, Cycle now);
    void finish(BlockAddr addr, Cycle now);

    bool isL2Hit(const noc::Packet &pkt);
    void sendToCore(CoreId core, noc::PacketClass cls, CohKind kind,
                    BlockAddr addr, Cycle now, std::uint16_t aux = 0,
                    std::uint8_t flags = 0);
    void bankRead(BlockAddr addr, std::function<void(Cycle)> done,
                  Cycle now);
    void bankWrite(BlockAddr addr, std::function<void(Cycle)> done,
                   Cycle now);
    NodeId mcFor(BlockAddr addr) const;

    BankId bank_;
    NodeId node_;
    noc::PacketSender &out_;
    L2Config config_;
    mem::BankController ctrl_;
    Rng rng_;

    int admittedRequests_ = 0;
    int admittedWrites_ = 0;
    NodeId parentNode_ = kInvalidNode;
    std::uint64_t lastNackedEpisode_ = 0;
    std::unordered_map<BlockAddr, DirEntry> dir_;
    std::unordered_map<BlockAddr, Tbe> tbes_;
    std::unique_ptr<cache::TagArray> tags_; //!< realTags mode only

    stats::Counter &getS_;
    stats::Counter &getM_;
    stats::Counter &putM_;
    stats::Counter &storeWrites_;
    stats::Counter &l2Misses_;
    stats::Counter &stalePutM_;
    stats::Counter &invsSent_;
    stats::Counter &recallsSent_;
    stats::Counter &blockedRequests_;
    stats::Counter &admissionRefusals_;
    stats::Histogram &residencyHist_;
};

} // namespace stacknoc::coherence

#endif // STACKNOC_COHERENCE_L2_BANK_HH
