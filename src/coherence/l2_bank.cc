#include "coherence/l2_bank.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "fault/fault_injector.hh"

namespace stacknoc::coherence {

namespace {

std::uint64_t
coreBit(CoreId c)
{
    return 1ULL << static_cast<unsigned>(c);
}

} // namespace

L2Bank::L2Bank(std::string bname, BankId bank, NodeId node,
               noc::PacketSender &out, const L2Config &config,
               stats::Group &group)
    : Ticking(std::move(bname)), bank_(bank), node_(node), out_(out),
      config_(config),
      ctrl_(config.tech, config.bankCtrl, group,
            "l2bank" + std::to_string(bank), node),
      rng_(config.seed * 0x9e3779b9ULL + static_cast<std::uint64_t>(bank)),
      getS_(group.counter("l2_gets")),
      getM_(group.counter("l2_getm")),
      putM_(group.counter("l2_putm")),
      storeWrites_(group.counter("l2_stores")),
      l2Misses_(group.counter("l2_misses")),
      stalePutM_(group.counter("l2_stale_putm")),
      invsSent_(group.counter("l2_invs_sent")),
      recallsSent_(group.counter("l2_recalls_sent")),
      blockedRequests_(group.counter("l2_blocked_requests")),
      admissionRefusals_(group.counter("l2_admission_refusals")),
      residencyHist_(group.histogram("l2_residency_hist"))
{
    if (config_.realTags)
        tags_ = std::make_unique<cache::TagArray>(config_.sets,
                                                  config_.ways);
    fatal_if(config_.mcNodes.empty(), "L2 bank needs memory controllers");
    if (config_.faultInjector)
        ctrl_.setFaultInjector(config_.faultInjector, bank_);
}

void
L2Bank::sendToCore(CoreId core, noc::PacketClass cls, CohKind kind,
                   BlockAddr addr, Cycle now, std::uint16_t aux,
                   std::uint8_t flags)
{
    auto pkt = noc::makePacket(cls, node_, core, addr);
    pkt->destBank = bank_;
    setKind(*pkt, kind, core);
    pkt->info.aux = aux;
    pkt->info.flags = flags;
    out_.send(std::move(pkt), now);
}

void
L2Bank::bankRead(BlockAddr addr, std::function<void(Cycle)> done,
                 Cycle now)
{
    mem::BankRequest req;
    req.isWrite = false;
    req.addr = addr;
    if (auto it = tbes_.find(addr); it != tbes_.end()) {
        req.tracePktId = it->second.pktId;
        req.traceCls = it->second.pktCls;
    }
    req.onDone = std::move(done);
    ctrl_.enqueue(std::move(req), now);
}

void
L2Bank::bankWrite(BlockAddr addr, std::function<void(Cycle)> done,
                  Cycle now)
{
    mem::BankRequest req;
    req.isWrite = true;
    req.addr = addr;
    if (auto it = tbes_.find(addr); it != tbes_.end()) {
        req.tracePktId = it->second.pktId;
        req.traceCls = it->second.pktCls;
    }
    req.onDone = std::move(done);
    ctrl_.enqueue(std::move(req), now);
}

NodeId
L2Bank::mcFor(BlockAddr addr) const
{
    return config_.mcNodes[static_cast<std::size_t>(
        (addr >> 6) % config_.mcNodes.size())];
}

bool
L2Bank::isL2Hit(const noc::Packet &pkt)
{
    if (config_.realTags)
        return tags_->find(pkt.addr) != nullptr;
    return (pkt.info.flags & kFlagL2Hit) != 0;
}

const DirEntry *
L2Bank::dirEntry(BlockAddr addr) const
{
    auto it = dir_.find(addr);
    return it == dir_.end() ? nullptr : &it->second;
}

bool
L2Bank::idle(Cycle now) const
{
    return tbes_.empty() && ctrl_.idle(now);
}

bool
L2Bank::quiescent(Cycle now) const
{
    return idle(now) && lastNackedEpisode_ == ctrl_.retryEpisodes();
}

void
L2Bank::countAdmitted(int &requests, int &writes) const
{
    requests = 0;
    writes = 0;
    auto classify = [&](noc::PacketClass cls) {
        if (cls == noc::PacketClass::ReadReq ||
            cls == noc::PacketClass::WriteReq) {
            ++requests;
        } else if (cls == noc::PacketClass::StoreWrite ||
                   cls == noc::PacketClass::WritebackReq) {
            ++writes;
        }
    };
    for (const auto &[addr, tbe] : tbes_) {
        (void)addr;
        switch (tbe.kind) {
          case CohKind::GetS:
          case CohKind::GetM:
            // The slot is released when the grant goes out; the TBE
            // then lingers in WaitUnblock until the requester installs.
            if (tbe.phase != Phase::WaitUnblock)
                ++requests;
            break;
          case CohKind::WriteL2:
          case CohKind::PutM:
            ++writes;
            break;
          default:
            break;
        }
        for (const auto &pkt : tbe.blocked)
            classify(pkt->cls);
    }
}

bool
L2Bank::tryAccept(const noc::Packet &pkt)
{
    // Demand reads/upgrades and writes are bounded separately;
    // coherence and memory responses always sink.
    if (pkt.cls == noc::PacketClass::ReadReq ||
        pkt.cls == noc::PacketClass::WriteReq) {
        if (admittedRequests_ >= config_.requestCap) {
            admissionRefusals_.inc();
            return false;
        }
        ++admittedRequests_;
        return true;
    }
    if (pkt.cls == noc::PacketClass::StoreWrite ||
        pkt.cls == noc::PacketClass::WritebackReq) {
        // Hold-miss recovery: while the bank port is stuck in a
        // write-verify-retry round the parent's prediction has gone
        // stale, so new write-class packets are refused (retry-later);
        // the BusyNack sent from tick() re-opens the parent's window.
        // Progress-safe for the same reason the writeCap bound is.
        if (ctrl_.writeRetryActive()) {
            admissionRefusals_.inc();
            return false;
        }
        if (admittedWrites_ >= config_.writeCap) {
            admissionRefusals_.inc();
            return false;
        }
        ++admittedWrites_;
        return true;
    }
    return true;
}

void
L2Bank::deliver(noc::PacketPtr pkt, Cycle now)
{
    wake();
    if (pkt->cls == noc::PacketClass::MemResp) {
        handleMemResp(std::move(pkt), now);
        return;
    }
    switch (kindOf(*pkt)) {
      case CohKind::GetS:
      case CohKind::GetM:
      case CohKind::WriteL2:
      case CohKind::PutM:
        handleRequest(std::move(pkt), now);
        break;
      case CohKind::InvAck:
        handleInvAck(std::move(pkt), now);
        break;
      case CohKind::Unblock: {
        auto it = tbes_.find(pkt->addr);
        if (it != tbes_.end() && it->second.phase == Phase::WaitUnblock)
            finish(pkt->addr, now);
        break;
      }
      case CohKind::RecallData: {
        auto it = tbes_.find(pkt->addr);
        if (it != tbes_.end() && it->second.phase == Phase::WaitRecall)
            handleRecallPayload(pkt->addr, true, now);
        break;
      }
      case CohKind::RecallAck: {
        auto it = tbes_.find(pkt->addr);
        if (it == tbes_.end() || it->second.phase != Phase::WaitRecall)
            break; // stale
        // Even when the owner's PutM is in flight we proceed from the
        // bank copy at once: waiting could deadlock against the bounded
        // write admission (the PutM may sit behind refused writes), and
        // the straggler PutM is simply dropped as stale later. The
        // timing difference is a single bank write, which the stale-
        // PutM accounting deliberately forgoes.
        handleRecallPayload(pkt->addr, false, now);
        break;
      }
      default:
        panic("L2 bank %d: unexpected packet %s", bank_,
              pkt->toString().c_str());
    }
}

void
L2Bank::handleRequest(noc::PacketPtr pkt, Cycle now)
{
    const BlockAddr addr = pkt->addr;
    auto it = tbes_.find(addr);
    if (it != tbes_.end()) {
        Tbe &tbe = it->second;
        // A PutM racing the Recall we sent: take it as the recall
        // payload and acknowledge the writer.
        if (kindOf(*pkt) == CohKind::PutM &&
            tbe.phase == Phase::WaitRecall &&
            originOf(*pkt) == tbe.recallOwner) {
            --admittedWrites_; // consumed as the recall payload
            sendToCore(originOf(*pkt), noc::PacketClass::Ack,
                       CohKind::WbAck, addr, now);
            handleRecallPayload(addr, true, now);
            return;
        }
        blockedRequests_.inc();
        tbe.blocked.push_back(std::move(pkt));
        return;
    }
    startTransaction(std::move(pkt), now);
}

void
L2Bank::startTransaction(noc::PacketPtr pkt, Cycle now)
{
    const BlockAddr addr = pkt->addr;
    const CohKind kind = kindOf(*pkt);
    const CoreId req = originOf(*pkt);

    if (kind == CohKind::PutM) {
        // Stale writebacks (the owner was recalled first) are dropped:
        // the directory's copy is newer or ownership has moved on.
        auto d = dir_.find(addr);
        const bool valid_owner =
            d != dir_.end() &&
            (d->second.state == DirEntry::State::M ||
             d->second.state == DirEntry::State::E) &&
            d->second.owner == req;
        if (!valid_owner) {
            stalePutM_.inc();
            --admittedWrites_;
            sendToCore(req, noc::PacketClass::Ack, CohKind::WbAck, addr,
                       now);
            return;
        }
        putM_.inc();
    } else if (kind == CohKind::GetS) {
        getS_.inc();
    } else if (kind == CohKind::WriteL2) {
        storeWrites_.inc();
    } else {
        getM_.inc();
    }

    Tbe tbe;
    tbe.kind = kind;
    tbe.requester = req;
    tbe.l2Hit = isL2Hit(*pkt);
    tbe.pktId = pkt->id;
    tbe.pktCls = static_cast<std::uint8_t>(pkt->cls);
    tbe.arrivedAt = now;
    auto [it, inserted] = tbes_.emplace(addr, std::move(tbe));
    panic_if(!inserted, "TBE already present");

    switch (kind) {
      case CohKind::GetS:
        startGetS(it->second, addr, now);
        break;
      case CohKind::GetM:
        startGetM(it->second, addr, now);
        break;
      case CohKind::WriteL2:
        startWriteL2(it->second, addr, now);
        break;
      case CohKind::PutM:
        startPutM(it->second, addr, now);
        break;
      default:
        panic("bad transaction kind");
    }
}

void
L2Bank::startGetS(Tbe &tbe, BlockAddr addr, Cycle now)
{
    auto d = dir_.find(addr);
    if (d == dir_.end()) {
        tbe.grant = Grant::E; // MESI: sole reader gets Exclusive
        serveFromL2(addr, now);
        return;
    }
    DirEntry &e = d->second;
    if (e.state == DirEntry::State::S) {
        tbe.grant = Grant::S;
        tbe.l2Hit = true; // inclusive: shared data is present in L2
        serveFromL2(addr, now);
        return;
    }
    // E or M.
    if (e.owner == tbe.requester) {
        // The owner silently dropped a clean Exclusive copy and is
        // re-requesting; the L2 copy is valid.
        dir_.erase(d);
        tbe.grant = Grant::E;
        tbe.l2Hit = true;
        serveFromL2(addr, now);
        return;
    }
    tbe.grant = Grant::S;
    tbe.phase = Phase::WaitRecall;
    tbe.recallOwner = e.owner;
    recallsSent_.inc();
    sendToCore(e.owner, noc::PacketClass::CohCtrl, CohKind::Recall, addr,
               now);
}

void
L2Bank::startGetM(Tbe &tbe, BlockAddr addr, Cycle now)
{
    tbe.grant = Grant::M;
    auto d = dir_.find(addr);
    if (d == dir_.end()) {
        serveFromL2(addr, now);
        return;
    }
    DirEntry &e = d->second;
    if (e.state == DirEntry::State::S) {
        tbe.upgrade = (e.sharers & coreBit(tbe.requester)) != 0;
        tbe.l2Hit = true;
        int acks = 0;
        for (CoreId c = 0; c < 64; ++c) {
            if (c == tbe.requester || !(e.sharers & coreBit(c)))
                continue;
            invsSent_.inc();
            sendToCore(c, noc::PacketClass::CohCtrl, CohKind::Inv, addr,
                       now);
            ++acks;
        }
        tbe.pendingAcks = acks;
        if (acks == 0)
            afterInvAcks(addr, now);
        else
            tbe.phase = Phase::WaitInvAcks;
        return;
    }
    // E or M.
    if (e.owner == tbe.requester) {
        dir_.erase(d);
        tbe.l2Hit = true;
        serveFromL2(addr, now);
        return;
    }
    tbe.phase = Phase::WaitRecall;
    tbe.recallOwner = e.owner;
    recallsSent_.inc();
    sendToCore(e.owner, noc::PacketClass::CohCtrl, CohKind::Recall, addr,
               now);
}

void
L2Bank::startPutM(Tbe &, BlockAddr addr, Cycle now)
{
    // A long STT-RAM write.
    bankWrite(addr, [this, addr](Cycle t) { respondAndFinish(addr, t); },
              now);
}

void
L2Bank::startWriteL2(Tbe &tbe, BlockAddr addr, Cycle now)
{
    // The no-allocate store write — the paper's "L2 write": a fire-and-
    // forget 33-cycle occupation of the bank's write port. Copies held
    // by L1s must be invalidated or recalled first.
    auto d = dir_.find(addr);
    if (d == dir_.end()) {
        if (tbe.l2Hit) {
            bankWrite(addr,
                      [this, addr](Cycle t) { respondAndFinish(addr, t); },
                      now);
            return;
        }
        // Miss: fetch the line from memory, then merge-write it.
        l2Misses_.inc();
        tbe.phase = Phase::WaitMem;
        auto req = noc::makePacket(noc::PacketClass::MemReq, node_,
                                   mcFor(addr), addr);
        req->destBank = bank_;
        out_.send(std::move(req), now);
        return;
    }
    DirEntry &e = d->second;
    if (e.state == DirEntry::State::S) {
        // Invalidate EVERY sharer, including the requester: a
        // StoreWrite rides the write virtual network and can arrive
        // after a younger load made its own sender a sharer.
        tbe.l2Hit = true;
        int acks = 0;
        for (CoreId c = 0; c < 64; ++c) {
            if (!(e.sharers & coreBit(c)))
                continue;
            invsSent_.inc();
            sendToCore(c, noc::PacketClass::CohCtrl, CohKind::Inv, addr,
                       now);
            ++acks;
        }
        dir_.erase(d);
        tbe.pendingAcks = acks;
        if (acks == 0)
            afterInvAcks(addr, now);
        else
            tbe.phase = Phase::WaitInvAcks;
        return;
    }
    // E or M: recall the owner's copy, merge, write. This deliberately
    // includes owner == requester: a StoreWrite travels on the write
    // virtual network and can arrive AFTER a younger load of the same
    // core installed the block — the live copy must still be recalled,
    // or the directory would forget an owner (caught by the protocol
    // torture tests).
    tbe.phase = Phase::WaitRecall;
    tbe.recallOwner = e.owner;
    recallsSent_.inc();
    sendToCore(e.owner, noc::PacketClass::CohCtrl, CohKind::Recall, addr,
               now);
}

void
L2Bank::serveFromL2(BlockAddr addr, Cycle now)
{
    Tbe &tbe = tbes_.at(addr);
    if (tbe.l2Hit) {
        bankRead(addr,
                 [this, addr](Cycle t) { respondAndFinish(addr, t); },
                 now);
        return;
    }
    l2Misses_.inc();
    tbe.phase = Phase::WaitMem;
    auto req = noc::makePacket(noc::PacketClass::MemReq, node_,
                               mcFor(addr), addr);
    req->destBank = bank_;
    out_.send(std::move(req), now);
}

void
L2Bank::handleMemResp(noc::PacketPtr pkt, Cycle now)
{
    const BlockAddr addr = pkt->addr;
    auto it = tbes_.find(addr);
    panic_if(it == tbes_.end() || it->second.phase != Phase::WaitMem,
             "bank %d: spurious MemResp %s", bank_,
             pkt->toString().c_str());

    // Fill allocation and victim writeback.
    bool victim_dirty = false;
    BlockAddr victim_addr = addr;
    if (config_.realTags) {
        cache::TagEntry evicted;
        cache::TagEntry *e = tags_->allocate(addr, &evicted);
        panic_if(e == nullptr, "L2 allocation failed");
        if (evicted.valid) {
            victim_dirty = evicted.dirty;
            victim_addr = evicted.addr;
            // Inclusive victim: drop directory state, invalidate L1
            // copies fire-and-forget (stale InvAcks are tolerated).
            auto vd = dir_.find(evicted.addr);
            if (vd != dir_.end()) {
                for (CoreId c = 0; c < 64; ++c) {
                    if (vd->second.sharers & coreBit(c)) {
                        sendToCore(c, noc::PacketClass::CohCtrl,
                                   CohKind::Inv, evicted.addr, now);
                    }
                }
                dir_.erase(vd);
            }
        }
    } else {
        victim_dirty = rng_.chance(config_.victimDirtyProb);
    }
    if (victim_dirty) {
        auto wb = noc::makePacket(noc::PacketClass::MemWrite, node_,
                                  mcFor(victim_addr), victim_addr);
        wb->destBank = bank_;
        out_.send(std::move(wb), now);
    }

    // The fill occupies the bank's write port — with STT-RAM this is a
    // full 33-cycle write.
    it->second.phase = Phase::BankAccess;
    bankWrite(addr, [this, addr](Cycle t) { respondAndFinish(addr, t); },
              now);
}

void
L2Bank::handleInvAck(noc::PacketPtr pkt, Cycle now)
{
    auto it = tbes_.find(pkt->addr);
    if (it == tbes_.end() || it->second.phase != Phase::WaitInvAcks)
        return; // stale ack from a back-invalidation: ignore
    Tbe &tbe = it->second;
    if (--tbe.pendingAcks == 0)
        afterInvAcks(pkt->addr, now);
}

void
L2Bank::afterInvAcks(BlockAddr addr, Cycle now)
{
    Tbe &tbe = tbes_.at(addr);
    tbe.phase = Phase::BankAccess;
    if (tbe.kind == CohKind::WriteL2) {
        bankWrite(addr,
                  [this, addr](Cycle t) { respondAndFinish(addr, t); },
                  now);
        return;
    }
    if (tbe.upgrade) {
        // The requester already holds the data: grant M without a data
        // transfer or a bank access.
        --admittedRequests_; // release the admission slot
        sendToCore(tbe.requester, noc::PacketClass::Ack,
                   CohKind::UpgradeAck, addr, now,
                   static_cast<std::uint16_t>(Grant::M));
        dir_[addr] = DirEntry{DirEntry::State::M, 0, tbe.requester};
        tbe.phase = Phase::WaitUnblock; // hold until installed
        return;
    }
    bankRead(addr, [this, addr](Cycle t) { respondAndFinish(addr, t); },
             now);
}

void
L2Bank::handleRecallPayload(BlockAddr addr, bool dirty, Cycle now)
{
    Tbe &tbe = tbes_.at(addr);
    tbe.phase = Phase::BankAccess;
    if (tbe.kind == CohKind::WriteL2) {
        // Merge the recalled line (dirty or not) with the store and
        // write it: one long bank write either way.
        dir_.erase(addr);
        bankWrite(addr,
                  [this, addr](Cycle t) { respondAndFinish(addr, t); },
                  now);
        return;
    }
    if (dirty) {
        // Absorb the owner's modified data into the bank (a long write),
        // then answer the waiting requester from the updated copy.
        bankWrite(addr,
                  [this, addr](Cycle t) { respondAndFinish(addr, t); },
                  now);
    } else {
        bankRead(addr,
                 [this, addr](Cycle t) { respondAndFinish(addr, t); },
                 now);
    }
}

void
L2Bank::respondAndFinish(BlockAddr addr, Cycle now)
{
    Tbe &tbe = tbes_.at(addr);
    residencyHist_.sample(now - tbe.arrivedAt);
    if (tbe.kind == CohKind::GetS || tbe.kind == CohKind::GetM)
        --admittedRequests_; // release the admission slot
    else
        --admittedWrites_;
    if (tbe.kind == CohKind::WriteL2) {
        // Fire-and-forget: no response. The line now lives (only) in
        // the L2; directory state I.
        dir_.erase(addr);
        if (config_.realTags) {
            if (cache::TagEntry *e = tags_->find(addr)) {
                e->dirty = true;
            } else {
                cache::TagEntry evicted;
                if (cache::TagEntry *fresh = tags_->allocate(addr,
                                                             &evicted))
                    fresh->dirty = true;
            }
        }
        finish(addr, now);
        return;
    }
    if (tbe.kind == CohKind::PutM) {
        sendToCore(tbe.requester, noc::PacketClass::Ack, CohKind::WbAck,
                   addr, now);
        dir_.erase(addr);
        if (config_.realTags) {
            if (cache::TagEntry *e = tags_->find(addr))
                e->dirty = true;
        }
        finish(addr, now);
        return;
    }

    sendToCore(tbe.requester, noc::PacketClass::DataResp, CohKind::Data,
               addr, now, static_cast<std::uint16_t>(tbe.grant));
    // The transaction stays open until the requester's Unblock: a
    // Recall or Inv issued for a later transaction must never race the
    // grant that is still in flight.
    tbe.phase = Phase::WaitUnblock;
    switch (tbe.grant) {
      case Grant::E:
        dir_[addr] = DirEntry{DirEntry::State::E, 0, tbe.requester};
        break;
      case Grant::M:
        dir_[addr] = DirEntry{DirEntry::State::M, 0, tbe.requester};
        break;
      case Grant::S: {
        auto d = dir_.find(addr);
        if (d != dir_.end() && d->second.state == DirEntry::State::S) {
            d->second.sharers |= coreBit(tbe.requester);
        } else {
            dir_[addr] = DirEntry{DirEntry::State::S,
                                  coreBit(tbe.requester), -1};
        }
        break;
      }
    }
}

void
L2Bank::finish(BlockAddr addr, Cycle now)
{
    auto node = tbes_.extract(addr);
    panic_if(node.empty(), "finish without TBE");
    auto blocked = std::move(node.mapped().blocked);
    while (!blocked.empty()) {
        noc::PacketPtr pkt = std::move(blocked.front());
        blocked.pop_front();
        handleRequest(std::move(pkt), now);
    }
}

void
L2Bank::tick(Cycle now)
{
    ctrl_.tick(now);

    // One BusyNack per failed write-verify round: tells the parent
    // router how much longer the bank stays busy past its predicted
    // window (aux), so the hold window re-opens and the adaptive
    // margin learns the overshoot.
    if (config_.faultInjector && parentNode_ != kInvalidNode &&
        ctrl_.retryEpisodes() != lastNackedEpisode_) {
        lastNackedEpisode_ = ctrl_.retryEpisodes();
        if (ctrl_.writeRetryActive()) {
            auto nack = noc::makePacket(noc::PacketClass::BusyNack, node_,
                                        parentNode_);
            nack->destBank = bank_;
            nack->info.origin = static_cast<std::uint32_t>(bank_);
            const Cycle done_at = ctrl_.activeWriteDoneAt(now);
            nack->info.aux = static_cast<std::uint16_t>(
                std::min<Cycle>(done_at > now ? done_at - now : 0,
                                0xffff));
            out_.send(std::move(nack), now);
            config_.faultInjector->noteBusyNackSent();
        }
    }
}

} // namespace stacknoc::coherence
