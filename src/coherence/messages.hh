/**
 * @file
 * MESI protocol message encoding on top of the network's opaque
 * ProtoInfo payload.
 *
 * Packet classes carry the size/vnet semantics; the protocol opcode
 * lives in ProtoInfo::kind, flags in ProtoInfo::flags, the requesting
 * core in ProtoInfo::origin, and small integers (ack counts, granted
 * state) in ProtoInfo::aux.
 */

#ifndef STACKNOC_COHERENCE_MESSAGES_HH
#define STACKNOC_COHERENCE_MESSAGES_HH

#include <cstdint>

#include "common/types.hh"
#include "noc/packet.hh"

namespace stacknoc::coherence {

/** Protocol opcodes (ProtoInfo::kind). */
enum class CohKind : std::uint8_t {
    GetS = 1,    //!< read miss (ReadReq packet)
    GetM,        //!< upgrade, store hit on a Shared block (WriteReq)
    WriteL2,     //!< no-allocate store miss (StoreWrite packet)
    PutM,        //!< dirty writeback (WritebackReq packet)
    Inv,         //!< directory -> sharer invalidation (CohCtrl)
    InvAck,      //!< sharer -> directory (CohCtrl)
    Recall,      //!< directory -> owner (CohCtrl)
    RecallData,  //!< owner -> directory, dirty data (CohData)
    RecallAck,   //!< owner -> directory, no data (CohCtrl)
    Data,        //!< directory -> requester fill (DataResp)
    UpgradeAck,  //!< directory -> requester M grant, no data (Ack)
    WbAck,       //!< directory -> writer (Ack)
    Unblock,     //!< requester -> directory: grant installed (CohCtrl)
};

/** ProtoInfo::flags bits. */
enum CohFlags : std::uint8_t {
    kFlagDirty = 1 << 0,       //!< RecallData carries modified data
    kFlagL2Hit = 1 << 1,       //!< trace hint: this access hits in L2
    kFlagPutMInFlight = 1 << 2, //!< RecallAck: a PutM is already en route
    kFlagShared = 1 << 3,      //!< workload hint: block is shared
};

/** L1 grant states (ProtoInfo::aux of Data / UpgradeAck). */
enum class Grant : std::uint16_t { S = 0, E = 1, M = 2 };

/** MESI states of a block in an L1 (stored in TagEntry::state). */
enum class L1State : std::uint8_t {
    I = 0,
    S,
    E,
    M,
    IS,  //!< transient: GetS outstanding
    IM,  //!< transient: GetM outstanding (no prior copy)
    SM,  //!< transient: upgrade outstanding (held S)
};

/** @return printable L1 state name. */
const char *l1StateName(L1State s);

/** @return the coherence opcode of @p pkt. */
inline CohKind
kindOf(const noc::Packet &pkt)
{
    return static_cast<CohKind>(pkt.info.kind);
}

/** Stamp the opcode and requester onto a packet. */
inline void
setKind(noc::Packet &pkt, CohKind kind, CoreId origin)
{
    pkt.info.kind = static_cast<std::uint8_t>(kind);
    pkt.info.origin = static_cast<std::uint32_t>(origin);
}

/** @return requester/origin core of @p pkt. */
inline CoreId
originOf(const noc::Packet &pkt)
{
    return static_cast<CoreId>(pkt.info.origin);
}

} // namespace stacknoc::coherence

#endif // STACKNOC_COHERENCE_MESSAGES_HH
