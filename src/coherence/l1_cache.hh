/**
 * @file
 * The private per-core L1 cache and its MESI requester-side controller.
 *
 * Table 1: 32 KB, 4-way, 128 B blocks, 2-cycle hits, write-back, 32
 * MSHRs. The L1 talks to its core through direct calls (no network) and
 * to the L2 home banks through the node's network interface.
 */

#ifndef STACKNOC_COHERENCE_L1_CACHE_HH
#define STACKNOC_COHERENCE_L1_CACHE_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/tag_array.hh"
#include "sim/stats.hh"
#include "sim/ticking.hh"
#include "noc/network_interface.hh"
#include "coherence/messages.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::coherence {

/** Static address-interleaved mapping of blocks to L2 home banks. */
struct HomeMap
{
    int numBanks = 64;
    NodeId cacheLayerBase = 64;

    BankId
    bankOf(BlockAddr addr) const
    {
        return static_cast<BankId>(
            addr % static_cast<std::uint64_t>(numBanks));
    }

    NodeId homeNode(BlockAddr addr) const
    {
        return cacheLayerBase + bankOf(addr);
    }
};

/** Store-buffer depth: outstanding fire-and-forget store writes. */
constexpr std::size_t kStoreBufferDepth = 16;

/** L1 geometry and timing. */
struct L1Config
{
    int sets = 64; //!< 32 KB / 128 B blocks / 4 ways
    int ways = 4;
    Cycle hitLatency = 2;
    int mshrs = 32;
};

/**
 * One L1 cache. access() returns false when the request cannot be
 * accepted this cycle (MSHR full, conflicting outstanding transaction,
 * or a pending writeback to the same block); the core retries.
 */
class L1Cache final : public Ticking, public noc::NetworkClient
{
  public:
    /**
     * @param l1name component name.
     * @param core owning core id (== its core-layer node id).
     * @param out packet injection port (the node's NI in production).
     * @param home block-to-bank mapping.
     * @param config cache geometry.
     * @param group statistics group shared by all L1s.
     */
    L1Cache(std::string l1name, CoreId core, noc::PacketSender &out,
            const HomeMap &home, const L1Config &config,
            stats::Group &group);

    /**
     * Start a memory operation.
     *
     * @param is_write store (needs M) vs load (needs S/E/M).
     * @param addr block address.
     * @param l2_hit_hint trace annotation: would this hit in L2?
     * @param on_done invoked once when the operation completes.
     * @return false when the core must retry next cycle.
     */
    bool access(bool is_write, BlockAddr addr, bool l2_hit_hint,
                std::function<void(Cycle)> on_done, Cycle now);

    /**
     * Same as above, but the completion is a plain done-flag set when
     * the operation finishes. This is the production (core) path: flag
     * completions survive checkpoint save/restore, whereas the
     * std::function form cannot be serialised.
     */
    bool access(bool is_write, BlockAddr addr, bool l2_hit_hint,
                std::shared_ptr<bool> done_flag, Cycle now);

    void deliver(noc::PacketPtr pkt, Cycle now) override;
    void tick(Cycle now) override;

    /**
     * tick() only fires delayed hit completions, so the L1 is idle
     * whenever that timer list is empty. MSHR completions run inline
     * from deliver() (called during the NI's tick) and never need the
     * L1's own tick; access() wakes before it can schedule a timer.
     */
    bool quiescent(Cycle) const override { return delayed_.empty(); }

    TickKind tickKind() const override { return TickKind::L1Cache; }

    /** @return MESI state of @p addr (I when absent). */
    L1State state(BlockAddr addr) const;

    /** @return whether @p addr is present in a stable readable state. */
    bool isResident(BlockAddr addr) const;

    /** @return some stable resident block, for re-reference synthesis. */
    const cache::TagEntry *anyResident(std::uint64_t salt) const
    {
        return tags_.anyResident(salt);
    }

    int mshrsInUse() const { return static_cast<int>(mshrs_.size()); }
    CoreId core() const { return core_; }

    /** Read-only tag array access (validation: MESI legality census). */
    const cache::TagArray &tags() const { return tags_; }

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    /**
     * A pending completion: either a serialisable done-flag (production
     * core path) or an opaque callback (test harnesses). Checkpointing
     * refuses callback completions — only flags can be re-bound on load.
     */
    struct Completion
    {
        std::shared_ptr<bool> flag;
        std::function<void(Cycle)> fn;

        void
        operator()(Cycle t)
        {
            if (flag)
                *flag = true;
            if (fn)
                fn(t);
        }

        explicit operator bool() const { return flag != nullptr || !!fn; }
    };

    struct Mshr
    {
        bool isWrite;
        Cycle startedAt;
        Completion onDone;
    };

    bool accessImpl(bool is_write, BlockAddr addr, bool l2_hit_hint,
                    Completion on_done, Cycle now);
    void sendRequest(noc::PacketClass cls, CohKind kind, BlockAddr addr,
                     bool l2_hit_hint, Cycle now);
    void completeMiss(BlockAddr addr, L1State final_state, Cycle now);
    void handleInv(const noc::Packet &pkt, Cycle now);
    void handleRecall(const noc::Packet &pkt, Cycle now);

    CoreId core_;
    noc::PacketSender &out_;
    HomeMap home_;
    L1Config config_;
    cache::TagArray tags_;

    std::unordered_map<BlockAddr, Mshr> mshrs_;
    std::unordered_set<BlockAddr> pendingPutM_;
    std::vector<std::pair<Cycle, Completion>> delayed_;

    stats::Counter &hits_;
    stats::Counter &misses_;
    stats::Counter &storeWrites_;
    stats::Counter &upgrades_;
    stats::Counter &writebacks_;
    stats::Counter &invsReceived_;
    stats::Counter &recallsReceived_;
    stats::Counter &retries_;
    stats::Average &missLatency_;
    stats::Histogram &missLatencyHist_;
};

} // namespace stacknoc::coherence

#endif // STACKNOC_COHERENCE_L1_CACHE_HH
