#include "coherence/l1_cache.hh"

#include "common/logging.hh"

namespace stacknoc::coherence {

const char *
l1StateName(L1State s)
{
    switch (s) {
      case L1State::I: return "I";
      case L1State::S: return "S";
      case L1State::E: return "E";
      case L1State::M: return "M";
      case L1State::IS: return "IS";
      case L1State::IM: return "IM";
      case L1State::SM: return "SM";
      default: return "?";
    }
}

L1Cache::L1Cache(std::string l1name, CoreId core, noc::PacketSender &out,
                 const HomeMap &home, const L1Config &config,
                 stats::Group &group)
    : Ticking(std::move(l1name)), core_(core), out_(out), home_(home),
      config_(config), tags_(config.sets, config.ways),
      hits_(group.counter("l1_hits")),
      misses_(group.counter("l1_misses")),
      storeWrites_(group.counter("l1_store_writes")),
      upgrades_(group.counter("l1_upgrades")),
      writebacks_(group.counter("l1_writebacks")),
      invsReceived_(group.counter("l1_invs_received")),
      recallsReceived_(group.counter("l1_recalls_received")),
      retries_(group.counter("l1_retries")),
      missLatency_(group.average("l1_miss_latency")),
      missLatencyHist_(group.histogram("l1_miss_latency_hist"))
{
}

L1State
L1Cache::state(BlockAddr addr) const
{
    const cache::TagEntry *e = tags_.peek(addr);
    return e ? static_cast<L1State>(e->state) : L1State::I;
}

bool
L1Cache::isResident(BlockAddr addr) const
{
    const L1State s = state(addr);
    return s == L1State::S || s == L1State::E || s == L1State::M;
}

void
L1Cache::sendRequest(noc::PacketClass cls, CohKind kind, BlockAddr addr,
                     bool l2_hit_hint, Cycle now)
{
    auto pkt = noc::makePacket(cls, core_, home_.homeNode(addr), addr);
    pkt->destBank = home_.bankOf(addr);
    setKind(*pkt, kind, core_);
    if (l2_hit_hint)
        pkt->info.flags |= kFlagL2Hit;
    out_.send(std::move(pkt), now);
}

bool
L1Cache::access(bool is_write, BlockAddr addr, bool l2_hit_hint,
                std::function<void(Cycle)> on_done, Cycle now)
{
    return accessImpl(is_write, addr, l2_hit_hint,
                      Completion{nullptr, std::move(on_done)}, now);
}

bool
L1Cache::access(bool is_write, BlockAddr addr, bool l2_hit_hint,
                std::shared_ptr<bool> done_flag, Cycle now)
{
    return accessImpl(is_write, addr, l2_hit_hint,
                      Completion{std::move(done_flag), nullptr}, now);
}

bool
L1Cache::accessImpl(bool is_write, BlockAddr addr, bool l2_hit_hint,
                    Completion on_done, Cycle now)
{
    // Conservative idle-elision wake: hits schedule a delayed completion
    // that only this cache's tick can fire.
    wake();
    // One outstanding transaction per block; also hold off re-fetching a
    // block whose writeback has not been acknowledged yet, so the home
    // directory never sees our request overtake our PutM.
    if (mshrs_.count(addr) || pendingPutM_.count(addr)) {
        retries_.inc();
        return false;
    }

    cache::TagEntry *e = tags_.find(addr);
    const L1State st = e ? static_cast<L1State>(e->state) : L1State::I;

    // Hits.
    if (e && (st == L1State::S || st == L1State::E || st == L1State::M)) {
        if (!is_write || st == L1State::M || st == L1State::E) {
            if (is_write) {
                e->state = static_cast<std::uint8_t>(L1State::M);
                e->dirty = true;
            }
            hits_.inc();
            delayed_.emplace_back(now + config_.hitLatency,
                                  std::move(on_done));
            return true;
        }
        // Store hit on a Shared block: upgrade.
        if (static_cast<int>(mshrs_.size()) >= config_.mshrs) {
            retries_.inc();
            return false;
        }
        upgrades_.inc();
        e->state = static_cast<std::uint8_t>(L1State::SM);
        e->pinned = true;
        mshrs_.emplace(addr, Mshr{true, now, std::move(on_done)});
        sendRequest(noc::PacketClass::WriteReq, CohKind::GetM, addr,
                    l2_hit_hint, now);
        return true;
    }

    // Store miss: no-write-allocate. The store is written through to
    // the L2 home bank as a fire-and-forget StoreWrite packet; no L1
    // frame or MSHR is held and the store buffer (modelled by the NI's
    // injection backlog) is the only resource consumed. This is the
    // "L2 write" of the paper's Table 3 — the access the STT-RAM-aware
    // network is free to delay.
    if (is_write) {
        if (out_.backlog() >= kStoreBufferDepth) {
            retries_.inc();
            return false;
        }
        storeWrites_.inc();
        auto store = noc::makePacket(noc::PacketClass::StoreWrite, core_,
                                     home_.homeNode(addr), addr);
        store->destBank = home_.bankOf(addr);
        setKind(*store, CohKind::WriteL2, core_);
        if (l2_hit_hint)
            store->info.flags |= kFlagL2Hit;
        out_.send(std::move(store), now);
        delayed_.emplace_back(now + config_.hitLatency,
                              std::move(on_done));
        return true;
    }

    // Load miss.
    if (static_cast<int>(mshrs_.size()) >= config_.mshrs) {
        retries_.inc();
        return false;
    }
    cache::TagEntry evicted;
    cache::TagEntry *fresh =
        e ? e : tags_.allocate(addr, &evicted);
    if (!fresh) {
        retries_.inc(); // every way of the set is mid-transaction
        return false;
    }
    if (fresh != e && evicted.valid) {
        const L1State vst = static_cast<L1State>(evicted.state);
        if (vst == L1State::M) {
            writebacks_.inc();
            pendingPutM_.insert(evicted.addr);
            auto putm = noc::makePacket(noc::PacketClass::WritebackReq,
                                        core_,
                                        home_.homeNode(evicted.addr),
                                        evicted.addr);
            putm->destBank = home_.bankOf(evicted.addr);
            setKind(*putm, CohKind::PutM, core_);
            putm->info.flags |= kFlagDirty;
            out_.send(std::move(putm), now);
        }
        // S and E victims are dropped silently; the directory tolerates
        // stale sharer/owner records.
    }
    misses_.inc();
    fresh->state = static_cast<std::uint8_t>(L1State::IS);
    fresh->pinned = true;
    fresh->dirty = false;
    mshrs_.emplace(addr, Mshr{false, now, std::move(on_done)});
    sendRequest(noc::PacketClass::ReadReq, CohKind::GetS, addr,
                l2_hit_hint, now);
    return true;
}

void
L1Cache::completeMiss(BlockAddr addr, L1State final_state, Cycle now)
{
    auto it = mshrs_.find(addr);
    panic_if(it == mshrs_.end(), "L1 %d: completion without MSHR for %llx",
             core_, static_cast<unsigned long long>(addr));
    cache::TagEntry *e = tags_.find(addr);
    panic_if(e == nullptr, "L1 %d: completion for unallocated block",
             core_);
    e->state = static_cast<std::uint8_t>(final_state);
    e->pinned = false;
    if (it->second.isWrite) {
        e->state = static_cast<std::uint8_t>(L1State::M);
        e->dirty = true;
    }
    missLatency_.sample(static_cast<double>(now - it->second.startedAt));
    missLatencyHist_.sample(now - it->second.startedAt);
    if (it->second.onDone)
        it->second.onDone(now);
    mshrs_.erase(it);

    // Three-phase transaction: tell the home directory the grant is
    // installed so it may start the next transaction on this block.
    // Without this, a later Recall/Inv can overtake the in-flight grant
    // and leave two owners (caught by the protocol torture tests).
    auto unblock = noc::makePacket(noc::PacketClass::CohCtrl, core_,
                                   home_.homeNode(addr), addr);
    unblock->destBank = home_.bankOf(addr);
    setKind(*unblock, CohKind::Unblock, core_);
    out_.send(std::move(unblock), now);
}

void
L1Cache::handleInv(const noc::Packet &pkt, Cycle now)
{
    invsReceived_.inc();
    cache::TagEntry *e = tags_.find(pkt.addr);
    if (e) {
        const L1State st = static_cast<L1State>(e->state);
        if (st == L1State::S) {
            tags_.invalidate(pkt.addr);
        } else if (st == L1State::SM) {
            // Our upgrade lost the race; the directory will answer with
            // full data once it processes our queued GetM.
            e->state = static_cast<std::uint8_t>(L1State::IM);
        }
        // IS keeps waiting for its data; E/M cannot receive Inv (the
        // directory uses Recall for owners).
    }
    auto ack = noc::makePacket(noc::PacketClass::CohCtrl, core_, pkt.src,
                               pkt.addr);
    ack->destBank = pkt.destBank;
    setKind(*ack, CohKind::InvAck, core_);
    out_.send(std::move(ack), now);
}

void
L1Cache::handleRecall(const noc::Packet &pkt, Cycle now)
{
    recallsReceived_.inc();
    cache::TagEntry *e = tags_.find(pkt.addr);
    const L1State st = e ? static_cast<L1State>(e->state) : L1State::I;

    if (st == L1State::M) {
        tags_.invalidate(pkt.addr);
        auto data = noc::makePacket(noc::PacketClass::CohData, core_,
                                    pkt.src, pkt.addr);
        data->destBank = pkt.destBank;
        setKind(*data, CohKind::RecallData, core_);
        data->info.flags |= kFlagDirty;
        out_.send(std::move(data), now);
        return;
    }
    if (st == L1State::E || st == L1State::S)
        tags_.invalidate(pkt.addr);
    auto ack = noc::makePacket(noc::PacketClass::CohCtrl, core_, pkt.src,
                               pkt.addr);
    ack->destBank = pkt.destBank;
    setKind(*ack, CohKind::RecallAck, core_);
    if (pendingPutM_.count(pkt.addr))
        ack->info.flags |= kFlagPutMInFlight;
    out_.send(std::move(ack), now);
}

void
L1Cache::deliver(noc::PacketPtr pkt, Cycle now)
{
    switch (kindOf(*pkt)) {
      case CohKind::Data: {
        const Grant grant = static_cast<Grant>(pkt->info.aux);
        const L1State final_state =
            grant == Grant::M ? L1State::M
            : grant == Grant::E ? L1State::E : L1State::S;
        completeMiss(pkt->addr, final_state, now);
        break;
      }
      case CohKind::UpgradeAck:
        completeMiss(pkt->addr, L1State::M, now);
        break;
      case CohKind::Inv:
        handleInv(*pkt, now);
        break;
      case CohKind::Recall:
        handleRecall(*pkt, now);
        break;
      case CohKind::WbAck:
        pendingPutM_.erase(pkt->addr);
        break;
      default:
        panic("L1 %d: unexpected packet %s", core_,
              pkt->toString().c_str());
    }
}

void
L1Cache::tick(Cycle now)
{
    for (auto it = delayed_.begin(); it != delayed_.end();) {
        if (now >= it->first) {
            it->second(now);
            it = delayed_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace stacknoc::coherence
