#include "fault/fault_injector.hh"

namespace stacknoc::fault {

namespace {

enum : std::uint64_t {
    kSiteBankWrite = 1,
    kSiteNiLink = 2,
};

} // namespace

std::uint64_t
FaultInjector::siteSeed(std::uint64_t seed, std::uint64_t kind,
                        std::uint64_t site)
{
    // One warm-up scramble so nearby (seed, site) tuples land far apart
    // in SplitMix64's state space.
    SplitMix64 mixer(seed ^ (kind << 56) ^ (site + 1) * 0xd1b54a32d192ed03ULL);
    return mixer.next();
}

FaultInjector::FaultInjector(const FaultSpec &spec, std::uint64_t seed,
                             const MeshShape &shape, int num_banks)
    : spec_(spec), shape_(shape),
      stats_("faults"),
      sttWriteFailures_(stats_.counter("stt_write_failures")),
      sttWriteRetryRounds_(stats_.counter("stt_write_retry_rounds")),
      sttWritesRecovered_(stats_.counter("stt_writes_recovered")),
      sttWritesAbandoned_(stats_.counter("stt_writes_abandoned")),
      busyNacksSent_(stats_.counter("busy_nacks_sent")),
      linkPacketsCorrupted_(stats_.counter("link_packets_corrupted")),
      linkRetransmits_(stats_.counter("link_retransmits")),
      linkFlitsRetransmitted_(
          stats_.counter("link_flits_retransmitted")),
      linkPacketsRecovered_(stats_.counter("link_packets_recovered")),
      linkPacketsDropped_(stats_.counter("link_packets_dropped")),
      routerStuckCycles_(stats_.counter("router_stuck_cycles")),
      retriesPerWriteHist_(stats_.histogram("retries_per_write")),
      writeRecoveryLatencyHist_(stats_.histogram("write_recovery_latency")),
      retransmitsPerPacketHist_(stats_.histogram("retransmits_per_packet")),
      linkRecoveryLatencyHist_(stats_.histogram("link_recovery_latency"))
{
    bankStreams_.reserve(static_cast<std::size_t>(num_banks));
    for (int b = 0; b < num_banks; ++b)
        bankStreams_.emplace_back(
            siteSeed(seed, kSiteBankWrite, static_cast<std::uint64_t>(b)));

    niStreams_.reserve(static_cast<std::size_t>(shape_.totalNodes()));
    for (int n = 0; n < shape_.totalNodes(); ++n)
        niStreams_.emplace_back(
            siteSeed(seed, kSiteNiLink, static_cast<std::uint64_t>(n)));
}

} // namespace stacknoc::fault
