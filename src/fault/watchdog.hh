/**
 * @file
 * A liveness watchdog: detects deadlock/livelock (no packet leaves the
 * network for N cycles while packets are in flight) and starvation (a
 * single packet older than a bound), then fail-fasts with a
 * cycle-stamped diagnostic dump — the in-flight packet table, per-router
 * buffer occupancy, the parent-hold prediction state, and the tail of
 * the telemetry trace ring.
 */

#ifndef STACKNOC_FAULT_WATCHDOG_HH
#define STACKNOC_FAULT_WATCHDOG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "telemetry/probe.hh"

namespace stacknoc::noc {
class Network;
} // namespace stacknoc::noc

namespace stacknoc::sttnoc {
class BankAwarePolicy;
} // namespace stacknoc::sttnoc

namespace stacknoc::fault {

struct WatchdogConfig
{
    /** Cycles between cheap progress checks. */
    Cycle checkPeriod = 64;

    /** No ejection (or drop) for this long with packets in flight =>
     *  deadlock/livelock. */
    Cycle stallCycles = 20000;

    /** Any in-flight packet older than this => starvation (0 = off). */
    Cycle maxPacketAge = 0;

    /** Cycles between (more expensive) packet-age censuses. */
    Cycle ageCheckPeriod = 1024;

    /** panic() on trigger; false records the diagnosis instead (tests). */
    bool failFast = true;

    std::size_t dumpPackets = 32;
    std::size_t dumpTraceRecords = 32;
};

/**
 * Cycle-end probe. The fast path is two counter reads per checkPeriod;
 * a full fabric census runs only when ejections have stalled past the
 * threshold or on the (much rarer) age-check cadence. Fires at most
 * once per run.
 */
class Watchdog : public telemetry::Probe
{
  public:
    /**
     * @param net the network to observe.
     * @param policy bank-aware policy for the parent-hold dump (may be
     *               null).
     * @param num_banks banks covered by @p policy (0 when null).
     */
    Watchdog(const noc::Network &net, const sttnoc::BankAwarePolicy *policy,
             int num_banks, const WatchdogConfig &config);

    void onCycle(Cycle now) override;
    void onReset(Cycle now) override;

    bool fired() const { return fired_; }
    Cycle firedAt() const { return firedAt_; }
    const std::string &diagnosis() const { return diagnosis_; }

    const WatchdogConfig &config() const { return config_; }

  private:
    struct InFlightEntry
    {
        std::uint64_t id;
        int cls;
        NodeId src;
        NodeId dest;
        BankId destBank;
        Cycle createdAt;
        std::string where;
    };

    /** packets_ejected + packets_dropped: any of these advancing is
     *  forward progress. */
    std::uint64_t drainedPackets() const;

    /** Collect every in-flight packet (head present somewhere). */
    std::vector<InFlightEntry> census() const;

    void trigger(Cycle now, const std::string &reason,
                 const std::vector<InFlightEntry> &inflight);

    const noc::Network &net_;
    const sttnoc::BankAwarePolicy *policy_;
    int numBanks_;
    WatchdogConfig config_;

    std::uint64_t lastDrained_ = 0;
    Cycle lastProgressAt_ = 0;
    Cycle nextCheckAt_ = 0;
    Cycle nextAgeCheckAt_ = 0;

    bool fired_ = false;
    Cycle firedAt_ = 0;
    std::string diagnosis_;
};

} // namespace stacknoc::fault

#endif // STACKNOC_FAULT_WATCHDOG_HH
