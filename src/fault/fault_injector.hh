/**
 * @file
 * Seed-deterministic fault injection. Every fault *site* (an L2 bank, a
 * network interface, a router) owns a private SplitMix64 stream keyed by
 * (seed, site kind, site id); since each site is ticked by exactly one
 * component — and the parallel engine co-shards all components of a node
 * — draw sequences are a pure function of the seed and the simulated
 * history, never of `--threads` or scheduling.
 *
 * The hot-path draw methods are header-inline on purpose: the noc and
 * mem libraries call them without linking against stacknoc_fault (only
 * the final binaries do, via stacknoc_system), which keeps the library
 * dependency graph acyclic.
 */

#ifndef STACKNOC_FAULT_FAULT_INJECTOR_HH
#define STACKNOC_FAULT_FAULT_INJECTOR_HH

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/geometry.hh"
#include "common/types.hh"
#include "fault/fault_spec.hh"
#include "sim/stats.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::fault {

/**
 * SplitMix64 (Steele, Lea & Flood): a tiny, statistically solid,
 * jump-free PRNG. One instance per fault site; 64 bits of state make
 * streams cheap enough to key per site.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1) with 53 random bits. */
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore of state_
    std::uint64_t state_;
};

/**
 * The per-run fault oracle: owns the spec, the per-site streams, and the
 * "faults" statistics group. Shared (by raw pointer) with banks, NIs and
 * routers; all draw methods are called from the owning site's tick only.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultSpec &spec, std::uint64_t seed,
                  const MeshShape &shape, int num_banks);

    const FaultSpec &spec() const { return spec_; }

    // ---- STT-RAM write failures (drawn by the bank's controller) ----

    /** One verify after a completed write: @return true = write failed. */
    bool
    drawWriteFailure(BankId bank)
    {
        if (spec_.sttWriteBer <= 0.0)
            return false;
        return bankStreams_[static_cast<std::size_t>(bank)].uniform()
            < spec_.sttWriteBer;
    }

    void noteWriteFailure() { sttWriteFailures_.inc(); }
    void noteWriteRetryRound() { sttWriteRetryRounds_.inc(); }
    void noteWriteAbandoned() { sttWritesAbandoned_.inc(); }

    void
    noteWriteRecovered(int failures, Cycle extra_cycles)
    {
        sttWritesRecovered_.inc();
        retriesPerWriteHist_.sample(static_cast<std::uint64_t>(failures));
        writeRecoveryLatencyHist_.sample(extra_cycles);
    }

    void noteBusyNackSent() { busyNacksSent_.inc(); }

    // ---- Link/TSB flit corruption (drawn by the ejecting NI) ----

    /**
     * CRC verdict for a whole packet arriving at NI @p dest: combines
     * the per-flit, per-hop BERs over the minimal route from @p src.
     * @return true when at least one flit arrived corrupted.
     */
    bool
    drawPacketCorruption(NodeId src, NodeId dest, int num_flits)
    {
        if (!spec_.linkFaultsActive())
            return false;
        const double p = corruptionProbability(src, dest, num_flits);
        if (p <= 0.0)
            return false;
        return niStreams_[static_cast<std::size_t>(dest)].uniform() < p;
    }

    void notePacketCorrupted() { linkPacketsCorrupted_.inc(); }

    /** One packet retransmission of @p num_flits flits was requested.
     *  Tracks both the episode count and the flit volume; the latter
     *  feeds the retransmit-flit energy term of computeEnergy(). */
    void
    noteRetransmit(int num_flits)
    {
        linkRetransmits_.inc();
        linkFlitsRetransmitted_.inc(
            static_cast<std::uint64_t>(num_flits));
    }

    void notePacketDropped() { linkPacketsDropped_.inc(); }

    void
    notePacketRecovered(int retransmits, Cycle extra_cycles)
    {
        linkPacketsRecovered_.inc();
        retransmitsPerPacketHist_.sample(
            static_cast<std::uint64_t>(retransmits));
        linkRecoveryLatencyHist_.sample(extra_cycles);
    }

    // ---- Stuck router (checked by the router's tick) ----

    /** @return true when router @p node must skip this tick entirely. */
    bool
    routerStuckNow(NodeId node, Cycle now)
    {
        if (node != spec_.stuckRouter || now < spec_.stuckFrom
            || now > spec_.stuckTo)
            return false;
        routerStuckCycles_.inc();
        return true;
    }

    stats::Group &stats() { return stats_; }
    const stats::Group &stats() const { return stats_; }

  private:
    friend class snapshot::StateIO; //!< checkpoints the per-site streams

    /** Inline like the draw methods: called from noc code that does
     *  not link stacknoc_fault. */
    double
    corruptionProbability(NodeId src, NodeId dest, int num_flits) const
    {
        const Coord a = shape_.coord(src);
        const Coord b = shape_.coord(dest);
        const int mesh_hops = std::abs(a.x - b.x) + std::abs(a.y - b.y);
        const int tsb_hops = std::abs(a.layer - b.layer);

        // P(clean) = (1 - mesh_ber)^(flits * mesh_hops)
        //          * (1 - tsb_ber)^(flits * tsb_hops)
        double clean = 1.0;
        if (spec_.linkFlitBer > 0.0 && mesh_hops > 0)
            clean *= std::pow(1.0 - spec_.linkFlitBer,
                              static_cast<double>(num_flits * mesh_hops));
        if (spec_.tsbFlitBer > 0.0 && tsb_hops > 0)
            clean *= std::pow(1.0 - spec_.tsbFlitBer,
                              static_cast<double>(num_flits * tsb_hops));
        return 1.0 - clean;
    }

    static std::uint64_t siteSeed(std::uint64_t seed, std::uint64_t kind,
                                  std::uint64_t site);

    FaultSpec spec_;
    MeshShape shape_;

    std::vector<SplitMix64> bankStreams_; //!< one per bank
    std::vector<SplitMix64> niStreams_;   //!< one per node

    stats::Group stats_;
    stats::Counter &sttWriteFailures_;
    stats::Counter &sttWriteRetryRounds_;
    stats::Counter &sttWritesRecovered_;
    stats::Counter &sttWritesAbandoned_;
    stats::Counter &busyNacksSent_;
    stats::Counter &linkPacketsCorrupted_;
    stats::Counter &linkRetransmits_;
    stats::Counter &linkFlitsRetransmitted_;
    stats::Counter &linkPacketsRecovered_;
    stats::Counter &linkPacketsDropped_;
    stats::Counter &routerStuckCycles_;
    stats::Histogram &retriesPerWriteHist_;
    stats::Histogram &writeRecoveryLatencyHist_;
    stats::Histogram &retransmitsPerPacketHist_;
    stats::Histogram &linkRecoveryLatencyHist_;
};

} // namespace stacknoc::fault

#endif // STACKNOC_FAULT_FAULT_INJECTOR_HH
