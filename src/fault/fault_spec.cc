#include "fault/fault_spec.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace stacknoc::fault {

namespace {

bool
parseDouble(const std::string &text, double &out)
{
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseRate(const std::string &key, const std::string &value, double &out,
          std::string &error)
{
    double v = 0.0;
    if (!parseDouble(value, v) || v < 0.0 || v > 1.0) {
        error = key + " must be a probability in [0, 1], got '" + value + "'";
        return false;
    }
    out = v;
    return true;
}

bool
parseBudget(const std::string &key, const std::string &value, int lo, int hi,
            int &out, std::string &error)
{
    std::uint64_t v = 0;
    if (!parseU64(value, v) || v < static_cast<std::uint64_t>(lo)
        || v > static_cast<std::uint64_t>(hi)) {
        std::ostringstream os;
        os << key << " must be an integer in [" << lo << ", " << hi
           << "], got '" << value << "'";
        error = os.str();
        return false;
    }
    out = static_cast<int>(v);
    return true;
}

/** router_stuck=<node>:<from>-<to> */
bool
parseStuck(const std::string &value, FaultSpec &spec, std::string &error)
{
    const auto colon = value.find(':');
    const auto dash = value.find('-', colon == std::string::npos ? 0
                                                                 : colon + 1);
    if (colon == std::string::npos || dash == std::string::npos) {
        error = "router_stuck must look like <node>:<from>-<to>, got '"
            + value + "'";
        return false;
    }
    std::uint64_t node = 0, from = 0, to = 0;
    if (!parseU64(value.substr(0, colon), node)
        || !parseU64(value.substr(colon + 1, dash - colon - 1), from)
        || !parseU64(value.substr(dash + 1), to)) {
        error = "router_stuck fields must be non-negative integers, got '"
            + value + "'";
        return false;
    }
    if (node > 0x7fffffffULL) {
        error = "router_stuck node id out of range: '" + value + "'";
        return false;
    }
    if (from > to) {
        error = "router_stuck window must have from <= to, got '" + value
            + "'";
        return false;
    }
    spec.stuckRouter = static_cast<NodeId>(node);
    spec.stuckFrom = from;
    spec.stuckTo = to;
    return true;
}

} // namespace

bool
parseFaultSpec(const std::string &text, FaultSpec &spec, std::string &error)
{
    spec = FaultSpec{};
    error.clear();
    if (text.empty()) {
        error = "empty fault spec";
        return false;
    }

    std::size_t pos = 0;
    while (pos <= text.size()) {
        const auto comma = text.find(',', pos);
        const std::string item = text.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
        if (item.empty()) {
            error = "empty key=value item in fault spec";
            return false;
        }
        const auto eq = item.find('=');
        if (eq == std::string::npos) {
            error = "item '" + item + "' is not key=value";
            return false;
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);

        if (key == "stt_write_ber") {
            if (!parseRate(key, value, spec.sttWriteBer, error))
                return false;
        } else if (key == "stt_write_retries") {
            if (!parseBudget(key, value, 0, 64, spec.sttWriteRetries, error))
                return false;
        } else if (key == "tsb_flit_ber") {
            if (!parseRate(key, value, spec.tsbFlitBer, error))
                return false;
        } else if (key == "link_flit_ber" || key == "mesh_flit_ber") {
            if (!parseRate(key, value, spec.linkFlitBer, error))
                return false;
        } else if (key == "flit_retries") {
            if (!parseBudget(key, value, 0, 64, spec.flitRetries, error))
                return false;
        } else if (key == "flit_retry_penalty") {
            int penalty = 0;
            if (!parseBudget(key, value, 1, 65536, penalty, error))
                return false;
            spec.flitRetryPenalty = static_cast<Cycle>(penalty);
        } else if (key == "router_stuck") {
            if (!parseStuck(value, spec, error))
                return false;
        } else {
            error = "unknown fault-spec key '" + key + "'";
            return false;
        }
    }
    return true;
}

const char *
faultSpecGrammar()
{
    return
        "fault-spec grammar: comma-separated key=value items\n"
        "  stt_write_ber=<p>       per-write STT-RAM failure probability "
        "[0,1]\n"
        "  stt_write_retries=<n>   retry rounds before ECC abandon [0,64] "
        "(default 3)\n"
        "  tsb_flit_ber=<p>        per-flit per-TSB-hop corruption "
        "probability [0,1]\n"
        "  link_flit_ber=<p>       per-flit per-mesh-hop corruption "
        "probability [0,1]\n"
        "  flit_retries=<n>        retransmissions before packet drop "
        "[0,64] (default 4)\n"
        "  flit_retry_penalty=<c>  cycles per retransmission round trip "
        "[1,65536] (default 48)\n"
        "  router_stuck=<node>:<from>-<to>  wedge router <node> during "
        "cycles [from,to]\n"
        "example: --fault-spec "
        "stt_write_ber=1e-3,tsb_flit_ber=1e-6,router_stuck=4:2200-2400\n";
}

std::string
FaultSpec::toString() const
{
    std::ostringstream os;
    const char *sep = "";
    auto item = [&](auto &&fn) {
        os << sep;
        fn();
        sep = ",";
    };
    if (sttWriteBer > 0.0) {
        item([&] { os << "stt_write_ber=" << sttWriteBer; });
        item([&] { os << "stt_write_retries=" << sttWriteRetries; });
    }
    if (tsbFlitBer > 0.0)
        item([&] { os << "tsb_flit_ber=" << tsbFlitBer; });
    if (linkFlitBer > 0.0)
        item([&] { os << "link_flit_ber=" << linkFlitBer; });
    if (linkFaultsActive()) {
        item([&] { os << "flit_retries=" << flitRetries; });
        item([&] { os << "flit_retry_penalty=" << flitRetryPenalty; });
    }
    if (stuckRouter != kInvalidNode)
        item([&] {
            os << "router_stuck=" << stuckRouter << ":" << stuckFrom << "-"
               << stuckTo;
        });
    return os.str();
}

} // namespace stacknoc::fault
