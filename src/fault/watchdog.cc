#include "fault/watchdog.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "noc/network.hh"
#include "sttnoc/bank_aware_policy.hh"
#include "telemetry/trace.hh"

namespace stacknoc::fault {

Watchdog::Watchdog(const noc::Network &net,
                   const sttnoc::BankAwarePolicy *policy, int num_banks,
                   const WatchdogConfig &config)
    : net_(net), policy_(policy), numBanks_(num_banks), config_(config)
{
}

std::uint64_t
Watchdog::drainedPackets() const
{
    std::uint64_t n = 0;
    if (const auto *c = net_.stats().findCounter("packets_ejected"))
        n += c->value();
    if (const auto *c = net_.stats().findCounter("packets_dropped"))
        n += c->value();
    return n;
}

std::vector<Watchdog::InFlightEntry>
Watchdog::census() const
{
    std::vector<InFlightEntry> out;
    auto add = [&](const noc::Packet &pkt, std::string where) {
        out.push_back({pkt.id, static_cast<int>(pkt.cls), pkt.src, pkt.dest,
                       pkt.destBank, pkt.createdAt, std::move(where)});
    };
    const int nodes = net_.shape().totalNodes();
    for (NodeId n = 0; n < nodes; ++n) {
        net_.router(n).forEachBufferedPacket(
            [&](const noc::Packet &pkt) { add(pkt, "router " + std::to_string(n)); });
        const auto &ni = net_.ni(n);
        ni.forEachPendingPacket([&](const noc::Packet &pkt, bool injected) {
            add(pkt, std::string(injected ? "ni-inject " : "ni-queue ")
                + std::to_string(n));
        });
        ni.forEachEjectFlit([&](int, const noc::Flit &flit, bool) {
            if (flit.head())
                add(*flit.pkt, "ni-eject " + std::to_string(n));
        });
        ni.forEachCommittedPacket([&](int, const noc::Packet &pkt) {
            add(pkt, "ni-committed " + std::to_string(n));
        });
    }
    return out;
}

void
Watchdog::onReset(Cycle now)
{
    lastDrained_ = drainedPackets();
    lastProgressAt_ = now;
    nextCheckAt_ = now + config_.checkPeriod;
    nextAgeCheckAt_ = now + config_.ageCheckPeriod;
}

void
Watchdog::onCycle(Cycle now)
{
    if (fired_ || now < nextCheckAt_)
        return;
    nextCheckAt_ = now + config_.checkPeriod;

    const std::uint64_t drained = drainedPackets();
    if (drained != lastDrained_) {
        lastDrained_ = drained;
        lastProgressAt_ = now;
    } else if (now - lastProgressAt_ >= config_.stallCycles) {
        const auto inflight = census();
        if (inflight.empty()) {
            lastProgressAt_ = now; // idle network, not a deadlock
        } else {
            std::ostringstream os;
            os << "deadlock/livelock: no packet ejected for "
               << (now - lastProgressAt_) << " cycles with "
               << inflight.size() << " packet(s) in flight";
            trigger(now, os.str(), inflight);
            return;
        }
    }

    if (config_.maxPacketAge > 0 && now >= nextAgeCheckAt_) {
        nextAgeCheckAt_ = now + config_.ageCheckPeriod;
        const auto inflight = census();
        for (const auto &e : inflight) {
            if (now - e.createdAt > config_.maxPacketAge) {
                std::ostringstream os;
                os << "starvation: packet " << e.id << " ("
                   << noc::packetClassName(
                          static_cast<noc::PacketClass>(e.cls))
                   << " " << e.src << "->" << e.dest << ") is "
                   << (now - e.createdAt) << " cycles old (bound "
                   << config_.maxPacketAge << ") at " << e.where;
                trigger(now, os.str(), inflight);
                return;
            }
        }
    }
}

void
Watchdog::trigger(Cycle now, const std::string &reason,
                  const std::vector<InFlightEntry> &inflight)
{
    fired_ = true;
    firedAt_ = now;
    diagnosis_ = reason;

    std::fprintf(stderr,
                 "==== watchdog fired at cycle %llu ====\n%s\n",
                 static_cast<unsigned long long>(now), reason.c_str());

    // In-flight packet table (oldest first).
    auto sorted = inflight;
    std::sort(sorted.begin(), sorted.end(),
              [](const InFlightEntry &a, const InFlightEntry &b) {
                  return a.createdAt < b.createdAt;
              });
    const std::size_t np = std::min(sorted.size(), config_.dumpPackets);
    std::fprintf(stderr, "in-flight packets (%zu total, oldest %zu):\n",
                 sorted.size(), np);
    for (std::size_t i = 0; i < np; ++i) {
        const auto &e = sorted[i];
        std::fprintf(stderr,
                     "  pkt=%llu cls=%s %d->%d bank=%d age=%llu at %s\n",
                     static_cast<unsigned long long>(e.id),
                     noc::packetClassName(
                         static_cast<noc::PacketClass>(e.cls)),
                     e.src, e.dest, e.destBank,
                     static_cast<unsigned long long>(now - e.createdAt),
                     e.where.c_str());
    }

    // Per-router buffer occupancy (non-empty routers only).
    std::fprintf(stderr, "router buffer occupancy:\n");
    for (NodeId n = 0; n < net_.shape().totalNodes(); ++n) {
        const int flits = net_.router(n).bufferedFlits();
        if (flits > 0)
            std::fprintf(stderr, "  router %d: %d flit(s)\n", n, flits);
    }

    // Parent-hold prediction state.
    if (policy_ && numBanks_ > 0) {
        std::fprintf(stderr, "parent-hold state (open windows):\n");
        for (BankId b = 0; b < numBanks_; ++b) {
            const Cycle until = policy_->busyUntil(b);
            if (until > now) {
                std::fprintf(
                    stderr,
                    "  bank %d: busy for %llu more cycle(s), margin %llu\n",
                    b, static_cast<unsigned long long>(until - now),
                    static_cast<unsigned long long>(policy_->holdMargin(b)));
            }
        }
    }

    // Tail of the telemetry trace ring, oldest first.
    if (auto *t = telemetry::tracer()) {
        const auto records = t->snapshot();
        const std::size_t n =
            std::min(records.size(), config_.dumpTraceRecords);
        std::fprintf(stderr, "last %zu trace record(s), oldest first:\n",
                     n);
        for (std::size_t i = records.size() - n; i < records.size(); ++i) {
            const auto &r = records[i];
            std::fprintf(
                stderr,
                "  cycle=%llu pkt=%llu cls=%s event=%s node=%d aux=%lld\n",
                static_cast<unsigned long long>(r.cycle),
                static_cast<unsigned long long>(r.packetId),
                noc::packetClassName(static_cast<noc::PacketClass>(r.cls)),
                telemetry::traceEventName(r.event), r.node,
                static_cast<long long>(r.aux));
        }
    } else {
        std::fprintf(stderr,
                     "(no packet tracer installed; no trace context)\n");
    }
    std::fflush(stderr);

    if (config_.failFast)
        panic("watchdog: %s", reason.c_str());
}

} // namespace stacknoc::fault
