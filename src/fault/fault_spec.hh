/**
 * @file
 * User-facing description of a fault-injection campaign: which fault
 * classes are active and at what rates. Parsed from the `--fault-spec`
 * command-line grammar; every field is validated on parse so a bad spec
 * is a clean configuration error, never an assert deep in the model.
 */

#ifndef STACKNOC_FAULT_FAULT_SPEC_HH
#define STACKNOC_FAULT_FAULT_SPEC_HH

#include <string>

#include "common/types.hh"

namespace stacknoc::fault {

/**
 * The fault model of one run. All rates default to zero, i.e. a
 * default-constructed spec injects nothing and a system built with it
 * behaves bit-identically to one built without fault support at all.
 */
struct FaultSpec
{
    /** Per-write probability that an STT-RAM array write fails and the
     *  bank must run another full write-verify-retry service round. */
    double sttWriteBer = 0.0;

    /** Extra service rounds a failing write may take before the line is
     *  handed to ECC and the write completes as "abandoned". */
    int sttWriteRetries = 3;

    /** Per-flit, per-vertical-hop (TSB/TSV) corruption probability. */
    double tsbFlitBer = 0.0;

    /** Per-flit, per-mesh-hop (horizontal link) corruption probability. */
    double linkFlitBer = 0.0;

    /** Retransmissions the NI requests before dropping the packet. */
    int flitRetries = 4;

    /** Cycles one NACK + retransmission round trip costs the ejector. */
    Cycle flitRetryPenalty = 48;

    /** Router wedged (ticks suppressed) during [stuckFrom, stuckTo]. */
    NodeId stuckRouter = kInvalidNode;
    Cycle stuckFrom = 0;
    Cycle stuckTo = 0;

    /** @return true when any fault class can actually fire. */
    bool
    any() const
    {
        return sttWriteBer > 0.0 || tsbFlitBer > 0.0 || linkFlitBer > 0.0
            || stuckRouter != kInvalidNode;
    }

    /** @return true when either link BER is non-zero. */
    bool
    linkFaultsActive() const
    {
        return tsbFlitBer > 0.0 || linkFlitBer > 0.0;
    }

    /** Canonical key=value rendering (round-trips through the parser). */
    std::string toString() const;
};

/**
 * Parse the `--fault-spec` grammar into @p spec.
 *
 * @param text comma-separated key=value list, e.g.
 *             "stt_write_ber=1e-3,tsb_flit_ber=1e-6,router_stuck=4:2200-2400".
 * @param spec filled on success (starts from defaults).
 * @param error one-line reason on failure.
 * @return true on success.
 */
bool parseFaultSpec(const std::string &text, FaultSpec &spec,
                    std::string &error);

/** The accepted grammar, suitable for printing after a parse error. */
const char *faultSpecGrammar();

} // namespace stacknoc::fault

#endif // STACKNOC_FAULT_FAULT_SPEC_HH
