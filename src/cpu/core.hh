/**
 * @file
 * The trace-driven out-of-order core model of Table 1: 128-entry
 * instruction window, 2-wide fetch/commit, at most one memory operation
 * issued per cycle, in-order commit blocking at the ROB head.
 *
 * Non-memory instructions are abstracted to unit work; memory latency —
 * the quantity the paper's mechanism changes — is fully modelled through
 * the L1/L2/directory/network stack. Memory-level parallelism emerges
 * from the window: younger memory operations keep issuing while the
 * head's miss is outstanding.
 */

#ifndef STACKNOC_CPU_CORE_HH
#define STACKNOC_CPU_CORE_HH

#include <deque>
#include <memory>

#include "sim/stats.hh"
#include "sim/ticking.hh"
#include "coherence/l1_cache.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::cpu {

/** One instruction from a workload stream. */
struct TraceOp
{
    bool isMem = false;
    bool isWrite = false;
    BlockAddr addr = 0;
    /** Trace annotation: would this access hit in the L2? */
    bool l2Hit = true;
    /** Data dependence on the previous memory operation: this op may
     *  not issue until the previous one completes (bounds MLP). */
    bool dependsOnPrev = false;
};

/** An infinite per-core instruction source. */
class InstructionStream
{
  public:
    virtual ~InstructionStream() = default;

    /** Produce the next instruction in program order. */
    virtual TraceOp next() = 0;
};

/** Core pipeline parameters (Table 1). */
struct CoreConfig
{
    int robEntries = 128;
    int fetchWidth = 2;
    int commitWidth = 2;
    int memIssuePerCycle = 1;
};

/** One core: fetches from its stream, issues memory ops to its L1. */
class Core final : public Ticking
{
  public:
    /**
     * @param cname component name.
     * @param id core id.
     * @param l1 the core's private L1 (must outlive the core).
     * @param stream instruction source (must outlive the core).
     * @param config pipeline widths.
     * @param group statistics group shared by all cores.
     */
    Core(std::string cname, CoreId id, coherence::L1Cache &l1,
         InstructionStream &stream, const CoreConfig &config,
         stats::Group &group);

    void tick(Cycle now) override;

    /**
     * A core is never quiescent: the instruction stream is infinite and
     * every stalled cycle samples the stall counter, so eliding a core
     * tick would be observable. Cores stay in the engines' active set
     * permanently (inherited quiescent() == false); they still benefit
     * from the kind-batched dispatch.
     */
    TickKind tickKind() const override { return TickKind::Core; }

    /** Instructions committed since construction (or the last reset). */
    std::uint64_t committed() const { return committed_; }

    /** Zero the committed-instruction count (end of warm-up). */
    void resetCommitted() { committed_ = 0; }

    CoreId id() const { return id_; }

    /** Occupancy of the instruction window. */
    std::size_t robOccupancy() const { return rob_.size(); }

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    struct RobEntry
    {
        TraceOp op;
        bool issued = false;
        /** Shared with the L1 completion callback. */
        std::shared_ptr<bool> done;
    };

    void commit(Cycle now);
    void issue(Cycle now);
    void fetch(Cycle now);

    CoreId id_;
    coherence::L1Cache &l1_;
    InstructionStream &stream_;
    CoreConfig config_;
    std::deque<RobEntry> rob_;
    std::size_t issueCursor_ = 0; //!< oldest possibly-unissued ROB index
    /** Completion flag of the most recently issued memory operation. */
    std::shared_ptr<bool> lastMemDone_;
    std::uint64_t committed_ = 0;

    stats::Counter &committedStat_;
    stats::Counter &memOpsStat_;
    stats::Counter &stallCyclesStat_;
};

} // namespace stacknoc::cpu

#endif // STACKNOC_CPU_CORE_HH
