#include "cpu/core.hh"

namespace stacknoc::cpu {

Core::Core(std::string cname, CoreId id, coherence::L1Cache &l1,
           InstructionStream &stream, const CoreConfig &config,
           stats::Group &group)
    : Ticking(std::move(cname)), id_(id), l1_(l1), stream_(stream),
      config_(config),
      committedStat_(group.counter("instructions_committed")),
      memOpsStat_(group.counter("mem_ops")),
      stallCyclesStat_(group.counter("commit_stall_cycles"))
{
}

void
Core::commit(Cycle now)
{
    (void)now;
    int n = 0;
    while (n < config_.commitWidth && !rob_.empty()) {
        RobEntry &head = rob_.front();
        const bool head_done = !head.op.isMem || (head.done && *head.done);
        if (!head_done)
            break;
        rob_.pop_front();
        if (issueCursor_ > 0)
            --issueCursor_;
        ++committed_;
        committedStat_.inc();
        ++n;
    }
    if (n == 0 && !rob_.empty())
        stallCyclesStat_.inc();
}

void
Core::issue(Cycle now)
{
    // At most one memory operation issues per cycle. issueCursor_
    // tracks the oldest not-yet-issued entry so the scan does not
    // restart from the ROB head every cycle. A store rejected by the
    // cache (store buffer full) does not stall younger loads — loads
    // bypass buffered stores as in any out-of-order machine — but the
    // cursor stays on it so stores stay ordered among themselves.
    bool store_blocked = false;
    std::size_t scan = issueCursor_;
    while (scan < rob_.size()) {
        RobEntry &e = rob_[scan];
        if (!e.op.isMem || e.issued) {
            if (scan == issueCursor_)
                ++issueCursor_;
            ++scan;
            continue;
        }
        if (store_blocked && e.op.isWrite) {
            ++scan; // stores issue in order among themselves
            continue;
        }
        // Dependent loads serialise behind the previous load.
        if (e.op.dependsOnPrev && lastMemDone_ && !*lastMemDone_)
            return;
        e.done = std::make_shared<bool>(false);
        // Pass the flag itself (not a lambda over it) so the pending
        // completion is a plain datum the checkpointer can serialise.
        const bool ok = l1_.access(e.op.isWrite, e.op.addr, e.op.l2Hit,
                                   e.done, now);
        if (!ok) {
            e.done.reset();
            if (e.op.isWrite) {
                store_blocked = true; // keep looking for a load
                ++scan;
                continue;
            }
            return; // loads retry in order next cycle
        }
        memOpsStat_.inc();
        e.issued = true;
        // Stores retire through the store buffer: the core does not
        // wait for the write to reach the cache hierarchy. Loads block
        // the ROB head until their data returns.
        if (e.op.isWrite)
            *e.done = true;
        else
            lastMemDone_ = e.done;
        if (scan == issueCursor_)
            ++issueCursor_;
        return; // at most one memory operation per cycle
    }
}

void
Core::fetch(Cycle now)
{
    (void)now;
    for (int i = 0; i < config_.fetchWidth &&
                    static_cast<int>(rob_.size()) < config_.robEntries;
         ++i) {
        RobEntry e;
        e.op = stream_.next();
        rob_.push_back(std::move(e));
    }
}

void
Core::tick(Cycle now)
{
    commit(now);
    issue(now);
    fetch(now);
}

} // namespace stacknoc::cpu
