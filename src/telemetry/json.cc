#include "telemetry/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace stacknoc::telemetry {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// --- writer ---------------------------------------------------------

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already emitted its comma and colon
    }
    if (!firstInScope_.back())
        os_ << ',';
    firstInScope_.back() = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    firstInScope_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    os_ << '}';
    firstInScope_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    firstInScope_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    os_ << ']';
    firstInScope_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (!firstInScope_.back())
        os_ << ',';
    firstInScope_.back() = false;
    os_ << '"' << jsonEscape(k) << "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    os_ << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        os_ << "null"; // JSON has no inf/nan
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    os_ << "null";
    return *this;
}

// --- parser ---------------------------------------------------------

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    std::optional<JsonValue>
    run()
    {
        skipWs();
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const char *what)
    {
        if (err_ && err_->empty()) {
            *err_ = detail::format("%s at offset %zu", what, pos_);
        }
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0) {
            fail("bad literal");
            return false;
        }
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (text_[pos_] != '"') {
            fail("expected string");
            return false;
        }
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
                return false;
            }
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("bad \\u escape");
                    return false;
                }
                const unsigned long cp = std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16);
                pos_ += 4;
                // ASCII only — our own writer never emits more.
                out += static_cast<char>(cp & 0x7f);
                break;
              }
              default:
                fail("unknown escape");
                return false;
            }
        }
        if (pos_ >= text_.size()) {
            fail("unterminated string");
            return false;
        }
        ++pos_; // closing quote
        return true;
    }

    bool
    parseValue(JsonValue &v)
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(v);
        if (c == '[')
            return parseArray(v);
        if (c == '"') {
            v.type_ = JsonValue::Type::String;
            return parseString(v.string_);
        }
        if (c == 't') {
            v.type_ = JsonValue::Type::Bool;
            v.boolean_ = true;
            return literal("true");
        }
        if (c == 'f') {
            v.type_ = JsonValue::Type::Bool;
            v.boolean_ = false;
            return literal("false");
        }
        if (c == 'n') {
            v.type_ = JsonValue::Type::Null;
            return literal("null");
        }
        // Number.
        char *end = nullptr;
        v.number_ = std::strtod(text_.c_str() + pos_, &end);
        if (end == text_.c_str() + pos_) {
            fail("expected value");
            return false;
        }
        v.type_ = JsonValue::Type::Number;
        pos_ = static_cast<std::size_t>(end - text_.c_str());
        return true;
    }

    bool
    parseObject(JsonValue &v)
    {
        v.type_ = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string k;
            if (!parseString(k))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':'");
                return false;
            }
            ++pos_;
            skipWs();
            JsonValue member;
            if (!parseValue(member))
                return false;
            v.object_.emplace(std::move(k), std::move(member));
            skipWs();
            if (pos_ >= text_.size()) {
                fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            fail("expected ',' or '}'");
            return false;
        }
    }

    bool
    parseArray(JsonValue &v)
    {
        v.type_ = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue elem;
            if (!parseValue(elem))
                return false;
            v.array_.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size()) {
                fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            fail("expected ',' or ']'");
            return false;
        }
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

std::size_t
JsonValue::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    return 0;
}

const JsonValue *
JsonValue::at(std::size_t i) const
{
    if (type_ != Type::Array || i >= array_.size())
        return nullptr;
    return &array_[i];
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

std::optional<JsonValue>
JsonValue::parse(const std::string &text, std::string *err)
{
    JsonParser parser(text, err);
    return parser.run();
}

// --- stats serialisation --------------------------------------------

void
writeGroupJson(JsonWriter &w, const stats::Group &group)
{
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[n, c] : group.allCounters())
        w.kv(n, c.value());
    w.endObject();

    w.key("averages").beginObject();
    for (const auto &[n, a] : group.allAverages()) {
        w.key(n).beginObject();
        w.kv("sum", a.sum());
        w.kv("count", a.count());
        w.kv("mean", a.mean());
        w.endObject();
    }
    w.endObject();

    w.key("distributions").beginObject();
    for (const auto &[n, d] : group.allDistributions()) {
        w.key(n).beginObject();
        w.kv("total", d.total());
        w.key("edges").beginArray();
        for (const auto e : d.edges())
            w.value(e);
        w.endArray();
        w.key("counts").beginArray();
        for (std::size_t i = 0; i < d.numBins(); ++i)
            w.value(d.binCount(i));
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[n, h] : group.allHistograms()) {
        w.key(n).beginObject();
        w.kv("count", h.count());
        w.kv("sum", h.sum());
        w.kv("min", h.minValue());
        w.kv("max", h.maxValue());
        w.kv("mean", h.mean());
        w.kv("p50", h.percentile(0.50));
        w.kv("p95", h.percentile(0.95));
        w.kv("p99", h.percentile(0.99));
        // Only the occupied log2 buckets: [lo, hi, count] triples.
        w.key("buckets").beginArray();
        for (std::size_t i = 0; i < stats::Histogram::kNumBuckets; ++i) {
            if (h.bucketCount(i) == 0)
                continue;
            w.beginArray();
            w.value(stats::Histogram::bucketLo(i));
            w.value(stats::Histogram::bucketHi(i));
            w.value(h.bucketCount(i));
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

void
writeIntervalJson(JsonWriter &w, const IntervalSampler &sampler)
{
    w.beginObject();
    w.kv("period", static_cast<std::uint64_t>(sampler.period()));
    w.kv("measure_start",
         static_cast<std::uint64_t>(sampler.measureStart()));
    w.kv("dropped_snapshots", sampler.droppedSnapshots());
    w.key("snapshots").beginArray();
    for (const auto &snap : sampler.snapshots()) {
        w.beginObject();
        w.kv("index", snap.index);
        w.kv("cycle", static_cast<std::uint64_t>(snap.cycle));
        w.kv("warmup", snap.warmup);
        w.key("values").beginObject();
        for (const auto &[name, v] : snap.values)
            w.kv(name, v);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace stacknoc::telemetry
