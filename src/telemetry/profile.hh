/**
 * @file
 * Cycle-accounting profiler: attributes the execution engine's wall
 * time to per-cycle phases (parallel compute, barrier wait, commit
 * replay, serial slot, cycle-end callbacks), to individual shards of
 * the parallel engine, and to component kinds under the sequential
 * engine.
 *
 * The profiler is a pure wall-clock observer: it never touches
 * simulation state, so determinism digests are bit-identical with it
 * on or off. Engines consult one pointer per run; with no profiler
 * installed they take their historical fast paths and the profiler
 * code allocates nothing.
 *
 * Timestamps are chained (the end of one phase is the start of the
 * next), so per-cycle phase durations tile the engine loop: their sum
 * tracks measured wall time to within loop overhead — the property
 * the `test_profile.cc` sum-to-wall test and the CI observability
 * smoke job assert.
 *
 * When constructed with a span capacity, every phase measurement is
 * additionally retained as a {thread, phase, t0, t1} span for the
 * Chrome-trace exporter (see chrome_trace.hh). Spans beyond the
 * capacity are counted as dropped rather than grown unbounded.
 */

#ifndef STACKNOC_TELEMETRY_PROFILE_HH
#define STACKNOC_TELEMETRY_PROFILE_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stacknoc::telemetry {

/** Wall-time attribution buckets of one engine cycle. */
enum class EnginePhase : std::uint8_t {
    Compute = 0, //!< component ticks (main thread's own shard)
    Barrier,     //!< main thread waiting on worker shards
    Commit,      //!< staged channel splice + ordinal-ordered replay
    Serial,      //!< serial-affinity components (e.g. the RCA fabric)
    CycleEnd,    //!< cycle-end callbacks (probes, samplers) + clock
};

constexpr std::size_t kNumEnginePhases = 5;

/** @return stable lower-case phase name ("compute", "barrier", ...). */
const char *enginePhaseName(EnginePhase ph);

/** One retained phase measurement, for trace export. */
struct PhaseSpan
{
    EnginePhase phase = EnginePhase::Compute;
    double t0 = 0.0; //!< seconds since profiler construction
    double t1 = 0.0;
};

/**
 * The profiler. One instance per CmpSystem, shared between warmup()
 * and run(); engines call in from the loop via the chained-timestamp
 * helpers below.
 *
 * Threading contract: setShardCount() and setKinds() run before the
 * first profiled cycle. addPhase()/addKindSeconds() are main-thread
 * only; addShardPhase(shard, ...) may be called concurrently by the
 * worker owning @p shard (each shard has its own cache-line-separated
 * slot, and the engine's phase barrier orders those writes before any
 * main-thread read). Accessors are for use after run() returns.
 */
class CycleProfiler
{
  public:
    /**
     * @param span_capacity per-thread bound on retained PhaseSpans
     *        (0 = accumulate totals only, retain nothing).
     */
    explicit CycleProfiler(std::size_t span_capacity = 0);

    /** Monotonic seconds since construction (the span time base). */
    double
    nowSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - epoch_)
            .count();
    }

    // --- Engine-side recording ----------------------------------------

    /** Size the per-shard slots (idempotent; before first cycle). */
    void setShardCount(std::size_t n);

    /** Name the sequential engine's component-kind buckets. */
    void setKinds(std::vector<std::string> names);

    /** Main-thread phase measurement [t0, t1), accumulated + spanned. */
    void addPhase(EnginePhase ph, double t0, double t1);

    /** Per-shard phase measurement, written by the shard's own thread. */
    void addShardPhase(std::size_t shard, EnginePhase ph, double t0,
                       double t1);

    /** Sequential per-kind compute attribution (no span). */
    void
    addKindSeconds(std::size_t kind, double dt)
    {
        kindSeconds_[kind] += dt;
    }

    /** Count @p n profiled engine cycles. */
    void addCycles(Cycle n) { cycles_ += n; }

    // --- Reporting (after run() has returned) -------------------------

    double phaseSeconds(EnginePhase ph) const;

    /** Sum of all main-thread phase buckets. */
    double totalPhaseSeconds() const;

    std::size_t numShards() const { return shards_.size(); }
    double shardSeconds(std::size_t shard, EnginePhase ph) const;

    const std::vector<std::string> &kindNames() const { return kindNames_; }
    double kindSeconds(std::size_t kind) const
    {
        return kindSeconds_.at(kind);
    }

    Cycle cycles() const { return cycles_; }

    std::size_t spanCapacity() const { return spanCapacity_; }
    std::uint64_t spansRecorded() const;
    std::uint64_t spansDropped() const;

    /**
     * Visit every retained span as (tid, span): tid 0 is the main
     * thread's phase track, tid 1+s is shard s's compute track.
     */
    void forEachSpan(
        const std::function<void(std::uint32_t tid, const PhaseSpan &)>
            &fn) const;

    /**
     * Pretty-print the phase/shard/kind breakdown. @p wall_seconds is
     * the externally measured engine wall time the shares are printed
     * against.
     */
    void writeTable(std::ostream &os, double wall_seconds) const;

  private:
    using Clock = std::chrono::steady_clock;

    /** Bounded span retention shared by the main and shard tracks. */
    struct SpanLog
    {
        std::vector<PhaseSpan> spans;
        std::uint64_t recorded = 0;
        std::uint64_t dropped = 0;

        void push(std::size_t capacity, EnginePhase ph, double t0,
                  double t1);
    };

    /** One shard's accumulators, cache-line separated from its peers
     *  so concurrent workers never false-share. */
    struct alignas(64) ShardSlot
    {
        std::array<double, kNumEnginePhases> seconds{};
        SpanLog log;
    };

    Clock::time_point epoch_;
    std::size_t spanCapacity_;

    std::array<double, kNumEnginePhases> phaseSeconds_{};
    SpanLog mainLog_;

    std::vector<std::unique_ptr<ShardSlot>> shards_;

    std::vector<std::string> kindNames_;
    std::vector<double> kindSeconds_;

    Cycle cycles_ = 0;
};

} // namespace stacknoc::telemetry

#endif // STACKNOC_TELEMETRY_PROFILE_HH
