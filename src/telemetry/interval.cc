#include "telemetry/interval.hh"

#include "common/logging.hh"

namespace stacknoc::telemetry {

IntervalSampler::IntervalSampler(Cycle period, std::size_t max_snapshots)
    : period_(period), maxSnapshots_(max_snapshots)
{
    panic_if(period_ == 0, "interval sampler needs a non-zero period");
}

void
IntervalSampler::addGroup(const stats::Group *group)
{
    panic_if(group == nullptr, "null stats group registered");
    groups_.push_back(group);
}

void
IntervalSampler::onCycle(Cycle now)
{
    // onCycle fires after cycle `now` completed; a snapshot at the end
    // of cycle origin + k*period - 1 covers exactly `period` cycles.
    if ((now + 1 - origin_) % period_ != 0)
        return;
    takeSnapshot(now);
}

void
IntervalSampler::onReset(Cycle now)
{
    measured_ = true;
    measureStart_ = now;
    origin_ = now; // re-align intervals to the measured window
    // Everything sampled so far belongs to warm-up.
    for (auto &snap : snapshots_)
        snap.warmup = true;
}

void
IntervalSampler::takeSnapshot(Cycle now)
{
    if (snapshots_.size() >= maxSnapshots_) {
        ++dropped_;
        ++nextIndex_;
        return;
    }
    IntervalSnapshot snap;
    snap.index = nextIndex_++;
    snap.cycle = now;
    snap.warmup = !measured_;
    trace("interval: snapshot %llu at cycle %llu%s",
          static_cast<unsigned long long>(snap.index),
          static_cast<unsigned long long>(now),
          snap.warmup ? " (warmup)" : "");
    for (const stats::Group *g : groups_) {
        const std::string prefix = g->name() + ".";
        for (const auto &[n, c] : g->allCounters()) {
            snap.values.emplace_back(prefix + n,
                                     static_cast<double>(c.value()));
        }
        for (const auto &[n, a] : g->allAverages()) {
            snap.values.emplace_back(prefix + n + ".sum", a.sum());
            snap.values.emplace_back(prefix + n + ".count",
                                     static_cast<double>(a.count()));
        }
        for (const auto &[n, h] : g->allHistograms()) {
            snap.values.emplace_back(prefix + n + ".count",
                                     static_cast<double>(h.count()));
            snap.values.emplace_back(prefix + n + ".sum",
                                     static_cast<double>(h.sum()));
        }
    }
    snapshots_.push_back(std::move(snap));
}

} // namespace stacknoc::telemetry
