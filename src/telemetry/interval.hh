/**
 * @file
 * Interval time-series: every N cycles, snapshot the scalar content of
 * the registered statistics groups so throughput and latency trends
 * over a run become visible instead of one flat end-of-run mean.
 *
 * Snapshots record cumulative values; consumers difference adjacent
 * snapshots for per-interval rates. Snapshots taken before the
 * measured window (statistics are zeroed at the end of warm-up) are
 * flagged so the two regimes stay separable.
 */

#ifndef STACKNOC_TELEMETRY_INTERVAL_HH
#define STACKNOC_TELEMETRY_INTERVAL_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"
#include "telemetry/probe.hh"

namespace stacknoc::telemetry {

/** One point of the time series. */
struct IntervalSnapshot
{
    std::uint64_t index = 0; //!< snapshot ordinal (0-based)
    Cycle cycle = 0;         //!< last cycle covered by this snapshot
    bool warmup = false;     //!< taken before the measured window

    /**
     * Flattened "group.stat" -> cumulative value. Counters contribute
     * their value; averages contribute ".sum" and ".count" entries;
     * histograms contribute ".count" and ".sum" entries.
     */
    std::vector<std::pair<std::string, double>> values;
};

/** Periodic snapshotter of statistics groups. */
class IntervalSampler : public Probe
{
  public:
    /**
     * @param period cycles per snapshot (must be > 0).
     * @param max_snapshots bound on retained snapshots; once reached,
     *        further intervals are counted but not stored.
     */
    explicit IntervalSampler(Cycle period,
                             std::size_t max_snapshots = 1 << 16);

    /** Register a group to snapshot (not owned; must outlive this). */
    void addGroup(const stats::Group *group);

    void onCycle(Cycle now) override;
    void onReset(Cycle now) override;

    Cycle period() const { return period_; }

    /** Cycle the measured window began, or 0 before any reset. */
    Cycle measureStart() const { return measureStart_; }

    const std::vector<IntervalSnapshot> &snapshots() const
    {
        return snapshots_;
    }

    /** Snapshots suppressed by the max_snapshots bound. */
    std::uint64_t droppedSnapshots() const { return dropped_; }

  private:
    void takeSnapshot(Cycle now);

    Cycle period_;
    std::size_t maxSnapshots_;
    Cycle origin_ = 0; //!< interval phase anchor
    Cycle measureStart_ = 0;
    bool measured_ = false; //!< onReset() has happened
    std::uint64_t nextIndex_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<const stats::Group *> groups_;
    std::vector<IntervalSnapshot> snapshots_;
};

} // namespace stacknoc::telemetry

#endif // STACKNOC_TELEMETRY_INTERVAL_HH
