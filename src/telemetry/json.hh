/**
 * @file
 * Minimal JSON support for machine-readable statistics export: a
 * streaming writer (compact output, automatic commas and escaping), a
 * small recursive-descent parser used by round-trip tests and tools,
 * and helpers serialising stats::Group and the interval time series.
 *
 * Deliberately not a general-purpose JSON library: no incremental
 * parsing, no number-precision guarantees beyond double, inputs are
 * trusted (our own output).
 */

#ifndef STACKNOC_TELEMETRY_JSON_HH
#define STACKNOC_TELEMETRY_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "telemetry/interval.hh"

namespace stacknoc::telemetry {

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * A streaming JSON writer. The caller drives structure with
 * beginObject/endObject/beginArray/endArray and key(); commas are
 * inserted automatically. Output is compact (single line), so files
 * written one object at a time concatenate into JSON-lines.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value call supplies its value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

  private:
    void separate();

    std::ostream &os_;
    std::vector<bool> firstInScope_{true}; //!< per nesting level
    bool pendingKey_ = false;
};

/** A parsed JSON document node. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }

    bool asBool() const { return boolean_; }
    double asDouble() const { return number_; }
    const std::string &asString() const { return string_; }

    /** Array / object element count. */
    std::size_t size() const;

    /** Array element @p i (nullptr when out of range / not an array). */
    const JsonValue *at(std::size_t i) const;

    /** Object member @p key (nullptr when absent / not an object). */
    const JsonValue *find(const std::string &key) const;

    const std::map<std::string, JsonValue> &members() const
    {
        return object_;
    }
    const std::vector<JsonValue> &elements() const { return array_; }

    /**
     * Parse @p text. @return std::nullopt on malformed input (the
     * optional error message lands in @p err).
     */
    static std::optional<JsonValue> parse(const std::string &text,
                                          std::string *err = nullptr);

  private:
    friend class JsonParser;

    Type type_ = Type::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/**
 * Serialise one statistics group as the value of the current key:
 * { "counters": {...}, "averages": {...}, "distributions": {...},
 *   "histograms": {...} }. Histograms carry p50/p95/p99/max plus their
 * non-empty log2 buckets.
 */
void writeGroupJson(JsonWriter &w, const stats::Group &group);

/**
 * Serialise the interval time series as the value of the current key:
 * { "period": N, "measure_start": C, "snapshots": [...] }.
 */
void writeIntervalJson(JsonWriter &w, const IntervalSampler &sampler);

} // namespace stacknoc::telemetry

#endif // STACKNOC_TELEMETRY_JSON_HH
