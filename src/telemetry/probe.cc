#include "telemetry/probe.hh"

#include "common/logging.hh"

namespace stacknoc::telemetry {

void
ProbeHub::add(Probe *p)
{
    panic_if(p == nullptr, "null probe registered");
    probes_.push_back(p);
}

void
ProbeHub::onCycle(Cycle now)
{
    for (Probe *p : probes_)
        p->onCycle(now);
}

void
ProbeHub::onWarmupBegin(Cycle now)
{
    for (Probe *p : probes_)
        p->onWarmupBegin(now);
}

void
ProbeHub::onReset(Cycle now)
{
    for (Probe *p : probes_)
        p->onReset(now);
}

} // namespace stacknoc::telemetry
