#include "telemetry/chrome_trace.hh"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>

#include "telemetry/json.hh"

namespace stacknoc::telemetry {

namespace {

constexpr int kSimPid = 1;    //!< simulated-time process
constexpr int kEnginePid = 2; //!< wall-time process

/** One pre-rendered trace event, sortable by timestamp. */
struct Event
{
    double ts = 0.0; //!< trace microseconds
    int pid = 0;
    std::int64_t tid = 0;
    char ph = 'i';
    double dur = 0.0;              //!< for 'X' events
    std::uint64_t id = 0;          //!< for async 'b'/'e' events
    double counterValue = 0.0;     //!< for 'C' events
    const char *counterKey = "";   //!< args key of a 'C' event
    const char *name = "";
    const char *cat = "";
    const TraceRecord *rec = nullptr; //!< args source for instants
};

void
writeEvent(JsonWriter &w, const Event &e)
{
    w.beginObject();
    w.kv("name", e.name);
    w.kv("cat", e.cat);
    w.key("ph");
    w.value(std::string(1, e.ph));
    w.kv("ts", e.ts);
    w.kv("pid", e.pid);
    w.kv("tid", e.tid);
    if (e.ph == 'X')
        w.kv("dur", e.dur);
    if (e.ph == 'b' || e.ph == 'e')
        w.kv("id", e.id);
    if (e.ph == 'i')
        w.kv("s", "t"); // thread-scoped instant
    if (e.ph == 'C') {
        w.key("args");
        w.beginObject();
        w.kv(e.counterKey, e.counterValue);
        w.endObject();
    }
    if (e.rec != nullptr) {
        w.key("args");
        w.beginObject();
        w.kv("packet_id", e.rec->packetId);
        w.kv("class", static_cast<std::uint64_t>(e.rec->cls));
        w.kv("aux", e.rec->aux);
        w.endObject();
    }
    w.endObject();
}

void
writeMetadata(JsonWriter &w, int pid, std::int64_t tid,
              const char *meta, const std::string &label)
{
    w.beginObject();
    w.kv("name", meta);
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("tid", tid);
    w.key("args");
    w.beginObject();
    w.kv("name", label);
    w.endObject();
    w.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceRecord> &records,
                 const CycleProfiler *profiler,
                 const EnergyProbe *power, const ThermalProbe *thermal)
{
    std::vector<Event> events;
    events.reserve(records.size() * 2);

    // Packet lifecycle instants, plus one async span per observed
    // inject/eject pair (ejects without an observed inject — the
    // inject fell out of the ring — get no span).
    std::vector<std::pair<std::uint64_t, Cycle>> inject_at;
    for (const TraceRecord &rec : records) {
        Event e;
        e.ts = static_cast<double>(rec.cycle);
        e.pid = kSimPid;
        e.tid = rec.node;
        e.ph = 'i';
        e.name = traceEventName(rec.event);
        e.cat = "packet";
        e.rec = &rec;
        events.push_back(e);

        if (rec.event == TraceEvent::Inject) {
            inject_at.emplace_back(rec.packetId, rec.cycle);
        } else if (rec.event == TraceEvent::Eject) {
            const auto it = std::find_if(
                inject_at.rbegin(), inject_at.rend(),
                [&](const auto &p) { return p.first == rec.packetId; });
            if (it == inject_at.rend())
                continue;
            Event b;
            b.ts = static_cast<double>(it->second);
            b.pid = kSimPid;
            b.tid = 0;
            b.ph = 'b';
            b.id = rec.packetId;
            b.name = "packet";
            b.cat = "lifecycle";
            events.push_back(b);
            Event f = b;
            f.ts = static_cast<double>(rec.cycle);
            f.ph = 'e';
            events.push_back(f);
            inject_at.erase(std::next(it).base());
        }
    }

    std::size_t engine_tracks = 0;
    if (profiler != nullptr) {
        profiler->forEachSpan([&](std::uint32_t tid,
                                  const PhaseSpan &span) {
            Event e;
            e.ts = span.t0 * 1e6;
            e.pid = kEnginePid;
            e.tid = tid;
            e.ph = 'X';
            e.dur = (span.t1 - span.t0) * 1e6;
            e.name = enginePhaseName(span.phase);
            e.cat = "engine";
            events.push_back(e);
            engine_tracks = std::max(engine_tracks,
                                     static_cast<std::size_t>(tid) + 1);
        });
    }

    // Power/thermal counter tracks on the simulated-time process: one
    // sample per retained frame, stamped at the frame's end cycle.
    if (power != nullptr) {
        for (const PowerFrame &f : power->frames()) {
            Event e;
            e.ts = static_cast<double>(f.end);
            e.pid = kSimPid;
            e.tid = 0;
            e.ph = 'C';
            e.name = "uncore_power";
            e.cat = "power";
            e.counterKey = "watts";
            e.counterValue = f.totalW();
            events.push_back(e);
        }
    }
    if (thermal != nullptr) {
        for (const ThermalFrame &f : thermal->frames()) {
            Event e;
            e.ts = static_cast<double>(f.end);
            e.pid = kSimPid;
            e.tid = 0;
            e.ph = 'C';
            e.name = "hottest_cell";
            e.cat = "thermal";
            e.counterKey = "celsius";
            e.counterValue = f.hottest.tempC;
            events.push_back(e);
        }
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.ts < b.ts;
                     });

    JsonWriter w(os);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.beginArray();
    writeMetadata(w, kSimPid, 0, "process_name",
                  "simulated time (1 cycle = 1us)");
    writeMetadata(w, kEnginePid, 0, "process_name", "engine wall time");
    for (std::size_t t = 0; t < engine_tracks; ++t) {
        writeMetadata(w, kEnginePid, static_cast<std::int64_t>(t),
                      "thread_name",
                      t == 0 ? std::string("main (phases)")
                             : "shard " + std::to_string(t - 1) +
                                   " compute");
    }
    for (const Event &e : events)
        writeEvent(w, e);
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace stacknoc::telemetry
