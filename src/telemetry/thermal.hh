/**
 * @file
 * HotSpot-lite transient thermal model of the 3D stack: one RC cell
 * per grid position, lateral conductances between in-layer neighbours,
 * vertical conductances between stacked cells, and a per-cell sink
 * conductance to ambient, integrated with an explicit Euler scheme.
 *
 * The solver is deliberately small and deterministic rather than
 * calibrated: temperatures are updated double-buffered in a fixed cell
 * order using plain double arithmetic, so results are bit-identical
 * across runs and engine thread counts (the solver only ever steps on
 * the main thread, fed by the EnergyProbe's cycle-end frames). Thermal
 * constants are compressed so that microsecond-scale simulations show
 * visible transients: real silicon has time constants in the
 * milliseconds, which would render every short run isothermal. With
 * the defaults, a uniform per-cell power P settles at
 * ambient + P / sinkConductance (the analytic steady state the tests
 * check; lateral and vertical flows cancel by symmetry).
 *
 * Integration is substepped: explicit Euler is stable only for
 * dt < 2 C / Gmax (Gmax = the largest total conductance hanging off a
 * cell), so step() splits each power frame into equal substeps no
 * longer than maxStepSeconds (default C / (5 Gmax)).
 *
 * The ThermalProbe wraps the solver as a PowerFrameSink: each retained
 * EnergyProbe frame advances the grid by the frame's span and records
 * a temperature frame (per-cell grid, per-layer max/mean, hottest
 * cell). Reset returns the grid to ambient — the temperature series
 * measures the post-warm-up window from a cold start, keeping it
 * independent of warm-up length.
 */

#ifndef STACKNOC_TELEMETRY_THERMAL_HH
#define STACKNOC_TELEMETRY_THERMAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/power.hh"

namespace stacknoc::telemetry {

/** RC constants of the thermal grid (scaled, see file comment). */
struct ThermalParams
{
    double ambientC = 45.0;          //!< heat-sink/coolant temperature
    double cellCapacityJPerK = 5e-8; //!< per-cell heat capacity
    double lateralWPerK = 0.010;     //!< in-layer neighbour conductance
    double verticalWPerK = 0.020;    //!< inter-layer (TSV) conductance
    double sinkWPerK = 0.002;        //!< per-cell conductance to ambient
    /** Explicit-Euler substep bound; 0 picks C / (5 Gmax). */
    double maxStepSeconds = 0.0;
};

/** The RC grid itself: step it with per-cell power, read temperatures. */
class ThermalGrid
{
  public:
    ThermalGrid(int width, int height, int layers,
                const ThermalParams &params);

    /** Return every cell to ambient. */
    void reset();

    /**
     * Advance the grid by @p dt seconds under @p power_w (watts,
     * [layer][y*width+x]; same shape as the grid). Substepped for
     * stability; deterministic for identical inputs.
     */
    void step(const std::vector<std::vector<double>> &power_w,
              double dt);

    int width() const { return width_; }
    int height() const { return height_; }
    int layers() const { return layers_; }
    const ThermalParams &params() const { return params_; }

    /** Temperatures in Celsius, [layer][y*width+x]. */
    const std::vector<std::vector<double>> &
    temperaturesC() const
    {
        return tempC_;
    }

    double cellC(int x, int y, int layer) const;
    double layerMaxC(int layer) const;
    double layerMeanC(int layer) const;

    /** Hottest cell over all layers: its layer, x, y and temperature. */
    struct HotCell
    {
        int layer = 0;
        int x = 0;
        int y = 0;
        double tempC = 0.0;
    };
    HotCell hottest() const;

    std::uint64_t substepsTaken() const { return substepsTaken_; }

  private:
    std::size_t cells() const
    {
        return static_cast<std::size_t>(width_ * height_);
    }

    void substep(const std::vector<std::vector<double>> &power_w,
                 double dt);

    int width_;
    int height_;
    int layers_;
    ThermalParams params_;
    double maxStep_; //!< resolved substep bound, seconds

    std::vector<std::vector<double>> tempC_;
    std::vector<std::vector<double>> scratch_;
    std::uint64_t substepsTaken_ = 0;
};

/** One recorded thermal frame (aligned with a power frame). */
struct ThermalFrame
{
    Cycle start = 0;
    Cycle end = 0;
    /** Temperatures at frame end, Celsius, [layer][y*width+x]. */
    std::vector<std::vector<double>> tempC;
    std::vector<double> layerMaxC;  //!< per layer
    std::vector<double> layerMeanC; //!< per layer
    ThermalGrid::HotCell hottest;
};

/** Drives a ThermalGrid from EnergyProbe frames and retains results. */
class ThermalProbe : public PowerFrameSink
{
  public:
    ThermalProbe(int width, int height, int layers,
                 const ThermalParams &params,
                 std::size_t max_frames = std::size_t{1} << 14);

    /**
     * Declare bank @p bank to sit at cell (x, y, layer), enabling the
     * hot-bank ranking. Call once per bank at wiring time.
     */
    void addBank(BankId bank, int x, int y, int layer);

    void onPowerFrame(const PowerFrame &frame) override;
    void onPowerReset() override;

    const ThermalGrid &grid() const { return grid_; }
    const std::vector<ThermalFrame> &frames() const { return frames_; }
    std::uint64_t framesDropped() const { return framesDropped_; }

    /** Hottest cell temperature seen at any frame end so far. */
    double peakC() const { return peakC_; }

    /** One ranked hot bank (by current end-state temperature). */
    struct HotBank
    {
        BankId bank = kInvalidBank;
        int layer = 0;
        int x = 0;
        int y = 0;
        double tempC = 0.0;
    };

    /**
     * The @p count hottest banks by the grid's current temperature,
     * hottest first; ties break toward the lower bank id so the
     * ranking is deterministic.
     */
    std::vector<HotBank> hotBanks(std::size_t count) const;

    /**
     * Write the retained temperature grids as one heatmap-schema JSON
     * file (metric "temperature", Celsius) renderable by
     * tools/heatmap_render.py.
     */
    bool writeFile(const std::string &path, Cycle period) const;

  private:
    struct BankCell
    {
        BankId bank;
        int layer;
        int x;
        int y;
    };

    ThermalGrid grid_;
    std::size_t maxFrames_;
    std::vector<BankCell> bankCells_;
    std::vector<ThermalFrame> frames_;
    std::uint64_t framesDropped_ = 0;
    double peakC_;
};

} // namespace stacknoc::telemetry

#endif // STACKNOC_TELEMETRY_THERMAL_HH
