/**
 * @file
 * Chrome-trace / Perfetto export: renders packet-lifecycle records and
 * engine-phase profiler spans as trace-event JSON loadable in
 * ui.perfetto.dev (or chrome://tracing).
 *
 * Two trace "processes" keep the two time bases apart:
 *
 *  - pid 1, "simulated time": one thread track per mesh node. Every
 *    TraceRecord becomes an instant event at ts = cycle (1 cycle = 1
 *    trace microsecond), and each inject/eject pair additionally
 *    becomes an async begin/end span keyed by packet id, so a
 *    packet's full network residency renders as one bar.
 *
 *  - pid 2, "engine wall time": tid 0 carries the main thread's
 *    phase spans (compute / barrier / commit / serial / cycle_end),
 *    tid 1+s shard s's compute spans, at ts = wall microseconds since
 *    profiler construction. Summing tid-0 span durations reproduces
 *    the engine's measured wall time (the CI smoke asserts within 5%).
 *
 * Events are emitted sorted by timestamp, so consumers that require
 * monotonic input (including our own validator) never need to re-sort.
 */

#ifndef STACKNOC_TELEMETRY_CHROME_TRACE_HH
#define STACKNOC_TELEMETRY_CHROME_TRACE_HH

#include <iosfwd>
#include <vector>

#include "telemetry/power.hh"
#include "telemetry/profile.hh"
#include "telemetry/thermal.hh"
#include "telemetry/trace.hh"

namespace stacknoc::telemetry {

/**
 * Write one trace-event JSON document combining @p records (packet
 * lifecycles, in recording order) and, when @p profiler is non-null,
 * its retained engine-phase spans. When @p power / @p thermal are
 * non-null, their retained frames additionally become counter tracks
 * on the simulated-time process — total uncore power (watts) and the
 * hottest cell's temperature (Celsius) at each frame end — so power
 * and thermal transients render alongside packet activity.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceRecord> &records,
                      const CycleProfiler *profiler,
                      const EnergyProbe *power = nullptr,
                      const ThermalProbe *thermal = nullptr);

} // namespace stacknoc::telemetry

#endif // STACKNOC_TELEMETRY_CHROME_TRACE_HH
