/**
 * @file
 * Packet-lifecycle tracing: a tracked packet is stamped at injection,
 * at every router it reaches, around STT-RAM-aware parent holds, at
 * bank-queue entry and bank-service start, and at ejection.
 *
 * Records accumulate in a bounded ring buffer; when a sink is attached
 * the ring drains into it on overflow and on flush(), so nothing is
 * lost. Without a sink the ring retains the most recent records
 * (oldest are overwritten), which is what unit tests and post-mortem
 * inspection want.
 *
 * Hot paths gate on the installed global tracer being non-null, so a
 * run with tracing off pays one pointer load per potential event.
 */

#ifndef STACKNOC_TELEMETRY_TRACE_HH
#define STACKNOC_TELEMETRY_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stacknoc::telemetry {

/** Lifecycle points a tracked packet is stamped at. */
enum class TraceEvent : std::uint8_t {
    Inject,           //!< head flit entered the network at the source NI
    RouterArrive,     //!< head flit buffered at a router
    HoldStart,        //!< an STT-RAM-aware parent began holding the packet
    HoldEnd,          //!< the parent forwarded a previously held packet
    /**
     * Request entered an L2 bank's demand queue.
     * aux = (queue depth on arrival << 1) | is-bank-write.
     */
    BankQueueEnter,
    BankServiceStart, //!< bank (or write buffer) began servicing it; aux = cycles waited
    Eject,            //!< tail flit left the network at the destination NI
};

/** @return stable lower-case event name, used in the CSV schema. */
const char *traceEventName(TraceEvent ev);

/** One trace stamp. */
struct TraceRecord
{
    Cycle cycle = 0;              //!< when the event happened
    std::uint64_t packetId = 0;   //!< noc::Packet::id
    std::uint8_t cls = 0;         //!< noc::PacketClass as integer
    TraceEvent event = TraceEvent::Inject;
    NodeId node = kInvalidNode;   //!< where the event happened
    std::int64_t aux = 0;         //!< event-specific payload, see docs
};

/** Destination of drained trace records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void write(const TraceRecord &rec) = 0;
    virtual void flush() {}
};

/** Swallows everything (tracing enabled for ring inspection only). */
class NullTraceSink : public TraceSink
{
  public:
    void write(const TraceRecord &) override {}
};

/** Retains every drained record in memory, for tests. */
class MemoryTraceSink : public TraceSink
{
  public:
    void write(const TraceRecord &rec) override
    {
        records_.push_back(rec);
    }

    const std::vector<TraceRecord> &records() const { return records_; }
    void clear() { records_.clear(); }

  private:
    std::vector<TraceRecord> records_;
};

/** Fans each record out to two sinks (neither owned). */
class TeeTraceSink : public TraceSink
{
  public:
    TeeTraceSink(TraceSink &a, TraceSink &b) : a_(a), b_(b) {}

    void
    write(const TraceRecord &rec) override
    {
        a_.write(rec);
        b_.write(rec);
    }

    void
    flush() override
    {
        a_.flush();
        b_.flush();
    }

  private:
    TraceSink &a_;
    TraceSink &b_;
};

/**
 * Streams records to a CSV file with a fixed header:
 *   cycle,packet_id,class,event,node,aux
 */
class CsvTraceSink : public TraceSink
{
  public:
    explicit CsvTraceSink(const std::string &path);
    ~CsvTraceSink() override;

    CsvTraceSink(const CsvTraceSink &) = delete;
    CsvTraceSink &operator=(const CsvTraceSink &) = delete;

    void write(const TraceRecord &rec) override;
    void flush() override;

    /** @return false when the file could not be opened. */
    bool ok() const { return file_ != nullptr; }

  private:
    std::FILE *file_ = nullptr;
};

class PacketTracer;

/**
 * A deferred trace-record log, the tracing counterpart of
 * stats::TickLog. The PacketTracer ring is a single shared buffer whose
 * contents (and overwrite order) must be bit-identical between the
 * sequential and sharded engines, so during a parallel compute phase
 * each worker thread installs a TraceLog via setTraceLog();
 * PacketTracer::record then appends here, tagged with the ordinal of
 * the component currently ticking, and after the phase barrier the
 * engine merges all per-thread logs by ordinal and replays them
 * single-threaded into the real tracer — reproducing the exact
 * sequential recording order.
 */
class TraceLog
{
  public:
    /** Tag subsequent entries with component ordinal @p ordinal. */
    void beginComponent(std::uint32_t ordinal) { ordinal_ = ordinal; }

    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }
    std::size_t size() const { return entries_.size(); }

    void
    append(PacketTracer *target, const TraceRecord &rec)
    {
        entries_.push_back({ordinal_, target, rec});
    }

    /**
     * Merge @p n logs by component ordinal and replay them into their
     * target tracers. Must run with no TraceLog installed on the
     * calling thread. Each ordinal appears in at most one log.
     */
    static void applyInOrder(TraceLog *const *logs, std::size_t n);

  private:
    struct Entry
    {
        std::uint32_t ordinal;
        PacketTracer *target;
        TraceRecord rec;
    };

    std::vector<Entry> entries_;
    std::uint32_t ordinal_ = 0;
};

namespace detail {
inline thread_local TraceLog *t_trace_log = nullptr;
} // namespace detail

/** Install @p log as this thread's deferral target (null = immediate). */
inline void
setTraceLog(TraceLog *log)
{
    detail::t_trace_log = log;
}

/** @return this thread's installed deferral log, or null. */
inline TraceLog *
traceLog()
{
    return detail::t_trace_log;
}

/**
 * The tracer: decides which packets are tracked (every Nth id) and
 * buffers their lifecycle records.
 */
class PacketTracer
{
  public:
    /**
     * @param ring_capacity bounded buffer size, in records.
     * @param sample_every track packets whose id is divisible by this
     *        (1 = every packet).
     */
    explicit PacketTracer(std::size_t ring_capacity = 4096,
                          std::uint64_t sample_every = 1);

    /** Attach a sink (not owned). Null reverts to ring-only retention. */
    void setSink(TraceSink *sink) { sink_ = sink; }

    /** @return whether this packet's lifecycle is recorded. */
    bool
    tracked(std::uint64_t packet_id) const
    {
        return packet_id % sample_ == 0;
    }

    void record(TraceEvent ev, std::uint64_t packet_id, std::uint8_t cls,
                NodeId node, Cycle now, std::int64_t aux = 0);

    /** Drain the ring into the sink (no-op without one). */
    void flush();

    std::size_t capacity() const { return ring_.size(); }
    std::size_t size() const { return size_; }
    std::uint64_t sampleEvery() const { return sample_; }

    /** Total records ever recorded. */
    std::uint64_t recorded() const { return recorded_; }

    /** Records overwritten because the (sinkless) ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Ring contents, oldest first. */
    std::vector<TraceRecord> snapshot() const;

  private:
    std::vector<TraceRecord> ring_;
    std::size_t head_ = 0; //!< index of the oldest record
    std::size_t size_ = 0;
    std::uint64_t sample_;
    TraceSink *sink_ = nullptr;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

namespace detail {
extern PacketTracer *g_tracer;
} // namespace detail

/**
 * Install @p tracer as the process-wide tracer consulted by the noc,
 * sttnoc, mem and coherence hot paths. Pass nullptr to disable. The
 * caller retains ownership and must uninstall before destruction.
 */
void setTracer(PacketTracer *tracer);

/** @return the installed tracer, or nullptr when tracing is off. */
inline PacketTracer *
tracer()
{
    return detail::g_tracer;
}

} // namespace stacknoc::telemetry

#endif // STACKNOC_TELEMETRY_TRACE_HH
