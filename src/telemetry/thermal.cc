#include "telemetry/thermal.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/logging.hh"
#include "telemetry/json.hh"

namespace stacknoc::telemetry {

ThermalGrid::ThermalGrid(int width, int height, int layers,
                         const ThermalParams &params)
    : width_(width), height_(height), layers_(layers), params_(params)
{
    panic_if(width_ < 1 || height_ < 1 || layers_ < 1,
             "bad thermal grid dimensions %dx%dx%d", width_, height_,
             layers_);
    panic_if(params_.cellCapacityJPerK <= 0.0,
             "cell heat capacity must be positive");
    panic_if(params_.lateralWPerK < 0.0 || params_.verticalWPerK < 0.0 ||
                 params_.sinkWPerK < 0.0,
             "conductances must be non-negative");

    // The largest conductance sum a cell can see: four lateral
    // neighbours, up to two vertical neighbours, plus the sink.
    const double g_max = 4.0 * params_.lateralWPerK +
                         2.0 * params_.verticalWPerK +
                         params_.sinkWPerK;
    const double stable = g_max > 0.0
                              ? params_.cellCapacityJPerK / (5.0 * g_max)
                              : 1.0;
    maxStep_ = params_.maxStepSeconds > 0.0
                   ? std::min(params_.maxStepSeconds, stable)
                   : stable;

    tempC_.assign(static_cast<std::size_t>(layers_),
                  std::vector<double>(cells(), params_.ambientC));
    scratch_ = tempC_;
}

void
ThermalGrid::reset()
{
    for (auto &layer : tempC_)
        std::fill(layer.begin(), layer.end(), params_.ambientC);
    substepsTaken_ = 0;
}

void
ThermalGrid::substep(const std::vector<std::vector<double>> &power_w,
                     double dt)
{
    const double g_lat = params_.lateralWPerK;
    const double g_vert = params_.verticalWPerK;
    const double g_sink = params_.sinkWPerK;
    const double inv_c = 1.0 / params_.cellCapacityJPerK;

    for (int l = 0; l < layers_; ++l) {
        const auto li = static_cast<std::size_t>(l);
        for (int y = 0; y < height_; ++y) {
            for (int x = 0; x < width_; ++x) {
                const auto i = static_cast<std::size_t>(y * width_ + x);
                const double t = tempC_[li][i];

                double flow = power_w[li][i] +
                              g_sink * (params_.ambientC - t);
                if (x > 0)
                    flow += g_lat * (tempC_[li][i - 1] - t);
                if (x < width_ - 1)
                    flow += g_lat * (tempC_[li][i + 1] - t);
                if (y > 0)
                    flow += g_lat *
                            (tempC_[li][i - static_cast<std::size_t>(
                                                width_)] -
                             t);
                if (y < height_ - 1)
                    flow += g_lat *
                            (tempC_[li][i + static_cast<std::size_t>(
                                                width_)] -
                             t);
                if (l > 0)
                    flow += g_vert * (tempC_[li - 1][i] - t);
                if (l < layers_ - 1)
                    flow += g_vert * (tempC_[li + 1][i] - t);

                scratch_[li][i] = t + dt * flow * inv_c;
            }
        }
    }
    tempC_.swap(scratch_);
    ++substepsTaken_;
}

void
ThermalGrid::step(const std::vector<std::vector<double>> &power_w,
                  double dt)
{
    panic_if(power_w.size() != tempC_.size(),
             "power grid has %zu layers, thermal grid %zu",
             power_w.size(), tempC_.size());
    for (const auto &grid : power_w) {
        panic_if(grid.size() != cells(),
                 "power grid layer has %zu cells, expected %zu",
                 grid.size(), cells());
    }
    if (dt <= 0.0)
        return;

    const auto n = static_cast<std::uint64_t>(
        std::ceil(dt / maxStep_));
    const double sub = dt / static_cast<double>(n);
    for (std::uint64_t s = 0; s < n; ++s)
        substep(power_w, sub);
}

double
ThermalGrid::cellC(int x, int y, int layer) const
{
    return tempC_.at(static_cast<std::size_t>(layer))
        .at(static_cast<std::size_t>(y * width_ + x));
}

double
ThermalGrid::layerMaxC(int layer) const
{
    const auto &grid = tempC_.at(static_cast<std::size_t>(layer));
    return *std::max_element(grid.begin(), grid.end());
}

double
ThermalGrid::layerMeanC(int layer) const
{
    const auto &grid = tempC_.at(static_cast<std::size_t>(layer));
    double sum = 0.0;
    for (const double t : grid)
        sum += t;
    return sum / static_cast<double>(grid.size());
}

ThermalGrid::HotCell
ThermalGrid::hottest() const
{
    HotCell hot;
    hot.tempC = tempC_[0][0];
    for (int l = 0; l < layers_; ++l) {
        const auto &grid = tempC_[static_cast<std::size_t>(l)];
        for (int y = 0; y < height_; ++y) {
            for (int x = 0; x < width_; ++x) {
                const double t =
                    grid[static_cast<std::size_t>(y * width_ + x)];
                if (t > hot.tempC) {
                    hot.tempC = t;
                    hot.layer = l;
                    hot.x = x;
                    hot.y = y;
                }
            }
        }
    }
    return hot;
}

ThermalProbe::ThermalProbe(int width, int height, int layers,
                           const ThermalParams &params,
                           std::size_t max_frames)
    : grid_(width, height, layers, params), maxFrames_(max_frames),
      peakC_(params.ambientC)
{
}

void
ThermalProbe::addBank(BankId bank, int x, int y, int layer)
{
    bankCells_.push_back({bank, layer, x, y});
}

void
ThermalProbe::onPowerFrame(const PowerFrame &frame)
{
    grid_.step(frame.powerW, frame.spanSeconds);

    ThermalFrame f;
    f.start = frame.start;
    f.end = frame.end;
    f.tempC = grid_.temperaturesC();
    for (int l = 0; l < grid_.layers(); ++l) {
        f.layerMaxC.push_back(grid_.layerMaxC(l));
        f.layerMeanC.push_back(grid_.layerMeanC(l));
    }
    f.hottest = grid_.hottest();
    peakC_ = std::max(peakC_, f.hottest.tempC);

    if (frames_.size() >= maxFrames_) {
        ++framesDropped_;
        return;
    }
    frames_.push_back(std::move(f));
}

void
ThermalProbe::onPowerReset()
{
    grid_.reset();
    frames_.clear();
    framesDropped_ = 0;
    peakC_ = grid_.params().ambientC;
}

std::vector<ThermalProbe::HotBank>
ThermalProbe::hotBanks(std::size_t count) const
{
    std::vector<HotBank> ranked;
    ranked.reserve(bankCells_.size());
    for (const BankCell &bc : bankCells_) {
        ranked.push_back({bc.bank, bc.layer, bc.x, bc.y,
                          grid_.cellC(bc.x, bc.y, bc.layer)});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const HotBank &a, const HotBank &b) {
                  if (a.tempC != b.tempC)
                      return a.tempC > b.tempC;
                  return a.bank < b.bank;
              });
    if (ranked.size() > count)
        ranked.resize(count);
    return ranked;
}

bool
ThermalProbe::writeFile(const std::string &path, Cycle period) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    JsonWriter w(os);
    w.beginObject();
    w.kv("metric", "temperature");
    w.kv("width", grid_.width());
    w.kv("height", grid_.height());
    w.kv("layers", grid_.layers());
    w.kv("period", static_cast<std::uint64_t>(period));
    w.kv("frames_dropped", framesDropped_);
    w.key("frames");
    w.beginArray();
    for (const ThermalFrame &f : frames_) {
        w.beginObject();
        w.kv("start", static_cast<std::uint64_t>(f.start));
        w.kv("end", static_cast<std::uint64_t>(f.end));
        w.key("grids");
        w.beginArray();
        for (const auto &grid : f.tempC) {
            w.beginArray();
            for (const double v : grid)
                w.value(v);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return true;
}

} // namespace stacknoc::telemetry
