#include "telemetry/power.hh"

#include <fstream>

#include "common/logging.hh"
#include "telemetry/json.hh"

namespace stacknoc::telemetry {

EnergyProbe::EnergyProbe(int width, int height, int layers,
                         const PowerParams &params, Cycle period,
                         std::size_t max_frames)
    : width_(width), height_(height), layers_(layers), params_(params),
      period_(period), maxFrames_(max_frames)
{
    panic_if(width_ < 1 || height_ < 1 || layers_ < 1,
             "bad power grid dimensions %dx%dx%d", width_, height_,
             layers_);
    panic_if(period_ < 1, "power sampling period must be >= 1");
    panic_if(params_.clockGHz <= 0.0, "clockGHz must be positive");
}

void
EnergyProbe::addRouter(int x, int y, int layer, RouterSampler sampler)
{
    panic_if(x < 0 || x >= width_ || y < 0 || y >= height_ ||
                 layer < 0 || layer >= layers_,
             "router site (%d,%d,%d) outside the grid", x, y, layer);
    routers_.push_back({static_cast<std::size_t>(y * width_ + x), layer,
                        std::move(sampler), RouterActivity{}});
    routers_.back().base = routers_.back().sampler();
}

void
EnergyProbe::addBank(int x, int y, int layer, BankSampler sampler)
{
    panic_if(x < 0 || x >= width_ || y < 0 || y >= height_ ||
                 layer < 0 || layer >= layers_,
             "bank site (%d,%d,%d) outside the grid", x, y, layer);
    banks_.push_back({static_cast<std::size_t>(y * width_ + x), layer,
                      std::move(sampler), BankActivity{}});
    banks_.back().base = banks_.back().sampler();
}

void
EnergyProbe::captureBaseline()
{
    for (RouterSite &site : routers_)
        site.base = site.sampler();
    for (BankSite &site : banks_)
        site.base = site.sampler();
}

PowerFrame
EnergyProbe::sampleFrame(Cycle now)
{
    const auto cells = static_cast<std::size_t>(width_ * height_);

    PowerFrame f;
    f.start = frameStart_;
    f.end = now;
    const double seconds = static_cast<double>(now - frameStart_ + 1) /
                           (params_.clockGHz * 1e9);
    f.spanSeconds = seconds;
    f.powerW.assign(static_cast<std::size_t>(layers_),
                    std::vector<double>(cells, 0.0));

    // Joule-per-cell scratch; converted to watts at the end so every
    // cell pays exactly one division.
    const double routerLeakJ = params_.routerLeakageMW * 1e-3 * seconds;
    const double bankLeakJ = params_.bankLeakageMW * 1e-3 * seconds;

    for (RouterSite &site : routers_) {
        const RouterActivity cur = site.sampler();
        const double buffered =
            static_cast<double>(cur.flitsBuffered -
                                site.base.flitsBuffered);
        const double switched =
            static_cast<double>(cur.flitsSwitched -
                                site.base.flitsSwitched);
        const double retx =
            static_cast<double>(cur.flitsRetransmitted -
                                site.base.flitsRetransmitted);
        site.base = cur;

        const double dynNJ =
            buffered * params_.bufferWriteNJ +
            switched * (params_.bufferReadNJ + params_.crossbarNJ +
                        params_.arbiterNJ + params_.linkNJ);
        const double retxNJ = retx * params_.retransmitFlitNJ;

        f.netDynamicUJ += dynNJ * 1e-3;
        f.netLeakageUJ += routerLeakJ * 1e6;
        f.retransmitFlitUJ += retxNJ * 1e-3;
        f.powerW[static_cast<std::size_t>(site.layer)][site.cell] +=
            (dynNJ + retxNJ) * 1e-9 + routerLeakJ;
    }

    for (BankSite &site : banks_) {
        const BankActivity cur = site.sampler();
        const double reads =
            static_cast<double>(cur.reads - site.base.reads);
        const double writes =
            static_cast<double>(cur.writes - site.base.writes);
        const double retries =
            static_cast<double>(cur.retryRounds -
                                site.base.retryRounds);
        site.base = cur;

        const double dynNJ = reads * params_.bankReadNJ +
                             writes * params_.bankWriteNJ;
        const double retryNJ = retries * params_.retryWriteNJ;

        f.cacheDynamicUJ += dynNJ * 1e-3;
        f.cacheLeakageUJ += bankLeakJ * 1e6;
        f.retryWriteUJ += retryNJ * 1e-3;
        f.powerW[static_cast<std::size_t>(site.layer)][site.cell] +=
            (dynNJ + retryNJ) * 1e-9 + bankLeakJ;
    }

    if (seconds > 0.0) {
        for (auto &grid : f.powerW)
            for (double &w : grid)
                w /= seconds;
    }
    return f;
}

void
EnergyProbe::accumulate(const PowerFrame &f)
{
    cacheDynamicUJ_ += f.cacheDynamicUJ;
    cacheLeakageUJ_ += f.cacheLeakageUJ;
    netDynamicUJ_ += f.netDynamicUJ;
    netLeakageUJ_ += f.netLeakageUJ;
    retryWriteUJ_ += f.retryWriteUJ;
    retransmitFlitUJ_ += f.retransmitFlitUJ;
}

void
EnergyProbe::onCycle(Cycle now)
{
    if (finalized_ || now - frameStart_ + 1 < period_)
        return;
    if (inWarmup_) {
        // Keep the delta bases rolling so the first measured frame
        // doesn't absorb warm-up traffic, but retain nothing.
        (void)sampleFrame(now);
        frameStart_ = now + 1;
        return;
    }
    PowerFrame f = sampleFrame(now);
    frameStart_ = now + 1;
    accumulate(f);
    if (sink_ != nullptr)
        sink_->onPowerFrame(f);
    if (frames_.size() >= maxFrames_) {
        ++framesDropped_;
        return;
    }
    frames_.push_back(std::move(f));
}

void
EnergyProbe::onWarmupBegin(Cycle now)
{
    (void)now;
    inWarmup_ = true;
}

void
EnergyProbe::onReset(Cycle now)
{
    inWarmup_ = false;
    finalized_ = false;
    frames_.clear();
    framesDropped_ = 0;
    frameStart_ = now;
    captureBaseline();
    cacheDynamicUJ_ = 0.0;
    cacheLeakageUJ_ = 0.0;
    netDynamicUJ_ = 0.0;
    netLeakageUJ_ = 0.0;
    retryWriteUJ_ = 0.0;
    retransmitFlitUJ_ = 0.0;
    if (sink_ != nullptr)
        sink_->onPowerReset();
}

void
EnergyProbe::finalize(Cycle now)
{
    if (finalized_ || inWarmup_)
        return;
    finalized_ = true;
    if (now <= frameStart_)
        return; // the last period boundary closed the window exactly
    PowerFrame f = sampleFrame(now - 1);
    frameStart_ = now;
    accumulate(f);
    if (sink_ != nullptr)
        sink_->onPowerFrame(f);
    if (frames_.size() >= maxFrames_) {
        ++framesDropped_;
        return;
    }
    frames_.push_back(std::move(f));
}

bool
EnergyProbe::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    JsonWriter w(os);
    w.beginObject();
    w.kv("metric", "power");
    w.kv("width", width_);
    w.kv("height", height_);
    w.kv("layers", layers_);
    w.kv("period", static_cast<std::uint64_t>(period_));
    w.kv("frames_dropped", framesDropped_);
    w.key("frames");
    w.beginArray();
    for (const PowerFrame &f : frames_) {
        w.beginObject();
        w.kv("start", static_cast<std::uint64_t>(f.start));
        w.kv("end", static_cast<std::uint64_t>(f.end));
        w.key("grids");
        w.beginArray();
        for (const auto &grid : f.powerW) {
            w.beginArray();
            for (const double v : grid)
                w.value(v);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return true;
}

} // namespace stacknoc::telemetry
