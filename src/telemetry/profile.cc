#include "telemetry/profile.hh"

#include <iomanip>
#include <ostream>

#include "common/logging.hh"

namespace stacknoc::telemetry {

const char *
enginePhaseName(EnginePhase ph)
{
    switch (ph) {
      case EnginePhase::Compute: return "compute";
      case EnginePhase::Barrier: return "barrier";
      case EnginePhase::Commit: return "commit";
      case EnginePhase::Serial: return "serial";
      case EnginePhase::CycleEnd: return "cycle_end";
    }
    return "unknown";
}

CycleProfiler::CycleProfiler(std::size_t span_capacity)
    : epoch_(Clock::now()), spanCapacity_(span_capacity)
{
}

void
CycleProfiler::SpanLog::push(std::size_t capacity, EnginePhase ph,
                             double t0, double t1)
{
    ++recorded;
    if (spans.size() >= capacity) {
        ++dropped;
        return;
    }
    spans.push_back({ph, t0, t1});
}

void
CycleProfiler::setShardCount(std::size_t n)
{
    if (shards_.size() == n)
        return;
    panic_if(!shards_.empty(),
             "profiler shard count changed after first use");
    shards_.reserve(n);
    for (std::size_t s = 0; s < n; ++s)
        shards_.push_back(std::make_unique<ShardSlot>());
}

void
CycleProfiler::setKinds(std::vector<std::string> names)
{
    kindNames_ = std::move(names);
    kindSeconds_.assign(kindNames_.size(), 0.0);
}

void
CycleProfiler::addPhase(EnginePhase ph, double t0, double t1)
{
    phaseSeconds_[static_cast<std::size_t>(ph)] += t1 - t0;
    if (spanCapacity_ > 0)
        mainLog_.push(spanCapacity_, ph, t0, t1);
}

void
CycleProfiler::addShardPhase(std::size_t shard, EnginePhase ph,
                             double t0, double t1)
{
    ShardSlot &slot = *shards_[shard];
    slot.seconds[static_cast<std::size_t>(ph)] += t1 - t0;
    if (spanCapacity_ > 0)
        slot.log.push(spanCapacity_, ph, t0, t1);
}

double
CycleProfiler::phaseSeconds(EnginePhase ph) const
{
    return phaseSeconds_[static_cast<std::size_t>(ph)];
}

double
CycleProfiler::totalPhaseSeconds() const
{
    double total = 0.0;
    for (const double s : phaseSeconds_)
        total += s;
    return total;
}

double
CycleProfiler::shardSeconds(std::size_t shard, EnginePhase ph) const
{
    return shards_.at(shard)->seconds[static_cast<std::size_t>(ph)];
}

std::uint64_t
CycleProfiler::spansRecorded() const
{
    std::uint64_t total = mainLog_.recorded;
    for (const auto &slot : shards_)
        total += slot->log.recorded;
    return total;
}

std::uint64_t
CycleProfiler::spansDropped() const
{
    std::uint64_t total = mainLog_.dropped;
    for (const auto &slot : shards_)
        total += slot->log.dropped;
    return total;
}

void
CycleProfiler::forEachSpan(
    const std::function<void(std::uint32_t, const PhaseSpan &)> &fn) const
{
    for (const PhaseSpan &span : mainLog_.spans)
        fn(0, span);
    for (std::size_t s = 0; s < shards_.size(); ++s)
        for (const PhaseSpan &span : shards_[s]->log.spans)
            fn(static_cast<std::uint32_t>(s + 1), span);
}

void
CycleProfiler::writeTable(std::ostream &os, double wall_seconds) const
{
    const auto share = [&](double s) {
        return wall_seconds > 0.0 ? 100.0 * s / wall_seconds : 0.0;
    };

    os << "profile: " << cycles_ << " cycles, wall " << std::fixed
       << std::setprecision(3) << wall_seconds << " s, phase sum "
       << totalPhaseSeconds() << " s\n";
    os << "  phase        seconds   share\n";
    for (std::size_t p = 0; p < kNumEnginePhases; ++p) {
        const auto ph = static_cast<EnginePhase>(p);
        os << "  " << std::left << std::setw(11) << enginePhaseName(ph)
           << std::right << std::setw(9) << std::setprecision(3)
           << phaseSeconds(ph) << std::setw(7) << std::setprecision(1)
           << share(phaseSeconds(ph)) << "%\n";
    }
    if (shards_.size() > 1) {
        os << "  shard        compute   share\n";
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            const double sec = shardSeconds(s, EnginePhase::Compute);
            os << "  shard" << std::left << std::setw(6) << s
               << std::right << std::setw(9) << std::setprecision(3)
               << sec << std::setw(7) << std::setprecision(1)
               << share(sec) << "%\n";
        }
    }
    if (!kindNames_.empty()) {
        os << "  kind         seconds   share\n";
        for (std::size_t k = 0; k < kindNames_.size(); ++k) {
            if (kindSeconds_[k] <= 0.0)
                continue;
            os << "  " << std::left << std::setw(11) << kindNames_[k]
               << std::right << std::setw(9) << std::setprecision(3)
               << kindSeconds_[k] << std::setw(7)
               << std::setprecision(1) << share(kindSeconds_[k])
               << "%\n";
        }
    }
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
}

} // namespace stacknoc::telemetry
