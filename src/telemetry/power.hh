/**
 * @file
 * Streaming energy telemetry: the EnergyProbe turns the end-of-run
 * Figure 8 scalar (system/energy.hh::computeEnergy) into per-interval,
 * per-component accumulation and warm-up-safe spatial power grids.
 *
 * The probe knows nothing about routers or banks; the system registers
 * one sampler per component that returns its cumulative plain counters
 * (Router::flitsSwitchedTotal and friends — written only by the owning
 * tick, read here after the engine's phase barrier). Every sampling
 * period the probe takes counter deltas, converts them to joules with
 * the same event energies computeEnergy uses, and retains one frame of
 * [layer][y * width + x] power grids (watts) plus the interval's
 * energy split. Summed over frames (finalize() closes the partial
 * tail), the streaming categories reconcile with computeEnergy to
 * floating-point noise; tests pin the drift below 1e-6 relative.
 *
 * The probe is a strict cycle-end observer and follows the heatmap
 * delta-baseline protocol: during warm-up frames are sampled to keep
 * the delta bases rolling but retained nowhere, and onReset rebases
 * every counter and zeroes the streaming totals, so the first measured
 * frame never absorbs warm-up traffic. Determinism digests are
 * identical with the probe on or off, at any engine thread count.
 */

#ifndef STACKNOC_TELEMETRY_POWER_HH
#define STACKNOC_TELEMETRY_POWER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/probe.hh"

namespace stacknoc::telemetry {

/**
 * Event energies (nJ) and leakage (mW) for streaming accumulation —
 * plain doubles so the telemetry layer needs neither the system's
 * NocEnergyParams nor the memory layer's Table 2; the system copies
 * the identical constants in when it wires the probe.
 */
struct PowerParams
{
    // Per-bank (cache-layer) events.
    double bankReadNJ = 0.0;
    double bankWriteNJ = 0.0;
    double bankLeakageMW = 0.0;
    double retryWriteNJ = 0.0; //!< per failed-verify write round

    // Per-router events.
    double bufferWriteNJ = 0.0;
    double bufferReadNJ = 0.0;
    double crossbarNJ = 0.0;
    double arbiterNJ = 0.0;
    double linkNJ = 0.0;
    double routerLeakageMW = 0.0;
    double retransmitFlitNJ = 0.0; //!< per retransmitted flit

    double clockGHz = 3.0; //!< cycle -> seconds conversion
};

/** Cumulative activity counters of one router, sampled at cycle end. */
struct RouterActivity
{
    std::uint64_t flitsBuffered = 0;
    std::uint64_t flitsSwitched = 0;
    std::uint64_t flitsRetransmitted = 0; //!< by the co-located NI
};

/** Cumulative activity counters of one bank, sampled at cycle end. */
struct BankActivity
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;      //!< includes re-run retry rounds
    std::uint64_t retryRounds = 0; //!< failed-verify re-runs
};

/** One sampled interval of the EnergyProbe. */
struct PowerFrame
{
    Cycle start = 0; //!< first cycle covered (inclusive)
    Cycle end = 0;   //!< last cycle covered (inclusive)

    /** Total (dynamic + leakage) power, watts, [layer][y*width+x]. */
    std::vector<std::vector<double>> powerW;

    // Interval energy split, microjoules (same categories as
    // system::EnergyBreakdown).
    double cacheDynamicUJ = 0.0;
    double cacheLeakageUJ = 0.0;
    double netDynamicUJ = 0.0;
    double netLeakageUJ = 0.0;
    double retryWriteUJ = 0.0;
    double retransmitFlitUJ = 0.0;

    double spanSeconds = 0.0; //!< wall time the interval spans

    double
    totalUJ() const
    {
        return cacheDynamicUJ + cacheLeakageUJ + netDynamicUJ +
               netLeakageUJ + retryWriteUJ + retransmitFlitUJ;
    }

    /** Mean total power over the interval, watts. */
    double
    totalW() const
    {
        return spanSeconds > 0.0 ? totalUJ() * 1e-6 / spanSeconds
                                 : 0.0;
    }
};

/** Receives every retained frame as it is sampled (the thermal
 *  solver's input); reset notifications follow the probe's. */
class PowerFrameSink
{
  public:
    virtual ~PowerFrameSink() = default;
    virtual void onPowerFrame(const PowerFrame &frame) = 0;
    virtual void onPowerReset() = 0;
};

/** Streams per-interval, per-cell uncore power from plain counters. */
class EnergyProbe : public Probe
{
  public:
    using RouterSampler = std::function<RouterActivity()>;
    using BankSampler = std::function<BankActivity()>;

    /**
     * @param width, height, layers mesh geometry of the grids.
     * @param params event energies (copy computeEnergy's constants).
     * @param period sampling period in cycles (>= 1).
     * @param max_frames frame retention cap; totals keep accumulating
     *        and the sink keeps firing once it is reached.
     */
    EnergyProbe(int width, int height, int layers,
                const PowerParams &params, Cycle period,
                std::size_t max_frames = std::size_t{1} << 14);

    /** Register a router (plus its NI) at grid cell (x, y, layer). */
    void addRouter(int x, int y, int layer, RouterSampler sampler);

    /** Register a bank at grid cell (x, y, layer). */
    void addBank(int x, int y, int layer, BankSampler sampler);

    /** Attach the thermal solver (may be null; not owned). */
    void setSink(PowerFrameSink *sink) { sink_ = sink; }

    void onCycle(Cycle now) override;
    void onWarmupBegin(Cycle now) override;
    void onReset(Cycle now) override;

    /**
     * Close the open partial interval so the streaming totals cover
     * exactly the measured window. @p now is the simulator's current
     * cycle (one past the last executed cycle). Idempotent; call
     * before reading totals or exporting.
     */
    void finalize(Cycle now);

    Cycle period() const { return period_; }
    int width() const { return width_; }
    int height() const { return height_; }
    int layers() const { return layers_; }
    const PowerParams &params() const { return params_; }
    const std::vector<PowerFrame> &frames() const { return frames_; }
    std::uint64_t framesDropped() const { return framesDropped_; }

    // Streaming category totals since the last reset, microjoules.
    double cacheDynamicUJ() const { return cacheDynamicUJ_; }
    double cacheLeakageUJ() const { return cacheLeakageUJ_; }
    double netDynamicUJ() const { return netDynamicUJ_; }
    double netLeakageUJ() const { return netLeakageUJ_; }
    double retryWriteUJ() const { return retryWriteUJ_; }
    double retransmitFlitUJ() const { return retransmitFlitUJ_; }

    double
    totalUJ() const
    {
        return cacheDynamicUJ_ + cacheLeakageUJ_ + netDynamicUJ_ +
               netLeakageUJ_ + retryWriteUJ_ + retransmitFlitUJ_;
    }

    /**
     * Write the retained power grids as one heatmap-schema JSON file
     * (metric "power", double-valued grids) renderable by
     * tools/heatmap_render.py. @return false when the file could not
     * be opened.
     */
    bool writeFile(const std::string &path) const;

  private:
    struct RouterSite
    {
        std::size_t cell;
        int layer;
        RouterSampler sampler;
        RouterActivity base;
    };
    struct BankSite
    {
        std::size_t cell;
        int layer;
        BankSampler sampler;
        BankActivity base;
    };

    void captureBaseline();
    PowerFrame sampleFrame(Cycle now);
    void accumulate(const PowerFrame &f);

    int width_;
    int height_;
    int layers_;
    PowerParams params_;
    Cycle period_;
    std::size_t maxFrames_;

    std::vector<RouterSite> routers_;
    std::vector<BankSite> banks_;
    PowerFrameSink *sink_ = nullptr;

    bool inWarmup_ = false;
    bool finalized_ = false;
    Cycle frameStart_ = 0;

    std::vector<PowerFrame> frames_;
    std::uint64_t framesDropped_ = 0;

    double cacheDynamicUJ_ = 0.0;
    double cacheLeakageUJ_ = 0.0;
    double netDynamicUJ_ = 0.0;
    double netLeakageUJ_ = 0.0;
    double retryWriteUJ_ = 0.0;
    double retransmitFlitUJ_ = 0.0;
};

} // namespace stacknoc::telemetry

#endif // STACKNOC_TELEMETRY_POWER_HH
