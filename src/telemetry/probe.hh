/**
 * @file
 * The per-cycle measurement hook shared by every ad-hoc probe and
 * sampler: one Simulator::onCycleEnd callback dispatches to all
 * registered probes, and the system notifies them of warm-up windows
 * so samples taken before the measured region are skipped rather than
 * silently folded in.
 */

#ifndef STACKNOC_TELEMETRY_PROBE_HH
#define STACKNOC_TELEMETRY_PROBE_HH

#include <vector>

#include "common/types.hh"

namespace stacknoc::telemetry {

/** Anything sampled once per cycle by the simulation loop. */
class Probe
{
  public:
    virtual ~Probe() = default;

    /** Called after every simulated cycle @p now. */
    virtual void onCycle(Cycle now) = 0;

    /**
     * A warm-up window began: suppress sampling (or mark subsequent
     * samples as warm-up) until onReset().
     */
    virtual void onWarmupBegin(Cycle now) { (void)now; }

    /**
     * Statistics were reset at cycle @p now (end of warm-up): drop
     * accumulated samples and re-arm relative to @p now.
     */
    virtual void onReset(Cycle now) { (void)now; }
};

/** A composite probe fanning the hooks out to registered probes. */
class ProbeHub : public Probe
{
  public:
    /** Register @p p (not owned; must outlive the hub). */
    void add(Probe *p);

    void onCycle(Cycle now) override;
    void onWarmupBegin(Cycle now) override;
    void onReset(Cycle now) override;

    std::size_t size() const { return probes_.size(); }
    bool empty() const { return probes_.empty(); }

  private:
    std::vector<Probe *> probes_;
};

} // namespace stacknoc::telemetry

#endif // STACKNOC_TELEMETRY_PROBE_HH
