#include "telemetry/trace.hh"

#include "common/logging.hh"

namespace stacknoc::telemetry {

namespace detail {
PacketTracer *g_tracer = nullptr;
} // namespace detail

void
setTracer(PacketTracer *tracer)
{
    detail::g_tracer = tracer;
}

const char *
traceEventName(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::Inject: return "inject";
      case TraceEvent::RouterArrive: return "router_arrive";
      case TraceEvent::HoldStart: return "hold_start";
      case TraceEvent::HoldEnd: return "hold_end";
      case TraceEvent::BankQueueEnter: return "bank_queue_enter";
      case TraceEvent::BankServiceStart: return "bank_service_start";
      case TraceEvent::Eject: return "eject";
    }
    return "?";
}

CsvTraceSink::CsvTraceSink(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "w");
    if (!file_) {
        warn("trace: cannot open '%s' for writing", path.c_str());
        return;
    }
    std::fputs("cycle,packet_id,class,event,node,aux\n", file_);
}

CsvTraceSink::~CsvTraceSink()
{
    if (file_)
        std::fclose(file_);
}

void
CsvTraceSink::write(const TraceRecord &rec)
{
    if (!file_)
        return;
    std::fprintf(file_, "%llu,%llu,%u,%s,%d,%lld\n",
                 static_cast<unsigned long long>(rec.cycle),
                 static_cast<unsigned long long>(rec.packetId),
                 static_cast<unsigned>(rec.cls),
                 traceEventName(rec.event), rec.node,
                 static_cast<long long>(rec.aux));
}

void
CsvTraceSink::flush()
{
    if (file_)
        std::fflush(file_);
}

PacketTracer::PacketTracer(std::size_t ring_capacity,
                           std::uint64_t sample_every)
    : ring_(ring_capacity ? ring_capacity : 1),
      sample_(sample_every ? sample_every : 1)
{
}

void
TraceLog::applyInOrder(TraceLog *const *logs, std::size_t n)
{
    panic_if(traceLog() != nullptr,
             "TraceLog::applyInOrder would re-defer into an installed log");

    // K-way merge by component ordinal; see stats::TickLog::applyInOrder
    // for the ordering argument (entries within one log are already in
    // ascending-ordinal tick order, each ordinal lives in one log).
    std::vector<std::size_t> pos(n, 0);
    for (;;) {
        std::size_t best = n;
        std::uint32_t best_ord = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (pos[i] >= logs[i]->entries_.size())
                continue;
            const std::uint32_t ord = logs[i]->entries_[pos[i]].ordinal;
            if (best == n || ord < best_ord) {
                best = i;
                best_ord = ord;
            }
        }
        if (best == n)
            break;
        auto &entries = logs[best]->entries_;
        std::size_t &p = pos[best];
        while (p < entries.size() && entries[p].ordinal == best_ord) {
            const Entry &e = entries[p++];
            e.target->record(e.rec.event, e.rec.packetId, e.rec.cls,
                             e.rec.node, e.rec.cycle, e.rec.aux);
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        logs[i]->clear();
}

void
PacketTracer::record(TraceEvent ev, std::uint64_t packet_id,
                     std::uint8_t cls, NodeId node, Cycle now,
                     std::int64_t aux)
{
    if (TraceLog *log = traceLog()) {
        TraceRecord rec;
        rec.cycle = now;
        rec.packetId = packet_id;
        rec.cls = cls;
        rec.event = ev;
        rec.node = node;
        rec.aux = aux;
        log->append(this, rec);
        return;
    }
    ++recorded_;
    if (size_ == ring_.size()) {
        if (sink_) {
            flush();
        } else {
            // Overwrite the oldest record; the ring keeps the tail of
            // the run.
            head_ = (head_ + 1) % ring_.size();
            --size_;
            ++dropped_;
        }
    }
    TraceRecord &slot = ring_[(head_ + size_) % ring_.size()];
    slot.cycle = now;
    slot.packetId = packet_id;
    slot.cls = cls;
    slot.event = ev;
    slot.node = node;
    slot.aux = aux;
    ++size_;
}

void
PacketTracer::flush()
{
    if (!sink_) {
        return;
    }
    debug("tracer: flushing %zu records (%llu recorded so far)", size_,
          static_cast<unsigned long long>(recorded_));
    for (std::size_t i = 0; i < size_; ++i)
        sink_->write(ring_[(head_ + i) % ring_.size()]);
    head_ = 0;
    size_ = 0;
    sink_->flush();
}

std::vector<TraceRecord>
PacketTracer::snapshot() const
{
    std::vector<TraceRecord> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

} // namespace stacknoc::telemetry
