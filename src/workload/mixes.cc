#include "workload/mixes.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "workload/app_profiles.hh"

namespace stacknoc::workload {

Mix
replicate(const std::vector<std::string> &apps, int copies)
{
    Mix mix;
    for (const std::string &app : apps) {
        (void)findApp(app); // validate
        for (int i = 0; i < copies; ++i)
            mix.push_back(app);
    }
    return mix;
}

Mix
mixCase1()
{
    return replicate({"soplex", "cactus", "lbm", "hmmer"}, 16);
}

Mix
mixCase2()
{
    return replicate(case2Apps(), 16);
}

std::vector<std::string>
case2Apps()
{
    return {"lbm", "hmmer", "bzip2", "libquantum"};
}

std::vector<std::string>
writeIntensiveApps()
{
    std::vector<std::string> apps;
    for (const AppProfile &a : appTable())
        if (a.l2wpki > a.l2rpki)
            apps.push_back(a.name);
    return apps;
}

std::vector<std::string>
readIntensiveApps()
{
    std::vector<std::string> apps;
    for (const AppProfile &a : appTable())
        if (a.l2rpki >= 3.0 * a.l2wpki)
            apps.push_back(a.name);
    return apps;
}

std::vector<Mix>
mixesCase3(std::uint64_t seed)
{
    Rng rng(seed);
    const std::vector<std::string> reads = readIntensiveApps();
    const std::vector<std::string> writes = writeIntensiveApps();
    std::vector<std::string> all;
    for (const AppProfile &a : appTable())
        all.push_back(a.name);

    auto draw8 = [&rng](const std::vector<std::string> &pool) {
        std::vector<std::string> picked;
        for (int i = 0; i < 8; ++i)
            picked.push_back(pool[rng.below(pool.size())]);
        return picked;
    };

    std::vector<Mix> mixes;
    for (int i = 0; i < 8; ++i)
        mixes.push_back(replicate(draw8(reads), 8));
    for (int i = 0; i < 8; ++i)
        mixes.push_back(replicate(draw8(writes), 8));
    for (int i = 0; i < 16; ++i)
        mixes.push_back(replicate(draw8(all), 8));
    return mixes;
}

} // namespace stacknoc::workload
