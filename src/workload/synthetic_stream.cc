#include "workload/synthetic_stream.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stacknoc::workload {

namespace {

/** Shared-region base: multiple of every bank count we use. */
constexpr BlockAddr kSharedBase = 1ULL << 40;

/** Reuse-history ring capacity per bank. */
constexpr std::size_t kHistoryPerBank = 128;

/** Private-region base for a core. */
BlockAddr
privateBase(CoreId core)
{
    return (static_cast<BlockAddr>(core) + 2) << 32;
}

} // namespace

SyntheticStream::SyntheticStream(const AppProfile &profile, CoreId core,
                                 std::uint64_t seed,
                                 const StreamParams &params)
    : profile_(profile), core_(core), params_(params),
      rng_(seed * 0x2545f4914f6cdd1dULL + static_cast<std::uint64_t>(core)),
      history_(static_cast<std::size_t>(params.numBanks))
{
    fatal_if(params_.memFraction <= 0.0 || params_.memFraction > 1.0,
             "bad memFraction");
    pMiss_ = std::min(1.0, profile_.l1mpki /
                               (1000.0 * params_.memFraction));
    pWrite_ = profile_.l1mpki > 0.0
                  ? std::min(1.0, profile_.l2wpki / profile_.l1mpki)
                  : 0.0;
    const double l2_miss_ratio =
        profile_.l1mpki > 0.0
            ? std::min(1.0, profile_.l2mpki *
                                params_.l2CapacityMissFactor /
                                profile_.l1mpki)
            : 0.0;
    pL2Hit_ = 1.0 - l2_miss_ratio;
}

BlockAddr
SyntheticStream::freshAddress(int bank)
{
    // Private, never-seen-before block that maps to the requested bank.
    std::uint64_t &cursor = bankCursor_[bank];
    const BlockAddr addr =
        privateBase(core_) +
        cursor * static_cast<std::uint64_t>(params_.numBanks) +
        static_cast<std::uint64_t>(bank);
    ++cursor;
    return addr;
}

BlockAddr
SyntheticStream::missAddress()
{
    // Every variant below stays on the current hot bank so bank-level
    // run lengths are controlled solely by makeMiss().
    const auto bank = static_cast<std::uint64_t>(hotBank_);
    const auto banks = static_cast<std::uint64_t>(params_.numBanks);

    // Cross-core shared region (multi-threaded suites only).
    if (profile_.suite != Suite::Spec &&
        rng_.chance(params_.shareProb)) {
        const std::uint64_t rows =
            std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                           params_.sharedPoolBlocks) /
                                           banks);
        return kSharedBase + rng_.below(rows) * banks + bank;
    }

    // Re-reference an old private address of this bank (likely evicted
    // from L1, possibly still in L2) for genuine reuse in real-tag mode.
    auto &hist = history_[static_cast<std::size_t>(hotBank_)];
    if (!hist.empty() && rng_.chance(params_.reuseProb)) {
        const BlockAddr addr = hist[rng_.below(hist.size())];
        if (!l1_ || !l1_->isResident(addr))
            return addr;
    }
    return freshAddress(hotBank_);
}

cpu::TraceOp
SyntheticStream::makeMiss()
{
    ++misses_;
    // Spatial clustering: misses run on one hot bank for a while.
    // Bursty applications produce long same-bank runs; others switch
    // banks almost every miss.
    if (bankRun_ == 0) {
        hotBank_ = static_cast<int>(
            rng_.below(static_cast<std::uint64_t>(params_.numBanks)));
        bankRun_ = profile_.bursty
                       ? rng_.burstLength(params_.burstContinueProb,
                                          params_.burstMaxLen)
                       : (rng_.chance(params_.hotBankStickiness) ? 2u
                                                                 : 1u);
    }
    --bankRun_;
    cpu::TraceOp op;
    op.isMem = true;
    op.isWrite = rng_.chance(pWrite_);
    op.addr = missAddress();
    op.l2Hit = rng_.chance(pL2Hit_);
    op.dependsOnPrev = rng_.chance(params_.depProb);
    auto &hist = history_[static_cast<std::size_t>(hotBank_)];
    if (hist.size() < kHistoryPerBank)
        hist.push_back(op.addr);
    else
        hist[historyIdx_++ % kHistoryPerBank] = op.addr;
    return op;
}

cpu::TraceOp
SyntheticStream::makeHit()
{
    // Re-reference a genuinely resident block so the L1 truly hits.
    // (A store hit on a Shared block still upgrades through the
    // directory — that coherence traffic is intended.)
    BlockAddr addr = 0;
    if (l1_) {
        const cache::TagEntry *resident = l1_->anyResident(rng_.next());
        if (!resident)
            return makeMiss(); // cold cache: emit a miss instead
        addr = resident->addr;
    } else {
        // Stand-alone use (no cache attached): re-reference the latest
        // miss of the hot bank so the mpki accounting stays exact.
        const auto &hist = history_[static_cast<std::size_t>(hotBank_)];
        if (hist.empty())
            return makeMiss();
        addr = hist.back();
    }
    cpu::TraceOp op;
    op.isMem = true;
    op.isWrite = rng_.chance(params_.storeHitFraction);
    op.addr = addr;
    op.l2Hit = true;
    op.dependsOnPrev = rng_.chance(params_.depProb);
    return op;
}

cpu::TraceOp
SyntheticStream::next()
{
    if (!rng_.chance(params_.memFraction))
        return cpu::TraceOp{}; // non-memory instruction

    ++memOps_;
    const double deficit =
        pMiss_ * static_cast<double>(memOps_) -
        static_cast<double>(misses_);

    if (burstRemaining_ > 0) {
        --burstRemaining_;
        if (rng_.chance(params_.burstMissProb))
            return makeMiss();
        return makeHit();
    }

    if (deficit > 0.0) {
        if (profile_.bursty) {
            // Temporal clustering: open a window of elevated miss
            // probability (the spatial hot-bank run is handled inside
            // makeMiss()).
            burstRemaining_ = rng_.burstLength(params_.burstContinueProb,
                                               params_.burstMaxLen);
            --burstRemaining_;
        }
        return makeMiss();
    }
    return makeHit();
}

} // namespace stacknoc::workload
