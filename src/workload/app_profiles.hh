/**
 * @file
 * The 42-application characterisation of the paper's Table 3, plus the
 * grouping into benchmark suites used throughout the evaluation.
 */

#ifndef STACKNOC_WORKLOAD_APP_PROFILES_HH
#define STACKNOC_WORKLOAD_APP_PROFILES_HH

#include <string>
#include <vector>

namespace stacknoc::workload {

/** Which suite an application belongs to (drives sharing behaviour). */
enum class Suite {
    Server, //!< commercial multi-threaded workloads
    Parsec, //!< multi-threaded PARSEC
    Spec,   //!< multi-programmed SPEC 2006
};

/** @return printable suite name. */
const char *suiteName(Suite suite);

/** One row of Table 3. */
struct AppProfile
{
    std::string name;
    Suite suite;
    double l1mpki; //!< L1 misses per kilo-instruction
    double l2mpki; //!< L2 misses per kilo-instruction
    double l2wpki; //!< L2 writes per kilo-instruction
    double l2rpki; //!< L2 reads per kilo-instruction
    bool bursty;   //!< "Bursty" column (High = true)
};

/** @return all 42 applications of Table 3. */
const std::vector<AppProfile> &appTable();

/** @return the profile named @p name (fatal on unknown names). */
const AppProfile &findApp(const std::string &name);

/** @return the application names of one suite, in Table 3 order. */
std::vector<std::string> appsOfSuite(Suite suite);

} // namespace stacknoc::workload

#endif // STACKNOC_WORKLOAD_APP_PROFILES_HH
