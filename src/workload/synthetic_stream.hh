/**
 * @file
 * Synthetic instruction streams calibrated to Table 3.
 *
 * The generator reproduces the first-order statistics the paper's
 * mechanism is sensitive to: L1 miss rate (l1mpki), the read/write split
 * of L2 accesses (l2rpki/l2wpki), the L2 miss ratio (l2mpki, scaled for
 * the SRAM/STT-RAM capacity difference), bank-level burstiness, and —
 * for the multi-threaded suites — cross-core sharing that exercises the
 * MESI directory.
 *
 * Rate accuracy uses deficit control: the stream tracks how many misses
 * it *should* have produced and steers emission so the long-run mpki
 * converges exactly to the Table 3 target.
 */

#ifndef STACKNOC_WORKLOAD_SYNTHETIC_STREAM_HH
#define STACKNOC_WORKLOAD_SYNTHETIC_STREAM_HH

#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "cpu/core.hh"
#include "workload/app_profiles.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::workload {

/** Generator knobs independent of the application profile. */
struct StreamParams
{
    /** Fraction of instructions that are memory operations. */
    double memFraction = 0.3;

    /**
     * Multiplier on l2mpki modelling the cache capacity. 1.0 for the
     * 4 MB STT-RAM banks Table 3 characterises; 2.0 for 1 MB SRAM banks
     * (sqrt-of-capacity rule for the 4x density difference).
     */
    double l2CapacityMissFactor = 1.0;

    /** Probability a miss touches the app-shared region (multi-threaded
     *  suites only; SPEC runs use fully private address spaces). */
    double shareProb = 0.2;

    /** Shared-region size in blocks (small enough to cause conflicts). */
    int sharedPoolBlocks = 4096;

    /** Banks in the system (block-interleaved home mapping). */
    int numBanks = 64;

    /** Burst length continuation probability (bursty apps). */
    double burstContinueProb = 0.87;

    /** Max burst length in misses. */
    std::uint32_t burstMaxLen = 24;

    /** Probability an in-burst memory op misses. */
    double burstMissProb = 0.9;

    /** Non-bursty apps: probability a miss stays on the current bank. */
    double hotBankStickiness = 0.5;

    /** Probability a miss re-references an old (likely L1-evicted)
     *  address instead of a fresh one — gives the real-tags L2 mode
     *  realistic reuse. */
    double reuseProb = 0.4;

    /** Fraction of L1-hit operations that are stores. */
    double storeHitFraction = 0.3;

    /** Probability a memory op depends on the previous one (bounds the
     *  core's memory-level parallelism to realistic levels). */
    double depProb = 0.35;
};

/**
 * The per-core stream. Optionally attached to the core's L1 so that
 * "hit" operations re-reference genuinely resident blocks and "miss"
 * operations avoid resident ones.
 */
class SyntheticStream : public cpu::InstructionStream
{
  public:
    /**
     * @param profile Table 3 row to reproduce.
     * @param core owning core (address-space separation).
     * @param seed experiment seed.
     * @param params generator knobs.
     */
    SyntheticStream(const AppProfile &profile, CoreId core,
                    std::uint64_t seed, const StreamParams &params);

    /** Attach the core's L1 for residency-aware generation. */
    void attachL1(const coherence::L1Cache *l1) { l1_ = l1; }

    cpu::TraceOp next() override;

    /** Target probability that a memory op misses in L1. */
    double targetMissProb() const { return pMiss_; }

    /** Target probability that a miss is a write. */
    double targetWriteProb() const { return pWrite_; }

    /** Target probability that an L2 access hits. */
    double targetL2HitProb() const { return pL2Hit_; }

    const AppProfile &profile() const { return profile_; }

    /** Memory operations emitted so far. */
    std::uint64_t emittedMemOps() const { return memOps_; }

    /** L1-missing operations emitted so far. */
    std::uint64_t emittedMisses() const { return misses_; }

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    BlockAddr freshAddress(int bank);
    BlockAddr missAddress();
    cpu::TraceOp makeMiss();
    cpu::TraceOp makeHit();

    AppProfile profile_;
    CoreId core_;
    StreamParams params_;
    Rng rng_;
    const coherence::L1Cache *l1_ = nullptr;

    double pMiss_;
    double pWrite_;
    double pL2Hit_;

    std::uint64_t memOps_ = 0;
    std::uint64_t misses_ = 0;
    std::uint32_t burstRemaining_ = 0; //!< temporal burst window
    std::uint32_t bankRun_ = 0;        //!< misses left on the hot bank
    int hotBank_ = 0;
    std::unordered_map<int, std::uint64_t> bankCursor_;
    /** Per-bank reuse-history rings. */
    std::vector<std::vector<BlockAddr>> history_;
    std::size_t historyIdx_ = 0;
};

} // namespace stacknoc::workload

#endif // STACKNOC_WORKLOAD_SYNTHETIC_STREAM_HH
