/**
 * @file
 * Instruction-trace recording and replay.
 *
 * The paper's evaluation is trace-driven; this module gives the library
 * the same workflow: wrap any InstructionStream in a TraceRecorder to
 * capture what a run executed, and replay the file later (or a trace
 * captured from a real machine, converted to the same format) through a
 * TraceFileStream.
 *
 * Format: one record per line, whitespace separated.
 *   N <count>                 — <count> non-memory instructions
 *   R|W <addr-hex> <l2hit> <dep>
 * Lines starting with '#' are comments.
 */

#ifndef STACKNOC_WORKLOAD_TRACE_FILE_HH
#define STACKNOC_WORKLOAD_TRACE_FILE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "cpu/core.hh"

namespace stacknoc::workload {

/** Wraps a stream and appends everything it produces to a trace. */
class TraceRecorder : public cpu::InstructionStream
{
  public:
    /**
     * @param inner the stream to record (must outlive the recorder).
     * @param limit stop recording (but keep forwarding) after this many
     *        instructions; 0 = unlimited.
     */
    explicit TraceRecorder(cpu::InstructionStream &inner,
                           std::uint64_t limit = 0)
        : inner_(inner), limit_(limit)
    {}

    cpu::TraceOp next() override;

    /** Write the recorded trace to @p path. @return success. */
    bool save(const std::string &path) const;

    /** Recorded operations so far (non-memory runs are compressed). */
    const std::vector<cpu::TraceOp> &ops() const { return ops_; }

  private:
    cpu::InstructionStream &inner_;
    std::uint64_t limit_;
    std::uint64_t recorded_ = 0;
    std::vector<cpu::TraceOp> ops_;
};

/**
 * Replays a trace file. When the trace is exhausted the stream either
 * loops (default — steady-state measurement needs an endless stream) or
 * pads with non-memory instructions.
 */
class TraceFileStream : public cpu::InstructionStream
{
  public:
    /**
     * @param path trace file to load (fatal on parse errors).
     * @param loop wrap around at end-of-trace instead of padding.
     */
    explicit TraceFileStream(const std::string &path, bool loop = true);

    /** Build from already-parsed operations (for tests / synthesis). */
    explicit TraceFileStream(std::vector<cpu::TraceOp> ops,
                             bool loop = true);

    cpu::TraceOp next() override;

    std::size_t size() const { return ops_.size(); }

    /** Number of times the trace wrapped around. */
    std::uint64_t laps() const { return laps_; }

  private:
    std::vector<cpu::TraceOp> ops_;
    bool loop_;
    std::size_t pos_ = 0;
    std::uint64_t laps_ = 0;
};

/** Serialise @p ops in the trace format. @return success. */
bool saveTrace(const std::string &path,
               const std::vector<cpu::TraceOp> &ops);

/** Parse a trace file (fatal on malformed records). */
std::vector<cpu::TraceOp> loadTrace(const std::string &path);

} // namespace stacknoc::workload

#endif // STACKNOC_WORKLOAD_TRACE_FILE_HH
