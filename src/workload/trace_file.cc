#include "workload/trace_file.hh"

#include <cinttypes>
#include <cstring>

#include "common/logging.hh"

namespace stacknoc::workload {

cpu::TraceOp
TraceRecorder::next()
{
    cpu::TraceOp op = inner_.next();
    if (limit_ == 0 || recorded_ < limit_) {
        ops_.push_back(op);
        ++recorded_;
    }
    return op;
}

bool
TraceRecorder::save(const std::string &path) const
{
    return saveTrace(path, ops_);
}

bool
saveTrace(const std::string &path, const std::vector<cpu::TraceOp> &ops)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "# stacknoc trace v1\n");
    std::uint64_t non_mem = 0;
    auto flush_non_mem = [&] {
        if (non_mem > 0) {
            std::fprintf(f, "N %" PRIu64 "\n", non_mem);
            non_mem = 0;
        }
    };
    for (const auto &op : ops) {
        if (!op.isMem) {
            ++non_mem;
            continue;
        }
        flush_non_mem();
        std::fprintf(f, "%c %" PRIx64 " %d %d\n", op.isWrite ? 'W' : 'R',
                     op.addr, op.l2Hit ? 1 : 0,
                     op.dependsOnPrev ? 1 : 0);
    }
    flush_non_mem();
    std::fclose(f);
    return true;
}

std::vector<cpu::TraceOp>
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    fatal_if(f == nullptr, "cannot open trace file '%s'", path.c_str());

    std::vector<cpu::TraceOp> ops;
    char line[256];
    int lineno = 0;
    while (std::fgets(line, sizeof(line), f)) {
        ++lineno;
        if (line[0] == '#' || line[0] == '\n' || line[0] == '\0')
            continue;
        if (line[0] == 'N') {
            std::uint64_t count = 0;
            fatal_if(std::sscanf(line + 1, "%" SCNu64, &count) != 1,
                     "%s:%d: bad non-memory record", path.c_str(),
                     lineno);
            ops.insert(ops.end(), count, cpu::TraceOp{});
            continue;
        }
        if (line[0] == 'R' || line[0] == 'W') {
            cpu::TraceOp op;
            op.isMem = true;
            op.isWrite = line[0] == 'W';
            std::uint64_t addr = 0;
            int l2hit = 0, dep = 0;
            fatal_if(std::sscanf(line + 1, "%" SCNx64 " %d %d", &addr,
                                 &l2hit, &dep) != 3,
                     "%s:%d: bad memory record", path.c_str(), lineno);
            op.addr = addr;
            op.l2Hit = l2hit != 0;
            op.dependsOnPrev = dep != 0;
            ops.push_back(op);
            continue;
        }
        std::fclose(f);
        fatal("%s:%d: unknown record type '%c'", path.c_str(), lineno,
              line[0]);
    }
    std::fclose(f);
    return ops;
}

TraceFileStream::TraceFileStream(const std::string &path, bool loop)
    : ops_(loadTrace(path)), loop_(loop)
{
    fatal_if(ops_.empty(), "trace '%s' is empty", path.c_str());
}

TraceFileStream::TraceFileStream(std::vector<cpu::TraceOp> ops, bool loop)
    : ops_(std::move(ops)), loop_(loop)
{
    fatal_if(ops_.empty(), "empty trace");
}

cpu::TraceOp
TraceFileStream::next()
{
    if (pos_ >= ops_.size()) {
        if (!loop_)
            return cpu::TraceOp{}; // pad with non-memory work
        pos_ = 0;
        ++laps_;
    }
    return ops_[pos_++];
}

} // namespace stacknoc::workload
