/**
 * @file
 * Multi-programmed workload mixes for the paper's case studies
 * (Section 4.2: Case-1, Case-2, and the 32 mixes of Case-3).
 */

#ifndef STACKNOC_WORKLOAD_MIXES_HH
#define STACKNOC_WORKLOAD_MIXES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace stacknoc::workload {

/** A per-core application assignment (64 entries for the full system). */
using Mix = std::vector<std::string>;

/** @return @p copies copies of each app in @p apps, concatenated. */
Mix replicate(const std::vector<std::string> &apps, int copies);

/** Case-1: 16 copies each of soplex, cactus, lbm, hmmer (write heavy). */
Mix mixCase1();

/** Case-2: 16 copies each of lbm, hmmer (bursty+write) and bzip2,
 *  libquantum (read intensive). */
Mix mixCase2();

/** The applications of Case-2 in mix order (for fairness reporting). */
std::vector<std::string> case2Apps();

/**
 * Case-3: 32 mixes of 8 apps x 8 copies; 8 read-intensive mixes, 8
 * write-intensive mixes, 16 combined mixes, randomly drawn per category.
 */
std::vector<Mix> mixesCase3(std::uint64_t seed);

/** Apps classified as write-intensive (l2wpki > l2rpki). */
std::vector<std::string> writeIntensiveApps();

/** Apps classified as read-intensive (l2rpki >= 3 * l2wpki). */
std::vector<std::string> readIntensiveApps();

} // namespace stacknoc::workload

#endif // STACKNOC_WORKLOAD_MIXES_HH
